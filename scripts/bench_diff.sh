#!/usr/bin/env bash
# Per-benchmark wall-clock deltas between two BENCH_results.json files.
#
#   scripts/bench_diff.sh <old.json> <new.json>
#
# Typical flow when landing a perf PR:
#
#   git show origin/main:BENCH_results.json > /tmp/bench-old.json
#   scripts/bench.sh                                # regenerates BENCH_results.json
#   scripts/bench_diff.sh /tmp/bench-old.json BENCH_results.json
#
# Output is one line per benchmark: old median, new median, signed delta
# percent (negative = faster). Benchmarks present in only one file are
# marked `new` / `removed` instead of failing — sweeps gain and lose arms
# between commits. Remember these are host wall-clock numbers: compare
# only runs from the same machine.
#
# When BENCH_reference_ratios.json exists at the repo root (regenerate it
# with `bench_report ratios BENCH_results.json BENCH_reference_ratios.json`
# after an intentional perf change), the new results are also gated
# against it: any benchmark whose geomean-normalized median regressed by
# more than SKV_BENCH_GATE_PCT percent (default 25) fails the script.
# Normalized ratios survive machine changes — a uniformly faster host
# shifts every median together — so the stored reference is portable in a
# way raw nanoseconds are not.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ $# -ne 2 ]; then
  echo "usage: scripts/bench_diff.sh <old.json> <new.json>" >&2
  exit 2
fi

cargo run -q --release -p skv-bench --bin bench_report -- diff "$1" "$2"

REF=BENCH_reference_ratios.json
if [ -f "$REF" ]; then
  cargo run -q --release -p skv-bench --bin bench_report -- \
    gate "$REF" "$2" "${SKV_BENCH_GATE_PCT:-25}"
else
  echo "bench_diff: no $REF — skipping the regression gate" >&2
fi
