#!/usr/bin/env bash
# Full local gate: everything CI would run.
#
#   scripts/check.sh          # skv-analyze + tests + clippy
#
# Fails on the first red step.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> skv-analyze (determinism, event-loop, wire-format & drift rules)"
# JSON report first (CI uploads target/skv-analyze.json as an artifact);
# on failure re-run in text mode so the log shows readable diagnostics.
mkdir -p target
if ! cargo run -q -p skv-analyze -- --format json > target/skv-analyze.json; then
  cargo run -q -p skv-analyze || true
  echo "FAIL: skv-analyze found violations (report: target/skv-analyze.json)"
  exit 1
fi

echo "==> histcheck smoke (bounded linearizability gate, all repl modes)"
# Small recorded bench runs (async/quorum/chain) fed through the
# multi-writer checker. On a violation the failing test writes the full
# event log to target/histcheck_events.json — CI uploads it as the
# counterexample artifact.
if ! cargo test -q --test histcheck_smoke; then
  echo "FAIL: linearizability smoke (event log: target/histcheck_events.json)"
  exit 1
fi

echo "==> cargo test --workspace"
cargo test -q --workspace

echo "==> cargo clippy (deny warnings + curated pedantic subset)"
# The pedantic lints are opt-in one by one: each either mirrors an
# skv-analyze rule workspace-wide (casts, indexing) or keeps the codebase
# idiomatic without fighting the simulator's style.
cargo clippy --workspace --all-targets -- -D warnings \
  -D clippy::cast_possible_truncation \
  -D clippy::string_slice \
  -D clippy::semicolon_if_nothing_returned \
  -D clippy::explicit_iter_loop \
  -D clippy::redundant_closure_for_method_calls \
  -D clippy::uninlined_format_args

echo "==> bench smoke (non-gating)"
# A seconds-scale pass over the wall-clock suite; regressions are judged
# from BENCH_results.json trends, not pass/fail, so failure only warns.
if ! SKV_BENCH_SMOKE=1 SKV_BENCH_OUT=target/BENCH_smoke.json scripts/bench.sh; then
  echo "WARN: bench smoke failed (non-gating)"
fi

echo "OK"
