#!/usr/bin/env bash
# Full local gate: everything CI would run.
#
#   scripts/check.sh          # skv-lint + tests + clippy
#
# Fails on the first red step.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> skv-lint (determinism & protocol invariants)"
cargo run -q -p skv-lint

echo "==> cargo test --workspace"
cargo test -q --workspace

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> bench smoke (non-gating)"
# A seconds-scale pass over the wall-clock suite; regressions are judged
# from BENCH_results.json trends, not pass/fail, so failure only warns.
if ! SKV_BENCH_SMOKE=1 SKV_BENCH_OUT=target/BENCH_smoke.json scripts/bench.sh; then
  echo "WARN: bench smoke failed (non-gating)"
fi

echo "OK"
