#!/usr/bin/env bash
# Full local gate: everything CI would run.
#
#   scripts/check.sh          # skv-lint + tests + clippy
#
# Fails on the first red step.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> skv-lint (determinism & protocol invariants)"
cargo run -q -p skv-lint

echo "==> cargo test --workspace"
cargo test -q --workspace

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "OK"
