#!/usr/bin/env bash
# Wall-clock benchmark suite: emits BENCH_results.json at the repo root.
#
#   scripts/bench.sh                      # full suite (a few minutes)
#   SKV_BENCH_SMOKE=1 scripts/bench.sh    # shrunk sweeps/windows, for CI
#
# Unlike the figure experiments (simulated time, deterministic), these
# numbers are host wall-clock and vary machine to machine; compare only
# before/after on the same box. Raw per-benchmark JSON lines are collected
# via the vendored criterion shim's CRITERION_JSON hook, then assembled and
# validated by the bench_report bin.
set -euo pipefail
cd "$(dirname "$0")/.."

# Absolute: cargo runs bench binaries with CWD at the package root.
RAW="$PWD/target/bench-raw.jsonl"
OUT=${SKV_BENCH_OUT:-BENCH_results.json}
mkdir -p target
rm -f "$RAW"

BENCHES=(
  wallclock_event_loop
  wallclock_resp
  wallclock_channel
  wallclock_fanout
  wallclock_fig10
  wallclock_replmode
  wallclock_shards
  wallclock_hotcache
)

for b in "${BENCHES[@]}"; do
  echo "==> bench $b"
  CRITERION_JSON="$RAW" cargo bench -q -p skv-bench --bench "$b"
done

cargo run -q --release -p skv-bench --bin bench_report -- assemble "$RAW" "$OUT"
cargo run -q --release -p skv-bench --bin bench_report -- check "$OUT" 4
