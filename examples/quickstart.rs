//! Quickstart: build an SKV cluster (1 master + SmartNIC + 2 slaves), run a
//! mixed GET/SET workload, and inspect the results.
//!
//! ```text
//! cargo run --release -p skv-examples --bin quickstart
//! ```

use skv_core::cluster::{Cluster, RunSpec};
use skv_core::config::{ClusterConfig, Mode};
use skv_simcore::SimDuration;

fn main() {
    // 1. Describe the cluster: SKV mode puts Nic-KV on the master's
    //    simulated BlueField and offloads replication + failure detection.
    let mut cfg = ClusterConfig::for_mode(Mode::Skv);
    cfg.num_slaves = 2;

    // 2. Describe the workload: 8 closed-loop clients, 70% SET / 30% GET,
    //    64-byte values, measured for 2 simulated seconds.
    let spec = RunSpec {
        cfg,
        num_clients: 8,
        pipeline: 1,
        set_ratio: 0.7,
        mset_keys: 0,
        value_size: 64,
        key_space: 50_000,
        warmup: SimDuration::from_millis(300),
        measure: SimDuration::from_secs(2),
        seed: 7,
        zipf_theta: 0.0,
        zipf_shift_every: 0,
    };

    // 3. Build and run. Everything is deterministic: same spec, same result.
    let mut cluster = Cluster::build(spec);
    let report = cluster.run();

    println!("== SKV quickstart ==");
    println!("{}", skv_core::metrics::RunReport::header());
    println!("{}", report.row());

    // 4. Inspect the distributed state.
    let master = cluster.master_server();
    println!("\nmaster executed {} commands", master.stat_commands);
    println!("master replication offset: {} bytes", master.repl_offset());
    for i in 0..cluster.slaves.len() {
        let s = cluster.slave_server(i);
        println!(
            "slave {i}: synced={} applied {} stream bytes",
            s.is_synced_slave(),
            s.stat_applied_bytes
        );
    }
    if let Some(nic) = cluster.nic_kv() {
        println!(
            "Nic-KV: {} replication requests fanned out as {} sends, {} probes",
            nic.stat_fanout_msgs, nic.stat_fanout_sends, nic.stat_probes
        );
    }

    // 5. Replication is asynchronous; give it a beat and prove convergence.
    cluster
        .sim
        .run_until(cluster.measure_until + SimDuration::from_millis(500));
    let digests = cluster.keyspace_digests();
    println!("\nkeyspace digests (master first): {digests:x?}");
    assert!(
        digests.iter().all(|&d| d == digests[0]),
        "all replicas must converge"
    );
    println!("all replicas converged");
}
