//! The paper's headline experiment as an example: run the *same* SET
//! workload (1 master + 3 slaves, 8 clients) on RDMA-Redis and on SKV, and
//! show where the SmartNIC offload wins — and why (WR posts per command).
//!
//! ```text
//! cargo run --release -p skv-examples --bin replication_offload
//! ```

use skv_core::cluster::{Cluster, RunSpec};
use skv_core::config::{ClusterConfig, Mode};
use skv_core::metrics::RunReport;
use skv_simcore::SimDuration;

fn run(mode: Mode) -> (RunReport, f64, u64) {
    let mut cfg = ClusterConfig::for_mode(mode);
    cfg.num_slaves = 3;
    let spec = RunSpec {
        cfg,
        num_clients: 8,
        pipeline: 1,
        set_ratio: 1.0,
        mset_keys: 0,
        value_size: 64,
        key_space: 100_000,
        warmup: SimDuration::from_millis(400),
        measure: SimDuration::from_secs(3),
        seed: 99,
        zipf_theta: 0.0,
        zipf_shift_every: 0,
    };
    let mut cluster = Cluster::build(spec);
    let report = cluster.run();
    let util = cluster.master_server().core0_utilization(cluster.sim.now());
    let nic_sends = cluster.nic_kv().map(|n| n.stat_fanout_sends).unwrap_or(0);
    (report, util, nic_sends)
}

fn main() {
    println!("== Replication offload: SKV vs RDMA-Redis (SET, 3 slaves, 8 clients) ==\n");
    let (baseline, base_util, _) = run(Mode::RdmaRedis);
    let (skv, skv_util, nic_sends) = run(Mode::Skv);

    println!("{}", RunReport::header());
    println!("{}", baseline.row());
    println!("{}", skv.row());

    let tput_gain = (skv.throughput_kops / baseline.throughput_kops - 1.0) * 100.0;
    let avg_cut = (1.0 - skv.avg_latency_us / baseline.avg_latency_us) * 100.0;
    let p99_cut = (1.0 - skv.p99_latency_us / baseline.p99_latency_us) * 100.0;
    println!("\nSKV vs RDMA-Redis:");
    println!("  throughput:   {tput_gain:+.1}%  (paper: +14%)");
    println!("  avg latency:  {:+.1}%  (paper: -14%)", -avg_cut);
    println!("  p99 latency:  {:+.1}%  (paper: -21%)", -p99_cut);

    println!("\nwhy: per replicated SET the RDMA-Redis master posts one Work");
    println!("Request per slave (4 posts total incl. the reply), while the SKV");
    println!("master posts two (reply + one request to Nic-KV); the SmartNIC");
    println!("performed the other {nic_sends} sends in the background.");
    println!(
        "\nmaster event-loop core utilization: RDMA-Redis {:.0}%, SKV {:.0}%",
        base_util * 100.0,
        skv_util * 100.0
    );
}
