//! Failure handling end to end: a slave crash (the paper's Figure 14
//! scenario) followed by a *master* crash with Nic-KV-driven failover and
//! downgrade-on-return (§III-D).
//!
//! ```text
//! cargo run --release -p skv-examples --bin failover
//! ```

use skv_core::cluster::{Cluster, RunSpec};
use skv_core::config::{ClusterConfig, Mode};
use skv_simcore::{SimDuration, SimTime};

fn slave_failure_demo() {
    println!("== scenario 1: slave crash at 2s, recovery at 5s ==");
    let mut cfg = ClusterConfig::for_mode(Mode::Skv);
    cfg.num_slaves = 3;
    let mut cluster = Cluster::build(RunSpec {
        cfg,
        num_clients: 8,
        set_ratio: 1.0,
        warmup: SimDuration::from_millis(400),
        measure: SimDuration::from_millis(7_000),
        seed: 31,
        ..Default::default()
    });
    cluster.schedule_slave_crash(0, SimTime::from_secs(2));
    cluster.schedule_slave_recover(0, SimTime::from_secs(5));
    let report = cluster.run();

    let nic = cluster.nic_kv().expect("SKV mode");
    for (t, addr) in &nic.detections {
        println!("  {t}: Nic-KV marked {addr} invalid");
    }
    for (t, addr) in &nic.recoveries {
        println!("  {t}: Nic-KV saw {addr} alive again");
    }
    println!(
        "  client errors: {} (clients are unaware of the failure)",
        report.errors
    );

    // The recovered slave re-synced from its last offset (partial resync).
    cluster
        .sim
        .run_until(cluster.measure_until + SimDuration::from_secs(1));
    let s0 = cluster.slave_server(0);
    println!(
        "  slave 0 after recovery: synced={} partial_syncs={}",
        s0.is_synced_slave(),
        s0.stat_partial_syncs
    );
    let digests = cluster.keyspace_digests();
    assert!(digests.iter().all(|&d| d == digests[0]));
    println!("  all replicas converged after recovery\n");
}

fn master_failover_demo() {
    println!("== scenario 2: master crash at 2s, return at 6s ==");
    let mut cfg = ClusterConfig::for_mode(Mode::Skv);
    cfg.num_slaves = 2;
    let mut cluster = Cluster::build(RunSpec {
        cfg,
        num_clients: 2,
        set_ratio: 1.0,
        warmup: SimDuration::from_millis(400),
        measure: SimDuration::from_millis(8_000),
        seed: 32,
        ..Default::default()
    });
    cluster.schedule_master_crash(SimTime::from_secs(2));
    cluster.schedule_master_recover(SimTime::from_secs(6));
    // Drive to the end; clients talking to the crashed master stall, which
    // is expected — the point is Nic-KV's node-list reaction.
    cluster.sim.run_until(SimTime::from_secs(9));

    let nic = cluster.nic_kv().expect("SKV mode");
    println!("  failovers performed by Nic-KV: {}", nic.stat_failovers);
    for (t, addr) in &nic.detections {
        println!("  {t}: detected failure of {addr}");
    }
    for (t, addr) in &nic.recoveries {
        println!("  {t}: {addr} returned");
    }
    // A slave was promoted while the master was away; after the master's
    // return, Nic-KV downgraded it (§III-D).
    let promoted_now_master =
        (0..cluster.slaves.len()).any(|i| cluster.slave_server(i).is_master());
    println!(
        "  a slave is still master: {promoted_now_master} (downgraded after the original returned)"
    );
    println!("  node list at the end:");
    for entry in nic.node_list() {
        println!(
            "    {} master={} valid={} offset={}",
            entry.addr, entry.is_master, entry.valid, entry.position.offset
        );
    }
}

fn main() {
    slave_failure_demo();
    master_failover_demo();
}
