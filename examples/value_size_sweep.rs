//! Sweep SET value sizes (the paper's Figure 12) with sizes taken from the
//! command line, comparing SKV against RDMA-Redis.
//!
//! ```text
//! cargo run --release -p skv-examples --bin value_size_sweep -- 64 512 4096
//! ```

use skv_bench::experiments;

fn main() {
    let sizes: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| {
            a.parse()
                .unwrap_or_else(|_| panic!("not a value size: {a:?}"))
        })
        .collect();
    let sizes = if sizes.is_empty() {
        vec![64, 256, 1024, 4096]
    } else {
        sizes
    };
    let rows = experiments::fig12_value_size(&sizes);
    experiments::print_fig12(&rows);

    // SKV must win at every size (the paper's claim for Figure 12).
    for r in &rows {
        assert!(
            r.skv.throughput_kops > r.baseline.throughput_kops,
            "SKV should beat RDMA-Redis at {} bytes",
            r.value_size
        );
    }
    println!("\nSKV outperformed RDMA-Redis at every value size");
}
