//! The fault-injection substrate end to end: a lossy fabric where every
//! dropped message surfaces as an RDMA completion error, then a SmartNIC
//! SoC crash that forces the master into host-driven fan-out until the SoC
//! returns.
//!
//! ```text
//! cargo run --release -p skv-examples --bin chaos_demo
//! ```

use skv_core::cluster::{ChaosSpec, Cluster, RunSpec};
use skv_core::config::{ClusterConfig, Mode};
use skv_simcore::{SimDuration, SimTime};

fn spec(slaves: usize, clients: usize, measure_ms: u64, seed: u64) -> RunSpec {
    let mut cfg = ClusterConfig::for_mode(Mode::Skv);
    cfg.num_slaves = slaves;
    RunSpec {
        cfg,
        num_clients: clients,
        set_ratio: 1.0,
        warmup: SimDuration::from_millis(400),
        measure: SimDuration::from_millis(measure_ms),
        seed,
        ..Default::default()
    }
}

/// 1% of all messages vanish. Each loss is a completion-with-error that
/// moves its QP to the error state; clients and servers tear the channel
/// down and redial, and the replication layer resyncs any gap.
fn lossy_fabric_demo() {
    println!("== scenario 1: 1% message loss on every link ==");
    let mut cluster = Cluster::build(spec(3, 4, 6_000, 41));
    cluster.apply_chaos(&ChaosSpec {
        loss_prob: 0.01,
        seed: 41,
        ..ChaosSpec::default()
    });
    let report = cluster.run();
    cluster
        .sim
        .run_until(cluster.measure_until + SimDuration::from_secs(2));

    println!(
        "  {} ops completed; {} messages dropped by the fault plan",
        report.ops,
        report.chaos.get("faults.rdma_dropped")
    );
    println!(
        "  QP errors: {}; client reconnects: {}; server reconnects: {}; partial resyncs: {}",
        report.chaos.get("rdma.qp_errors"),
        report.chaos.get("client.reconnects"),
        report.chaos.get("server.reconnects"),
        report.chaos.get("server.partial_syncs"),
    );
    let digests = cluster.keyspace_digests();
    assert!(digests.iter().all(|&d| d == digests[0]));
    println!("  all replicas converged despite the loss\n");
}

/// The SoC dies mid-run. The master notices the probe silence, falls back
/// to serial host fan-out (degraded but alive), and re-offloads once the
/// SoC answers probes again.
fn nic_crash_demo() {
    println!("== scenario 2: SmartNIC SoC crash at 2s, return at 5s ==");
    let crash_at = SimTime::from_secs(2);
    let recover_at = SimTime::from_secs(5);
    let mut cluster = Cluster::build(spec(2, 4, 7_000, 42));
    cluster.apply_chaos(&ChaosSpec {
        nic_crash: Some((crash_at, recover_at)),
        seed: 42,
        ..ChaosSpec::default()
    });
    let report = cluster.run();
    cluster
        .sim
        .run_until(cluster.measure_until + SimDuration::from_secs(2));

    let master = cluster.master_server();
    for &(entered, exited) in &master.degraded_periods {
        match exited {
            Some(t) => println!("  degraded (host fan-out) {entered} → {t}"),
            None => println!("  degraded (host fan-out) from {entered}, never recovered"),
        }
    }
    println!(
        "  degradations: {}; still degraded at end: {}; client errors: {}",
        master.stat_degradations,
        master.is_degraded(),
        report.errors
    );
    println!("  throughput through the crash (500 ms buckets):");
    for p in &report.series {
        println!(
            "    {:>5.1}s {:>8.1} kops/s",
            p.time.as_secs_f64(),
            p.rate_per_sec / 1000.0
        );
    }
    let digests = cluster.keyspace_digests();
    assert!(digests.iter().all(|&d| d == digests[0]));
    println!("  all replicas converged after re-offload");
}

fn main() {
    lossy_fabric_demo();
    nic_crash_demo();
}
