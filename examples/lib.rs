//! Shared helpers for SKV examples.
