//! An interactive `redis-cli`-style REPL against the embedded engine —
//! handy for exploring the ~100-command surface without building a cluster.
//!
//! ```text
//! cargo run --release -p skv-examples --bin skv_cli
//! skv> SET greeting "hello world"
//! OK
//! skv> GET greeting
//! "hello world"
//! ```

use std::io::{self, BufRead, Write};

use skv_store::engine::Engine;
use skv_store::resp::Resp;

/// Split a line into arguments, honouring double quotes.
fn tokenize(line: &str) -> Result<Vec<Vec<u8>>, String> {
    let mut args = Vec::new();
    let mut cur = Vec::new();
    let mut in_quotes = false;
    let mut any = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                in_quotes = !in_quotes;
                any = true;
            }
            '\\' if in_quotes => match chars.next() {
                Some('n') => cur.push(b'\n'),
                Some('t') => cur.push(b'\t'),
                Some('"') => cur.push(b'"'),
                Some('\\') => cur.push(b'\\'),
                Some(other) => cur.extend(other.to_string().as_bytes()),
                None => return Err("dangling escape".into()),
            },
            c if c.is_whitespace() && !in_quotes => {
                if any || !cur.is_empty() {
                    args.push(std::mem::take(&mut cur));
                    any = false;
                }
            }
            c => {
                let mut buf = [0u8; 4];
                cur.extend(c.encode_utf8(&mut buf).as_bytes());
            }
        }
    }
    if in_quotes {
        return Err("unterminated quote".into());
    }
    if any || !cur.is_empty() {
        args.push(cur);
    }
    Ok(args)
}

/// Render a reply the way redis-cli does.
fn render(reply: &Resp, indent: usize) -> String {
    let pad = "  ".repeat(indent);
    match reply {
        Resp::Simple(s) => format!("{pad}{s}"),
        Resp::Error(e) => format!("{pad}(error) {e}"),
        Resp::Int(v) => format!("{pad}(integer) {v}"),
        Resp::Bulk(b) => format!("{pad}\"{}\"", String::from_utf8_lossy(b)),
        Resp::NullBulk | Resp::NullArray => format!("{pad}(nil)"),
        Resp::Array(items) if items.is_empty() => format!("{pad}(empty array)"),
        Resp::Array(items) => items
            .iter()
            .enumerate()
            .map(|(i, item)| format!("{pad}{}) {}", i + 1, render(item, 0).trim_start()))
            .collect::<Vec<_>>()
            .join("\n"),
    }
}

fn main() {
    let mut engine = Engine::new(0xC11);
    // A wall-clock-ish monotonic ms counter so TTLs behave naturally.
    // Interactive CLI, not simulation code: wall clock is the point.
    #[allow(clippy::disallowed_methods)]
    let start = std::time::Instant::now();

    println!(
        "skv-cli — embedded skv-store engine ({} commands)",
        skv_store::cmd::COMMANDS.len()
    );
    println!("type commands (QUIT to exit):");
    let stdin = io::stdin();
    loop {
        print!("skv> ");
        io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let args = match tokenize(line.trim()) {
            Ok(a) => a,
            Err(e) => {
                println!("(error) {e}");
                continue;
            }
        };
        if args.is_empty() {
            continue;
        }
        if args[0].eq_ignore_ascii_case(b"QUIT") || args[0].eq_ignore_ascii_case(b"EXIT") {
            break;
        }
        let now_ms = u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX);
        let result = engine.execute(now_ms, &args);
        println!("{}", render(&result.reply, 0));
    }
}
