//! Shared helpers for the SKV integration test suite.
