//! CI-bounded linearizability smoke: one small recorded bench run per
//! replication mode, fed through the multi-writer checker. Sized to
//! finish in seconds — `scripts/check.sh` runs this file as its history
//! gate. On an unexpected violation the full event log is dumped to
//! `target/histcheck_events.json` (the CI failure artifact) before the
//! assertion fires, so the counterexample survives the panic.

use std::io::Write;

use skv_core::cluster::{Cluster, RunSpec};
use skv_core::config::{ClusterConfig, Mode};
use skv_core::histcheck::check_linearizable;
use skv_core::replmode::ReplModeKind;
use skv_simcore::SimDuration;

/// Where the failure artifact lands, relative to the workspace root
/// (integration tests run with the package dir as cwd, one level down).
const ARTIFACT: &str = "../target/histcheck_events.json";

/// Small, bounded history: 2 writers, a compressed measurement window,
/// and a narrow key space so per-key searches stay trivial.
fn smoke_spec(mode: ReplModeKind, seed: u64) -> RunSpec {
    let mut cfg = ClusterConfig::for_mode(Mode::Skv);
    cfg.num_slaves = 2;
    cfg.repl_mode = mode;
    cfg.record_history = true;
    cfg.probe_interval = SimDuration::from_millis(200);
    cfg.waiting_time = SimDuration::from_millis(300);
    cfg.upstream_silence = SimDuration::from_millis(600);
    cfg.reconnect_base = SimDuration::from_millis(5);
    cfg.client_retry_timeout = SimDuration::from_millis(100);
    RunSpec {
        cfg,
        num_clients: 2,
        pipeline: 1,
        set_ratio: 0.5,
        mset_keys: 0,
        value_size: 64,
        key_space: 200,
        warmup: SimDuration::from_millis(100),
        measure: SimDuration::from_millis(400),
        seed,
        zipf_theta: 0.0,
        zipf_shift_every: 0,
    }
}

/// Run one mode, check the recorded history, dump the event log and
/// fail if the checker finds a counterexample.
fn smoke(mode: ReplModeKind, seed: u64) {
    let mut cluster = Cluster::build(smoke_spec(mode, seed));
    cluster.run();
    cluster
        .sim
        .run_until(cluster.measure_until + SimDuration::from_secs(1));

    let history = cluster.bench_history.clone().expect("recording on");
    let h = history.borrow();
    assert!(h.ops.len() > 100, "{mode}: only {} ops recorded", h.ops.len());
    let violations = check_linearizable(&h);
    if !violations.is_empty() {
        // Persist the counterexample for CI before failing.
        if let Ok(mut f) = std::fs::File::create(ARTIFACT) {
            let _ = f.write_all(h.event_log_json().as_bytes());
        }
        panic!(
            "{mode}: bench history not linearizable ({} violations, \
             event log at {ARTIFACT}): {violations:?}",
            violations.len()
        );
    }
}

#[test]
fn histcheck_smoke_async() {
    smoke(ReplModeKind::Async, 51);
}

#[test]
fn histcheck_smoke_quorum() {
    smoke(ReplModeKind::Quorum, 52);
}

#[test]
fn histcheck_smoke_chain() {
    smoke(ReplModeKind::Chain, 53);
}
