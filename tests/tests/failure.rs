//! Failure detection, min-slaves gating, failover, and self-healing resync
//! — the §III-D machinery, exercised end to end.

use skv_core::cluster::{Cluster, RunSpec};
use skv_core::config::{ClusterConfig, Mode};
use skv_simcore::{SimDuration, SimTime};

fn spec(slaves: usize, clients: usize, measure_ms: u64) -> RunSpec {
    let mut cfg = ClusterConfig::for_mode(Mode::Skv);
    cfg.num_slaves = slaves;
    // Compressed time scales keep these scenarios fast while preserving
    // the probe/waiting-time relationships of the real configuration.
    cfg.probe_interval = SimDuration::from_millis(200);
    cfg.waiting_time = SimDuration::from_millis(400);
    RunSpec {
        cfg,
        num_clients: clients,
        pipeline: 1,
        set_ratio: 1.0,
        mset_keys: 0,
        value_size: 64,
        key_space: 2_000,
        warmup: SimDuration::from_millis(100),
        measure: SimDuration::from_millis(measure_ms),
        seed: 77,
        zipf_theta: 0.0,
        zipf_shift_every: 0,
    }
}

#[test]
fn nic_detects_slave_crash_within_waiting_time() {
    let mut cluster = Cluster::build(spec(3, 2, 2_000));
    let crash_at = SimTime::from_millis(800);
    cluster.schedule_slave_crash(1, crash_at);
    cluster.run();

    let nic = cluster.nic_kv().expect("SKV has a NIC");
    assert_eq!(nic.available_slaves(), 2);
    let (detected_at, _) = nic
        .detections
        .iter()
        .find(|(t, _)| *t >= crash_at)
        .copied()
        .expect("crash must be detected");
    let delay = detected_at.saturating_since(crash_at);
    // Bound: waiting-time plus up to two probe intervals of slack.
    let bound = cluster.spec.cfg.waiting_time
        + cluster.spec.cfg.probe_interval
        + cluster.spec.cfg.probe_interval;
    assert!(delay <= bound, "detection took {delay}, bound {bound}");
}

#[test]
fn crashed_slave_recovery_is_detected_and_resynced() {
    let mut cluster = Cluster::build(spec(3, 4, 3_000));
    cluster.schedule_slave_crash(0, SimTime::from_millis(800));
    cluster.schedule_slave_recover(0, SimTime::from_millis(1_800));
    let report = cluster.run();
    assert_eq!(report.errors, 0, "clients must not see the failure");

    let nic = cluster.nic_kv().expect("nic");
    assert!(nic
        .recoveries
        .iter()
        .any(|(t, _)| *t >= SimTime::from_millis(1_800)));
    assert_eq!(nic.available_slaves(), 3);

    // After a drain, every replica matches again (the recovered slave
    // resynchronized from its stale offset).
    cluster
        .sim
        .run_until(cluster.measure_until + SimDuration::from_secs(1));
    let digests = cluster.keyspace_digests();
    assert!(
        digests.iter().all(|&d| d == digests[0]),
        "diverged: {digests:x?}"
    );
    // The recovered slave needed a (full or partial) resync.
    let s0 = cluster.slave_server(0);
    assert!(s0.stat_full_syncs + s0.stat_partial_syncs >= 2);
}

#[test]
fn partial_resync_used_when_backlog_covers_gap() {
    // A big backlog and a short outage: the gap stays inside the backlog,
    // so the master must serve a partial resync, not a second RDB.
    let mut s = spec(2, 1, 2_000);
    s.cfg.backlog_size = 256 << 20;
    let mut cluster = Cluster::build(s);
    cluster.schedule_slave_crash(0, SimTime::from_millis(600));
    cluster.schedule_slave_recover(0, SimTime::from_millis(1_200));
    cluster.run();
    cluster
        .sim
        .run_until(cluster.measure_until + SimDuration::from_secs(1));

    let s0 = cluster.slave_server(0);
    assert!(s0.is_synced_slave());
    assert_eq!(s0.stat_full_syncs, 1, "only the initial sync is full");
    assert!(s0.stat_partial_syncs >= 1, "recovery must resync partially");
    let digests = cluster.keyspace_digests();
    assert!(digests.iter().all(|&d| d == digests[0]));
}

#[test]
fn min_slaves_rejects_writes_after_detection() {
    let mut s = spec(2, 2, 2_500);
    s.cfg.min_slaves = 2;
    let mut cluster = Cluster::build(s);
    cluster.schedule_slave_crash(0, SimTime::from_millis(800));
    let report = cluster.run();
    // Before detection writes flow; afterwards NOREPLICAS errors appear.
    assert!(report.errors > 0, "min-slaves must reject writes");
    assert!(
        cluster.master_server().stat_rejected > 0,
        "rejections must come from the master's write gate"
    );
    // And plenty of writes succeeded before the crash was detected.
    assert!(report.ops > report.errors);
}

#[test]
fn min_slaves_recovers_after_slave_returns() {
    let mut s = spec(2, 2, 3_000);
    s.cfg.min_slaves = 2;
    let mut cluster = Cluster::build(s);
    cluster.schedule_slave_crash(0, SimTime::from_millis(800));
    cluster.schedule_slave_recover(0, SimTime::from_millis(1_800));
    cluster.run();
    // After recovery the gate must reopen: count successes near the end.
    let hub = cluster.metrics.borrow();
    let late_ops = hub
        .completions
        .count_between(SimTime::from_millis(2_800), SimTime::from_millis(3_300));
    drop(hub);
    assert!(late_ops > 1_000, "writes must flow again, got {late_ops}");
}

#[test]
fn master_failover_promotes_best_slave_and_demotes_on_return() {
    let mut cluster = Cluster::build(spec(2, 1, 3_500));
    cluster.schedule_master_crash(SimTime::from_millis(800));
    cluster.schedule_master_recover(SimTime::from_millis(2_200));
    cluster.sim.run_until(SimTime::from_millis(3_500));

    let nic = cluster.nic_kv().expect("nic");
    assert_eq!(nic.stat_failovers, 1, "exactly one failover");
    // While the master was away, some slave was master; after its return
    // and demote, nobody but the original is.
    assert!(cluster.master_server().is_master());
    for i in 0..cluster.slaves.len() {
        assert!(
            !cluster.slave_server(i).is_master(),
            "slave {i} must have been demoted"
        );
    }
    // The master is valid again in the node list.
    let master_entry = nic
        .node_list()
        .iter()
        .find(|e| e.is_master)
        .expect("master entry");
    assert!(master_entry.valid);
}

#[test]
fn failure_detection_has_no_false_positives() {
    // A healthy long run: nothing must ever be marked invalid.
    let mut cluster = Cluster::build(spec(3, 4, 2_500));
    cluster.run();
    let nic = cluster.nic_kv().expect("nic");
    assert!(
        nic.detections.is_empty(),
        "false positives: {:?}",
        nic.detections
    );
    assert_eq!(nic.available_slaves(), 3);
    assert_eq!(nic.stat_failovers, 0);
}

#[test]
fn waiting_time_scales_detection_delay() {
    let mut delays = Vec::new();
    for wt_ms in [300u64, 1_200] {
        let mut s = spec(2, 1, 3_000);
        s.cfg.waiting_time = SimDuration::from_millis(wt_ms);
        let crash_at = SimTime::from_millis(800);
        let mut cluster = Cluster::build(s);
        cluster.schedule_slave_crash(0, crash_at);
        cluster.run();
        let nic = cluster.nic_kv().expect("nic");
        let (t, _) = nic
            .detections
            .iter()
            .find(|(t, _)| *t >= crash_at)
            .copied()
            .expect("detected");
        delays.push(t.saturating_since(crash_at));
    }
    assert!(
        delays[0] < delays[1],
        "longer waiting-time must delay detection: {delays:?}"
    );
}
