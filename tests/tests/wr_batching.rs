//! Doorbell-batched WR post lists: integration behaviour of the
//! `batch_wr_posts` knob across the replication fan-out.
//!
//! Covers the three acceptance properties of the batching PR:
//! * doorbells per replicated write collapse from N to 1 while the WR
//!   count per command is unchanged (the work still happens — it just
//!   shares a doorbell),
//! * the post-stall probability is drawn once per *doorbell*, so forcing
//!   a stall on every doorbell punishes serial posting N times harder
//!   than a linked list (the satellite fix this PR carries),
//! * the steady-state send path is allocation-free: the master's send
//!   rings come from the frame pool, and after warm-up every borrow is a
//!   recycled buffer.

use skv_core::cluster::{Cluster, RunSpec};
use skv_core::config::{ClusterConfig, Mode};
use skv_core::metrics::RunReport;
use skv_simcore::SimDuration;

fn spec(mode: Mode, slaves: usize, batched: bool, seed: u64) -> RunSpec {
    let mut cfg = ClusterConfig::for_mode(mode);
    cfg.num_slaves = slaves;
    cfg.batch_wr_posts = batched;
    RunSpec {
        cfg,
        num_clients: 4,
        pipeline: 1,
        set_ratio: 1.0, // pure SET: every command replicates
        mset_keys: 0,
        value_size: 128,
        key_space: 500,
        warmup: SimDuration::from_millis(100),
        measure: SimDuration::from_millis(300),
        seed,
        zipf_theta: 0.0,
        zipf_shift_every: 0,
    }
}

fn run(spec: RunSpec) -> (Cluster, RunReport) {
    let mut cluster = Cluster::build(spec);
    let report = cluster.run();
    (cluster, report)
}

#[test]
fn host_fanout_doorbells_collapse_to_one_per_write() {
    // RDMA-Redis, 5 slaves: the master posts 1 reply WR + 5 fan-out WRs
    // per SET. Serially that is 6 doorbells; batched it is 2 (the reply
    // plus one linked list).
    let (serial, _) = run(spec(Mode::RdmaRedis, 5, false, 0xB0B));
    let (batched, _) = run(spec(Mode::RdmaRedis, 5, true, 0xB0B));

    let s = serial.master_server();
    let b = batched.master_server();
    assert_eq!(
        s.stat_doorbells, s.stat_wrs_posted,
        "serial posting rings one doorbell per WR"
    );
    assert!(
        b.stat_wrs_posted > b.stat_doorbells,
        "batched posting shares doorbells across WRs"
    );
    // Per replicated write: serial 6 doorbells, batched 2 — a 3× drop.
    // Op mixes differ slightly between the two runs (different schedules)
    // so compare the per-WR ratio, with slack for non-replicated traffic.
    let serial_ratio = s.stat_doorbells as f64 / s.stat_wrs_posted as f64;
    let batched_ratio = b.stat_doorbells as f64 / b.stat_wrs_posted as f64;
    assert!(
        (serial_ratio - 1.0).abs() < 1e-9,
        "serial: doorbells == WRs, got ratio {serial_ratio}"
    );
    assert!(
        batched_ratio < 0.5,
        "batched: expected ≪1 doorbell per WR, got ratio {batched_ratio}"
    );
}

#[test]
fn nic_fanout_is_one_doorbell_per_replicated_write() {
    let slaves = 3;
    let (cluster, report) = run(spec(Mode::Skv, slaves, true, 0xA11));
    assert!(report.ops > 0);
    let nic = cluster.nic_kv().expect("SKV mode has a Nic-KV");
    assert!(nic.stat_doorbells > 0, "fan-out actually ran batched");
    // Every batched fan-out posts one WR per synced slave under a single
    // doorbell; with a healthy cluster that is exactly `slaves` WRs.
    assert_eq!(
        nic.stat_wrs_posted,
        nic.stat_doorbells * slaves as u64,
        "one doorbell must carry one WR per slave"
    );

    // Unbatched, the same fan-out rings one doorbell per WR.
    let (serial, _) = run(spec(Mode::Skv, slaves, false, 0xA11));
    let nic = serial.nic_kv().expect("SKV mode has a Nic-KV");
    assert_eq!(nic.stat_doorbells, nic.stat_wrs_posted);
}

#[test]
fn nic_wr_stats_agree_with_fabric_accounting() {
    // In SKV mode the NIC's batched fan-out is the only place that links
    // multiple WRs under one doorbell: the master posts a single WR to the
    // NIC per write, and replies, syncs, probes and client commands are
    // all single posts. The fabric-wide WR/doorbell gap is therefore
    // exactly the NIC's — if the fan-out stats counted a queued frame at
    // enqueue time instead of post time (the bug this PR fixes), or missed
    // a deferred frame flushed by the MR handshake, this equality breaks.
    let slaves = 3;
    for batched in [false, true] {
        let (cluster, report) = run(spec(Mode::Skv, slaves, batched, 0xFAB));
        assert!(report.ops > 0);
        let nic = cluster.nic_kv().expect("SKV mode has a Nic-KV");
        let c = cluster.net.counters();
        let (wrs, dbs) = (c.get("rdma.wrs_posted"), c.get("rdma.doorbells"));
        assert!(nic.stat_wrs_posted > 0, "fan-out ran (batched={batched})");
        assert_eq!(
            wrs - dbs,
            nic.stat_wrs_posted - nic.stat_doorbells,
            "fabric WR/doorbell gap must equal the NIC's (batched={batched})"
        );
        if !batched {
            // Serially everything in the system is one doorbell per WR.
            assert_eq!(nic.stat_doorbells, nic.stat_wrs_posted);
            assert_eq!(wrs, dbs);
        }
    }
}

#[test]
fn post_stall_is_charged_per_doorbell_not_per_linked_wr() {
    // Force a stall on *every* doorbell and make it enormous relative to
    // everything else. Serial posting pays N+1 stalls per replicated
    // write, the linked list pays 2 (reply + one list) — so batched
    // latency must come out far ahead. This is the regression test for
    // the per-doorbell spike fix: if the stall were drawn per WR again,
    // both arms would pay identically and the gap would vanish.
    fn stalled(batched: bool) -> RunSpec {
        let mut s = spec(Mode::RdmaRedis, 5, batched, 0x57A11);
        s.cfg.costs.post_spike_prob = 1.0;
        s.cfg.costs.post_spike_cost = SimDuration::from_micros(50);
        s
    }
    let (_, serial) = run(stalled(false));
    let (_, batched) = run(stalled(true));
    assert!(serial.ops > 0 && batched.ops > 0);
    assert!(
        batched.p50_latency_us < serial.p50_latency_us * 0.75,
        "batched p50 {}µs should be well under serial p50 {}µs when every \
         doorbell stalls",
        batched.p50_latency_us,
        serial.p50_latency_us
    );
}

#[test]
fn steady_state_send_path_does_not_allocate() {
    let (cluster, report) = run(spec(Mode::RdmaRedis, 3, true, 0xF00D));
    assert!(report.ops > 100, "need a real steady state");
    let pool = cluster.master_server().send_pool();
    assert!(
        pool.hits() + pool.misses() > 0,
        "the send path must route through the pool"
    );
    assert!(
        pool.hit_rate() > 0.95,
        "steady-state sends must reuse pooled rings, hit rate was {:.3} \
         ({} hits / {} misses)",
        pool.hit_rate(),
        pool.hits(),
        pool.misses()
    );
}

#[test]
fn batched_replication_still_converges() {
    for mode in [Mode::RdmaRedis, Mode::Skv] {
        let (mut cluster, report) = run(spec(mode, 3, true, 0xC0C0A));
        assert!(report.ops > 0, "{mode:?}: no ops measured");
        // Give in-flight replication a moment to drain, then all replicas
        // must agree byte-for-byte.
        cluster.run_until(skv_simcore::SimTime::from_secs(30));
        let digests = cluster.keyspace_digests();
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "{mode:?}: batched replicas diverged: {digests:x?}"
        );
    }
}
