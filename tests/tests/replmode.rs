//! Replication-mode coverage: quorum and chain protocols behind the
//! `ReplicationMode` trait, their client-visible guarantees (checked via
//! `skv_core::histcheck` operation histories), the quorum-intersection
//! invariant under randomized fault plans, and the capped reconnect
//! backoff regression.

use proptest::prelude::*;
use skv_core::client::BenchClient;
use skv_core::cluster::{ChaosSpec, Cluster, RunSpec};
use skv_core::config::{ClusterConfig, Mode};
use skv_core::histcheck::{
    check_linearizable, check_linearizable_upto, check_single_writer, HistSpec, OpKind, ReadAnchor,
};
use skv_core::replmode::{quorum_slave_acks, ReplModeKind};
use skv_netsim::SocketAddr;
use skv_simcore::{SimDuration, SimTime};

/// Compressed-time SKV spec with the given replication mode.
fn spec(mode: ReplModeKind, slaves: usize, measure_ms: u64, seed: u64) -> RunSpec {
    let mut cfg = ClusterConfig::for_mode(Mode::Skv);
    cfg.num_slaves = slaves;
    cfg.repl_mode = mode;
    cfg.probe_interval = SimDuration::from_millis(200);
    cfg.waiting_time = SimDuration::from_millis(300);
    cfg.upstream_silence = SimDuration::from_millis(600);
    cfg.reconnect_base = SimDuration::from_millis(5);
    cfg.client_retry_timeout = SimDuration::from_millis(100);
    RunSpec {
        cfg,
        num_clients: 2,
        pipeline: 1,
        set_ratio: 1.0,
        mset_keys: 0,
        value_size: 64,
        key_space: 1_000,
        warmup: SimDuration::from_millis(100),
        measure: SimDuration::from_millis(measure_ms),
        seed,
        zipf_theta: 0.0,
        zipf_shift_every: 0,
    }
}

fn run_and_quiesce(cluster: &mut Cluster, drain: SimDuration) {
    cluster.run();
    cluster.sim.run_until(cluster.measure_until + drain);
}

fn assert_converged(cluster: &Cluster) {
    let digests = cluster.keyspace_digests();
    assert!(
        digests.iter().all(|&d| d == digests[0]),
        "replicas diverged: {digests:x?}"
    );
}

/// Healthy-run smoke per tracked mode: clients are served, writes commit
/// through the NIC, the master defers and releases every reply, replicas
/// converge.
fn tracked_mode_serves(mode: ReplModeKind) {
    let mut cluster = Cluster::build(spec(mode, 2, 800, 31));
    run_and_quiesce(&mut cluster, SimDuration::from_secs(1));
    let report = cluster.report();
    assert!(report.ops > 500, "{mode}: only {} ops", report.ops);
    assert_eq!(report.errors, 0, "{mode}: {} errors", report.errors);

    let nic = cluster.nic_kv().expect("SKV has a NIC");
    assert!(nic.stat_commits > 0, "{mode}: no tracked commits");
    assert!(nic.committed_upto() > 0, "{mode}: commit frontier at 0");
    assert_eq!(nic.pending_writes(), 0, "{mode}: writes stuck in flight");

    let master = cluster.master_server();
    assert!(
        master.stat_deferred_replies > 0,
        "{mode}: master never deferred a reply"
    );
    assert_eq!(
        master.stat_deferred_replies, master.stat_released_replies,
        "{mode}: deferred replies were not all released"
    );
    for i in 0..cluster.slaves.len() {
        assert!(cluster.slave_server(i).is_synced_slave(), "slave {i}");
    }
    assert_converged(&cluster);
}

#[test]
fn quorum_mode_serves_and_commits() {
    tracked_mode_serves(ReplModeKind::Quorum);
}

#[test]
fn chain_mode_serves_and_commits() {
    tracked_mode_serves(ReplModeKind::Chain);
}

#[test]
fn quorum_history_linearizable_on_quorum_reads() {
    // Majority-quorum writes + master-anchored quorum reads: the probe
    // history must carry zero violations.
    let mut cluster = Cluster::build(spec(ReplModeKind::Quorum, 2, 600, 33));
    let history = cluster.add_history(&HistSpec {
        anchor: ReadAnchor::MasterQuorum,
        ..HistSpec::default()
    });
    run_and_quiesce(&mut cluster, SimDuration::from_secs(1));

    let h = history.borrow();
    let reads = h
        .ops
        .iter()
        .filter(|o| o.completed.is_some() && o.read_set.len() >= 2)
        .count();
    assert!(reads > 50, "not enough quorum reads completed: {reads}");
    let violations = check_single_writer(&h);
    assert!(violations.is_empty(), "quorum violations: {violations:?}");
}

#[test]
fn chain_history_linearizable_at_tail() {
    // Chain commit = tail applied, so tail-anchored reads must be
    // linearizable.
    let mut cluster = Cluster::build(spec(ReplModeKind::Chain, 3, 600, 34));
    let history = cluster.add_history(&HistSpec {
        anchor: ReadAnchor::Slave(2),
        ..HistSpec::default()
    });
    run_and_quiesce(&mut cluster, SimDuration::from_secs(1));

    let h = history.borrow();
    let reads = h.ops.iter().filter(|o| o.completed.is_some()).count();
    assert!(reads > 50, "not enough probe ops completed: {reads}");
    let violations = check_single_writer(&h);
    assert!(violations.is_empty(), "chain violations: {violations:?}");
}

#[test]
fn backoff_stays_capped_under_long_partition() {
    // Satellite regression: the redial backoff doubles toward its cap
    // instead of hammering at a fixed short interval. Cut the clients
    // off from the master (and its SoC) for 1.5 s: every dial fails
    // with CmConnectFailed, so with capped-exponential delays each
    // client fits only a handful of attempts into the window — the old
    // fixed 5 ms retry would have made ~300.
    let mut cluster = Cluster::build(spec(ReplModeKind::Async, 2, 2_500, 35));
    let mut plan = skv_netsim::FaultPlan::new(1);
    let mut servers = vec![cluster.master_node];
    servers.extend(cluster.nic_node);
    plan.partitions.push(skv_netsim::Partition {
        a: vec![cluster.client_node],
        b: servers,
        window: skv_netsim::TimeWindow::new(SimTime::from_millis(500), SimTime::from_millis(2_000)),
    });
    cluster.net.set_fault_plan(plan);
    run_and_quiesce(&mut cluster, SimDuration::from_secs(1));

    let mut total_failures = 0;
    for &id in &cluster.clients {
        let c = cluster
            .sim
            .actor_ref::<BenchClient>(id)
            .expect("bench client");
        total_failures += c.stat_dial_failures;
        assert!(
            c.stat_dial_failures <= 40,
            "backoff not capped: {} dial failures in a 1.5s partition",
            c.stat_dial_failures
        );
    }
    assert!(
        total_failures > 0,
        "partition never forced a failed dial — test is vacuous"
    );
    // After the heal the clients must reconnect and finish the run.
    let report = cluster.report();
    assert!(
        report.ops > 500,
        "clients never recovered: {} ops",
        report.ops
    );
}

// -- multi-writer linearizability on live bench traffic -----------------------

/// Distinct writers (bench clients) that stamped at least one write into
/// the recorded history. Stamps embed `client_id + 1` in the top bits.
fn distinct_writers(h: &skv_core::histcheck::History) -> usize {
    let mut writers: Vec<u64> = h
        .ops
        .iter()
        .filter(|o| o.kind == OpKind::Write)
        .map(|o| o.seq >> 40)
        .collect();
    writers.sort_unstable();
    writers.dedup();
    writers.len()
}

/// Tentpole acceptance arm: ≥2 writers, 2 shards, hot cache on, history
/// recorded straight off the bench clients (cache-served GETs and
/// FWD_CMD replies included) — the multi-writer checker must find the
/// whole history linearizable.
fn bench_history_linearizable(mode: ReplModeKind, seed: u64) {
    let mut s = spec(mode, 2, 1_000, seed);
    s.cfg.record_history = true;
    s.cfg.num_shards = 2;
    s.cfg.hot_cache_bytes = 64 * 1024;
    s.set_ratio = 0.5; // the checker needs reads, not a pure SET stream
    let mut cluster = Cluster::build(s);
    run_and_quiesce(&mut cluster, SimDuration::from_secs(1));

    let report = cluster.report();
    assert!(report.ops > 500, "{mode}: only {} ops", report.ops);
    assert!(
        report.chaos.get("cache.hits") > 0,
        "{mode}: no cache-served GETs in the recorded traffic"
    );
    let history = cluster.bench_history.clone().expect("recording on");
    let h = history.borrow();
    assert!(
        distinct_writers(&h) >= 2,
        "{mode}: need a multi-writer history"
    );
    let reads = h.ops.iter().filter(|o| o.kind == OpKind::Read).count();
    assert!(reads > 100, "{mode}: only {reads} reads recorded");
    let violations = check_linearizable(&h);
    assert!(
        violations.is_empty(),
        "{mode}: bench history not linearizable: {violations:?}"
    );
}

#[test]
fn quorum_bench_history_multi_writer_linearizable() {
    bench_history_linearizable(ReplModeKind::Quorum, 36);
}

#[test]
fn chain_bench_history_multi_writer_linearizable() {
    bench_history_linearizable(ReplModeKind::Chain, 37);
}

#[test]
fn cross_mode_failover_degrades_and_promotes() {
    // Start quorum, cut off both slaves mid-run: the NIC must degrade to
    // async (writes keep flowing), then re-promote once the partition
    // heals — and the recorded history must be provably linearizable up
    // to the declared degradation point.
    let mut s = spec(ReplModeKind::Quorum, 2, 2_500, 38);
    s.cfg.mode_failover = true;
    s.cfg.record_history = true;
    s.set_ratio = 0.5;
    let mut cluster = Cluster::build(s);
    let cut = SimTime::from_millis(800);
    let heal = SimTime::from_millis(1_600);
    cluster.apply_chaos(&ChaosSpec {
        partition: Some((vec![0, 1], cut, heal)),
        ..ChaosSpec::default()
    });
    run_and_quiesce(&mut cluster, SimDuration::from_secs(2));

    let nic = cluster.nic_kv().expect("nic");
    assert_eq!(
        nic.stat_mode_changes, 2,
        "expected degrade + promote, got {:?}",
        nic.mode_changes
    );
    let (degraded_at, degraded_to) = nic.mode_changes[0];
    let (promoted_at, promoted_to) = nic.mode_changes[1];
    assert_eq!(degraded_to, ReplModeKind::Async);
    assert_eq!(promoted_to, ReplModeKind::Quorum);
    assert!(degraded_at >= cut && promoted_at >= heal && degraded_at < promoted_at);
    assert_eq!(nic.active_mode(), ReplModeKind::Quorum, "must end promoted");
    assert_eq!(nic.pending_writes(), 0, "stuck in-flight writes");
    // The master tracked both transitions (it releases deferred replies
    // on degrade and resumes deferring on promote).
    assert_eq!(cluster.master_server().stat_mode_changes, 2);

    // Writes kept completing while the quorum was unreachable.
    let hub = cluster.metrics.borrow();
    let degraded_ops = hub
        .completions
        .count_between(degraded_at + SimDuration::from_millis(100), heal);
    drop(hub);
    assert!(
        degraded_ops > 200,
        "async degradation must keep serving, got {degraded_ops} ops"
    );

    // The pre-degradation prefix carries the full quorum guarantee.
    let history = cluster.bench_history.clone().expect("recording on");
    let h = history.borrow();
    let before = h.ops.iter().filter(|o| o.invoked < degraded_at).count();
    assert!(before > 100, "only {before} ops before the degradation point");
    let violations = check_linearizable_upto(&h, degraded_at);
    assert!(
        violations.is_empty(),
        "pre-degradation prefix not linearizable: {violations:?}"
    );
    drop(h);
    assert_converged(&cluster);
}

/// Distinctness helper: no slave counted twice in an ack set.
fn all_distinct(addrs: &[SocketAddr]) -> bool {
    let mut seen: Vec<SocketAddr> = Vec::with_capacity(addrs.len());
    for a in addrs {
        if seen.contains(a) {
            return false;
        }
        seen.push(*a);
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Quorum-intersection invariant under arbitrary fault plans and
    /// slave counts: every committed write's ack set is a distinct-slave
    /// set of at least ⌈(N+1)/2⌉ members (so master + acks is a majority
    /// of the replica set), which makes any two write/read majorities
    /// intersect — checked directly pairwise below.
    #[test]
    fn quorum_commit_sets_always_majorities(
        slaves in 1usize..5,
        loss in 0.0f64..0.03,
        flap_start in 400u64..800,
        chaos_seed in 0u64..1_000,
    ) {
        let mut s = spec(ReplModeKind::Quorum, slaves, 1_200, 2_000 + chaos_seed);
        s.cfg.record_commits = true;
        let mut cluster = Cluster::build(s);
        cluster.apply_chaos(&ChaosSpec {
            loss_prob: loss,
            flaps: vec![(
                0,
                SimTime::from_millis(flap_start),
                SimTime::from_millis(flap_start + 300),
            )],
            seed: chaos_seed,
            ..ChaosSpec::default()
        });
        run_and_quiesce(&mut cluster, SimDuration::from_secs(2));

        let needed = quorum_slave_acks(slaves);
        let nic = cluster.nic_kv().expect("nic");
        prop_assert!(
            !nic.committed_acks.is_empty(),
            "no commits recorded — invariant untested"
        );
        for (off, acks) in &nic.committed_acks {
            prop_assert!(all_distinct(acks), "duplicate ack at offset {off}: {acks:?}");
            prop_assert!(
                acks.len() >= needed,
                "offset {off} committed with {} acks, quorum needs {needed}",
                acks.len()
            );
        }
        // Pairwise: any two commit quorums (master ∪ acks) intersect —
        // trivially via the master, and on slave sets whenever both
        // majorities exceed half the slaves.
        for (i, (_, a)) in nic.committed_acks.iter().enumerate() {
            for (_, b) in &nic.committed_acks[i + 1..] {
                let joint = 2 * (1 + needed);
                prop_assert!(joint > slaves + 1, "quorums of {a:?}/{b:?} may miss");
            }
        }
    }

    /// seed × mode × shards × cache: every healthy run's recorded bench
    /// history — all writers, all shards, cache hits included — must
    /// pass the multi-writer checker under all three replication modes.
    #[test]
    fn recorded_bench_histories_linearizable(
        seed in 0u64..1_000,
        mode_ix in 0usize..3,
        shards in 1usize..3,
        cache_on in any::<bool>(),
    ) {
        let mode = [ReplModeKind::Async, ReplModeKind::Quorum, ReplModeKind::Chain][mode_ix];
        let mut s = spec(mode, 2, 600, 4_000 + seed);
        s.cfg.record_history = true;
        s.cfg.num_shards = shards;
        s.cfg.hot_cache_bytes = if cache_on { 64 * 1024 } else { 0 };
        s.set_ratio = 0.5;
        let mut cluster = Cluster::build(s);
        run_and_quiesce(&mut cluster, SimDuration::from_secs(1));

        let history = cluster.bench_history.clone().expect("recording on");
        let h = history.borrow();
        prop_assert!(h.ops.len() > 200, "{mode}: only {} ops recorded", h.ops.len());
        prop_assert!(distinct_writers(&h) >= 2, "{mode}: single-writer history");
        let violations = check_linearizable(&h);
        prop_assert!(
            violations.is_empty(),
            "{mode} shards={shards} cache={cache_on}: {violations:?}"
        );
    }
}
