//! Cross-crate replication correctness: real commands flow through the
//! simulated RDMA fabric, through Nic-KV, into slave engines — and every
//! replica must end up byte-identical to the master.

use proptest::prelude::*;
use skv_core::cluster::{Cluster, RunSpec};
use skv_core::config::{ClusterConfig, Mode};
use skv_simcore::SimDuration;
use skv_store::resp::Resp;

fn spec(mode: Mode, slaves: usize, clients: usize) -> RunSpec {
    let mut cfg = ClusterConfig::for_mode(mode);
    cfg.num_slaves = slaves;
    RunSpec {
        cfg,
        num_clients: clients,
        pipeline: 1,
        set_ratio: 0.8,
        mset_keys: 0,
        value_size: 64,
        key_space: 2_000,
        warmup: SimDuration::from_millis(100),
        measure: SimDuration::from_millis(400),
        seed: 7,
        zipf_theta: 0.0,
        zipf_shift_every: 0,
    }
}

fn assert_converged(cluster: &mut Cluster) {
    // Replication is asynchronous — drain it, then compare content digests.
    let deadline = cluster.measure_until + SimDuration::from_secs(1);
    cluster.sim.run_until(deadline);
    let digests = cluster.keyspace_digests();
    assert!(
        digests.iter().all(|&d| d == digests[0]),
        "replicas diverged: {digests:x?}"
    );
    assert!(
        !cluster.master_server().engine().db().is_empty(),
        "workload must have written data"
    );
}

#[test]
fn skv_replicas_converge() {
    let mut cluster = Cluster::build(spec(Mode::Skv, 3, 4));
    let report = cluster.run();
    assert!(report.ops > 1_000);
    assert_eq!(report.errors, 0);
    assert_converged(&mut cluster);
}

#[test]
fn rdma_redis_replicas_converge() {
    let mut cluster = Cluster::build(spec(Mode::RdmaRedis, 3, 4));
    cluster.run();
    assert_converged(&mut cluster);
}

#[test]
fn tcp_redis_replicas_converge() {
    let mut cluster = Cluster::build(spec(Mode::TcpRedis, 2, 4));
    cluster.run();
    assert_converged(&mut cluster);
}

#[test]
fn single_slave_and_many_slaves_converge() {
    for slaves in [1usize, 5] {
        let mut cluster = Cluster::build(spec(Mode::Skv, slaves, 2));
        cluster.run();
        assert_converged(&mut cluster);
    }
}

#[test]
fn preloaded_data_reaches_slaves_via_full_sync() {
    // Populate the master before slaves attach: the only way this data can
    // reach them is the Figure-8 RDB transfer.
    let mut s = spec(Mode::Skv, 2, 0);
    s.measure = SimDuration::from_millis(300);
    let mut cluster = Cluster::build(s);
    cluster.preload_master(&[
        &["SET", "plain", "value"],
        &["SET", "ttl-key", "v"],
        &["PEXPIREAT", "ttl-key", "99999999"],
        &["RPUSH", "list", "a", "b", "c"],
        &["SADD", "intset", "1", "2", "3"],
        &["HSET", "hash", "f", "v"],
        &["ZADD", "zset", "1.5", "member"],
    ]);
    cluster.run();
    assert_converged(&mut cluster);

    // Full syncs happened (one per slave), no partial syncs.
    let master = cluster.master_server();
    assert_eq!(master.stat_full_syncs, 2);
    assert_eq!(master.stat_partial_syncs, 0);

    // Spot-check the slave actually holds the data (with its TTL).
    let slave = cluster.slave_server(0);
    let digest = slave.engine().keyspace_digest();
    assert_eq!(digest, master.engine().keyspace_digest());
    assert_eq!(slave.engine().db().len(), 6);
    assert_eq!(slave.engine().db().expiry_of(b"ttl-key"), Some(99_999_999));
}

#[test]
fn steady_state_stream_applies_every_write_kind() {
    // Drive a hand-built workload of all data types through a real client,
    // then verify slave contents field by field.
    let mut s = spec(Mode::Skv, 1, 1);
    s.set_ratio = 1.0; // client traffic is just filler; we check preloads
    s.measure = SimDuration::from_millis(400);
    let mut cluster = Cluster::build(s);
    cluster.run();
    cluster
        .sim
        .run_until(cluster.measure_until + SimDuration::from_secs(1));

    let master = cluster.master_server();
    let slave = cluster.slave_server(0);
    assert!(slave.is_synced_slave());
    assert_eq!(
        master.engine().keyspace_digest(),
        slave.engine().keyspace_digest()
    );
    // The replication stream really carried bytes.
    assert!(slave.stat_applied_bytes > 10_000);
    // And the master's offset equals what the slave applied (plus any
    // bytes still in flight — after the drain there are none).
    assert_eq!(master.repl_offset(), slave.repl_offset());
}

#[test]
fn slaves_do_not_re_execute_duplicates() {
    // INCR is not idempotent: if the overlap-dedup logic of the stream
    // frames were wrong, counters on slaves would drift from the master.
    let mut s = spec(Mode::Skv, 2, 2);
    s.set_ratio = 1.0;
    s.measure = SimDuration::from_millis(500);
    let mut cluster = Cluster::build(s);
    cluster.run();
    cluster
        .sim
        .run_until(cluster.measure_until + SimDuration::from_secs(1));
    assert_converged(&mut cluster);
}

#[test]
fn get_replies_carry_real_values() {
    // End-to-end data integrity: what a client SETs is what a GET returns.
    let mut s = spec(Mode::Skv, 1, 1);
    s.set_ratio = 0.5;
    s.key_space = 10; // heavy overwrite traffic on few keys
    let mut cluster = Cluster::build(s);
    let report = cluster.run();
    assert_eq!(report.errors, 0, "no protocol or type errors");
    // The value written is always 64 x's; read one back from the engine.
    let master = cluster.master_server();
    let mut found = false;
    for (k, v) in master.engine().db().iter() {
        if k.starts_with(b"key:") {
            assert_eq!(v.as_string_bytes(), vec![b'x'; 64]);
            found = true;
        }
    }
    assert!(found, "workload should have left keys behind");
}

#[test]
fn resp_errors_do_not_poison_the_stream() {
    // A wrong-type command produces an error reply but the cluster keeps
    // running and replicating (failed writes are not propagated).
    let mut s = spec(Mode::Skv, 1, 1);
    s.measure = SimDuration::from_millis(300);
    let mut cluster = Cluster::build(s);
    cluster.preload_master(&[&["RPUSH", "key:000000000001", "elem"]]);
    // Clients will try SET/GET on key:000000000001 among others; GET on a
    // list key yields WRONGTYPE, which must surface as an error reply, not
    // a crash or divergence.
    let report = cluster.run();
    assert!(report.ops > 100);
    assert_converged(&mut cluster);
    let _ = Resp::wrongtype(); // (documented behaviour under test)
}

#[test]
fn sharded_replicas_converge_with_split_msets() {
    // Deterministic end-to-end pass over the sharded pipeline: 4 master
    // shards, batched MSET writes spanning shards, pipelined clients, two
    // sharded slaves applying through the parse→apply ring.
    let mut s = spec(Mode::Skv, 2, 4);
    s.cfg.num_shards = 4;
    s.mset_keys = 3;
    s.pipeline = 4;
    let mut cluster = Cluster::build(s);
    let report = cluster.run();
    assert!(report.ops > 500);
    assert_eq!(report.errors, 0);
    assert_converged(&mut cluster);
    let master = cluster.master_server();
    assert!(
        master.shard_cross_msgs() > 0,
        "MSET batch of 3 uniform keys should cross shards"
    );
    let ops = master.shard_ops();
    assert_eq!(ops.len(), 4);
    assert!(
        ops.iter().all(|&n| n > 0),
        "hash-slot routing should spread load over every shard: {ops:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Randomized shard counts, MSET batch widths and seeds: every write
    /// is an MSET whose keys land on arbitrary shards, split on the
    /// master, re-routed on each sharded slave — and all replicas must
    /// still converge to the master's keyspace, bit for bit.
    #[test]
    fn cross_shard_msets_converge_on_all_replicas(
        shards in 2u64..9,
        batch in 2u64..6,
        seed in 0u64..1_000,
    ) {
        let mut s = spec(Mode::Skv, 2, 2);
        s.cfg.num_shards = usize::try_from(shards).unwrap_or(1);
        s.mset_keys = usize::try_from(batch).unwrap_or(0);
        s.pipeline = 2;
        s.key_space = 300;
        s.measure = SimDuration::from_millis(300);
        s.seed = seed;
        let mut cluster = Cluster::build(s);
        let report = cluster.run();
        prop_assert!(report.ops > 0);
        prop_assert_eq!(report.errors, 0);
        cluster
            .sim
            .run_until(cluster.measure_until + SimDuration::from_secs(1));
        let digests = cluster.keyspace_digests();
        prop_assert!(
            digests.iter().all(|&d| d == digests[0]),
            "replicas diverged at {} shards (batch {}): {:x?}",
            shards,
            batch,
            digests
        );
    }
}
