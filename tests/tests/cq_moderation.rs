//! CQ interrupt moderation at cluster scale: with coalescing enabled the
//! fabric batches completion notifies, so the whole testbed observes far
//! fewer `CqNotify` events than work completions — without losing a
//! single message or breaking replication.
//!
//! The per-CQ mechanics (threshold fire, coalescing deadline, lone
//! completions never stranded) are covered by `crates/netsim`'s
//! `cq_moderation` suite; this is the end-to-end check on a full SKV
//! cluster under closed-loop fan-out load.

use skv_core::cluster::{Cluster, RunSpec};
use skv_core::config::{ClusterConfig, Mode};
use skv_simcore::{SimDuration, SimTime};

fn spec(threshold: usize, timer_us: u64, seed: u64) -> RunSpec {
    let mut cfg = ClusterConfig::for_mode(Mode::Skv);
    cfg.num_slaves = 3;
    cfg.net.cq_notify_threshold = threshold;
    cfg.net.cq_notify_timer = SimDuration::from_micros(timer_us);
    RunSpec {
        cfg,
        num_clients: 8,
        pipeline: 4,
        set_ratio: 1.0, // pure SET: every command fans out
        mset_keys: 0,
        value_size: 64,
        key_space: 500,
        warmup: SimDuration::from_millis(100),
        measure: SimDuration::from_millis(300),
        seed,
        zipf_theta: 0.0,
        zipf_shift_every: 0,
    }
}

#[test]
fn moderation_collapses_notifies_under_fanout() {
    let mut unmod = Cluster::build(spec(1, 0, 0xC0DE));
    let r0 = unmod.run();
    let c0 = unmod.net.counters();
    assert!(r0.ops > 0);
    // Unmoderated, every completion that finds an armed CQ notifies: the
    // historical one-interrupt-per-completion regime.
    let notifies0 = c0.get("rdma.cq_notifies");
    let polled0 = c0.get("rdma.wcs_polled");
    assert!(notifies0 > 0 && polled0 > 0);

    let mut moderated = Cluster::build(spec(8, 16, 0xC0DE));
    let r1 = moderated.run();
    let c1 = moderated.net.counters();
    assert!(r1.ops > 0, "moderated cluster still serves traffic");
    let notifies1 = c1.get("rdma.cq_notifies");
    let polled1 = c1.get("rdma.wcs_polled");
    assert!(
        notifies1 < polled1,
        "moderation must batch completions behind notifies: \
         {notifies1} notifies vs {polled1} WCs"
    );
    // And it must batch *better* than the unmoderated run, which only
    // amortizes notifies when a drain races new arrivals.
    let ratio0 = notifies0 as f64 / polled0 as f64;
    let ratio1 = notifies1 as f64 / polled1 as f64;
    assert!(
        ratio1 < ratio0 * 0.75,
        "moderated notify ratio {ratio1:.3} should be well under the \
         unmoderated {ratio0:.3}"
    );
}

#[test]
fn moderated_replication_still_converges() {
    let mut cluster = Cluster::build(spec(8, 16, 0xABBA));
    let report = cluster.run();
    assert!(report.ops > 0);
    assert_eq!(report.errors, 0);
    // Give in-flight replication (and any armed coalescing timers) time
    // to drain, then every replica must agree byte-for-byte.
    cluster.run_until(SimTime::from_secs(30));
    let digests = cluster.keyspace_digests();
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "moderated replicas diverged: {digests:x?}"
    );
}
