//! Cross-run determinism regression: the property every figure in the
//! paper reproduction rests on. One arm executed twice with the same seed
//! must produce *bit-for-bit* identical output — same op counts, same
//! latency percentiles, same per-bucket throughput series, same chaos
//! counters, same final keyspace digests. A single stray `HashMap`
//! iteration or wall-clock read anywhere in the stack breaks this test
//! (and `skv-lint` / `clippy.toml` exist to catch those statically; this
//! is the dynamic backstop).

use skv_core::cluster::{ChaosSpec, Cluster, RunSpec};
use skv_core::config::{ClusterConfig, Mode};
use skv_core::metrics::RunReport;
use skv_simcore::SimDuration;

/// FNV-1a over every observable byte of a run. Hand-rolled so the test
/// depends on nothing but the report itself.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        // Bit-exact: determinism means the same bits, not "close enough".
        self.u64(v.to_bits());
    }
}

/// Fold a full run (report + replica keyspaces) into one digest.
fn run_digest(report: &RunReport, keyspaces: &[u64]) -> u64 {
    let mut h = Fnv::new();
    h.u64(report.ops);
    h.u64(report.errors);
    h.f64(report.throughput_kops);
    h.f64(report.avg_latency_us);
    h.f64(report.p50_latency_us);
    h.f64(report.p95_latency_us);
    h.f64(report.p99_latency_us);
    for p in &report.series {
        h.u64(p.time.as_nanos());
        h.u64(p.count);
        h.f64(p.rate_per_sec);
    }
    for (name, value) in report.chaos.iter() {
        h.bytes(name.as_bytes());
        h.u64(value);
    }
    for &d in keyspaces {
        h.u64(d);
    }
    h.0
}

/// Compressed-time arm, sized to stay inside the tier-1 budget.
fn arm(mode: Mode, seed: u64) -> RunSpec {
    let mut cfg = ClusterConfig::for_mode(mode);
    cfg.num_slaves = 2;
    cfg.probe_interval = SimDuration::from_millis(200);
    cfg.reconnect_base = SimDuration::from_millis(5);
    cfg.client_retry_timeout = SimDuration::from_millis(100);
    RunSpec {
        cfg,
        num_clients: 2,
        pipeline: 1,
        set_ratio: 0.5,
        mset_keys: 0,
        value_size: 64,
        key_space: 500,
        warmup: SimDuration::from_millis(50),
        measure: SimDuration::from_millis(150),
        seed,
        zipf_theta: 0.0,
        zipf_shift_every: 0,
    }
}

fn execute(spec: RunSpec, chaos: Option<&ChaosSpec>) -> u64 {
    let mut cluster = Cluster::build(spec);
    if let Some(chaos) = chaos {
        cluster.apply_chaos(chaos);
    }
    let report = cluster.run();
    let digests = cluster.keyspace_digests();
    run_digest(&report, &digests)
}

#[test]
fn same_seed_same_bits_skv() {
    let a = execute(arm(Mode::Skv, 0xD00D), None);
    let b = execute(arm(Mode::Skv, 0xD00D), None);
    assert_eq!(a, b, "identical SKV runs diverged: {a:#018x} vs {b:#018x}");
}

#[test]
fn same_seed_same_bits_tcp_baseline() {
    let a = execute(arm(Mode::TcpRedis, 0xBEEF), None);
    let b = execute(arm(Mode::TcpRedis, 0xBEEF), None);
    assert_eq!(a, b, "identical TCP runs diverged: {a:#018x} vs {b:#018x}");
}

#[test]
fn same_seed_same_bits_under_chaos() {
    let chaos = ChaosSpec {
        loss_prob: 0.02,
        delay_prob: 0.05,
        delay: SimDuration::from_micros(300),
        seed: 7,
        ..Default::default()
    };
    let a = execute(arm(Mode::Skv, 0xFACE), Some(&chaos));
    let b = execute(arm(Mode::Skv, 0xFACE), Some(&chaos));
    assert_eq!(
        a, b,
        "identical chaos runs diverged: {a:#018x} vs {b:#018x}"
    );
}

#[test]
fn same_seed_same_bits_with_serial_posts() {
    // Batched posting is the default now; the historical serial-doorbell
    // arm must stay deterministic too (it is still an ablation arm and
    // the fallback for TCP-framed channels).
    let mut spec = arm(Mode::Skv, 0xD00D);
    spec.cfg.batch_wr_posts = false;
    let a = execute(spec.clone(), None);
    let b = execute(spec, None);
    assert_eq!(
        a, b,
        "identical serial-post runs diverged: {a:#018x} vs {b:#018x}"
    );
}

#[test]
fn same_seed_same_bits_with_cq_moderation() {
    // Interrupt moderation batches completion *notifies*: the event
    // schedule changes shape (fewer, deeper CqNotify drains plus
    // coalescing-timer events) but must remain a pure function of the
    // seed — timers, thresholds and budgets all run on simulated time.
    let mut spec = arm(Mode::Skv, 0xCAFE);
    spec.cfg.net.cq_notify_threshold = 4;
    spec.cfg.net.cq_notify_timer = SimDuration::from_micros(16);
    spec.cfg.cq_poll_budget = 8;
    let a = execute(spec.clone(), None);
    let b = execute(spec, None);
    assert_eq!(
        a, b,
        "identical moderated runs diverged: {a:#018x} vs {b:#018x}"
    );
}

#[test]
fn single_shard_digest_matches_pre_shard_baseline() {
    // The sharding refactor's contract: at `num_shards = 1` (the default)
    // every routed path degenerates to the historical single-engine code,
    // leaving the event schedule — and therefore these digests, captured
    // from the commit *before* the shard engine landed — bit-identical.
    let skv = execute(arm(Mode::Skv, 0xD00D), None);
    assert_eq!(
        skv, 0x5cbf_7139_6270_5489,
        "single-shard SKV schedule drifted from the pre-shard baseline: {skv:#018x}"
    );
    let tcp = execute(arm(Mode::TcpRedis, 0xBEEF), None);
    assert_eq!(
        tcp, 0xa23d_0199_5d6a_1cec,
        "single-shard TCP schedule drifted from the pre-shard baseline: {tcp:#018x}"
    );
}

#[test]
fn same_seed_same_bits_sharded() {
    // Four shard cores, per-shard CQs, split MSETs, the pipelined slave
    // apply ring and the serialized replication egress all engaged, plus
    // pipelined clients to keep every shard busy. Still bit-for-bit.
    let mut spec = arm(Mode::Skv, 0x5A4D);
    spec.cfg.num_shards = 4;
    spec.pipeline = 4;
    let a = execute(spec.clone(), None);
    let b = execute(spec, None);
    assert_eq!(
        a, b,
        "identical sharded runs diverged: {a:#018x} vs {b:#018x}"
    );
}

#[test]
fn different_seeds_actually_differ() {
    // Guards against the digest degenerating into a constant.
    let a = execute(arm(Mode::Skv, 1), None);
    let b = execute(arm(Mode::Skv, 2), None);
    assert_ne!(a, b, "digest ignores the seed (constant hash?)");
}

#[test]
fn same_seed_same_bits_quorum_mode() {
    // The tracked quorum path adds WR-ack maps, commit windows and
    // deferred-reply queues — all of which must stay pure functions of
    // the seed (their counters are folded into the report's chaos set).
    let mut spec = arm(Mode::Skv, 0xAB0D);
    spec.cfg.repl_mode = skv_core::replmode::ReplModeKind::Quorum;
    let a = execute(spec.clone(), None);
    let b = execute(spec, None);
    assert_eq!(
        a, b,
        "identical quorum runs diverged: {a:#018x} vs {b:#018x}"
    );
}

#[test]
fn same_seed_same_bits_chain_mode() {
    // Chain hops serialize per-write sends through timers and applied
    // acks; under a flap the repair path runs too. Still bit-for-bit.
    let mut spec = arm(Mode::Skv, 0xC4A1);
    spec.cfg.repl_mode = skv_core::replmode::ReplModeKind::Chain;
    let chaos = ChaosSpec {
        flaps: vec![(
            0,
            skv_simcore::SimTime::from_millis(80),
            skv_simcore::SimTime::from_millis(160),
        )],
        seed: 11,
        ..Default::default()
    };
    let a = execute(spec.clone(), Some(&chaos));
    let b = execute(spec, Some(&chaos));
    assert_eq!(
        a, b,
        "identical chain runs diverged: {a:#018x} vs {b:#018x}"
    );
}

#[test]
fn same_seed_same_bits_with_hot_cache() {
    // The SoC cache adds a whole front-end plane — forwarded commands,
    // cookie maps, admission sketches, stream-driven invalidation — all
    // of which must stay pure functions of the seed. Zipf draws engage
    // the split key stream; the cache counters fold into the report's
    // chaos set, so any nondeterminism in the cache itself also breaks
    // the digest.
    let mut spec = arm(Mode::Skv, 0xCACE);
    spec.cfg.hot_cache_bytes = 1 << 20;
    spec.cfg.hot_cache_policy = "tinylfu".into();
    spec.set_ratio = 0.1;
    spec.zipf_theta = 0.99;
    let a = execute(spec.clone(), None);
    let b = execute(spec, None);
    assert_eq!(
        a, b,
        "identical hot-cache runs diverged: {a:#018x} vs {b:#018x}"
    );
}
