//! Performance-shape invariants: the orderings the paper's evaluation
//! reports must hold in the reproduction for any reasonable seed. These are
//! the cheap, always-on versions of the figure benches.

use skv_core::cluster::{run_spec, RunSpec};
use skv_core::config::{ClusterConfig, Mode};
use skv_simcore::SimDuration;

fn spec(mode: Mode, slaves: usize, clients: usize, set_ratio: f64, seed: u64) -> RunSpec {
    let mut cfg = ClusterConfig::for_mode(mode);
    cfg.num_slaves = slaves;
    RunSpec {
        cfg,
        num_clients: clients,
        pipeline: 1,
        set_ratio,
        mset_keys: 0,
        value_size: 64,
        key_space: 50_000,
        warmup: SimDuration::from_millis(200),
        measure: SimDuration::from_millis(500),
        seed,
        zipf_theta: 0.0,
        zipf_shift_every: 0,
    }
}

#[test]
fn rdma_beats_tcp_by_a_wide_margin() {
    // Figure 10's premise.
    let tcp = run_spec(spec(Mode::TcpRedis, 0, 8, 1.0, 1));
    let rdma = run_spec(spec(Mode::RdmaRedis, 0, 8, 1.0, 2));
    assert!(
        rdma.throughput_kops > 2.0 * tcp.throughput_kops,
        "RDMA {:.0} kops vs TCP {:.0} kops",
        rdma.throughput_kops,
        tcp.throughput_kops
    );
    assert!(
        tcp.p99_latency_us > 1.5 * rdma.p99_latency_us,
        "TCP p99 {:.0}us vs RDMA p99 {:.0}us",
        tcp.p99_latency_us,
        rdma.p99_latency_us
    );
}

#[test]
fn slaves_degrade_rdma_redis() {
    // Figure 7: with three slaves the master loses throughput and tail.
    let without = run_spec(spec(Mode::RdmaRedis, 0, 8, 1.0, 3));
    let with = run_spec(spec(Mode::RdmaRedis, 3, 8, 1.0, 4));
    assert!(with.throughput_kops < 0.95 * without.throughput_kops);
    assert!(with.p99_latency_us > 1.10 * without.p99_latency_us);
    assert!(with.avg_latency_us > without.avg_latency_us);
}

#[test]
fn skv_beats_rdma_redis_on_set_with_slaves() {
    // Figure 11's headline: ~+14% throughput, lower latency at 8 clients.
    let baseline = run_spec(spec(Mode::RdmaRedis, 3, 8, 1.0, 5));
    let skv = run_spec(spec(Mode::Skv, 3, 8, 1.0, 6));
    let gain = skv.throughput_kops / baseline.throughput_kops - 1.0;
    assert!(
        (0.05..0.30).contains(&gain),
        "gain should be paper-sized (5-30%), got {:.1}%",
        gain * 100.0
    );
    assert!(skv.avg_latency_us < baseline.avg_latency_us);
    assert!(skv.p99_latency_us < baseline.p99_latency_us);
}

#[test]
fn skv_matches_rdma_redis_on_get() {
    // Figure 13: reads don't replicate; no offload advantage.
    let baseline = run_spec(spec(Mode::RdmaRedis, 3, 8, 0.0, 7));
    let skv = run_spec(spec(Mode::Skv, 3, 8, 0.0, 8));
    let ratio = skv.throughput_kops / baseline.throughput_kops;
    assert!(
        (0.97..1.03).contains(&ratio),
        "GET throughput should match, ratio {ratio:.3}"
    );
}

#[test]
fn skv_wins_across_value_sizes() {
    // Figure 12.
    for (i, &size) in [64usize, 1024, 8192].iter().enumerate() {
        let mut b = spec(Mode::RdmaRedis, 3, 8, 1.0, 20 + i as u64);
        b.value_size = size;
        let mut s = spec(Mode::Skv, 3, 8, 1.0, 30 + i as u64);
        s.value_size = size;
        let baseline = run_spec(b);
        let skv = run_spec(s);
        assert!(
            skv.throughput_kops > baseline.throughput_kops,
            "size {size}: SKV {:.0} <= baseline {:.0}",
            skv.throughput_kops,
            baseline.throughput_kops
        );
    }
}

#[test]
fn larger_values_are_slower() {
    let small = run_spec({
        let mut s = spec(Mode::Skv, 3, 8, 1.0, 40);
        s.value_size = 64;
        s
    });
    let large = run_spec({
        let mut s = spec(Mode::Skv, 3, 8, 1.0, 41);
        s.value_size = 16 * 1024;
        s
    });
    assert!(large.throughput_kops < small.throughput_kops);
}

#[test]
fn throughput_saturates_with_concurrency() {
    // Closed-loop behaviour: throughput grows with clients, then flattens;
    // latency keeps growing.
    let one = run_spec(spec(Mode::RdmaRedis, 0, 1, 1.0, 50));
    // (closed loop: more clients, more overlap)
    let eight = run_spec(spec(Mode::RdmaRedis, 0, 8, 1.0, 51));
    let thirty_two = run_spec(spec(Mode::RdmaRedis, 0, 32, 1.0, 52));
    assert!(eight.throughput_kops > 2.0 * one.throughput_kops);
    let sat_ratio = thirty_two.throughput_kops / eight.throughput_kops;
    assert!(
        (0.9..1.25).contains(&sat_ratio),
        "saturated region should be flat, got {sat_ratio:.2}"
    );
    assert!(thirty_two.p99_latency_us > 2.0 * eight.p99_latency_us);
}

#[test]
fn whole_experiments_are_deterministic() {
    let a = run_spec(spec(Mode::Skv, 3, 8, 0.9, 60));
    let b = run_spec(spec(Mode::Skv, 3, 8, 0.9, 60));
    assert_eq!(a.ops, b.ops);
    assert_eq!(a.errors, b.errors);
    assert_eq!(a.avg_latency_us, b.avg_latency_us);
    assert_eq!(a.p99_latency_us, b.p99_latency_us);
    // And a different seed gives a (slightly) different run.
    let c = run_spec(spec(Mode::Skv, 3, 8, 0.9, 61));
    assert_ne!(a.ops, c.ops);
}

#[test]
fn master_core_is_the_bottleneck_at_saturation() {
    let mut cluster = skv_core::cluster::Cluster::build(spec(Mode::RdmaRedis, 3, 16, 1.0, 70));
    cluster.run();
    let util = cluster.master_server().core0_utilization(cluster.sim.now());
    // Utilization is measured over the whole run including startup and
    // drain, so full saturation in the window reads as ~0.7-0.9 overall.
    assert!(
        util > 0.6,
        "event-loop core should saturate under 16 clients, got {util:.2}"
    );
}

#[test]
fn nic_offload_actually_uses_the_nic() {
    let mut cluster = skv_core::cluster::Cluster::build(spec(Mode::Skv, 3, 8, 1.0, 71));
    cluster.run();
    let now = cluster.sim.now();
    let nic = cluster.nic_kv().expect("nic");
    assert!(nic.stat_fanout_sends >= 3 * nic.stat_fanout_msgs / 2);
    let util = nic.mean_utilization(now);
    assert!(
        util > 0.01 && util < 0.9,
        "ARM cores busy but not overloaded, got {util:.3}"
    );
}
