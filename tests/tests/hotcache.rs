//! SoC hot-key GET cache coverage: the NIC front end serves hot GETs
//! from SoC memory, the replication stream invalidates/refreshes entries
//! before the covering write is acked (checked via `skv_core::histcheck`
//! operation histories), the win is real under Zipf skew, and a crashed
//! SoC rejoins with a cold cache without ever serving a stale read.

use proptest::prelude::*;
use skv_core::cluster::{ChaosSpec, Cluster, RunSpec};
use skv_core::config::{ClusterConfig, Mode};
use skv_core::histcheck::{check_single_writer, HistSpec, ReadAnchor};
use skv_simcore::{SimDuration, SimTime};

/// Compressed-time SKV spec with the SoC cache configured: read-heavy
/// (5% SET), Zipf 0.99, small keyspace — the cache's home turf.
fn spec(cache_bytes: usize, policy: &str, measure_ms: u64, seed: u64) -> RunSpec {
    let mut cfg = ClusterConfig::for_mode(Mode::Skv);
    cfg.num_slaves = 2;
    cfg.hot_cache_bytes = cache_bytes;
    cfg.hot_cache_policy = policy.to_string();
    cfg.probe_interval = SimDuration::from_millis(200);
    cfg.reconnect_base = SimDuration::from_millis(5);
    cfg.client_retry_timeout = SimDuration::from_millis(100);
    RunSpec {
        cfg,
        num_clients: 4,
        pipeline: 2,
        set_ratio: 0.05,
        mset_keys: 0,
        value_size: 64,
        key_space: 2_000,
        warmup: SimDuration::from_millis(100),
        measure: SimDuration::from_millis(measure_ms),
        seed,
        zipf_theta: 0.99,
        zipf_shift_every: 0,
    }
}

fn run_and_quiesce(cluster: &mut Cluster, drain: SimDuration) {
    cluster.run();
    cluster.sim.run_until(cluster.measure_until + drain);
}

fn assert_converged(cluster: &Cluster) {
    let digests = cluster.keyspace_digests();
    assert!(
        digests.iter().all(|&d| d == digests[0]),
        "replicas diverged: {digests:x?}"
    );
}

fn cache_counter(cluster: &Cluster, name: &str) -> u64 {
    cluster.counters_snapshot().get(name)
}

/// Healthy-run smoke: clients are served through the NIC front end, hot
/// GETs hit in SoC memory, the stream feeds invalidations, and the
/// replicas still converge (the cache is read-only state — it must not
/// perturb replication).
#[test]
fn hot_gets_hit_in_soc_cache() {
    let mut cluster = Cluster::build(spec(1 << 20, "lru", 800, 51));
    run_and_quiesce(&mut cluster, SimDuration::from_secs(1));
    let report = cluster.report();
    assert!(report.ops > 500, "only {} ops", report.ops);
    assert_eq!(report.errors, 0, "{} error replies", report.errors);

    let hits = cache_counter(&cluster, "cache.hits");
    let misses = cache_counter(&cluster, "cache.misses");
    assert!(hits > 0, "no GET ever hit the SoC cache");
    assert!(misses > 0, "every GET hit — cold misses must exist");
    assert!(
        hits > misses,
        "Zipf 0.99 on a cache-sized keyspace should be hit-dominated: \
         {hits} hits vs {misses} misses"
    );
    assert!(cache_counter(&cluster, "cache.admits") > 0, "no admissions");
    assert!(
        cache_counter(&cluster, "cache.invalidations") > 0,
        "writes on hot keys never touched the cache"
    );
    assert!(cache_counter(&cluster, "cache.bytes") > 0, "cache is empty");
    // The report's chaos set carries the same counters (gated on the
    // cache being on), so ablations and reports can't drift apart.
    assert_eq!(report.chaos.get("cache.hits"), hits);
    assert_converged(&cluster);
}

/// The acceptance bar: at Zipf 0.99 read-heavy, turning the cache on
/// must lift client-visible throughput by ≥ 1.3× over the cache-off
/// path on the *same* workload and seed (the ablation's headline pair,
/// shrunk to tier-1 size).
#[test]
fn cache_lifts_read_heavy_throughput() {
    let base = |cache_bytes: usize| {
        let mut s = spec(cache_bytes, "lru", 600, 52);
        s.num_clients = 8;
        s.pipeline = 4;
        s.key_space = 10_000;
        let mut cluster = Cluster::build(s);
        let report = cluster.run();
        assert_eq!(report.errors, 0, "{} error replies", report.errors);
        report.throughput_kops
    };
    let off = base(0);
    let on = base(1 << 20);
    assert!(
        on >= off * 1.3,
        "cache-on {on:.1} kops vs cache-off {off:.1} kops — below the 1.3x bar"
    );
}

/// The stale-read regression the invalidation seam exists for: history
/// probes (single-writer SETs, anchored GETs) flow through the NIC
/// front end, so every probe GET is eligible for a cached reply — and
/// the checker rejects any read older than the last acked write. The
/// seam under test: dirty commands piggyback invalidation on the
/// replication stream, and the master orders the forwarded ack *after*
/// the stream frame on the shared NIC channel, so by the time a write
/// is acked the SoC has already dropped or refreshed the entry.
#[test]
fn cached_reads_never_return_stale_values() {
    let mut cluster = Cluster::build(spec(1 << 20, "lru", 800, 53));
    let history = cluster.add_history(&HistSpec {
        anchor: ReadAnchor::Master,
        ..HistSpec::default()
    });
    run_and_quiesce(&mut cluster, SimDuration::from_secs(1));

    assert!(
        cache_counter(&cluster, "cache.hits") > 0,
        "no cached replies — the regression is vacuous"
    );
    assert!(
        cache_counter(&cluster, "cache.invalidations") > 0,
        "no stream-driven invalidations — the regression is vacuous"
    );
    let h = history.borrow();
    let reads = h.ops.iter().filter(|o| o.completed.is_some()).count();
    assert!(reads > 50, "not enough probe ops completed: {reads}");
    let violations = check_single_writer(&h);
    assert!(violations.is_empty(), "stale cached reads: {violations:?}");
}

/// Chaos arm: the SoC dies mid-run and rejoins with a cold cache. The
/// cold rejoin must be invisible to correctness — probes that resume
/// against the recovered front end still never observe a stale value,
/// clients recover, and the replicas converge.
#[test]
fn soc_crash_rejoins_with_cold_cache_and_stays_coherent() {
    let mut cluster = Cluster::build(spec(1 << 20, "lru", 2_500, 54));
    let history = cluster.add_history(&HistSpec {
        anchor: ReadAnchor::Master,
        ..HistSpec::default()
    });
    cluster.apply_chaos(&ChaosSpec {
        nic_crash: Some((SimTime::from_millis(800), SimTime::from_millis(1_500))),
        seed: 54,
        ..ChaosSpec::default()
    });
    run_and_quiesce(&mut cluster, SimDuration::from_secs(2));

    let report = cluster.report();
    assert!(
        report.ops > 500,
        "clients never recovered from the SoC crash: {} ops",
        report.ops
    );
    // The cache re-warmed after the cold rejoin...
    assert!(
        cache_counter(&cluster, "cache.bytes") > 0,
        "cache still empty after recovery — rejoin never re-admitted"
    );
    assert!(cache_counter(&cluster, "cache.hits") > 0, "no hits at all");
    // ...and coherence held across the crash boundary.
    let h = history.borrow();
    let violations = check_single_writer(&h);
    assert!(
        violations.is_empty(),
        "stale reads across the SoC crash: {violations:?}"
    );
    assert_converged(&cluster);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Invalidation-vs-replication ordering under randomized seed ×
    /// shard count × policy: whatever the engine layout and admission
    /// policy, a NIC cache hit must never return a value older than the
    /// last acked write — the single-writer checker over a probe
    /// history routed through the NIC front end.
    #[test]
    fn cache_coherent_across_shards_and_policies(
        seed in 0u64..1_000,
        shards in 1usize..5,
        policy_idx in 0usize..2,
        cache_kib in prop::sample::select(vec![64usize, 1_024]),
    ) {
        let policy = ["lru", "tinylfu"][policy_idx];
        let mut s = spec(cache_kib << 10, policy, 600, 3_000 + seed);
        s.cfg.num_shards = shards;
        let mut cluster = Cluster::build(s);
        let history = cluster.add_history(&HistSpec {
            anchor: ReadAnchor::Master,
            ..HistSpec::default()
        });
        run_and_quiesce(&mut cluster, SimDuration::from_secs(1));

        prop_assert!(
            cache_counter(&cluster, "cache.hits") > 0,
            "no cached replies — nothing exercised"
        );
        let h = history.borrow();
        let violations = check_single_writer(&h);
        prop_assert!(
            violations.is_empty(),
            "stale cached reads (shards={shards}, policy={policy}): {violations:?}"
        );
        let digests = cluster.keyspace_digests();
        prop_assert!(
            digests.iter().all(|&d| d == digests[0]),
            "replicas diverged: {digests:x?}"
        );
    }
}
