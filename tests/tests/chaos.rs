//! Chaos suite: randomized fault plans over the fault-injection substrate.
//!
//! Where `failure.rs` checks the §III-D detection machinery against clean
//! crash/recover schedules, these tests inject *transport* faults — lost
//! RDMA messages (surfacing as retry-exhaustion completion errors), latency
//! spikes, link flaps, partitions, and SmartNIC SoC crashes — and assert
//! the two system-level properties that matter: every replica converges to
//! the same keyspace once the faults clear, and identical seeds produce
//! identical runs.

use proptest::prelude::*;
use skv_core::cluster::{ChaosSpec, Cluster, RunSpec};
use skv_core::config::{ClusterConfig, Mode};
use skv_simcore::{SimDuration, SimTime};

/// Compressed-time SKV spec, same scale trick as `failure.rs`.
fn spec(slaves: usize, clients: usize, measure_ms: u64, seed: u64) -> RunSpec {
    let mut cfg = ClusterConfig::for_mode(Mode::Skv);
    cfg.num_slaves = slaves;
    cfg.probe_interval = SimDuration::from_millis(200);
    cfg.waiting_time = SimDuration::from_millis(300);
    cfg.upstream_silence = SimDuration::from_millis(600);
    cfg.reconnect_base = SimDuration::from_millis(5);
    cfg.client_retry_timeout = SimDuration::from_millis(100);
    RunSpec {
        cfg,
        num_clients: clients,
        pipeline: 1,
        set_ratio: 1.0,
        mset_keys: 0,
        value_size: 64,
        key_space: 1_000,
        warmup: SimDuration::from_millis(100),
        measure: SimDuration::from_millis(measure_ms),
        seed,
        zipf_theta: 0.0,
        zipf_shift_every: 0,
    }
}

/// Run past the measurement window, then give resyncs time to drain.
fn run_and_quiesce(cluster: &mut Cluster, drain: SimDuration) {
    cluster.run();
    cluster.sim.run_until(cluster.measure_until + drain);
}

fn assert_converged(cluster: &Cluster) {
    let digests = cluster.keyspace_digests();
    assert!(
        digests.iter().all(|&d| d == digests[0]),
        "replicas diverged: {digests:x?}"
    );
}

#[test]
fn partition_heals_and_replicas_converge() {
    // Two of three slaves are cut off mid-run; after the partition heals
    // they must detect the gap, resync, and end byte-identical.
    let mut cluster = Cluster::build(spec(3, 2, 2_000, 21));
    cluster.apply_chaos(&ChaosSpec {
        partition: Some((
            vec![0, 1],
            SimTime::from_millis(800),
            SimTime::from_millis(1_500),
        )),
        ..ChaosSpec::default()
    });
    run_and_quiesce(&mut cluster, SimDuration::from_secs(2));

    let report = cluster.report();
    assert!(
        report.ops > 1_000,
        "writes must keep flowing: {}",
        report.ops
    );
    assert_converged(&cluster);
    // The cut-off slaves had to resync (partial or full) after the heal.
    let resyncs: u64 = (0..2)
        .map(|i| {
            let s = cluster.slave_server(i);
            s.stat_full_syncs + s.stat_partial_syncs
        })
        .sum();
    assert!(resyncs >= 3, "expected post-heal resyncs, got {resyncs}");
}

#[test]
fn lossy_link_set_stream_completes() {
    // 2% message loss everywhere: every lost WR surfaces as a completion
    // error + QP error state, so clients and servers must keep tearing
    // down and re-establishing QPs — and the SET stream must still finish.
    let mut cluster = Cluster::build(spec(2, 2, 2_000, 22));
    cluster.apply_chaos(&ChaosSpec {
        loss_prob: 0.02,
        ..ChaosSpec::default()
    });
    run_and_quiesce(&mut cluster, SimDuration::from_secs(2));

    let report = cluster.report();
    assert!(report.ops > 500, "stream stalled: {} ops", report.ops);
    assert!(
        report.chaos.get("faults.rdma_dropped") > 0,
        "plan must actually drop messages"
    );
    assert!(
        report.chaos.get("rdma.qp_errors") > 0,
        "drops must surface as QP errors"
    );
    assert!(
        report.chaos.get("client.reconnects") > 0,
        "clients must recover by reconnecting"
    );
}

#[test]
fn nic_crash_degrades_master_but_writes_continue() {
    // The SoC dies mid-run: the master must fall back to host-driven
    // serial fan-out (RDMA-Redis style) and keep serving writes.
    let crash_at = SimTime::from_millis(1_000);
    let recover_at = SimTime::from_millis(2_500);
    let mut cluster = Cluster::build(spec(2, 2, 3_000, 23));
    cluster.apply_chaos(&ChaosSpec {
        nic_crash: Some((crash_at, recover_at)),
        ..ChaosSpec::default()
    });

    // Step to just before recovery: the master must be degraded by then,
    // and the NIC's fan-out counter frozen.
    cluster.sim.run_until(recover_at);
    assert!(
        cluster.master_server().is_degraded(),
        "master must detect SoC death and degrade"
    );
    let fanout_before = cluster.nic_kv().expect("nic").stat_fanout_msgs;
    let hub = cluster.metrics.borrow();
    let degraded_ops = hub
        .completions
        .count_between(crash_at + SimDuration::from_millis(700), recover_at);
    drop(hub);
    assert!(
        degraded_ops > 500,
        "degraded mode must keep serving writes, got {degraded_ops}"
    );

    run_and_quiesce(&mut cluster, SimDuration::from_secs(2));
    let master = cluster.master_server();
    assert_eq!(master.stat_degradations, 1);
    assert!(
        !master.is_degraded(),
        "master must re-offload after recovery"
    );
    let (entered, exited) = *master.degraded_periods.last().expect("one period");
    assert!(entered >= crash_at && exited.expect("closed") >= recover_at);
    // Fan-out went back to the SoC.
    let fanout_after = cluster.nic_kv().expect("nic").stat_fanout_msgs;
    assert!(
        fanout_after > fanout_before,
        "NIC must fan out again after recovery ({fanout_before} → {fanout_after})"
    );
    assert_converged(&cluster);
}

/// Build, apply chaos, run, quiesce — returns (ops, digests, qp_errors).
fn chaos_run(spec: RunSpec, chaos: &ChaosSpec) -> (u64, Vec<u64>, u64) {
    let mut cluster = Cluster::build(spec);
    cluster.apply_chaos(chaos);
    run_and_quiesce(&mut cluster, SimDuration::from_secs(2));
    let report = cluster.report();
    (
        report.ops,
        cluster.keyspace_digests(),
        report.chaos.get("rdma.qp_errors"),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Randomized fault plans: loss up to 5%, latency spikes, one link
    /// flap, one partition, an optional SoC crash. Two properties:
    /// replicas converge after the faults clear, and the identical
    /// spec+seed reproduces the identical run.
    #[test]
    fn random_chaos_converges_and_is_deterministic(
        loss in 0.0f64..0.05,
        delay_prob in 0.0f64..0.1,
        flap_start in 600u64..1_000,
        chaos_seed in 0u64..1_000,
        crash_nic in 0u32..2,
    ) {
        let chaos = ChaosSpec {
            loss_prob: loss,
            delay_prob,
            delay: SimDuration::from_micros(500),
            flaps: vec![(
                0,
                SimTime::from_millis(flap_start),
                SimTime::from_millis(flap_start + 400),
            )],
            partition: Some((
                vec![1],
                SimTime::from_millis(1_100),
                SimTime::from_millis(1_500),
            )),
            nic_crash: (crash_nic == 1).then(|| {
                (SimTime::from_millis(900), SimTime::from_millis(1_600))
            }),
            seed: chaos_seed,
        };
        let s = spec(2, 1, 1_800, 1_000 + chaos_seed);

        let (ops_a, digests_a, qp_err_a) = chaos_run(s.clone(), &chaos);
        prop_assert!(ops_a > 50, "cluster made no progress: {} ops", ops_a);
        prop_assert!(
            digests_a.iter().all(|&d| d == digests_a[0]),
            "replicas diverged: {:x?}", digests_a
        );

        // Same seeds → byte-identical outcome, faults and all.
        let (ops_b, digests_b, qp_err_b) = chaos_run(s, &chaos);
        prop_assert_eq!(ops_a, ops_b);
        prop_assert_eq!(digests_a, digests_b);
        prop_assert_eq!(qp_err_a, qp_err_b);
    }
}

// -- per-protocol fault arms (replication modes) ------------------------------

use skv_core::histcheck::{
    check_linearizable, check_single_writer, stale_reads, HistSpec, ReadAnchor,
};
use skv_core::replmode::ReplModeKind;
use skv_netsim::{FaultPlan, Partition, TimeWindow};

/// A slave crashes mid-fan-out under a tracked mode: the protocol must
/// keep committing through the survivors and the client-visible history
/// must stay linearizable at its anchor.
fn slave_crash_stays_linearizable(mode: ReplModeKind, anchor: ReadAnchor) {
    let mut s = spec(3, 2, 2_000, 41);
    s.cfg.repl_mode = mode;
    let mut cluster = Cluster::build(s);
    let history = cluster.add_history(&HistSpec {
        anchor,
        ..HistSpec::default()
    });
    // Crash slave 0 (the chain head / a quorum member) mid-run, recover
    // it before the end so convergence is checkable.
    cluster.schedule_slave_crash(0, SimTime::from_millis(700));
    cluster.schedule_slave_recover(0, SimTime::from_millis(1_400));
    run_and_quiesce(&mut cluster, SimDuration::from_secs(2));

    let nic = cluster.nic_kv().expect("nic");
    assert!(nic.stat_commits > 0, "{mode}: nothing committed");
    assert_eq!(nic.pending_writes(), 0, "{mode}: stuck in-flight writes");
    let h = history.borrow();
    let done = h.ops.iter().filter(|o| o.completed.is_some()).count();
    assert!(done > 100, "{mode}: only {done} probe ops completed");
    let violations = check_single_writer(&h);
    assert!(
        violations.is_empty(),
        "{mode}: consistency violations under slave crash: {violations:?}"
    );
    drop(h);
    assert_converged(&cluster);
}

#[test]
fn slave_crash_quorum_history_linearizable() {
    slave_crash_stays_linearizable(ReplModeKind::Quorum, ReadAnchor::MasterQuorum);
}

#[test]
fn slave_crash_chain_history_linearizable() {
    // Tail-anchored reads (slave 2); the crashed node is the chain head.
    slave_crash_stays_linearizable(ReplModeKind::Chain, ReadAnchor::Slave(2));
}

#[test]
fn slave_crash_async_serves_stale_reads_then_converges() {
    // The async contrast arm: cut a slave off from the servers (but not
    // from the probe clients) and the master keeps acking writes the
    // anchor never saw — the checker must catch the stale reads. After
    // the heal the replicas still converge: eventual consistency, and
    // nothing stronger.
    let mut cluster = Cluster::build(spec(2, 2, 2_000, 42));
    let history = cluster.add_history(&HistSpec {
        anchor: ReadAnchor::Slave(0),
        ..HistSpec::default()
    });
    let lagging = cluster.slave_nodes[0];
    let servers: Vec<_> = std::iter::once(cluster.master_node)
        .chain(cluster.nic_node)
        .chain(std::iter::once(cluster.slave_nodes[1]))
        .collect();
    let mut plan = FaultPlan::new(3);
    plan.partitions.push(Partition {
        a: vec![lagging],
        b: servers,
        window: TimeWindow::new(SimTime::from_millis(600), SimTime::from_millis(1_500)),
    });
    cluster.net.set_fault_plan(plan);
    run_and_quiesce(&mut cluster, SimDuration::from_secs(3));

    let h = history.borrow();
    let violations = check_single_writer(&h);
    assert!(
        stale_reads(&violations) > 0,
        "async must expose stale reads at the cut-off anchor, found none \
         ({} ops recorded)",
        h.ops.len()
    );
    // The known-bad fixture for the full checker: the same history fed
    // through the multi-writer search must also be rejected — async
    // staleness reproduces as a concrete counterexample, not just a
    // single-writer screen hit.
    let mw = check_linearizable(&h);
    assert!(
        stale_reads(&mw) > 0,
        "multi-writer checker accepted a known-stale history \
         ({} single-writer violations)",
        violations.len()
    );
    drop(h);
    // ...but once the partition heals, every replica converges.
    assert_converged(&cluster);
}

#[test]
fn chain_rejoin_splices_recovered_slave_without_overlap() {
    // Satellite regression: a chain slave crashes mid-delivery-window
    // and rejoins while later writes are still in flight. The NIC must
    // splice it back in at the TAIL of each open chain, skipping every
    // write already covered by its resync offset — re-delivering one
    // would hand the slave an overlapping backlog window. Commits keep
    // flowing, nothing wedges behind the rejoiner, and the tail-anchored
    // history stays linearizable through crash, rejoin, and resync.
    let mut s = spec(3, 2, 2_000, 44);
    s.cfg.repl_mode = ReplModeKind::Chain;
    let mut cluster = Cluster::build(s);
    let history = cluster.add_history(&HistSpec {
        anchor: ReadAnchor::Slave(2),
        ..HistSpec::default()
    });
    // Crash the middle hop with writes in flight; recover it mid-run so
    // it rejoins under load.
    cluster.schedule_slave_crash(1, SimTime::from_millis(700));
    cluster.schedule_slave_recover(1, SimTime::from_millis(1_100));
    run_and_quiesce(&mut cluster, SimDuration::from_secs(2));

    let nic = cluster.nic_kv().expect("nic");
    assert!(
        nic.stat_chain_rejoins >= 1,
        "recovered slave never spliced back into an in-flight chain"
    );
    assert!(nic.stat_commits > 0, "chain stopped committing");
    assert_eq!(nic.pending_writes(), 0, "writes stuck behind the rejoiner");
    let h = history.borrow();
    let violations = check_linearizable(&h);
    assert!(
        violations.is_empty(),
        "chain rejoin violations: {violations:?}"
    );
    drop(h);
    assert_converged(&cluster);
}

#[test]
fn chain_mid_node_partition_triggers_repair() {
    // Partition the middle hop of a 3-slave chain: WRs to it die with
    // retry-exhaustion errors, the NIC must splice it out of in-flight
    // chains (repair), keep committing through head + tail, and the
    // tail-anchored history stays linearizable throughout.
    let mut s = spec(3, 2, 2_000, 43);
    s.cfg.repl_mode = ReplModeKind::Chain;
    let mut cluster = Cluster::build(s);
    let history = cluster.add_history(&HistSpec {
        anchor: ReadAnchor::Slave(2),
        ..HistSpec::default()
    });
    cluster.apply_chaos(&ChaosSpec {
        partition: Some((
            vec![1],
            SimTime::from_millis(700),
            SimTime::from_millis(1_400),
        )),
        ..ChaosSpec::default()
    });
    run_and_quiesce(&mut cluster, SimDuration::from_secs(2));

    let nic = cluster.nic_kv().expect("nic");
    assert!(
        nic.stat_chain_repairs > 0,
        "mid-node partition never triggered a chain repair"
    );
    assert!(nic.stat_commits > 0, "chain stopped committing");
    assert_eq!(nic.pending_writes(), 0, "writes stuck behind the dead hop");
    let h = history.borrow();
    let violations = check_single_writer(&h);
    assert!(
        violations.is_empty(),
        "chain violations under mid-node partition: {violations:?}"
    );
    drop(h);
    assert_converged(&cluster);
}
