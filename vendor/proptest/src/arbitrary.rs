//! `any::<T>()` — whole-domain strategies for primitives.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw one uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// A strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps generated text debuggable.
        (b' ' + (rng.below(95)) as u8) as char
    }
}
