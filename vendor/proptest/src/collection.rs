//! Collection strategies: `prop::collection::{vec, btree_set}`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::Range;

/// A `Vec` of values from `element`, with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.end.saturating_sub(self.size.start).max(1);
        let len = self.size.start + rng.below(span);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// A `BTreeSet` of values from `element` with a target size drawn from
/// `size`. Duplicate draws are retried a bounded number of times, so for
/// small element domains the realised size may fall below the target
/// (never below what the domain admits in practice).
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

/// See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let span = self.size.end.saturating_sub(self.size.start).max(1);
        let target = self.size.start + rng.below(span);
        let mut out = BTreeSet::new();
        let mut attempts = 0;
        while out.len() < target && attempts < target * 10 + 100 {
            out.insert(self.element.sample(rng));
            attempts += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn vec_lengths_respect_bounds() {
        let strat = vec(any::<u8>(), 2..5);
        let mut rng = TestRng::for_case("vec_len", 0);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((2..5).contains(&v.len()), "len {}", v.len());
        }
    }

    #[test]
    fn btree_set_meets_minimum_when_domain_allows() {
        let strat = btree_set(any::<u64>(), 1..40);
        let mut rng = TestRng::for_case("set_len", 0);
        for _ in 0..100 {
            let s = strat.sample(&mut rng);
            assert!(!s.is_empty() && s.len() < 40, "len {}", s.len());
        }
    }
}
