//! Sampling strategies over explicit value lists: `prop::sample::select`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy choosing uniformly among the given values.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select() needs at least one option");
    Select { options }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len())].clone()
    }
}
