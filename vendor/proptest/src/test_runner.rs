//! Test-runner plumbing: configuration, case RNG, and case failure type.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::fmt;

/// Per-test configuration. Only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed case: carries the assertion message up to the runner loop.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure from an assertion message.
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// The RNG strategies sample from.
///
/// Seeded from `(test path, case index)` so every run of a test explores
/// the identical case sequence and any failure is trivially reproducible.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Deterministic RNG for one case of one test.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        // FNV-1a over the test path, mixed with the case index.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(hash ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw in `[0, n)`; 0 when `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            ((self.next_u64() as u128 * n as u128) >> 64) as usize
        }
    }

    /// Access to the underlying generator for `gen_range` sampling.
    pub(crate) fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}
