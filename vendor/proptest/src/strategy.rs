//! The [`Strategy`] trait and core combinators.

use crate::test_runner::TestRng;
use std::ops::Range;
use std::rc::Rc;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking machinery:
/// a strategy is simply a deterministic function of the case RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `self` generates leaves, and `branch`
    /// lifts a strategy for subtrees into a strategy for parent nodes.
    /// Recursion depth is bounded by `depth`; the `desired_size` and
    /// `expected_branch_size` tuning knobs of upstream proptest are
    /// accepted but unused.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = branch(strat).boxed();
            strat = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        strat
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among strategies of a common value type (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from a non-empty option list.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len());
        self.options[idx].sample(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn map_union_and_ranges_compose() {
        let strat = crate::prop_oneof![
            (0u8..4).prop_map(|v| v as u32),
            Just(77u32),
            (100u32..200).prop_map(|v| v + 1),
        ];
        let mut rng = TestRng::for_case("compose", 0);
        let mut seen_just = false;
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!(v < 4 || v == 77 || (101..=200).contains(&v), "{v}");
            seen_just |= v == 77;
        }
        assert!(seen_just, "union never picked the Just arm");
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(n) => {
                    assert!(*n < 8, "leaf {n} outside its strategy range");
                    1
                }
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u8..8)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 32, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = TestRng::for_case("recursive", 1);
        for _ in 0..100 {
            let t = strat.sample(&mut rng);
            assert!(depth(&t) <= 5, "depth {} too deep", depth(&t));
        }
    }
}
