//! String-pattern strategies: a `&str` literal acts as a strategy for
//! strings matching it, as in upstream proptest.
//!
//! Only the pattern shape this workspace uses is supported:
//! `[class]{m,n}` where `class` is a list of literal characters and
//! `a-z`-style ranges. Any other pattern generates itself literally.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        match parse_class_repeat(self) {
            Some((chars, lo, hi)) => {
                let len = lo + rng.below(hi - lo + 1);
                (0..len).map(|_| chars[rng.below(chars.len())]).collect()
            }
            None => (*self).to_string(),
        }
    }
}

/// Parse `[class]{m,n}` into (alphabet, m, n). Returns `None` for any
/// other shape.
fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let counts = rest[close + 1..]
        .strip_prefix('{')?
        .strip_suffix('}')?
        .split_once(',')?;
    let lo: usize = counts.0.trim().parse().ok()?;
    let hi: usize = counts.1.trim().parse().ok()?;
    if class.is_empty() || lo > hi {
        return None;
    }

    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        // `a-z` range (a `-` needs a character on both sides).
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (start, end) = (class[i], class[i + 2]);
            if start > end {
                return None;
            }
            for c in start..=end {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    Some((chars, lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_ranges_and_literals() {
        let (chars, lo, hi) = parse_class_repeat("[a-z]{1,6}").unwrap();
        assert_eq!(chars.len(), 26);
        assert_eq!((lo, hi), (1, 6));

        // `[ -~]` is the printable-ASCII range, not three literals.
        let (chars, lo, hi) = parse_class_repeat("[ -~]{0,20}").unwrap();
        assert_eq!(chars.len(), 95);
        assert_eq!((lo, hi), (0, 20));

        assert!(parse_class_repeat("plain").is_none());
    }

    #[test]
    fn generated_strings_match_pattern() {
        let strat = "[a-z]{1,4}";
        let mut rng = TestRng::for_case("strings", 0);
        for _ in 0..200 {
            let s = Strategy::sample(&strat, &mut rng);
            assert!((1..=4).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }
}
