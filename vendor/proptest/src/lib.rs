//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the slice of proptest it uses: the [`Strategy`] trait with `prop_map`,
//! `prop_recursive` and boxing, tuple/range/string-pattern strategies,
//! `any::<T>()`, `prop::collection::{vec, btree_set}`, `prop::sample::select`,
//! and the `proptest!` / `prop_oneof!` / `prop_assert*!` macros.
//!
//! Semantics differ from upstream in two deliberate ways:
//!
//! * **No shrinking.** A failing case reports its deterministic case
//!   number; with fixed per-(test, case) seeding the failure reproduces
//!   exactly on rerun, which is what a simulation workspace needs.
//! * **Fixed seeding.** Upstream draws fresh entropy per run and persists
//!   regressions; here every run of a test samples the same case sequence,
//!   keeping CI deterministic.

// Value generation folds u64 draws into narrower types and walks
// ASCII-only pattern strings; both are by construction, not bugs.
#![allow(clippy::cast_possible_truncation, clippy::string_slice)]
pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The `prop` namespace, mirroring `proptest::prop::*` paths used via the
/// prelude (`prop::collection::vec`, `prop::sample::select`).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// The glob-import surface test files use.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Each `#[test] fn name(binding in strategy, ...)`
/// item becomes a regular `#[test]` that samples its strategies for
/// `config.cases` deterministic cases and runs the body against each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __strats = ($(($strat),)+);
                #[allow(non_snake_case)]
                let ($($arg,)+) = &__strats;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::sample($arg, &mut __rng);
                    )+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__err) = __outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            __case,
                            __config.cases,
                            __err
                        );
                    }
                }
            }
        )+
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Check a condition inside a `proptest!` body, failing the case (not the
/// whole process) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right`\n  both: {:?}",
            left
        );
    }};
}
