//! Offline stand-in for the `criterion` crate.
//!
//! Implements the measurement surface the workspace's micro-benchmarks
//! use — `Criterion`, benchmark groups, `Bencher::iter`, `Throughput`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros —
//! with a plain wall-clock measurement loop and text report instead of
//! upstream's statistical machinery. Good enough to compare orders of
//! magnitude and catch gross regressions; not a statistics suite.

// Vendored benchmark harness: measuring wall-clock time is its job.
#![allow(clippy::disallowed_methods)]
// Wall-clock nanos fold into display units; truncation is harmless.
#![allow(clippy::cast_possible_truncation)]
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver and measurement configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 30,
        }
    }
}

impl Criterion {
    /// Set the warm-up duration before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Set the target total measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Set the number of samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (warm_up, measurement, samples) = (self.warm_up, self.measurement, self.sample_size);
        run_bench(name, None, warm_up, measurement, samples, f);
        self
    }
}

/// How many units of work one iteration represents, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named set of benchmarks sharing throughput and sampling settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Measure one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_bench(
            &full,
            self.throughput,
            self.criterion.warm_up,
            self.criterion.measurement,
            samples,
            f,
        );
        self
    }

    /// End the group (report output happens per-benchmark).
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; runs the timing loop.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    target_samples: usize,
    measurement: Duration,
    warm_up: Duration,
}

impl Bencher {
    /// Measure `f`, called repeatedly in batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget elapses, counting
        // iterations to size the measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(f());
            warm_iters += 1;
        }
        let warm_div = warm_iters.clamp(1, u32::MAX as u64) as u32;
        let per_iter = (warm_start.elapsed() / warm_div).max(Duration::from_nanos(1));
        let budget_per_sample = self.measurement / self.target_samples as u32;
        self.iters_per_sample = (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, u64::MAX as u128) as u64;

        for _ in 0..self.target_samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    throughput: Option<Throughput>,
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    mut f: F,
) {
    let mut bencher = Bencher {
        iters_per_sample: 1,
        samples: Vec::with_capacity(samples),
        target_samples: samples,
        measurement,
        warm_up,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let mut per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_nanos() as f64 / bencher.iters_per_sample as f64)
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    let best = per_iter[0];
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>10.2} Melem/s", n as f64 / median * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  {:>10.2} MiB/s",
                n as f64 / median * 1e9 / (1024.0 * 1024.0)
            )
        }
        None => String::new(),
    };
    println!("{name:<40} median {median:>12.1} ns/iter (best {best:>12.1}){rate}");
    emit_json_line(name, throughput, median, best, &bencher);
}

/// If `CRITERION_JSON` names a file, append one JSON object per finished
/// benchmark (JSON-lines). Machine-readable counterpart of the text report;
/// `scripts/bench.sh` collects these into `BENCH_results.json`.
fn emit_json_line(
    name: &str,
    throughput: Option<Throughput>,
    median_ns: f64,
    best_ns: f64,
    bencher: &Bencher,
) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let (kind, units) = match throughput {
        Some(Throughput::Elements(n)) => ("\"elements\"", n),
        Some(Throughput::Bytes(n)) => ("\"bytes\"", n),
        None => ("null", 0),
    };
    let escaped: String = name
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if (c as u32) < 0x20 => vec![' '],
            c => vec![c],
        })
        .collect();
    let line = format!(
        "{{\"name\":\"{escaped}\",\"median_ns\":{median_ns:.1},\"best_ns\":{best_ns:.1},\
         \"samples\":{},\"iters_per_sample\":{},\"throughput_kind\":{kind},\
         \"throughput_units\":{units}}}\n",
        bencher.samples.len(),
        bencher.iters_per_sample,
    );
    use std::io::Write;
    let res = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = res {
        eprintln!("criterion: cannot append to CRITERION_JSON={path}: {e}");
    }
}

/// Define a benchmark group function, in either the simple or the
/// `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define `main()` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_emitted_when_env_set() {
        let path =
            std::env::temp_dir().join(format!("criterion-shim-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("CRITERION_JSON", &path);
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(2))
            .measurement_time(Duration::from_millis(10))
            .sample_size(3);
        let mut g = c.benchmark_group("json");
        g.throughput(Throughput::Bytes(128));
        g.bench_function("emit", |b| b.iter(|| 1u64 + 1));
        g.finish();
        std::env::remove_var("CRITERION_JSON");
        let text = std::fs::read_to_string(&path).expect("json file written");
        let _ = std::fs::remove_file(&path);
        assert!(text.contains("\"name\":\"json/emit\""), "got: {text}");
        assert!(
            text.contains("\"throughput_kind\":\"bytes\""),
            "got: {text}"
        );
        assert!(text.contains("\"throughput_units\":128"), "got: {text}");
    }

    #[test]
    fn bench_loop_produces_samples() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(5);
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(1));
        let mut count = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| {
                count += 1;
                count
            });
        });
        g.finish();
        assert!(count > 0);
    }
}
