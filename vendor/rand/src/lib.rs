//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the `rand 0.8` API it actually
//! uses: `rngs::StdRng`, the `RngCore`/`SeedableRng`/`Rng` traits, and
//! uniform `gen_range` sampling over integer and float ranges.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64. It does **not** reproduce the upstream ChaCha-based
//! `StdRng` byte streams — only the API and the statistical contract
//! (deterministic per seed, uniform output). Nothing in this workspace
//! depends on the exact stream, only on reproducibility, so this is a
//! drop-in replacement for simulation purposes.

// Range sampling folds 64-bit generator output into narrower integer
// types by construction; the truncation is the algorithm, not a bug.
#![allow(clippy::cast_possible_truncation)]

use std::fmt;
use std::ops::Range;

pub mod rngs;

/// Error type returned by [`RngCore::try_fill_bytes`].
///
/// The vendored generators are infallible, so this is never actually
/// produced; it exists to keep trait signatures source-compatible.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "random number generator failure")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: raw uniform output.
pub trait RngCore {
    /// The next 32 uniform random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with uniform random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`]; never fails here.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it through SplitMix64 — the same
    /// scheme `rand_core` documents for this method.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let out = splitmix64_mix(state);
            chunk.copy_from_slice(&out.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64_mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a half-open range. Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniform draw of a sampleable primitive (bool or integer).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Primitives that can be drawn uniformly over their whole domain.
pub trait Standard: Sized {
    /// Draw one value.
    fn from_rng<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range that [`Rng::gen_range`] can sample uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Multiply-shift mapping of a raw 64-bit draw onto `[0, span)`.
///
/// The tiny modulo bias (≤ span/2⁶⁴) is irrelevant for simulation use.
fn mul_shift(raw: u64, span: u64) -> u64 {
    ((raw as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + mul_shift(rng.next_u64(), span) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(mul_shift(rng.next_u64(), span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniform mantissa bits → [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        let mut c = StdRng::seed_from_u64(100);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: i64 = r.gen_range(-50..50);
            assert!((-50..50).contains(&y));
            let f: f64 = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let b: u8 = r.gen_range(0..8);
            assert!(b < 8);
        }
    }

    #[test]
    fn unit_draws_are_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut r = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        assert!(r.try_fill_bytes(&mut buf).is_ok());
    }
}
