//! Concrete generator types.

use crate::{RngCore, SeedableRng};

/// The workspace's standard PRNG: xoshiro256++.
///
/// Not the upstream ChaCha12-based `StdRng` — see the crate docs. The
/// state is 256 bits; the all-zero state (unreachable via the seeding
/// paths, which mix through SplitMix64) is corrected on construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            *word = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().unwrap());
        }
        if s == [0; 4] {
            // xoshiro must not start from the all-zero state.
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        StdRng { s }
    }
}
