//! End-to-end behaviour of the simulated RDMA verbs.

// Test payloads and loop counters are tiny literals; casts cannot truncate.
#![allow(clippy::cast_possible_truncation)]

use std::cell::RefCell;
use std::rc::Rc;

use skv_netsim::{
    MrId, Net, NetEvent, NetParams, NodeId, QpId, SendOp, SendWr, SocketAddr, Topology, Wc,
    WcOpcode, WcStatus,
};
use skv_simcore::{FnActor, SimTime, Simulation};

struct World {
    sim: Simulation,
    net: Net,
    a: NodeId,
    b: NodeId,
}

fn world() -> World {
    let mut sim = Simulation::new(3);
    let mut topo = Topology::new();
    let a = topo.add_host();
    let b = topo.add_host();
    let net = Net::install(&mut sim, topo, NetParams::default());
    World { sim, net, a, b }
}

/// Establish a QP pair between two scripted endpoints and return the
/// handles. The server posts `server_recvs` receives up front.
type SharedQp = Rc<RefCell<Option<QpId>>>;
type SharedWcs = Rc<RefCell<Vec<Wc>>>;

fn establish(
    w: &mut World,
    server_recvs: usize,
) -> (SharedQp, SharedQp, SharedWcs, SharedWcs, MrId) {
    let server_mr = w.net.register_mr(w.b, 1 << 20);
    let addr = SocketAddr::new(w.b, 6379);

    let server_qp: Rc<RefCell<Option<QpId>>> = Rc::default();
    let client_qp: Rc<RefCell<Option<QpId>>> = Rc::default();
    let server_wcs: Rc<RefCell<Vec<Wc>>> = Rc::default();
    let client_wcs: Rc<RefCell<Vec<Wc>>> = Rc::default();

    // Server: accept, post receives, then drain completions forever.
    let net = w.net.clone();
    let sq = server_qp.clone();
    let swc = server_wcs.clone();
    let server_cq: Rc<RefCell<Option<skv_netsim::CqId>>> = Rc::default();
    let scq = server_cq.clone();
    let server = w
        .sim
        .add_actor(Box::new(FnActor::new(move |ctx, _from, msg| {
            let Ok(ev) = msg.downcast::<NetEvent>() else {
                return;
            };
            match *ev {
                NetEvent::CmConnectRequest { req, .. } => {
                    let cq = net.create_cq(ctx.id());
                    *scq.borrow_mut() = Some(cq);
                    let qp = net.rdma_accept(ctx, req, cq).expect("fresh CM request");
                    for i in 0..server_recvs {
                        net.post_recv(qp, 1000 + i as u64).unwrap();
                    }
                    *sq.borrow_mut() = Some(qp);
                    net.req_notify_cq(ctx, cq);
                }
                NetEvent::CqNotify { cq } => {
                    swc.borrow_mut().extend(net.poll_cq(cq, 64));
                    net.req_notify_cq(ctx, cq);
                }
                _ => {}
            }
        })));
    w.net.rdma_listen(addr, server);

    // Client: connect and record its QP / completions.
    let net = w.net.clone();
    let cqp = client_qp.clone();
    let cwc = client_wcs.clone();
    let a = w.a;
    let client = w
        .sim
        .add_actor(Box::new(FnActor::new(move |ctx, _from, msg| {
            let Ok(ev) = msg.downcast::<NetEvent>() else {
                return;
            };
            match *ev {
                NetEvent::CmEstablished { qp, .. } => {
                    *cqp.borrow_mut() = Some(qp);
                }
                NetEvent::CqNotify { cq } => {
                    cwc.borrow_mut().extend(net.poll_cq(cq, 64));
                    net.req_notify_cq(ctx, cq);
                }
                _ => {}
            }
        })));
    let net = w.net.clone();
    let starter = w
        .sim
        .add_actor(Box::new(FnActor::new(move |ctx, _from, _msg| {
            let cq = net.create_cq(client);
            net.req_notify_cq(ctx, cq);
            net.rdma_connect(ctx, a, client, cq, addr);
        })));
    w.sim.schedule(SimTime::ZERO, starter, ());
    w.sim.run_to_completion();

    assert!(server_qp.borrow().is_some(), "connection must establish");
    assert!(client_qp.borrow().is_some(), "connection must establish");
    (client_qp, server_qp, client_wcs, server_wcs, server_mr)
}

/// Post a WR from a one-shot helper actor and run to completion.
fn post_from_helper(w: &mut World, qp: QpId, wr: SendWr) {
    let net = w.net.clone();
    let helper = w
        .sim
        .add_actor(Box::new(FnActor::new(move |ctx, _from, _msg| {
            net.post_send(ctx, qp, wr.clone()).unwrap();
        })));
    w.sim.schedule(w.sim.now(), helper, ());
    w.sim.run_to_completion();
}

#[test]
fn cm_establishes_qp_pair() {
    let mut w = world();
    let (cqp, sqp, _, _, _) = establish(&mut w, 0);
    let c = cqp.borrow().unwrap();
    let s = sqp.borrow().unwrap();
    assert_eq!(w.net.qp_node(c), w.a);
    assert_eq!(w.net.qp_node(s), w.b);
    assert_eq!(w.net.qp_peer_addr(c), SocketAddr::new(w.b, 6379));
    assert_eq!(w.net.counters().get("rdma.connections"), 1);
}

#[test]
fn write_imm_moves_real_bytes_and_completes_both_sides() {
    let mut w = world();
    let (cqp, _sqp, cwcs, swcs, server_mr) = establish(&mut w, 4);
    let c = cqp.borrow().unwrap();

    post_from_helper(
        &mut w,
        c,
        SendWr {
            wr_id: 7,
            op: SendOp::WriteImm {
                remote_mr: server_mr,
                remote_offset: 128,
                imm: 0xDEAD,
            },
            data: b"replicate me".to_vec().into(),
        },
    );

    // Receiver side: completion consumed a posted recv, reports offset/imm.
    let swcs = swcs.borrow();
    assert_eq!(swcs.len(), 1);
    let rwc = &swcs[0];
    assert_eq!(rwc.opcode, WcOpcode::RecvRdmaWithImm);
    assert_eq!(rwc.status, WcStatus::Success);
    assert_eq!(rwc.imm, 0xDEAD);
    assert_eq!(rwc.mr_offset, 128);
    assert_eq!(rwc.wr_id, 1000);
    assert_eq!(rwc.byte_len, 12);
    // The bytes physically landed in the MR.
    assert_eq!(w.net.mr_read(server_mr, 128, 12), b"replicate me");

    // Sender side: RDMA_WRITE completion.
    let cwcs = cwcs.borrow();
    assert_eq!(cwcs.len(), 1);
    assert_eq!(cwcs[0].opcode, WcOpcode::RdmaWrite);
    assert_eq!(cwcs[0].wr_id, 7);
}

#[test]
fn plain_write_generates_no_receiver_completion() {
    let mut w = world();
    let (cqp, _sqp, cwcs, swcs, server_mr) = establish(&mut w, 4);
    let c = cqp.borrow().unwrap();

    post_from_helper(
        &mut w,
        c,
        SendWr {
            wr_id: 1,
            op: SendOp::Write {
                remote_mr: server_mr,
                remote_offset: 0,
            },
            data: vec![9, 9, 9].into(),
        },
    );
    assert_eq!(swcs.borrow().len(), 0, "one-sided write is silent at peer");
    assert_eq!(cwcs.borrow().len(), 1);
    assert_eq!(w.net.mr_read(server_mr, 0, 3), vec![9, 9, 9]);
}

#[test]
fn send_recv_carries_payload() {
    let mut w = world();
    let (cqp, _sqp, _cwcs, swcs, _mr) = establish(&mut w, 2);
    let c = cqp.borrow().unwrap();

    post_from_helper(
        &mut w,
        c,
        SendWr {
            wr_id: 2,
            op: SendOp::Send,
            data: b"mr-info-exchange".to_vec().into(),
        },
    );
    let swcs = swcs.borrow();
    assert_eq!(swcs.len(), 1);
    assert_eq!(swcs[0].opcode, WcOpcode::Recv);
    assert_eq!(swcs[0].data, b"mr-info-exchange");
}

#[test]
fn read_fetches_remote_bytes() {
    let mut w = world();
    let (cqp, _sqp, cwcs, _swcs, server_mr) = establish(&mut w, 0);
    let c = cqp.borrow().unwrap();
    w.net.mr_write(server_mr, 64, b"snapshot-bytes");

    post_from_helper(
        &mut w,
        c,
        SendWr {
            wr_id: 3,
            op: SendOp::Read {
                remote_mr: server_mr,
                remote_offset: 64,
                len: 14,
            },
            data: skv_netsim::Frame::new(),
        },
    );
    let cwcs = cwcs.borrow();
    assert_eq!(cwcs.len(), 1);
    assert_eq!(cwcs[0].opcode, WcOpcode::RdmaRead);
    assert_eq!(cwcs[0].data, b"snapshot-bytes");
}

#[test]
fn missing_recv_reports_rnr() {
    let mut w = world();
    let (cqp, _sqp, _cwcs, swcs, server_mr) = establish(&mut w, 0);
    let c = cqp.borrow().unwrap();

    post_from_helper(
        &mut w,
        c,
        SendWr {
            wr_id: 4,
            op: SendOp::WriteImm {
                remote_mr: server_mr,
                remote_offset: 0,
                imm: 1,
            },
            data: vec![1].into(),
        },
    );
    let swcs = swcs.borrow();
    assert_eq!(swcs.len(), 1);
    assert_eq!(swcs[0].status, WcStatus::ReceiverNotReady);
    assert_eq!(swcs[0].wr_id, skv_netsim::RNR_WR_ID);
    assert_eq!(w.net.counters().get("rdma.rnr"), 1);
}

#[test]
fn write_to_down_node_errors_at_sender() {
    let mut w = world();
    let (cqp, _sqp, cwcs, swcs, server_mr) = establish(&mut w, 4);
    let c = cqp.borrow().unwrap();
    w.net.set_node_up(w.b, false);

    post_from_helper(
        &mut w,
        c,
        SendWr {
            wr_id: 5,
            op: SendOp::WriteImm {
                remote_mr: server_mr,
                remote_offset: 0,
                imm: 0,
            },
            data: vec![42].into(),
        },
    );
    assert_eq!(swcs.borrow().len(), 0, "down node receives nothing");
    let cwcs = cwcs.borrow();
    assert_eq!(cwcs.len(), 1);
    assert_eq!(cwcs[0].status, WcStatus::RemoteUnreachable);
    // The payload must NOT have been placed.
    assert_eq!(w.net.mr_read(server_mr, 0, 1), vec![0]);
}

#[test]
fn figure3_rdma_write_latency_ordering() {
    // Host→host, remote-host→SmartNIC, and local-host→SmartNIC WRITE
    // latencies must reproduce Figure 3's ordering.
    let mut sim = Simulation::new(9);
    let mut topo = Topology::new();
    let master = topo.add_host();
    let remote = topo.add_host();
    let soc = topo.add_smartnic(master);
    let net = Net::install(&mut sim, topo, NetParams::default());

    let l_hh = net.base_latency(master, remote);
    let l_local = net.base_latency(master, soc);
    let l_remote = net.base_latency(remote, soc);
    assert!(l_local < l_hh);
    assert_eq!(l_remote, l_hh);
}

#[test]
fn connect_to_unbound_rdma_port_fails() {
    let mut w = world();
    let failed: Rc<RefCell<u32>> = Rc::default();
    let f2 = failed.clone();
    let client = w
        .sim
        .add_actor(Box::new(FnActor::new(move |_ctx, _from, msg| {
            if let Ok(ev) = msg.downcast::<NetEvent>() {
                if matches!(*ev, NetEvent::CmConnectFailed { .. }) {
                    *f2.borrow_mut() += 1;
                }
            }
        })));
    let net = w.net.clone();
    let a = w.a;
    let b = w.b;
    let starter = w
        .sim
        .add_actor(Box::new(FnActor::new(move |ctx, _from, _msg| {
            let cq = net.create_cq(client);
            net.rdma_connect(ctx, a, client, cq, SocketAddr::new(b, 12345));
        })));
    w.sim.schedule(SimTime::ZERO, starter, ());
    w.sim.run_to_completion();
    assert_eq!(*failed.borrow(), 1);
}

#[test]
fn rejected_connection_reports_failure() {
    let mut w = world();
    let addr = SocketAddr::new(w.b, 6380);
    let net = w.net.clone();
    let server = w
        .sim
        .add_actor(Box::new(FnActor::new(move |ctx, _from, msg| {
            if let Ok(ev) = msg.downcast::<NetEvent>() {
                if let NetEvent::CmConnectRequest { req, .. } = *ev {
                    net.rdma_reject(ctx, req).expect("fresh CM request");
                }
            }
        })));
    w.net.rdma_listen(addr, server);

    let failed: Rc<RefCell<u32>> = Rc::default();
    let f2 = failed.clone();
    let client = w
        .sim
        .add_actor(Box::new(FnActor::new(move |_ctx, _from, msg| {
            if let Ok(ev) = msg.downcast::<NetEvent>() {
                if matches!(*ev, NetEvent::CmConnectFailed { .. }) {
                    *f2.borrow_mut() += 1;
                }
            }
        })));
    let net = w.net.clone();
    let a = w.a;
    let starter = w
        .sim
        .add_actor(Box::new(FnActor::new(move |ctx, _from, _msg| {
            let cq = net.create_cq(client);
            net.rdma_connect(ctx, a, client, cq, addr);
        })));
    w.sim.schedule(SimTime::ZERO, starter, ());
    w.sim.run_to_completion();
    assert_eq!(*failed.borrow(), 1);
}

#[test]
fn destroyed_qp_rejects_posts() {
    let mut w = world();
    let (cqp, _sqp, _cwcs, _swcs, _mr) = establish(&mut w, 0);
    let c = cqp.borrow().unwrap();
    w.net.destroy_qp(c);

    let result: Rc<RefCell<Option<Result<(), skv_netsim::PostError>>>> = Rc::default();
    let r2 = result.clone();
    let net = w.net.clone();
    let helper = w
        .sim
        .add_actor(Box::new(FnActor::new(move |ctx, _from, _msg| {
            *r2.borrow_mut() = Some(net.post_send(
                ctx,
                c,
                SendWr {
                    wr_id: 0,
                    op: SendOp::Send,
                    data: skv_netsim::Frame::new(),
                },
            ));
        })));
    w.sim.schedule(w.sim.now(), helper, ());
    w.sim.run_to_completion();
    assert_eq!(
        result.borrow().unwrap(),
        Err(skv_netsim::PostError::QpClosed)
    );
}

/// Post a linked-WR list from a one-shot helper actor, run to completion,
/// and return the post result.
fn post_list_from_helper(
    w: &mut World,
    qp: QpId,
    wrs: Vec<SendWr>,
) -> Result<(), skv_netsim::PostListError> {
    let result: Rc<RefCell<Option<Result<(), skv_netsim::PostListError>>>> = Rc::default();
    let r2 = result.clone();
    let net = w.net.clone();
    let helper = w
        .sim
        .add_actor(Box::new(FnActor::new(move |ctx, _from, _msg| {
            *r2.borrow_mut() = Some(net.post_send_list(ctx, qp, wrs.clone()));
        })));
    w.sim.schedule(w.sim.now(), helper, ());
    w.sim.run_to_completion();
    let r = result.borrow().expect("helper ran");
    r
}

fn write_imm_wr(wr_id: u64, mr: MrId, offset: usize, imm: u32, byte: u8) -> SendWr {
    SendWr {
        wr_id,
        op: SendOp::WriteImm {
            remote_mr: mr,
            remote_offset: offset,
            imm,
        },
        data: vec![byte; 8].into(),
    }
}

#[test]
fn post_list_rings_one_doorbell_for_many_wrs() {
    let mut w = world();
    let (cqp, _sqp, cwcs, swcs, server_mr) = establish(&mut w, 8);
    let c = cqp.borrow().unwrap();
    let base_doorbells = w.net.counters().get("rdma.doorbells");
    let base_wrs = w.net.counters().get("rdma.wrs_posted");

    let wrs: Vec<SendWr> = (0..3)
        .map(|i| write_imm_wr(10 + i, server_mr, 64 * i as usize, i as u32, i as u8))
        .collect();
    post_list_from_helper(&mut w, c, wrs).expect("clean fabric posts the whole list");

    assert_eq!(
        w.net.counters().get("rdma.doorbells") - base_doorbells,
        1,
        "a linked list is one doorbell"
    );
    assert_eq!(w.net.counters().get("rdma.wrs_posted") - base_wrs, 3);
    let swcs = swcs.borrow();
    assert_eq!(swcs.len(), 3, "every linked WR delivers");
    assert!(swcs.iter().all(|wc| wc.status == WcStatus::Success));
    let cwcs = cwcs.borrow();
    assert_eq!(cwcs.len(), 3, "every linked WR completes at the sender");
    assert!(cwcs.iter().all(|wc| wc.status == WcStatus::Success));
}

#[test]
fn empty_post_list_rings_no_doorbell() {
    let mut w = world();
    let (cqp, _sqp, _cwcs, _swcs, _mr) = establish(&mut w, 0);
    let c = cqp.borrow().unwrap();
    let base = w.net.counters().get("rdma.doorbells");
    post_list_from_helper(&mut w, c, Vec::new()).expect("empty list is a no-op");
    assert_eq!(w.net.counters().get("rdma.doorbells"), base);
}

#[test]
fn post_list_on_closed_qp_names_index_zero() {
    let mut w = world();
    let (cqp, _sqp, _cwcs, _swcs, server_mr) = establish(&mut w, 0);
    let c = cqp.borrow().unwrap();
    w.net.destroy_qp(c);
    let base_doorbells = w.net.counters().get("rdma.doorbells");
    let base_wrs = w.net.counters().get("rdma.wrs_posted");

    let wrs: Vec<SendWr> = (0..2)
        .map(|i| write_imm_wr(i, server_mr, 0, 0, 0))
        .collect();
    let err = post_list_from_helper(&mut w, c, wrs).unwrap_err();
    assert_eq!(err.index, 0, "bad_wr is the very first WR");
    assert_eq!(err.error, skv_netsim::PostError::QpClosed);
    assert_eq!(
        w.net.counters().get("rdma.doorbells"),
        base_doorbells,
        "nothing posted, nothing rung"
    );
    assert_eq!(w.net.counters().get("rdma.wrs_posted"), base_wrs);
}

#[test]
fn faulted_wr_mid_list_posts_prefix_and_names_bad_wr() {
    use skv_netsim::{FaultPlan, Partition, TimeWindow};

    let mut w = world();
    let (cqp, _sqp, cwcs, swcs, server_mr) = establish(&mut w, 8);
    let c = cqp.borrow().unwrap();

    // A clean list first: both WRs deliver and complete successfully.
    let clean: Vec<SendWr> = (0..2)
        .map(|i| write_imm_wr(100 + i, server_mr, 64 * i as usize, i as u32, 1))
        .collect();
    post_list_from_helper(&mut w, c, clean).expect("clean fabric");
    assert_eq!(swcs.borrow().len(), 2);
    assert_eq!(cwcs.borrow().len(), 2);

    // Partition the hosts: every packet from here on is dropped, so the
    // first WR of the next list draws a Drop verdict deterministically.
    let mut plan = FaultPlan::new(7);
    plan.partitions.push(Partition {
        a: vec![w.a],
        b: vec![w.b],
        window: TimeWindow::new(w.sim.now(), SimTime::from_secs(3600)),
    });
    w.net.set_fault_plan(plan);
    let base_doorbells = w.net.counters().get("rdma.doorbells");
    let base_wrs = w.net.counters().get("rdma.wrs_posted");

    let faulted: Vec<SendWr> = (0..3)
        .map(|i| write_imm_wr(200 + i, server_mr, 64 * i as usize, i as u32, 2))
        .collect();
    let err = post_list_from_helper(&mut w, c, faulted).unwrap_err();

    // WR 0 was posted (RC retries exhaust, erroring the QP), so the WR
    // that fails to post is the *next* linked one — bad_wr index 1.
    assert_eq!(err.index, 1, "the WR after the dropped one is the bad_wr");
    assert_eq!(err.error, skv_netsim::PostError::QpError);
    assert_eq!(
        w.net.counters().get("rdma.wrs_posted") - base_wrs,
        1,
        "only the prefix before bad_wr was posted"
    );
    assert_eq!(
        w.net.counters().get("rdma.doorbells") - base_doorbells,
        1,
        "a partially posted list still rang its doorbell"
    );

    // The posted prefix completes — with an error status at the sender —
    // and nothing from the failed list reaches the receiver.
    let cwcs = cwcs.borrow();
    assert_eq!(cwcs.len(), 3, "two clean completions plus the retry error");
    assert_eq!(cwcs[2].wr_id, 200);
    assert_eq!(cwcs[2].status, WcStatus::RetryExceeded);
    assert_eq!(swcs.borrow().len(), 2, "receiver saw only the clean list");
    assert_eq!(w.net.counters().get("rdma.qp_errors"), 1);
}

#[test]
fn deterministic_event_counts() {
    fn run() -> (u64, u64) {
        let mut w = world();
        let (cqp, _s, _cw, _sw, mr) = establish(&mut w, 8);
        let c = cqp.borrow().unwrap();
        for i in 0..8 {
            post_from_helper(
                &mut w,
                c,
                SendWr {
                    wr_id: i,
                    op: SendOp::WriteImm {
                        remote_mr: mr,
                        remote_offset: (i as usize) * 64,
                        imm: i as u32,
                    },
                    data: vec![i as u8; 64].into(),
                },
            );
        }
        (w.sim.events_processed(), w.net.counters().get("rdma.bytes"))
    }
    assert_eq!(run(), run());
}
