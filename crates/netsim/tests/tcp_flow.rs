//! End-to-end behaviour of the TCP-like transport.

use std::cell::RefCell;
use std::rc::Rc;

use skv_netsim::{Net, NetEvent, NetParams, SocketAddr, TcpConnId, Topology};
use skv_simcore::{ActorId, FnActor, SimDuration, SimTime, Simulation};

struct World {
    sim: Simulation,
    net: Net,
    a: skv_netsim::NodeId,
    b: skv_netsim::NodeId,
}

fn world() -> World {
    let mut sim = Simulation::new(1);
    let mut topo = Topology::new();
    let a = topo.add_host();
    let b = topo.add_host();
    let net = Net::install(&mut sim, topo, NetParams::default());
    World { sim, net, a, b }
}

/// An echo server: accepts connections and echoes every delivery back.
fn spawn_echo_server(w: &mut World, port: u16) -> ActorId {
    let net = w.net.clone();
    let addr = SocketAddr::new(w.b, port);
    let id = w
        .sim
        .add_actor(Box::new(FnActor::new(move |ctx, _from, msg| {
            if let Ok(ev) = msg.downcast::<NetEvent>() {
                if let NetEvent::TcpDelivered { conn, bytes } = *ev {
                    net.tcp_send(ctx, conn, bytes);
                }
            }
        })));
    w.net.tcp_listen(addr, id);
    id
}

#[test]
fn connect_send_echo_roundtrip() {
    let mut w = world();
    spawn_echo_server(&mut w, 6379);

    type EchoLog = Rc<RefCell<Vec<(SimTime, skv_netsim::Frame)>>>;
    let log: EchoLog = Rc::default();
    let log2 = log.clone();
    let net = w.net.clone();
    let a = w.a;
    let client = w
        .sim
        .add_actor(Box::new(FnActor::new(move |ctx, _from, msg| {
            if let Ok(ev) = msg.downcast::<NetEvent>() {
                match *ev {
                    NetEvent::TcpConnected { conn, .. } => {
                        net.tcp_send(ctx, conn, b"hello skv".to_vec());
                    }
                    NetEvent::TcpDelivered { bytes, .. } => {
                        log2.borrow_mut().push((ctx.now(), bytes));
                    }
                    _ => {}
                }
            }
        })));
    // Kick off the connect from inside the client's own context.
    let net = w.net.clone();
    let starter = w
        .sim
        .add_actor(Box::new(FnActor::new(move |ctx, _from, _msg| {
            net.tcp_connect(ctx, a, client, SocketAddr::new(skv_netsim::NodeId(1), 6379));
        })));
    w.sim.schedule(SimTime::ZERO, starter, ());
    w.sim.run_to_completion();

    let log = log.borrow();
    assert_eq!(log.len(), 1);
    assert_eq!(log[0].1, b"hello skv");
    // Round trip must cost at least the handshake plus two stack+wire hops.
    let p = w.net.params();
    let min =
        p.connect_latency + (p.tcp_stack_latency + p.tcp_stack_latency + p.tcp_base_latency) * 2;
    assert!(
        log[0].0 >= SimTime::ZERO + min,
        "echo at {} < {min}",
        log[0].0
    );
    assert_eq!(w.net.counters().get("tcp.messages"), 2);
}

#[test]
fn tcp_latency_exceeds_rdma_scale() {
    // The kernel-stack path must be several times more expensive than a
    // kernel-bypass RDMA hop — the premise of the paper's Figure 10.
    let w = world();
    let p = w.net.params();
    let tcp_one_way = p.tcp_stack_latency + p.tcp_stack_latency + p.tcp_base_latency;
    assert!(tcp_one_way.as_nanos() > 2 * p.host_host_latency.as_nanos());
    // And the per-message CPU cost dwarfs a WR post.
    assert!(p.tcp_send_cpu.as_nanos() > 5 * p.wr_post_cpu.as_nanos());
}

#[test]
fn deliveries_are_in_order() {
    let mut w = world();
    spawn_echo_server(&mut w, 7000);

    let got: Rc<RefCell<Vec<u8>>> = Rc::default();
    let got2 = got.clone();
    let net = w.net.clone();
    let client = w
        .sim
        .add_actor(Box::new(FnActor::new(move |ctx, _from, msg| {
            if let Ok(ev) = msg.downcast::<NetEvent>() {
                match *ev {
                    NetEvent::TcpConnected { conn, .. } => {
                        // Burst of differently-sized messages: a large one first,
                        // then small ones that would overtake it were ordering
                        // not enforced.
                        net.tcp_send(ctx, conn, vec![0u8; 64 * 1024]);
                        for i in 1..=5u8 {
                            net.tcp_send(ctx, conn, vec![i]);
                        }
                    }
                    NetEvent::TcpDelivered { bytes, .. } => {
                        got2.borrow_mut()
                            .push(if bytes.len() > 1 { 0 } else { bytes[0] });
                    }
                    _ => {}
                }
            }
        })));
    let net = w.net.clone();
    let a = w.a;
    let starter = w
        .sim
        .add_actor(Box::new(FnActor::new(move |ctx, _from, _msg| {
            net.tcp_connect(ctx, a, client, SocketAddr::new(skv_netsim::NodeId(1), 7000));
        })));
    w.sim.schedule(SimTime::ZERO, starter, ());
    w.sim.run_to_completion();
    assert_eq!(*got.borrow(), vec![0, 1, 2, 3, 4, 5]);
}

#[test]
fn connect_to_unbound_port_fails() {
    let mut w = world();
    let failed: Rc<RefCell<u32>> = Rc::default();
    let f2 = failed.clone();
    let client = w
        .sim
        .add_actor(Box::new(FnActor::new(move |_ctx, _from, msg| {
            if let Ok(ev) = msg.downcast::<NetEvent>() {
                if matches!(*ev, NetEvent::TcpConnectFailed { .. }) {
                    *f2.borrow_mut() += 1;
                }
            }
        })));
    let net = w.net.clone();
    let a = w.a;
    let b = w.b;
    let starter = w
        .sim
        .add_actor(Box::new(FnActor::new(move |ctx, _from, _msg| {
            net.tcp_connect(ctx, a, client, SocketAddr::new(b, 9999));
        })));
    w.sim.schedule(SimTime::ZERO, starter, ());
    w.sim.run_to_completion();
    assert_eq!(*failed.borrow(), 1);
}

#[test]
fn connect_to_down_node_fails() {
    let mut w = world();
    spawn_echo_server(&mut w, 6379);
    w.net.set_node_up(w.b, false);

    let failed: Rc<RefCell<u32>> = Rc::default();
    let f2 = failed.clone();
    let client = w
        .sim
        .add_actor(Box::new(FnActor::new(move |_ctx, _from, msg| {
            if let Ok(ev) = msg.downcast::<NetEvent>() {
                if matches!(*ev, NetEvent::TcpConnectFailed { .. }) {
                    *f2.borrow_mut() += 1;
                }
            }
        })));
    let net = w.net.clone();
    let a = w.a;
    let b = w.b;
    let starter = w
        .sim
        .add_actor(Box::new(FnActor::new(move |ctx, _from, _msg| {
            net.tcp_connect(ctx, a, client, SocketAddr::new(b, 6379));
        })));
    w.sim.schedule(SimTime::ZERO, starter, ());
    w.sim.run_to_completion();
    assert_eq!(*failed.borrow(), 1);
}

#[test]
fn sends_to_down_node_are_dropped() {
    let mut w = world();
    let delivered: Rc<RefCell<u32>> = Rc::default();
    let d2 = delivered.clone();
    let server = w
        .sim
        .add_actor(Box::new(FnActor::new(move |_ctx, _from, msg| {
            if let Ok(ev) = msg.downcast::<NetEvent>() {
                if matches!(*ev, NetEvent::TcpDelivered { .. }) {
                    *d2.borrow_mut() += 1;
                }
            }
        })));
    w.net.tcp_listen(SocketAddr::new(w.b, 6379), server);

    let conn_slot: Rc<RefCell<Option<TcpConnId>>> = Rc::default();
    let cs = conn_slot.clone();
    let net = w.net.clone();
    let client = w
        .sim
        .add_actor(Box::new(FnActor::new(move |ctx, _from, msg| {
            if let Ok(ev) = msg.downcast::<NetEvent>() {
                if let NetEvent::TcpConnected { conn, .. } = *ev {
                    *cs.borrow_mut() = Some(conn);
                    net.tcp_send(ctx, conn, b"one".to_vec());
                }
            }
        })));
    let net = w.net.clone();
    let a = w.a;
    let b = w.b;
    let starter = w
        .sim
        .add_actor(Box::new(FnActor::new(move |ctx, _from, _msg| {
            net.tcp_connect(ctx, a, client, SocketAddr::new(b, 6379));
        })));
    w.sim.schedule(SimTime::ZERO, starter, ());
    w.sim.run_to_completion();
    assert_eq!(*delivered.borrow(), 1);

    // Crash the server node; further sends are silently dropped.
    w.net.set_node_up(w.b, false);
    let conn = conn_slot.borrow().unwrap();
    let net = w.net.clone();
    let sender = w
        .sim
        .add_actor(Box::new(FnActor::new(move |ctx, _from, _msg| {
            net.tcp_send(ctx, conn, b"two".to_vec());
        })));
    w.sim.schedule_in(SimDuration::from_millis(1), sender, ());
    w.sim.run_to_completion();
    assert_eq!(*delivered.borrow(), 1);
    assert_eq!(w.net.counters().get("tcp.drops"), 1);
}

#[test]
fn close_notifies_peer() {
    let mut w = world();
    let closed: Rc<RefCell<u32>> = Rc::default();
    let c2 = closed.clone();
    let server = w
        .sim
        .add_actor(Box::new(FnActor::new(move |_ctx, _from, msg| {
            if let Ok(ev) = msg.downcast::<NetEvent>() {
                if matches!(*ev, NetEvent::TcpClosed { .. }) {
                    *c2.borrow_mut() += 1;
                }
            }
        })));
    w.net.tcp_listen(SocketAddr::new(w.b, 6379), server);

    let net = w.net.clone();
    let client = w
        .sim
        .add_actor(Box::new(FnActor::new(move |ctx, _from, msg| {
            if let Ok(ev) = msg.downcast::<NetEvent>() {
                if let NetEvent::TcpConnected { conn, .. } = *ev {
                    net.tcp_close(ctx, conn);
                }
            }
        })));
    let net = w.net.clone();
    let a = w.a;
    let b = w.b;
    let starter = w
        .sim
        .add_actor(Box::new(FnActor::new(move |ctx, _from, _msg| {
            net.tcp_connect(ctx, a, client, SocketAddr::new(b, 6379));
        })));
    w.sim.schedule(SimTime::ZERO, starter, ());
    w.sim.run_to_completion();
    assert_eq!(*closed.borrow(), 1);
}
