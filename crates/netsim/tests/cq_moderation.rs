//! CQ interrupt moderation: `cq_notify_threshold` / `cq_notify_timer`
//! coalescing semantics.
//!
//! The harness mirrors `rdma_flow.rs`: two scripted endpoints on a raw
//! verbs connection, with the receive side logging the simulation time at
//! which every completion is polled. Comparing a moderated run against an
//! unmoderated run of the same post schedule gives an *exact* bound: the
//! fabric delivery schedule does not depend on CQ arming, so a completion
//! polled at `t` unmoderated must be polled by `t + cq_notify_timer`
//! moderated — the no-stranding guarantee.

// Test payloads and loop counters are tiny literals; casts cannot truncate.
#![allow(clippy::cast_possible_truncation)]
use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;
use skv_netsim::{MrId, Net, NetEvent, NetParams, QpId, SendOp, SendWr, SocketAddr, Topology};
use skv_simcore::{FnActor, SimDuration, SimTime, Simulation};

struct World {
    sim: Simulation,
    net: Net,
    a: skv_netsim::NodeId,
    b: skv_netsim::NodeId,
}

fn world_with(params: NetParams) -> World {
    let mut sim = Simulation::new(11);
    let mut topo = Topology::new();
    let a = topo.add_host();
    let b = topo.add_host();
    let net = Net::install(&mut sim, topo, params);
    World { sim, net, a, b }
}

type PollLog = Rc<RefCell<Vec<(u64, SimTime)>>>;

/// Establish a QP pair. The server posts `recvs` receives up front and
/// logs `(wr_id, poll time)` for every completion it drains; both sides
/// re-arm after each drain, so moderation governs when drains happen.
fn establish_logged(w: &mut World, recvs: usize) -> (QpId, MrId, PollLog) {
    let server_mr = w.net.register_mr(w.b, 1 << 20);
    let addr = SocketAddr::new(w.b, 6379);
    let server_log: PollLog = Rc::default();
    let client_qp: Rc<RefCell<Option<QpId>>> = Rc::default();

    let net = w.net.clone();
    let log = server_log.clone();
    let server = w
        .sim
        .add_actor(Box::new(FnActor::new(move |ctx, _from, msg| {
            let Ok(ev) = msg.downcast::<NetEvent>() else {
                return;
            };
            match *ev {
                NetEvent::CmConnectRequest { req, .. } => {
                    let cq = net.create_cq(ctx.id());
                    let qp = net.rdma_accept(ctx, req, cq).expect("fresh CM request");
                    for i in 0..recvs {
                        net.post_recv(qp, 1000 + i as u64).unwrap();
                    }
                    net.req_notify_cq(ctx, cq);
                }
                NetEvent::CqNotify { cq } => {
                    let now = ctx.now();
                    log.borrow_mut()
                        .extend(net.poll_cq(cq, 64).into_iter().map(|wc| (wc.wr_id, now)));
                    net.req_notify_cq(ctx, cq);
                }
                _ => {}
            }
        })));
    w.net.rdma_listen(addr, server);

    let net = w.net.clone();
    let cqp = client_qp.clone();
    let client = w
        .sim
        .add_actor(Box::new(FnActor::new(move |ctx, _from, msg| {
            let Ok(ev) = msg.downcast::<NetEvent>() else {
                return;
            };
            match *ev {
                NetEvent::CmEstablished { qp, .. } => {
                    *cqp.borrow_mut() = Some(qp);
                }
                NetEvent::CqNotify { cq } => {
                    net.poll_cq(cq, 64);
                    net.req_notify_cq(ctx, cq);
                }
                _ => {}
            }
        })));
    let net = w.net.clone();
    let a = w.a;
    let starter = w
        .sim
        .add_actor(Box::new(FnActor::new(move |ctx, _from, _msg| {
            let cq = net.create_cq(client);
            net.req_notify_cq(ctx, cq);
            net.rdma_connect(ctx, a, client, cq, addr);
        })));
    w.sim.schedule(SimTime::ZERO, starter, ());
    w.sim.run_to_completion();

    let qp = client_qp.borrow().expect("connection must establish");
    (qp, server_mr, server_log)
}

/// Schedule one WriteImm per entry of `offsets_us` (microseconds after the
/// current sim time), each from its own one-shot helper, then run the
/// simulation to quiescence.
fn post_schedule(w: &mut World, qp: QpId, mr: MrId, offsets_us: &[u64]) {
    let base = w.sim.now();
    for (i, off) in offsets_us.iter().enumerate() {
        let net = w.net.clone();
        let wr = SendWr {
            wr_id: i as u64,
            op: SendOp::WriteImm {
                remote_mr: mr,
                remote_offset: 64 * i,
                imm: i as u32,
            },
            data: vec![i as u8; 8].into(),
        };
        let helper = w
            .sim
            .add_actor(Box::new(FnActor::new(move |ctx, _from, _msg| {
                net.post_send(ctx, qp, wr.clone()).unwrap();
            })));
        w.sim
            .schedule(base + SimDuration::from_micros(*off), helper, ());
    }
    w.sim.run_to_completion();
}

/// Run one post schedule under `params`; returns the receive-side poll log
/// (sorted by wr_id) and the finished world for counter inspection.
fn run_case(params: NetParams, offsets_us: &[u64]) -> (Vec<(u64, SimTime)>, World) {
    let mut w = world_with(params);
    let (qp, mr, log) = establish_logged(&mut w, offsets_us.len().max(1) + 8);
    post_schedule(&mut w, qp, mr, offsets_us);
    let mut polled = log.borrow().clone();
    polled.sort_unstable_by_key(|(wr_id, _)| *wr_id);
    drop(log);
    (polled, w)
}

fn moderated(threshold: usize, timer: SimDuration) -> NetParams {
    NetParams {
        cq_notify_threshold: threshold,
        cq_notify_timer: timer,
        ..NetParams::default()
    }
}

#[test]
fn defaults_are_unmoderated_and_notify_per_completion() {
    let params = NetParams::default();
    assert!(!params.cq_moderation_active());

    // Four posts spaced far apart: each completion is a fresh notify on
    // each side, so the two counters stay 1:1.
    let (polled, w) = run_case(params, &[0, 100, 200, 300]);
    assert_eq!(polled.len(), 4);
    assert_eq!(
        w.net.counters().get("rdma.cq_notifies"),
        w.net.counters().get("rdma.wcs_polled"),
        "unmoderated spaced completions are one notify per WC"
    );
    assert_eq!(w.net.counters().get("rdma.wcs_polled"), 8, "both sides");
}

#[test]
fn burst_collapses_notifies_below_wcs_polled() {
    let n = 16u64;
    let threshold = 4usize;
    let offsets = vec![0u64; n as usize];
    let (polled, w) = run_case(moderated(threshold, SimDuration::from_millis(1)), &offsets);

    assert_eq!(polled.len(), n as usize, "moderation loses nothing");
    let notifies = w.net.counters().get("rdma.cq_notifies");
    let wcs = w.net.counters().get("rdma.wcs_polled");
    assert_eq!(wcs, 2 * n, "sender + receiver completions all polled");
    assert!(
        notifies < wcs,
        "the point of moderation: {notifies} notifies for {wcs} WCs"
    );
    // Both CQs collapse toward one notify per threshold-sized batch; allow
    // one trailing timer flush per side.
    let per_side_budget = n / threshold as u64 + 1;
    assert!(
        notifies <= 2 * per_side_budget,
        "{notifies} notifies exceeds coalescing budget {}",
        2 * per_side_budget
    );
}

#[test]
fn lone_completion_is_flushed_exactly_at_the_timer() {
    let timer = SimDuration::from_micros(50);
    // Threshold 8 with a single post: only the coalescing timer can flush.
    let (polled_mod, _) = run_case(moderated(8, timer), &[0]);
    let (polled_raw, _) = run_case(NetParams::default(), &[0]);
    assert_eq!(polled_mod.len(), 1);
    assert_eq!(polled_raw.len(), 1);
    assert_eq!(
        polled_mod[0].1,
        polled_raw[0].1 + timer,
        "a sub-threshold completion waits the full deadline and no longer"
    );
}

#[test]
fn req_notify_fires_immediately_when_backlog_meets_threshold() {
    // With a pre-armed CQ the drain handler re-arms *after* polling, so a
    // backlog at/above threshold at re-arm time must fire without waiting
    // for the timer — depth-triggered, not edge-triggered. A large burst
    // against a tiny timer exercises that path: total time to drain must
    // not be n/threshold timer periods.
    let timer = SimDuration::from_micros(40);
    let offsets = vec![0u64; 32];
    let (polled, _) = run_case(moderated(2, timer), &offsets);
    assert_eq!(polled.len(), 32);
    let first = polled.iter().map(|(_, t)| *t).min().unwrap();
    let last = polled.iter().map(|(_, t)| *t).max().unwrap();
    assert!(
        last - first < SimDuration::from_micros(40 * 16),
        "threshold firing must not serialize the burst on the timer"
    );
}

proptest! {
    /// No completion is ever stranded past `cq_notify_timer`: against the
    /// identical post schedule, the moderated poll time of every WC is
    /// bounded by its unmoderated poll time plus the coalescing deadline
    /// (delivery times are independent of CQ arming, so the unmoderated
    /// run *is* the arrival schedule).
    #[test]
    fn moderation_never_strands_a_completion(
        threshold in 2usize..9,
        timer_us in 1u64..51,
        gaps in prop::collection::vec(0u64..31, 1..11),
    ) {
        let mut offsets = Vec::with_capacity(gaps.len());
        let mut t = 0u64;
        for g in &gaps {
            t += g;
            offsets.push(t);
        }
        let timer = SimDuration::from_micros(timer_us);
        let (polled_mod, w) = run_case(moderated(threshold, timer), &offsets);
        let (polled_raw, _) = run_case(NetParams::default(), &offsets);

        prop_assert_eq!(polled_mod.len(), offsets.len(), "every WC polled");
        prop_assert_eq!(polled_raw.len(), offsets.len());
        for ((id_m, t_m), (id_r, t_r)) in polled_mod.iter().zip(polled_raw.iter()) {
            prop_assert_eq!(id_m, id_r);
            prop_assert!(
                *t_m <= *t_r + timer,
                "wr {} stranded: moderated {:?} > arrival {:?} + {:?}",
                id_m, t_m, t_r, timer
            );
        }
        // Quiescence really drained everything: nothing left on either CQ.
        prop_assert_eq!(
            w.net.counters().get("rdma.wcs_polled"),
            2 * offsets.len() as u64
        );
    }
}
