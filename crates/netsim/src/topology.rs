//! The physical topology: hosts, SmartNIC SoCs, and the paths between them.
//!
//! The testbed in the paper is a handful of servers on one 100 Gb switch,
//! with a BlueField SmartNIC installed in the master. An *off-path*
//! SmartNIC's SoC behaves like a separate network endpoint behind the NIC
//! switch (paper §II-A2, Figure 3), so the topology models it as its own
//! node whose path to the co-located host is only slightly cheaper than a
//! full host-to-host hop.

use skv_simcore::SimDuration;

use crate::params::NetParams;
use crate::types::{next_id, NodeId};

/// What kind of machine a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A regular server (Xeon host).
    Host,
    /// The ARM SoC of an off-path SmartNIC installed in `host`.
    SmartNicSoc {
        /// The host the SmartNIC is plugged into.
        host: NodeId,
    },
}

/// A static description of all nodes.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    kinds: Vec<NodeKind>,
}

impl Topology {
    /// Create an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a host node.
    pub fn add_host(&mut self) -> NodeId {
        let id = NodeId(next_id(self.kinds.len()));
        self.kinds.push(NodeKind::Host);
        id
    }

    /// Add a SmartNIC SoC installed in `host`.
    ///
    /// # Panics
    /// Panics if `host` is not an existing host node.
    pub fn add_smartnic(&mut self, host: NodeId) -> NodeId {
        assert!(
            matches!(self.kind(host), NodeKind::Host),
            "SmartNICs install into hosts"
        );
        let id = NodeId(next_id(self.kinds.len()));
        self.kinds.push(NodeKind::SmartNicSoc { host });
        id
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// True when no nodes exist.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The kind of `node`.
    ///
    /// # Panics
    /// Panics if `node` does not exist.
    pub fn kind(&self, node: NodeId) -> NodeKind {
        self.kinds[node.0 as usize]
    }

    /// True if `a` and `b` are a host and its own SmartNIC SoC (either way).
    pub fn is_local_pcie_pair(&self, a: NodeId, b: NodeId) -> bool {
        match (self.kind(a), self.kind(b)) {
            (NodeKind::SmartNicSoc { host }, _) if host == b => true,
            (_, NodeKind::SmartNicSoc { host }) if host == a => true,
            _ => false,
        }
    }

    /// One-way base latency between two nodes (excludes serialization).
    ///
    /// * same node: a cheap loopback,
    /// * host ↔ its own SmartNIC SoC: `local_soc_factor ×` host-host
    ///   (Figure 3: "only a little lower" than two hosts),
    /// * anything else (two hosts, a remote SmartNIC, two SmartNICs):
    ///   the full host-host path through the switch.
    pub fn base_latency(&self, a: NodeId, b: NodeId, p: &NetParams) -> SimDuration {
        if a == b {
            return SimDuration::from_nanos(300);
        }
        if self.is_local_pcie_pair(a, b) {
            p.host_host_latency.mul_f64(p.local_soc_factor)
        } else {
            p.host_host_latency.mul_f64(p.remote_soc_factor.max(1.0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_hosts_and_nics() {
        let mut t = Topology::new();
        let h0 = t.add_host();
        let h1 = t.add_host();
        let nic = t.add_smartnic(h0);
        assert_eq!(t.len(), 3);
        assert_eq!(t.kind(h0), NodeKind::Host);
        assert_eq!(t.kind(nic), NodeKind::SmartNicSoc { host: h0 });
        assert!(t.is_local_pcie_pair(h0, nic));
        assert!(t.is_local_pcie_pair(nic, h0));
        assert!(!t.is_local_pcie_pair(h1, nic));
        assert!(!t.is_local_pcie_pair(h0, h1));
    }

    #[test]
    #[should_panic(expected = "install into hosts")]
    fn nic_must_attach_to_host() {
        let mut t = Topology::new();
        let h = t.add_host();
        let nic = t.add_smartnic(h);
        let _ = t.add_smartnic(nic);
    }

    #[test]
    fn figure3_latency_ordering() {
        // The paper's Figure 3: local-host→SmartNIC < host→host, and
        // remote-host→SmartNIC ≈ host→host.
        let mut t = Topology::new();
        let master = t.add_host();
        let remote = t.add_host();
        let nic = t.add_smartnic(master);
        let p = NetParams::default();

        let host_host = t.base_latency(master, remote, &p);
        let local_soc = t.base_latency(master, nic, &p);
        let remote_soc = t.base_latency(remote, nic, &p);

        assert!(local_soc < host_host);
        assert_eq!(remote_soc, host_host);
        // "only a little lower"
        assert!(local_soc.as_nanos() * 10 > host_host.as_nanos() * 7);
    }

    #[test]
    fn loopback_is_cheap() {
        let mut t = Topology::new();
        let h = t.add_host();
        let p = NetParams::default();
        assert!(t.base_latency(h, h, &p) < p.host_host_latency);
    }
}
