//! # skv-netsim — simulated network fabric for the SKV reproduction
//!
//! The SKV paper runs on 100 Gb RoCE hardware with a Mellanox BlueField
//! SmartNIC; this crate substitutes a deterministic software model with the
//! properties the paper's design reacts to:
//!
//! * [`Topology`] — hosts and off-path SmartNIC SoCs; a SoC is "almost a
//!   separate endpoint" (paper Figure 3), so its path to the co-located
//!   host costs nearly a full network hop,
//! * a TCP-like transport with kernel-stack latency and per-message CPU
//!   cost (the original-Redis baseline of Figure 10),
//! * RDMA verbs — QPs, MRs holding real bytes, SEND/RECV, WRITE,
//!   WRITE_WITH_IMM, READ, CQs with completion-event-channel semantics,
//!   and RDMA_CM connection management,
//! * calibration constants in [`NetParams`] / [`MachineParams`].
//!
//! Endpoint actors drive the fabric through the cloneable [`Net`] handle
//! and receive [`NetEvent`] messages back through the simulation queue.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

mod det;
mod fabric;
mod faults;
mod params;
mod rdma;
mod tcp;
mod topology;
mod types;

pub use det::{DetMap, DetSet};
pub use fabric::{Net, RNR_WR_ID};
pub use faults::{FaultPlan, LinkFault, Partition, TimeWindow, Verdict};
pub use params::{MachineParams, NetParams};
pub use rdma::{CmError, PostError, PostListError};
pub use skv_simcore::Frame;
pub use topology::{NodeKind, Topology};
pub use types::{
    CmReqId, CqId, MrId, NetEvent, NodeId, QpId, SendOp, SendWr, SocketAddr, TcpConnId, Wc,
    WcOpcode, WcStatus,
};
