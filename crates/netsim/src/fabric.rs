//! The simulated fabric: shared state, the fabric actor, and timing.
//!
//! [`Net`] is a cheaply cloneable handle that endpoint actors use to drive
//! the network synchronously (post a WR, poll a CQ, send on a TCP stream).
//! Deliveries and completions come back asynchronously as
//! [`crate::NetEvent`] messages scheduled through the simulation queue.
//!
//! Wire-level arrivals that must mutate fabric state at a *future* instant
//! (placing RDMA-written bytes into a memory region, pushing a work
//! completion) are routed through a hidden [`FabricActor`] registered in the
//! simulation.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use skv_simcore::stats::Counters;
use skv_simcore::{
    Actor, ActorId, Context, DetRng, Frame, Payload, SimDuration, SimTime, Simulation,
};

use crate::det::DetMap;
use crate::faults::{FaultPlan, Verdict};
use crate::params::NetParams;
use crate::topology::{NodeKind, Topology};
use crate::types::*;

/// Receive WR id reported when a `Send`/`WriteImm` arrives with no posted
/// receive (the simulator's stand-in for an RNR situation).
pub const RNR_WR_ID: u64 = u64::MAX;

// ---------------------------------------------------------------------------
// state records
// ---------------------------------------------------------------------------

#[derive(Debug)]
pub(crate) struct TcpConnState {
    pub(crate) node: NodeId,
    pub(crate) actor: ActorId,
    pub(crate) peer: Option<TcpConnId>,
    pub(crate) peer_addr: SocketAddr,
    /// Earliest instant the next in-order delivery may occur.
    pub(crate) next_delivery: SimTime,
    pub(crate) open: bool,
}

#[derive(Debug)]
pub(crate) struct QpState {
    pub(crate) node: NodeId,
    pub(crate) actor: ActorId,
    pub(crate) cq: CqId,
    pub(crate) peer: Option<QpId>,
    pub(crate) peer_addr: SocketAddr,
    pub(crate) recv_queue: VecDeque<u64>,
    pub(crate) open: bool,
    /// QP error state (entered on retry exhaustion / unreachable peer);
    /// posting to an errored QP fails until it is re-established.
    pub(crate) error: bool,
}

#[derive(Debug)]
pub(crate) struct CqState {
    pub(crate) owner: ActorId,
    pub(crate) queue: VecDeque<Wc>,
    pub(crate) armed: bool,
    /// A moderation coalescing-deadline event is in flight for this CQ.
    /// An already-scheduled deadline is never extended — it can only fire
    /// *earlier* than a fresh one would, so the no-stranding bound holds.
    pub(crate) timer_pending: bool,
}

#[derive(Debug)]
pub(crate) struct MrState {
    pub(crate) node: NodeId,
    pub(crate) buf: Vec<u8>,
}

#[derive(Debug)]
pub(crate) struct CmRequest {
    pub(crate) from_actor: ActorId,
    pub(crate) from_node: NodeId,
    pub(crate) from_cq: CqId,
    pub(crate) from_addr: SocketAddr,
    pub(crate) listener_addr: SocketAddr,
}

/// Internal messages processed by the fabric actor at arrival instants.
pub(crate) enum FabricMsg {
    /// An RDMA operation reaches the destination NIC.
    RdmaArrive {
        src_qp: QpId,
        dst_qp: QpId,
        op: SendOp,
        data: Frame,
        wr_id: u64,
        /// One-way path latency (for scheduling the sender's ack/completion).
        path_latency: SimDuration,
    },
    /// A completion becomes visible in a sender-side CQ.
    PushWc { cq: CqId, wc: Wc },
    /// An RDMA_CM connection request reaches a listener.
    CmRequestArrive { req: CmReqId },
    /// An accepted connection's establishment notification reaches a side.
    CmEstablishedArrive {
        actor: ActorId,
        qp: QpId,
        peer: SocketAddr,
    },
    /// A CQ moderation coalescing deadline expires (see
    /// [`crate::NetParams::cq_notify_timer`]).
    CqModerationTimer { cq: CqId },
}

// ---------------------------------------------------------------------------
// NetInner
// ---------------------------------------------------------------------------

pub(crate) struct NetInner {
    pub(crate) topo: Topology,
    pub(crate) params: NetParams,
    pub(crate) fabric_actor: ActorId,
    pub(crate) node_up: Vec<bool>,
    /// Per-node egress serialization: instant the NIC's TX port frees up.
    pub(crate) egress_free: Vec<SimTime>,
    pub(crate) tcp_listeners: DetMap<SocketAddr, ActorId>,
    pub(crate) tcp_conns: Vec<TcpConnState>,
    pub(crate) cm_listeners: DetMap<SocketAddr, ActorId>,
    pub(crate) cm_requests: Vec<Option<CmRequest>>,
    pub(crate) qps: Vec<QpState>,
    pub(crate) cqs: Vec<CqState>,
    pub(crate) mrs: Vec<MrState>,
    pub(crate) next_ephemeral: u16,
    pub(crate) counters: Counters,
    /// Installed fault schedule (empty plan = nothing goes wrong).
    pub(crate) faults: FaultPlan,
    /// RNG dedicated to fault verdicts, reseeded when a plan is installed.
    pub(crate) fault_rng: DetRng,
}

impl NetInner {
    fn new(topo: Topology, params: NetParams) -> Self {
        let n = topo.len();
        NetInner {
            topo,
            params,
            fabric_actor: ActorId::SYSTEM,
            node_up: vec![true; n],
            egress_free: vec![SimTime::ZERO; n],
            tcp_listeners: DetMap::new(),
            tcp_conns: Vec::new(),
            cm_listeners: DetMap::new(),
            cm_requests: Vec::new(),
            qps: Vec::new(),
            cqs: Vec::new(),
            mrs: Vec::new(),
            next_ephemeral: 50_000,
            counters: Counters::new(),
            faults: FaultPlan::new(0),
            fault_rng: DetRng::new(0),
        }
    }

    pub(crate) fn alloc_ephemeral(&mut self) -> u16 {
        let p = self.next_ephemeral;
        self.next_ephemeral = self.next_ephemeral.wrapping_add(1).max(50_000);
        p
    }

    pub(crate) fn up(&self, node: NodeId) -> bool {
        self.node_up[node.0 as usize]
    }

    /// Compute when `bytes` sent from `src` arrive at `dst`'s NIC, charging
    /// the sender's egress port. Returns `(arrival, one_way_latency)`.
    pub(crate) fn wire(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: usize,
    ) -> (SimTime, SimDuration) {
        let lat = self.topo.base_latency(src, dst, &self.params);
        let tx_ready = now + self.params.nic_tx_delay;
        let start = tx_ready.max(self.egress_free[src.0 as usize]);
        let end = start + self.params.serialize_time(bytes);
        self.egress_free[src.0 as usize] = end;
        (end + lat, lat)
    }

    /// Decide the fate of one `src → dst` message under the installed
    /// fault plan.
    pub(crate) fn judge(&mut self, now: SimTime, src: NodeId, dst: NodeId) -> Verdict {
        if self.faults.is_noop() {
            return Verdict::Deliver;
        }
        self.faults.judge(now, src, dst, &mut self.fault_rng)
    }

    /// Append a WC to a CQ and, if the CQ is armed, either fire its
    /// completion channel or — under interrupt moderation — hold the
    /// notify until the threshold is met or the coalescing deadline runs.
    pub(crate) fn push_wc(&mut self, ctx: &mut Context<'_>, cq: CqId, wc: Wc) {
        let state = &mut self.cqs[cq.0 as usize];
        state.queue.push_back(wc);
        if !state.armed {
            return;
        }
        if !self.params.cq_moderation_active()
            || self.cqs[cq.0 as usize].queue.len() >= self.params.cq_notify_threshold
        {
            self.fire_cq_notify(ctx, cq);
        } else {
            self.ensure_cq_timer(ctx, cq);
        }
    }

    /// Fire `CqNotify` at a CQ's owner, disarming the completion channel.
    /// Every notify the fabric ever emits goes through here, so
    /// `rdma.cq_notifies` counts them all (the doorbell-style observable
    /// for the N-to-1 moderation collapse).
    pub(crate) fn fire_cq_notify(&mut self, ctx: &mut Context<'_>, cq: CqId) {
        let state = &mut self.cqs[cq.0 as usize];
        state.armed = false;
        let owner = state.owner;
        self.counters.inc("rdma.cq_notifies");
        ctx.send(owner, NetEvent::CqNotify { cq });
    }

    /// Schedule the moderation coalescing deadline for `cq` unless one is
    /// already in flight.
    pub(crate) fn ensure_cq_timer(&mut self, ctx: &mut Context<'_>, cq: CqId) {
        let state = &mut self.cqs[cq.0 as usize];
        if state.timer_pending {
            return;
        }
        state.timer_pending = true;
        let fabric = self.fabric_actor;
        let deadline = self.params.cq_notify_timer;
        ctx.send_in(deadline, fabric, FabricMsg::CqModerationTimer { cq });
    }

    /// The coalescing deadline expired: flush a sub-threshold notify if the
    /// CQ is still armed with completions waiting. A deadline that raced a
    /// threshold-fire (or a drain) finds nothing to do and is dropped —
    /// firing early is impossible, firing late never happens because the
    /// deadline was scheduled at the *first* sub-threshold completion.
    pub(crate) fn cq_timer_fire(&mut self, ctx: &mut Context<'_>, cq: CqId) {
        let state = &mut self.cqs[cq.0 as usize];
        state.timer_pending = false;
        if state.armed && !state.queue.is_empty() {
            self.fire_cq_notify(ctx, cq);
        }
    }
}

// ---------------------------------------------------------------------------
// Net handle
// ---------------------------------------------------------------------------

/// Handle to the simulated network fabric.
///
/// Clone freely; all clones share state. Methods that produce asynchronous
/// outcomes take the calling actor's [`Context`] so deliveries can be
/// scheduled.
#[derive(Clone)]
pub struct Net {
    pub(crate) inner: Rc<RefCell<NetInner>>,
}

impl Net {
    /// Build a fabric over `topo` and register its internal actor in `sim`.
    pub fn install(sim: &mut Simulation, topo: Topology, params: NetParams) -> Net {
        let inner = Rc::new(RefCell::new(NetInner::new(topo, params)));
        let actor_inner = inner.clone();
        let id = sim.add_actor(Box::new(FabricActor { net: actor_inner }));
        inner.borrow_mut().fabric_actor = id;
        Net { inner }
    }

    /// The calibration parameters in force.
    pub fn params(&self) -> NetParams {
        self.inner.borrow().params.clone()
    }

    /// Number of nodes in the topology.
    pub fn num_nodes(&self) -> usize {
        self.inner.borrow().topo.len()
    }

    /// Node kind lookup.
    pub fn node_kind(&self, node: NodeId) -> NodeKind {
        self.inner.borrow().topo.kind(node)
    }

    /// Whether `node` is currently up.
    pub fn node_up(&self, node: NodeId) -> bool {
        self.inner.borrow().up(node)
    }

    /// Bring a node up or down. While down, nothing it sends is accepted
    /// and arrivals addressed to it are discarded.
    pub fn set_node_up(&self, node: NodeId, up: bool) {
        self.inner.borrow_mut().node_up[node.0 as usize] = up;
    }

    /// Snapshot of fabric counters (messages, bytes, drops, RNRs, faults).
    pub fn counters(&self) -> Counters {
        self.inner.borrow().counters.clone()
    }

    /// Install a fault schedule. The plan's private RNG is reseeded from
    /// `plan.seed`, so installing the same plan twice replays identically.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        let mut inner = self.inner.borrow_mut();
        inner.fault_rng = DetRng::new(plan.seed);
        inner.faults = plan;
    }

    /// One-way base latency between two nodes under the current parameters.
    pub fn base_latency(&self, a: NodeId, b: NodeId) -> SimDuration {
        let inner = self.inner.borrow();
        inner.topo.base_latency(a, b, &inner.params)
    }
}

// ---------------------------------------------------------------------------
// fabric actor
// ---------------------------------------------------------------------------

/// Hidden actor that applies wire arrivals to fabric state.
struct FabricActor {
    net: Rc<RefCell<NetInner>>,
}

impl Actor for FabricActor {
    fn on_message(&mut self, ctx: &mut Context<'_>, _from: ActorId, msg: Payload) {
        let Ok(msg) = msg.downcast::<FabricMsg>() else {
            return;
        };
        let mut net = self.net.borrow_mut();
        match *msg {
            FabricMsg::RdmaArrive {
                src_qp,
                dst_qp,
                op,
                data,
                wr_id,
                path_latency,
            } => {
                crate::rdma::handle_arrival(
                    &mut net,
                    ctx,
                    src_qp,
                    dst_qp,
                    op,
                    data,
                    wr_id,
                    path_latency,
                );
            }
            FabricMsg::PushWc { cq, wc } => {
                net.push_wc(ctx, cq, wc);
            }
            FabricMsg::CmRequestArrive { req } => {
                crate::rdma::handle_cm_request_arrival(&mut net, ctx, req);
            }
            FabricMsg::CmEstablishedArrive { actor, qp, peer } => {
                ctx.send(actor, NetEvent::CmEstablished { qp, peer });
            }
            FabricMsg::CqModerationTimer { cq } => {
                net.cq_timer_fire(ctx, cq);
            }
        }
    }

    fn name(&self) -> &str {
        "fabric"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric() -> (Simulation, Net, NodeId, NodeId) {
        let mut sim = Simulation::new(7);
        let mut topo = Topology::new();
        let a = topo.add_host();
        let b = topo.add_host();
        let net = Net::install(&mut sim, topo, NetParams::default());
        (sim, net, a, b)
    }

    #[test]
    fn install_creates_handle() {
        let (_sim, net, a, _b) = fabric();
        assert_eq!(net.num_nodes(), 2);
        assert!(net.node_up(a));
        assert_eq!(net.node_kind(a), NodeKind::Host);
    }

    #[test]
    fn node_up_toggles() {
        let (_sim, net, a, _b) = fabric();
        net.set_node_up(a, false);
        assert!(!net.node_up(a));
        net.set_node_up(a, true);
        assert!(net.node_up(a));
    }

    #[test]
    fn egress_serializes_back_to_back_sends() {
        let (_sim, net, a, b) = fabric();
        let mut inner = net.inner.borrow_mut();
        let now = SimTime::ZERO;
        // Two 125_000-byte transfers: 10us serialization each at 100 Gb/s.
        let (arr1, _) = inner.wire(now, a, b, 125_000);
        let (arr2, _) = inner.wire(now, a, b, 125_000);
        assert_eq!(
            arr2.as_nanos() - arr1.as_nanos(),
            10_000,
            "second transfer must queue behind the first"
        );
    }

    #[test]
    fn ephemeral_ports_are_unique() {
        let (_sim, net, _a, _b) = fabric();
        let mut inner = net.inner.borrow_mut();
        let p1 = inner.alloc_ephemeral();
        let p2 = inner.alloc_ephemeral();
        assert_ne!(p1, p2);
        assert!(p1 >= 50_000 && p2 >= 50_000);
    }
}
