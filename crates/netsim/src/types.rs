//! Identifiers, events, and work-completion types for the simulated fabric.

use skv_simcore::Frame;
use std::fmt;

/// Identifies a node (a host, or a SmartNIC SoC) in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A network address: a node plus a 16-bit port.
///
/// Both the TCP-like transport and RDMA_CM listeners bind addresses of this
/// form, mirroring how the real SKV listens on an RDMA port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SocketAddr {
    /// The node.
    pub node: NodeId,
    /// The port.
    pub port: u16,
}

impl SocketAddr {
    /// Construct an address.
    pub fn new(node: NodeId, port: u16) -> Self {
        SocketAddr { node, port }
    }
}

impl fmt::Display for SocketAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.node, self.port)
    }
}

/// Handle to one endpoint of an established TCP-like connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TcpConnId(pub u32);

/// Handle to a queue pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QpId(pub u32);

/// Handle to a completion queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CqId(pub u32);

/// Handle to a registered memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MrId(pub u32);

/// Handle to a pending RDMA_CM connection request awaiting accept/reject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CmReqId(pub u32);

/// Verbs operation kinds, mirroring `ibv_wr_opcode`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendOp {
    /// Two-sided send; consumes a posted receive at the peer.
    Send,
    /// One-sided write into the peer MR; no receive consumed, no peer
    /// completion generated.
    Write {
        /// Peer memory region to write into.
        remote_mr: MrId,
        /// Byte offset within the region.
        remote_offset: usize,
    },
    /// One-sided write that also delivers a 32-bit immediate, consuming a
    /// posted receive and generating a completion at the peer — the
    /// primitive SKV uses for both command delivery and replication.
    WriteImm {
        /// Peer memory region to write into.
        remote_mr: MrId,
        /// Byte offset within the region.
        remote_offset: usize,
        /// The immediate value delivered with the completion.
        imm: u32,
    },
    /// One-sided read from the peer MR.
    Read {
        /// Peer memory region to read from.
        remote_mr: MrId,
        /// Byte offset within the region.
        remote_offset: usize,
        /// Number of bytes to read.
        len: usize,
    },
}

/// A send-side work request.
#[derive(Debug, Clone)]
pub struct SendWr {
    /// Application cookie returned in the completion.
    pub wr_id: u64,
    /// The operation.
    pub op: SendOp,
    /// Payload carried by `Send`/`Write`/`WriteImm` (empty for `Read`).
    /// A [`Frame`], so posting a fan-out of the same payload to many QPs
    /// is a refcount bump per WR, not a copy.
    pub data: Frame,
}

/// Completion opcode, mirroring `ibv_wc_opcode`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WcOpcode {
    /// A posted send completed (peer received it).
    Send,
    /// An RDMA write (with or without immediate) completed at the sender.
    RdmaWrite,
    /// An RDMA read completed at the requester.
    RdmaRead,
    /// A two-sided receive completed.
    Recv,
    /// A receive completed due to a peer `WriteImm`.
    RecvRdmaWithImm,
}

/// Completion status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WcStatus {
    /// The operation succeeded.
    Success,
    /// The peer was unreachable (node down / QP torn down).
    RemoteUnreachable,
    /// A posted receive was not available for a `Send`/`WriteImm`.
    ReceiverNotReady,
    /// Transport retries were exhausted (injected loss); the QP has
    /// transitioned to the error state and must be re-established.
    RetryExceeded,
    /// A one-sided READ/WRITE named a range outside the target MR, the
    /// simulated analogue of `IBV_WC_REM_ACCESS_ERR`: a requester protocol
    /// error is reported to the requester, not a panic on the target host.
    RemoteAccessError,
}

/// A work completion, mirroring `ibv_wc`.
#[derive(Debug, Clone)]
pub struct Wc {
    /// Cookie from the work request (receive-side: the recv WR's cookie).
    pub wr_id: u64,
    /// What completed.
    pub opcode: WcOpcode,
    /// Outcome.
    pub status: WcStatus,
    /// The QP this completion belongs to.
    pub qp: QpId,
    /// Number of payload bytes involved.
    pub byte_len: usize,
    /// Immediate value (valid for `RecvRdmaWithImm`).
    pub imm: u32,
    /// For receive-side completions of `WriteImm`: where in the local MR the
    /// payload landed. (A real application knows this from its ring-buffer
    /// protocol; the simulator reports it for convenience and asserts in
    /// tests that protocols track it correctly.)
    pub mr_offset: usize,
    /// The payload, as a zero-copy view of the sender's frame: valid for
    /// `Recv` completions of two-sided sends, `RdmaRead` completions, and
    /// `RecvRdmaWithImm` — for the latter the same bytes have also been
    /// written into the target MR at `mr_offset` (one-sided reads of the
    /// region still see them), but consuming `data` directly skips the
    /// `mr_read` copy-out.
    pub data: Frame,
}

/// Events delivered by the fabric to endpoint actors.
///
/// Endpoint actors downcast their [`skv_simcore::Payload`] messages to this
/// type to handle network activity.
#[derive(Debug)]
pub enum NetEvent {
    /// An outbound TCP connection is established.
    TcpConnected {
        /// The local connection handle.
        conn: TcpConnId,
        /// The remote address.
        peer: SocketAddr,
    },
    /// A listener accepted an inbound TCP connection.
    TcpAccepted {
        /// The local connection handle.
        conn: TcpConnId,
        /// The remote address.
        peer: SocketAddr,
    },
    /// A TCP connect attempt failed (no listener / node down).
    TcpConnectFailed {
        /// The address that was dialled.
        to: SocketAddr,
    },
    /// Bytes arrived on a TCP connection (in order).
    TcpDelivered {
        /// The local connection handle.
        conn: TcpConnId,
        /// The bytes (a zero-copy view of the sender's frame).
        bytes: Frame,
    },
    /// A TCP peer closed the connection.
    TcpClosed {
        /// The local connection handle.
        conn: TcpConnId,
    },
    /// An inbound RDMA_CM connection request; answer with
    /// [`crate::Net::rdma_accept`] or [`crate::Net::rdma_reject`].
    CmConnectRequest {
        /// Token identifying this request.
        req: CmReqId,
        /// Who is dialling.
        from: SocketAddr,
    },
    /// An RDMA_CM connection is established; the QP is ready.
    CmEstablished {
        /// The local queue pair.
        qp: QpId,
        /// The remote address.
        peer: SocketAddr,
    },
    /// An RDMA_CM connect attempt failed.
    CmConnectFailed {
        /// The address that was dialled.
        to: SocketAddr,
    },
    /// The completion event channel fired for `cq`
    /// (armed via [`crate::Net::req_notify_cq`]).
    CqNotify {
        /// The completion queue with new completions.
        cq: CqId,
    },
}

/// Allocate the next dense resource id, panicking loudly if the 32-bit id
/// space is ever exhausted (a simulation bug, not a recoverable error).
pub(crate) fn next_id(len: usize) -> u32 {
    match u32::try_from(len) {
        Ok(id) => id,
        Err(_) => panic!("resource id space exhausted ({len} allocated)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let a = SocketAddr::new(NodeId(3), 6379);
        assert_eq!(a.to_string(), "node3:6379");
        assert_eq!(NodeId(0).to_string(), "node0");
    }

    #[test]
    fn addr_ordering_is_total() {
        let a = SocketAddr::new(NodeId(1), 5);
        let b = SocketAddr::new(NodeId(1), 6);
        let c = SocketAddr::new(NodeId(2), 0);
        assert!(a < b && b < c);
    }
}
