//! The TCP-like kernel-stack transport.
//!
//! Original Redis runs over the kernel network stack; the paper's Figure 10
//! baseline ("original Redis") therefore pays per-message syscall and copy
//! overhead and higher end-to-end latency. This module models a reliable,
//! in-order, connection-oriented message stream with those costs.
//!
//! CPU accounting: the fabric adds *latency*; the *CPU time* burned in the
//! kernel is charged by the application actors themselves (via
//! [`crate::NetParams::tcp_send_cost`] / [`tcp_recv_cost`]) so that it
//! contends with command execution on the server core, exactly the
//! contention the paper attributes Redis's low throughput to.
//!
//! [`tcp_recv_cost`]: crate::NetParams::tcp_recv_cost

use skv_simcore::{ActorId, Context, Frame, SimDuration};

use crate::fabric::{Net, TcpConnState};
use crate::faults::Verdict;
use crate::types::{next_id, NetEvent, NodeId, SocketAddr, TcpConnId};

impl Net {
    /// Register `actor` as the accept handler for TCP connections to `addr`.
    ///
    /// # Panics
    /// Panics if the address is already bound.
    pub fn tcp_listen(&self, addr: SocketAddr, actor: ActorId) {
        let mut inner = self.inner.borrow_mut();
        let prev = inner.tcp_listeners.insert(addr, actor);
        assert!(prev.is_none(), "TCP address {addr} already bound");
    }

    /// Stop listening on `addr`.
    pub fn tcp_unlisten(&self, addr: SocketAddr) {
        self.inner.borrow_mut().tcp_listeners.remove(&addr);
    }

    /// Open a connection from (`from_node`, `from_actor`) to `to`.
    ///
    /// On success the caller receives [`NetEvent::TcpConnected`] and the
    /// listener receives [`NetEvent::TcpAccepted`] after the handshake
    /// latency; otherwise the caller receives [`NetEvent::TcpConnectFailed`].
    pub fn tcp_connect(
        &self,
        ctx: &mut Context<'_>,
        from_node: NodeId,
        from_actor: ActorId,
        to: SocketAddr,
    ) {
        let mut inner = self.inner.borrow_mut();
        let handshake = inner.params.connect_latency;
        let listener = inner.tcp_listeners.get(&to).copied();
        let reachable = inner.up(from_node) && inner.up(to.node) && listener.is_some();
        let judged = inner.judge(ctx.now(), from_node, to.node);
        let listener = match listener {
            Some(l) if reachable && judged != Verdict::Drop => l,
            _ => {
                if reachable {
                    inner.counters.inc("faults.tcp_connect_dropped");
                }
                ctx.send_in(handshake, from_actor, NetEvent::TcpConnectFailed { to });
                return;
            }
        };
        let local_port = inner.alloc_ephemeral();
        let local_addr = SocketAddr::new(from_node, local_port);

        let done = ctx.now() + handshake;
        let client_id = TcpConnId(next_id(inner.tcp_conns.len()));
        inner.tcp_conns.push(TcpConnState {
            node: from_node,
            actor: from_actor,
            peer: None,
            peer_addr: to,
            next_delivery: done,
            open: true,
        });
        let server_id = TcpConnId(next_id(inner.tcp_conns.len()));
        inner.tcp_conns.push(TcpConnState {
            node: to.node,
            actor: listener,
            peer: Some(client_id),
            peer_addr: local_addr,
            next_delivery: done,
            open: true,
        });
        inner.tcp_conns[client_id.0 as usize].peer = Some(server_id);
        inner.counters.inc("tcp.connects");

        ctx.send_in(
            handshake,
            from_actor,
            NetEvent::TcpConnected {
                conn: client_id,
                peer: to,
            },
        );
        ctx.send_in(
            handshake,
            listener,
            NetEvent::TcpAccepted {
                conn: server_id,
                peer: local_addr,
            },
        );
    }

    /// Send one message on `conn`. Delivery is reliable and in order.
    ///
    /// The caller should separately charge [`crate::NetParams::tcp_send_cost`]
    /// to its own core, and the receiver [`crate::NetParams::tcp_recv_cost`]
    /// upon delivery.
    pub fn tcp_send(&self, ctx: &mut Context<'_>, conn: TcpConnId, bytes: impl Into<Frame>) {
        let bytes: Frame = bytes.into();
        let mut inner = self.inner.borrow_mut();
        let state = &inner.tcp_conns[conn.0 as usize];
        if !state.open {
            return;
        }
        let Some(peer_id) = state.peer else { return };
        let src = state.node;
        let (dst_node, dst_actor, dst_open) = {
            let p = &inner.tcp_conns[peer_id.0 as usize];
            (p.node, p.actor, p.open)
        };
        if !dst_open || !inner.up(src) || !inner.up(dst_node) {
            inner.counters.inc("tcp.drops");
            return;
        }
        let n = bytes.len();
        let stack = inner.params.tcp_stack_latency;
        let extra_base = inner.params.tcp_base_latency;
        // Fault injection: TCP stays reliable, so a dropped segment costs a
        // retransmission timeout rather than vanishing.
        let fault_delay = match inner.judge(ctx.now(), src, dst_node) {
            Verdict::Deliver => SimDuration::ZERO,
            Verdict::Drop => {
                inner.counters.inc("faults.tcp_retrans");
                inner.params.tcp_rto
            }
            Verdict::Delay(d) => {
                inner.counters.inc("faults.tcp_delayed");
                d
            }
        };
        let (arrival, _lat) = inner.wire(ctx.now(), src, dst_node, n);
        // Kernel stack traversals on both ends plus the TCP path's base cost.
        let mut deliver_at = arrival + stack + stack + extra_base + fault_delay;
        // Enforce in-order delivery per connection.
        let peer = &mut inner.tcp_conns[peer_id.0 as usize];
        deliver_at = deliver_at.max(peer.next_delivery);
        peer.next_delivery = deliver_at;
        inner.counters.inc("tcp.messages");
        inner.counters.add("tcp.bytes", n as u64);

        ctx.send_at(
            deliver_at,
            dst_actor,
            NetEvent::TcpDelivered {
                conn: peer_id,
                bytes,
            },
        );
    }

    /// Close a connection. The peer receives [`NetEvent::TcpClosed`].
    pub fn tcp_close(&self, ctx: &mut Context<'_>, conn: TcpConnId) {
        let mut inner = self.inner.borrow_mut();
        let state = &mut inner.tcp_conns[conn.0 as usize];
        if !state.open {
            return;
        }
        state.open = false;
        let peer = state.peer;
        let src = state.node;
        if let Some(peer_id) = peer {
            let lat = {
                let p = &inner.tcp_conns[peer_id.0 as usize];
                if !p.open {
                    return;
                }
                inner.topo.base_latency(src, p.node, &inner.params)
            };
            let p = &mut inner.tcp_conns[peer_id.0 as usize];
            p.peer = None;
            let actor = p.actor;
            ctx.send_in(lat, actor, NetEvent::TcpClosed { conn: peer_id });
        }
    }

    /// The remote address of a connection endpoint.
    pub fn tcp_peer_addr(&self, conn: TcpConnId) -> SocketAddr {
        self.inner.borrow().tcp_conns[conn.0 as usize].peer_addr
    }

    /// Whether a connection endpoint is still open.
    pub fn tcp_is_open(&self, conn: TcpConnId) -> bool {
        self.inner.borrow().tcp_conns[conn.0 as usize].open
    }
}
