//! RDMA verbs over the simulated fabric.
//!
//! Models the subset of the verbs API that SKV uses (§III-B of the paper):
//! RDMA_CM connection establishment, memory regions, queue pairs,
//! SEND/RECV, WRITE, WRITE_WITH_IMM, READ, and completion queues with
//! completion-event-channel semantics (`ibv_req_notify_cq` /
//! `ibv_get_cq_event`).
//!
//! Memory regions hold real bytes: an RDMA WRITE physically copies the
//! payload into the target region at the arrival instant, so protocols
//! built on top (command rings, replication streams, RDB transfer) move
//! real data and can be checked end-to-end for correctness, not just for
//! timing.
//!
//! Error semantics follow reliable-connection hardware: a WR whose packets
//! are lost (fault injection) or whose destination is gone surfaces as a
//! completion-with-error at the sender — [`WcStatus::RetryExceeded`] /
//! [`WcStatus::RemoteUnreachable`] — and moves the QP to the *error state*,
//! after which posts fail with [`PostError::QpError`] until the application
//! tears the QP down and re-establishes the connection. Nothing is ever
//! silently lost without a send-side signal.
//!
//! One divergence from hardware, chosen deliberately: `req_notify_cq` fires
//! immediately when completions are already queued, removing the classic
//! poll/arm race without requiring apps to re-poll.
//!
//! Completion-event **interrupt moderation** (ConnectX-style coalescing) is
//! modelled by two [`crate::NetParams`] knobs: `cq_notify_threshold` holds
//! an armed CQ's notify until N completions queue, and `cq_notify_timer` is
//! the coalescing deadline that flushes a sub-threshold batch so a lone
//! completion is never stranded. With the default threshold of 1 the
//! machinery is inert and every completion notifies immediately — the
//! historical schedule, bit for bit. The collapse is observable through the
//! `rdma.cq_notifies` / `rdma.wcs_polled` counters, the completion-side
//! analogue of `rdma.doorbells` / `rdma.wrs_posted`.
//!
//! Completion costs follow the same convention as posting costs: the fabric
//! charges nothing, the *polling actor* charges `cq_poll_cpu` per
//! `poll_cq` call plus `wc_handle_cpu` per returned WC to its own core
//! (see `skv-core`'s `cqdrain`).

use skv_simcore::{ActorId, Context, Frame, SimDuration};

use crate::fabric::{CmRequest, CqState, FabricMsg, MrState, Net, NetInner, QpState, RNR_WR_ID};
use crate::faults::Verdict;
use crate::types::*;

/// Why a post failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PostError {
    /// The QP has been closed.
    QpClosed,
    /// The QP is not connected to a peer.
    NotConnected,
    /// The QP is in the error state (retries exhausted on an earlier WR);
    /// tear it down and reconnect.
    QpError,
}

/// Why a linked-WR post list failed partway: verbs `bad_wr` semantics.
///
/// Mirrors `ibv_post_send`'s out-parameter: every WR *before* `index` was
/// posted (and will complete, possibly with an error status); the WR at
/// `index` and everything after it were **not** posted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PostListError {
    /// Index of the first WR that could not be posted (the `bad_wr`).
    pub index: usize,
    /// Why that WR was rejected.
    pub error: PostError,
}

/// Why answering an RDMA_CM connection request failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmError {
    /// The request token was already accepted or rejected (stale event).
    AlreadyAnswered,
}

/// Next 32-bit resource id from a table length. A truncating `as u32` cast
/// would silently alias id 0 after 2^32 allocations; exhaustion is a
/// simulation-scale bug, so it panics instead.
impl Net {
    /// Create a completion queue owned by `owner`.
    pub fn create_cq(&self, owner: ActorId) -> CqId {
        let mut inner = self.inner.borrow_mut();
        let id = CqId(next_id(inner.cqs.len()));
        inner.cqs.push(CqState {
            owner,
            queue: Default::default(),
            armed: false,
            timer_pending: false,
        });
        id
    }

    /// Register a memory region of `len` zeroed bytes on `node`.
    pub fn register_mr(&self, node: NodeId, len: usize) -> MrId {
        let mut inner = self.inner.borrow_mut();
        let id = MrId(next_id(inner.mrs.len()));
        inner.mrs.push(MrState {
            node,
            buf: vec![0; len],
        });
        id
    }

    /// Length of a memory region.
    pub fn mr_len(&self, mr: MrId) -> usize {
        self.inner.borrow().mrs[mr.0 as usize].buf.len()
    }

    /// Read bytes out of a local memory region.
    ///
    /// # Panics
    /// Panics if the range is out of bounds (a protocol bug).
    pub fn mr_read(&self, mr: MrId, offset: usize, len: usize) -> Vec<u8> {
        let inner = self.inner.borrow();
        let buf = &inner.mrs[mr.0 as usize].buf;
        let Some(view) = offset.checked_add(len).and_then(|end| buf.get(offset..end)) else {
            panic!("MR read out of bounds: {}+{} > {}", offset, len, buf.len());
        };
        view.to_vec()
    }

    /// Write bytes into a local memory region.
    ///
    /// # Panics
    /// Panics if the range is out of bounds (a protocol bug).
    pub fn mr_write(&self, mr: MrId, offset: usize, data: &[u8]) {
        let mut inner = self.inner.borrow_mut();
        let buf = &mut inner.mrs[mr.0 as usize].buf;
        let buf_len = buf.len();
        let Some(dst) = offset
            .checked_add(data.len())
            .and_then(|end| buf.get_mut(offset..end))
        else {
            panic!(
                "MR write out of bounds: {}+{} > {}",
                offset,
                data.len(),
                buf_len
            );
        };
        dst.copy_from_slice(data);
    }

    /// Register `actor` as the RDMA_CM listener on `addr`.
    ///
    /// # Panics
    /// Panics if the address is already bound.
    pub fn rdma_listen(&self, addr: SocketAddr, actor: ActorId) {
        let mut inner = self.inner.borrow_mut();
        let prev = inner.cm_listeners.insert(addr, actor);
        assert!(prev.is_none(), "RDMA address {addr} already bound");
    }

    /// Initiate an RDMA_CM connection to `to`.
    ///
    /// The listener receives [`NetEvent::CmConnectRequest`] and answers with
    /// [`Net::rdma_accept`] or [`Net::rdma_reject`]. On success the caller
    /// receives [`NetEvent::CmEstablished`] carrying its new QP, whose
    /// completions go to `cq`.
    pub fn rdma_connect(
        &self,
        ctx: &mut Context<'_>,
        from_node: NodeId,
        from_actor: ActorId,
        cq: CqId,
        to: SocketAddr,
    ) {
        let mut inner = self.inner.borrow_mut();
        let half = inner.params.connect_latency / 2;
        let reachable =
            inner.up(from_node) && inner.up(to.node) && inner.cm_listeners.contains_key(&to);
        let judged = inner.judge(ctx.now(), from_node, to.node);
        if !reachable || judged == Verdict::Drop {
            if reachable {
                inner.counters.inc("faults.cm_dropped");
            }
            ctx.send_in(half * 2, from_actor, NetEvent::CmConnectFailed { to });
            return;
        }
        let port = inner.alloc_ephemeral();
        let req = CmReqId(next_id(inner.cm_requests.len()));
        inner.cm_requests.push(Some(CmRequest {
            from_actor,
            from_node,
            from_cq: cq,
            from_addr: SocketAddr::new(from_node, port),
            listener_addr: to,
        }));
        let fabric = inner.fabric_actor;
        ctx.send_in(half, fabric, FabricMsg::CmRequestArrive { req });
    }

    /// Accept a pending connection request, creating this side's QP with
    /// completions directed to `cq`. Returns the acceptor-side QP.
    ///
    /// Both sides receive [`NetEvent::CmEstablished`] once the handshake
    /// completes.
    ///
    /// Answering a request that was already accepted or rejected returns
    /// [`CmError::AlreadyAnswered`] instead of creating anything.
    pub fn rdma_accept(
        &self,
        ctx: &mut Context<'_>,
        req: CmReqId,
        cq: CqId,
    ) -> Result<QpId, CmError> {
        let mut inner = self.inner.borrow_mut();
        let request = inner.cm_requests[req.0 as usize]
            .take()
            .ok_or(CmError::AlreadyAnswered)?;
        let half = inner.params.connect_latency / 2;
        let acceptor = ctx.id();
        let acceptor_node = request.listener_addr.node;

        let initiator_qp = QpId(next_id(inner.qps.len()));
        inner.qps.push(QpState {
            node: request.from_node,
            actor: request.from_actor,
            cq: request.from_cq,
            peer: None,
            peer_addr: request.listener_addr,
            recv_queue: Default::default(),
            open: true,
            error: false,
        });
        let acceptor_qp = QpId(next_id(inner.qps.len()));
        inner.qps.push(QpState {
            node: acceptor_node,
            actor: acceptor,
            cq,
            peer: Some(initiator_qp),
            peer_addr: request.from_addr,
            recv_queue: Default::default(),
            open: true,
            error: false,
        });
        inner.qps[initiator_qp.0 as usize].peer = Some(acceptor_qp);
        inner.counters.inc("rdma.connections");

        let fabric = inner.fabric_actor;
        ctx.send_in(
            half,
            fabric,
            FabricMsg::CmEstablishedArrive {
                actor: request.from_actor,
                qp: initiator_qp,
                peer: request.listener_addr,
            },
        );
        ctx.send_in(
            half,
            fabric,
            FabricMsg::CmEstablishedArrive {
                actor: acceptor,
                qp: acceptor_qp,
                peer: request.from_addr,
            },
        );
        Ok(acceptor_qp)
    }

    /// Reject a pending connection request.
    ///
    /// Answering a request that was already accepted or rejected returns
    /// [`CmError::AlreadyAnswered`].
    pub fn rdma_reject(&self, ctx: &mut Context<'_>, req: CmReqId) -> Result<(), CmError> {
        let mut inner = self.inner.borrow_mut();
        let request = inner.cm_requests[req.0 as usize]
            .take()
            .ok_or(CmError::AlreadyAnswered)?;
        let half = inner.params.connect_latency / 2;
        ctx.send_in(
            half,
            request.from_actor,
            NetEvent::CmConnectFailed {
                to: request.listener_addr,
            },
        );
        Ok(())
    }

    /// Post a receive work request (a buffer slot for `Send`/`WriteImm`).
    pub fn post_recv(&self, qp: QpId, wr_id: u64) -> Result<(), PostError> {
        let mut inner = self.inner.borrow_mut();
        let state = &mut inner.qps[qp.0 as usize];
        if !state.open {
            return Err(PostError::QpClosed);
        }
        state.recv_queue.push_back(wr_id);
        Ok(())
    }

    /// Post a send-side work request.
    ///
    /// The *caller* is responsible for charging
    /// [`crate::NetParams::wr_post_cpu`] to its own core — that per-WR CPU
    /// cost is precisely what SKV's replication offload saves the master.
    pub fn post_send(&self, ctx: &mut Context<'_>, qp: QpId, wr: SendWr) -> Result<(), PostError> {
        let mut inner = self.inner.borrow_mut();
        post_one(&mut inner, ctx, qp, wr)?;
        inner.counters.inc("rdma.doorbells");
        Ok(())
    }

    /// Post a chain of linked work requests on one QP with a single
    /// doorbell — the verbs `ibv_post_send` linked-WR form.
    ///
    /// Semantics are verbs-faithful: WRs are posted **in order** until one
    /// is rejected; on failure the returned [`PostListError`] names the
    /// index of the first bad WR (`bad_wr`) and every WR before that index
    /// has been posted and will complete. Fault injection applies a
    /// verdict *per WR*: a dropped WR is still posted (it completes with
    /// [`WcStatus::RetryExceeded`] after the retry budget) and moves the
    /// QP to the error state, so it is the *next* linked WR that fails —
    /// with [`PostError::QpError`] at its own index.
    ///
    /// The caller charges [`crate::NetParams::post_list_cpu`] to its own
    /// core — one `wr_post_cpu` for the first WR plus `wr_post_linked`
    /// per linked WR — instead of `n × wr_post_cpu`.
    pub fn post_send_list(
        &self,
        ctx: &mut Context<'_>,
        qp: QpId,
        wrs: Vec<SendWr>,
    ) -> Result<(), PostListError> {
        let mut inner = self.inner.borrow_mut();
        let mut posted = 0usize;
        for (index, wr) in wrs.into_iter().enumerate() {
            if let Err(error) = post_one(&mut inner, ctx, qp, wr) {
                if posted > 0 {
                    inner.counters.inc("rdma.doorbells");
                }
                return Err(PostListError { index, error });
            }
            posted += 1;
        }
        if posted > 0 {
            inner.counters.inc("rdma.doorbells");
        }
        Ok(())
    }

    /// Post one WR on each of several QPs under a single doorbell batch —
    /// the cross-QP analogue of [`Net::post_send_list`], modelling
    /// DPA-style doorbell batching where one kick flushes WQEs staged on
    /// many send queues (the shape of SKV's replication fan-out: the same
    /// frame to N slave QPs).
    ///
    /// Unlike the linked-list form, a bad WR on one QP must not block WRs
    /// bound for *other* QPs, so each entry gets an independent outcome in
    /// the returned vector (same order as the input). Exactly one doorbell
    /// is counted when at least one WR posts.
    pub fn post_send_batch(
        &self,
        ctx: &mut Context<'_>,
        wrs: Vec<(QpId, SendWr)>,
    ) -> Vec<Result<(), PostError>> {
        let mut inner = self.inner.borrow_mut();
        let mut outcomes = Vec::with_capacity(wrs.len());
        let mut posted = 0usize;
        for (qp, wr) in wrs {
            let out = post_one(&mut inner, ctx, qp, wr);
            if out.is_ok() {
                posted += 1;
            }
            outcomes.push(out);
        }
        if posted > 0 {
            inner.counters.inc("rdma.doorbells");
        }
        outcomes
    }

    /// Drain up to `max` completions from `cq` (pop from the front of the
    /// queue; no element shifting regardless of queue depth).
    ///
    /// The fabric charges no CPU here; the polling actor owns the cost —
    /// [`crate::NetParams::cq_poll_cpu`] per call plus
    /// [`crate::NetParams::wc_handle_cpu`] per returned WC. Each returned
    /// WC bumps the `rdma.wcs_polled` counter, the denominator of the
    /// moderation collapse ratio (`rdma.cq_notifies / rdma.wcs_polled`).
    pub fn poll_cq(&self, cq: CqId, max: usize) -> Vec<Wc> {
        let mut inner = self.inner.borrow_mut();
        let q = &mut inner.cqs[cq.0 as usize].queue;
        let mut out = Vec::with_capacity(q.len().min(max));
        while out.len() < max {
            let Some(wc) = q.pop_front() else { break };
            out.push(wc);
        }
        inner.counters.add("rdma.wcs_polled", out.len() as u64);
        out
    }

    /// Number of completions currently queued on `cq`.
    pub fn cq_depth(&self, cq: CqId) -> usize {
        self.inner.borrow().cqs[cq.0 as usize].queue.len()
    }

    /// Arm the completion event channel: the owner receives
    /// [`NetEvent::CqNotify`] when the next completion arrives (immediately
    /// if completions are already pending).
    ///
    /// With interrupt moderation active
    /// ([`crate::NetParams::cq_moderation_active`]), an already-pending
    /// backlog below `cq_notify_threshold` does not fire immediately;
    /// instead the CQ arms and the `cq_notify_timer` coalescing deadline
    /// guarantees the backlog is flushed, so no completion is ever
    /// stranded longer than the timer.
    pub fn req_notify_cq(&self, ctx: &mut Context<'_>, cq: CqId) {
        let mut inner = self.inner.borrow_mut();
        let moderated = inner.params.cq_moderation_active();
        let threshold = inner.params.cq_notify_threshold.max(1);
        let depth = inner.cqs[cq.0 as usize].queue.len();
        if depth > 0 && (!moderated || depth >= threshold) {
            inner.fire_cq_notify(ctx, cq);
        } else {
            inner.cqs[cq.0 as usize].armed = true;
            if moderated && depth > 0 {
                inner.ensure_cq_timer(ctx, cq);
            }
        }
    }

    /// Tear down a QP. In-flight operations targeting it are discarded at
    /// arrival.
    pub fn destroy_qp(&self, qp: QpId) {
        let mut inner = self.inner.borrow_mut();
        inner.qps[qp.0 as usize].open = false;
        inner.qps[qp.0 as usize].recv_queue.clear();
        if let Some(peer) = inner.qps[qp.0 as usize].peer {
            inner.qps[peer.0 as usize].peer = None;
        }
    }

    /// The remote address a QP is connected to.
    pub fn qp_peer_addr(&self, qp: QpId) -> SocketAddr {
        self.inner.borrow().qps[qp.0 as usize].peer_addr
    }

    /// The node a QP lives on.
    pub fn qp_node(&self, qp: QpId) -> NodeId {
        self.inner.borrow().qps[qp.0 as usize].node
    }

    /// The actor that owns a QP endpoint.
    pub fn qp_actor(&self, qp: QpId) -> ActorId {
        self.inner.borrow().qps[qp.0 as usize].actor
    }

    /// Number of posted, unconsumed receive WRs on a QP.
    pub fn qp_recv_depth(&self, qp: QpId) -> usize {
        self.inner.borrow().qps[qp.0 as usize].recv_queue.len()
    }
}

/// Validate, judge and launch one send-side WR: the shared engine behind
/// [`Net::post_send`], [`Net::post_send_list`] and [`Net::post_send_batch`].
/// Counts the WR (`rdma.wrs_posted` + per-op counters) but **not** the
/// doorbell — the calling post entry point owns doorbell accounting.
fn post_one(
    inner: &mut NetInner,
    ctx: &mut Context<'_>,
    qp: QpId,
    wr: SendWr,
) -> Result<(), PostError> {
    let state = &inner.qps[qp.0 as usize];
    if !state.open {
        return Err(PostError::QpClosed);
    }
    if state.error {
        return Err(PostError::QpError);
    }
    let Some(peer_qp) = state.peer else {
        return Err(PostError::NotConnected);
    };
    let src_node = state.node;
    let dst_node = inner.qps[peer_qp.0 as usize].node;

    let wire_bytes = match &wr.op {
        SendOp::Read { .. } => 32, // a read request is a small packet
        _ => wr.data.len().max(32),
    };
    let counter = match &wr.op {
        SendOp::Send => "rdma.sends",
        SendOp::Write { .. } => "rdma.writes",
        SendOp::WriteImm { .. } => "rdma.write_imm",
        SendOp::Read { .. } => "rdma.reads",
    };
    inner.counters.inc(counter);
    inner.counters.inc("rdma.wrs_posted");
    inner.counters.add("rdma.bytes", wr.data.len() as u64);

    let dma = inner.params.dma_delay;
    let mut extra = SimDuration::ZERO;
    match inner.judge(ctx.now(), src_node, dst_node) {
        Verdict::Deliver => {}
        Verdict::Drop => {
            // RC retransmits exhaust: the WR completes with an error
            // after the retry budget and the QP enters the error state.
            inner.counters.inc("faults.rdma_dropped");
            inner.counters.inc("rdma.qp_errors");
            inner.qps[qp.0 as usize].error = true;
            let cq = inner.qps[qp.0 as usize].cq;
            let fabric = inner.fabric_actor;
            let wc = Wc {
                wr_id: wr.wr_id,
                opcode: sender_opcode(&wr.op),
                status: WcStatus::RetryExceeded,
                qp,
                byte_len: wr.data.len(),
                imm: 0,
                mr_offset: 0,
                data: Frame::new(),
            };
            ctx.send_in(
                inner.params.rc_retry_latency,
                fabric,
                FabricMsg::PushWc { cq, wc },
            );
            return Ok(());
        }
        Verdict::Delay(d) => {
            inner.counters.inc("faults.rdma_delayed");
            extra = d;
        }
    }
    let (arrival, lat) = inner.wire(ctx.now(), src_node, dst_node, wire_bytes);
    let arrival = arrival + extra;
    let fabric = inner.fabric_actor;
    ctx.send_at(
        arrival + dma,
        fabric,
        FabricMsg::RdmaArrive {
            src_qp: qp,
            dst_qp: peer_qp,
            op: wr.op,
            data: wr.data,
            wr_id: wr.wr_id,
            path_latency: lat,
        },
    );
    Ok(())
}

/// Apply an RDMA arrival at the destination NIC (fabric-actor context).
#[allow(clippy::too_many_arguments)]
pub(crate) fn handle_arrival(
    net: &mut NetInner,
    ctx: &mut Context<'_>,
    src_qp: QpId,
    dst_qp: QpId,
    op: SendOp,
    data: Frame,
    wr_id: u64,
    path_latency: SimDuration,
) {
    let fabric = net.fabric_actor;
    let sender_cq = net.qps[src_qp.0 as usize].cq;
    let dst_open = net.qps[dst_qp.0 as usize].open;
    let dst_err = net.qps[dst_qp.0 as usize].error;
    let dst_node = net.qps[dst_qp.0 as usize].node;
    let dst_up = net.up(dst_node);

    let opcode = sender_opcode(&op);
    let byte_len = data.len();

    // A destination that is gone (crashed node, torn-down or errored QP)
    // NAKs the sender into retry exhaustion: error completion + the
    // sender's QP enters the error state.
    if !dst_open || !dst_up || dst_err {
        net.counters.inc("rdma.drops");
        if !net.qps[src_qp.0 as usize].error {
            net.counters.inc("rdma.qp_errors");
            net.qps[src_qp.0 as usize].error = true;
        }
        let wc = Wc {
            wr_id,
            opcode,
            status: WcStatus::RemoteUnreachable,
            qp: src_qp,
            byte_len,
            imm: 0,
            mr_offset: 0,
            data: Frame::new(),
        };
        ctx.send_in(
            path_latency,
            fabric,
            FabricMsg::PushWc { cq: sender_cq, wc },
        );
        return;
    }

    match op {
        SendOp::Send => {
            let recv_wr = pop_recv(net, dst_qp);
            let dst_cq = net.qps[dst_qp.0 as usize].cq;
            let wc = Wc {
                wr_id: recv_wr.unwrap_or(RNR_WR_ID),
                opcode: WcOpcode::Recv,
                status: if recv_wr.is_some() {
                    WcStatus::Success
                } else {
                    WcStatus::ReceiverNotReady
                },
                qp: dst_qp,
                byte_len,
                imm: 0,
                mr_offset: 0,
                data,
            };
            net.push_wc(ctx, dst_cq, wc);
            push_sender_wc(
                net,
                ctx,
                sender_cq,
                src_qp,
                wr_id,
                opcode,
                byte_len,
                path_latency,
                WcStatus::Success,
            );
        }
        SendOp::Write {
            remote_mr,
            remote_offset,
        } => {
            let status = if write_mr(net, dst_node, remote_mr, remote_offset, &data) {
                WcStatus::Success
            } else {
                WcStatus::RemoteAccessError
            };
            push_sender_wc(
                net,
                ctx,
                sender_cq,
                src_qp,
                wr_id,
                opcode,
                byte_len,
                path_latency,
                status,
            );
        }
        SendOp::WriteImm {
            remote_mr,
            remote_offset,
            imm,
        } => {
            if !write_mr(net, dst_node, remote_mr, remote_offset, &data) {
                // The payload never landed: no receive is consumed and the
                // receiver sees nothing, exactly like a NAKed verbs WRITE.
                push_sender_wc(
                    net,
                    ctx,
                    sender_cq,
                    src_qp,
                    wr_id,
                    opcode,
                    byte_len,
                    path_latency,
                    WcStatus::RemoteAccessError,
                );
                return;
            }
            let recv_wr = pop_recv(net, dst_qp);
            let dst_cq = net.qps[dst_qp.0 as usize].cq;
            // The completion carries the sender's frame as well: the bytes
            // are already in the MR (one-sided reads see them), but handing
            // the view to the receiver spares it the mr_read copy-out.
            let wc = Wc {
                wr_id: recv_wr.unwrap_or(RNR_WR_ID),
                opcode: WcOpcode::RecvRdmaWithImm,
                status: if recv_wr.is_some() {
                    WcStatus::Success
                } else {
                    WcStatus::ReceiverNotReady
                },
                qp: dst_qp,
                byte_len,
                imm,
                mr_offset: remote_offset,
                data,
            };
            net.push_wc(ctx, dst_cq, wc);
            push_sender_wc(
                net,
                ctx,
                sender_cq,
                src_qp,
                wr_id,
                opcode,
                byte_len,
                path_latency,
                WcStatus::Success,
            );
        }
        SendOp::Read {
            remote_mr,
            remote_offset,
            len,
        } => {
            let mr = &net.mrs[remote_mr.0 as usize];
            assert_eq!(mr.node, dst_node, "READ must target an MR on the peer node");
            // A requester-supplied range outside the MR is the requester's
            // protocol error, not a target-host bug: complete with
            // `RemoteAccessError` rather than panicking the simulation.
            let payload = remote_offset
                .checked_add(len)
                .and_then(|end| mr.buf.get(remote_offset..end))
                .map(Frame::copy_from_slice);
            let Some(payload) = payload else {
                net.counters.inc("rdma.access_errors");
                let wc = Wc {
                    wr_id,
                    opcode: WcOpcode::RdmaRead,
                    status: WcStatus::RemoteAccessError,
                    qp: src_qp,
                    byte_len: 0,
                    imm: 0,
                    mr_offset: remote_offset,
                    data: Frame::new(),
                };
                ctx.send_in(
                    path_latency,
                    fabric,
                    FabricMsg::PushWc { cq: sender_cq, wc },
                );
                return;
            };
            // Response: serialization of the payload plus the return hop.
            let resp_delay = net.params.serialize_time(len) + path_latency + net.params.dma_delay;
            let wc = Wc {
                wr_id,
                opcode: WcOpcode::RdmaRead,
                status: WcStatus::Success,
                qp: src_qp,
                byte_len: len,
                imm: 0,
                mr_offset: remote_offset,
                data: payload,
            };
            ctx.send_in(resp_delay, fabric, FabricMsg::PushWc { cq: sender_cq, wc });
        }
    }
}

/// Deliver a CM connection request to its listener (fabric-actor context).
pub(crate) fn handle_cm_request_arrival(net: &mut NetInner, ctx: &mut Context<'_>, req: CmReqId) {
    let Some(request) = net.cm_requests[req.0 as usize].as_ref() else {
        return;
    };
    let listener = net.cm_listeners.get(&request.listener_addr).copied();
    let listener_up = net.up(request.listener_addr.node);
    let from = request.from_addr;
    match listener {
        Some(actor) if listener_up => {
            ctx.send(actor, NetEvent::CmConnectRequest { req, from });
        }
        _ => {
            let to = request.listener_addr;
            let from_actor = request.from_actor;
            let half = net.params.connect_latency / 2;
            net.cm_requests[req.0 as usize] = None;
            ctx.send_in(half, from_actor, NetEvent::CmConnectFailed { to });
        }
    }
}

/// Sender-side completion opcode for a work-request operation.
fn sender_opcode(op: &SendOp) -> WcOpcode {
    match op {
        SendOp::Send => WcOpcode::Send,
        SendOp::Write { .. } | SendOp::WriteImm { .. } => WcOpcode::RdmaWrite,
        SendOp::Read { .. } => WcOpcode::RdmaRead,
    }
}

fn pop_recv(net: &mut NetInner, qp: QpId) -> Option<u64> {
    let popped = net.qps[qp.0 as usize].recv_queue.pop_front();
    if popped.is_none() {
        net.counters.inc("rdma.rnr");
    }
    popped
}

/// Apply a remote WRITE payload to the target MR.
///
/// Returns `false` — after counting an `rdma.access_errors` — when the
/// remote-supplied range falls outside the region: that is the *requester's*
/// protocol error and must surface as its completion status, not a panic on
/// the target host.
#[must_use]
fn write_mr(net: &mut NetInner, dst_node: NodeId, mr: MrId, offset: usize, data: &[u8]) -> bool {
    let state = &mut net.mrs[mr.0 as usize];
    assert_eq!(
        state.node, dst_node,
        "WRITE must target an MR on the peer node"
    );
    let wrote = offset
        .checked_add(data.len())
        .and_then(|end| state.buf.get_mut(offset..end))
        .map(|dst| dst.copy_from_slice(data))
        .is_some();
    if !wrote {
        net.counters.inc("rdma.access_errors");
    }
    wrote
}

#[allow(clippy::too_many_arguments)]
fn push_sender_wc(
    net: &mut NetInner,
    ctx: &mut Context<'_>,
    sender_cq: CqId,
    src_qp: QpId,
    wr_id: u64,
    opcode: WcOpcode,
    byte_len: usize,
    path_latency: SimDuration,
    status: WcStatus,
) {
    let fabric = net.fabric_actor;
    let wc = Wc {
        wr_id,
        opcode,
        status,
        qp: src_qp,
        byte_len,
        imm: 0,
        mr_offset: 0,
        data: Frame::new(),
    };
    // The sender observes completion one ACK-hop later.
    ctx.send_in(
        path_latency,
        fabric,
        FabricMsg::PushWc { cq: sender_cq, wc },
    );
}
