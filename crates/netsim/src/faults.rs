//! Deterministic fault injection for the simulated fabric.
//!
//! A [`FaultPlan`] describes everything that goes wrong during a run —
//! probabilistic message loss, latency spikes, link flaps, and
//! partitions — as *data*, installed once via [`crate::Net::set_fault_plan`].
//! Every message the fabric carries is submitted to [`FaultPlan::judge`],
//! which returns a [`Verdict`] drawn from a dedicated RNG seeded by the
//! plan. Identical plans therefore replay byte-identically, which is what
//! lets chaos tests assert both convergence *and* determinism.
//!
//! How verdicts map onto transport semantics (see `rdma.rs` / `tcp.rs`):
//!
//! * **RDMA + `Drop`** — reliable-connection retransmits exhaust: the
//!   sender receives a completion with [`crate::WcStatus::RetryExceeded`]
//!   after [`crate::NetParams::rc_retry_latency`] and the QP transitions to
//!   the error state (subsequent posts fail with
//!   [`crate::PostError::QpError`]). Nothing arrives at the peer.
//! * **RDMA + `Delay`** — the retransmit succeeded; the message is late
//!   but intact.
//! * **Linked post lists** (`post_send_list` / `post_send_batch`) — the
//!   verdict is drawn *per WR*, not per doorbell: each WR in a chain is
//!   judged independently, so a `Drop` on WR *k* errors the QP mid-chain
//!   and the next linked WR on that QP fails to post at its own index
//!   (verbs `bad_wr` semantics).
//! * **TCP + `Drop`** — the kernel retransmits: delivery is delayed by
//!   [`crate::NetParams::tcp_rto`], never lost (the stream stays reliable).
//! * **Connection management + `Drop`** — the connect attempt fails; the
//!   caller is expected to back off and retry.
//!
//! The SmartNIC SoC is an ordinary node, so crashing *only* the SoC (while
//! the host beneath it keeps serving) is expressed at the cluster layer by
//! sending the Nic-KV actor a crash control and marking the SoC node down —
//! no special case is needed here.

use skv_simcore::{DetRng, SimDuration, SimTime};

use crate::types::NodeId;

/// A half-open activity window `[from, until)` in simulation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeWindow {
    /// First instant the window is active.
    pub from: SimTime,
    /// First instant the window is no longer active.
    pub until: SimTime,
}

impl TimeWindow {
    /// Construct a window covering `[from, until)`.
    pub fn new(from: SimTime, until: SimTime) -> Self {
        TimeWindow { from, until }
    }

    /// Whether `now` falls inside the window.
    pub fn contains(&self, now: SimTime) -> bool {
        self.from <= now && now < self.until
    }
}

/// Probabilistic impairments on one *directional* link.
#[derive(Debug, Clone)]
pub struct LinkFault {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Probability that a message on this link is dropped.
    pub drop_prob: f64,
    /// Probability that a (delivered) message suffers a latency spike.
    pub delay_prob: f64,
    /// Size of the latency spike.
    pub delay: SimDuration,
    /// When the impairment is active; `None` means the whole run.
    pub window: Option<TimeWindow>,
}

impl LinkFault {
    fn matches(&self, now: SimTime, src: NodeId, dst: NodeId) -> bool {
        self.src == src && self.dst == dst && self.window.is_none_or(|w| w.contains(now))
    }
}

/// A bidirectional partition between two node groups during a window.
/// Messages crossing the cut are dropped deterministically; traffic inside
/// either group is untouched. A *link flap* is the special case where one
/// group is a single node.
#[derive(Debug, Clone)]
pub struct Partition {
    /// One side of the cut.
    pub a: Vec<NodeId>,
    /// The other side.
    pub b: Vec<NodeId>,
    /// When the partition holds.
    pub window: TimeWindow,
}

impl Partition {
    /// Whether a `src → dst` message crosses the cut.
    pub fn separates(&self, src: NodeId, dst: NodeId) -> bool {
        (self.a.contains(&src) && self.b.contains(&dst))
            || (self.b.contains(&src) && self.a.contains(&dst))
    }
}

/// The fate of one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Deliver normally.
    Deliver,
    /// The message never arrives.
    Drop,
    /// The message arrives late by the given amount.
    Delay(SimDuration),
}

/// A complete fault schedule for a run.
///
/// `default_*` fields apply to every inter-node link; `links` entries
/// override them for specific `(src, dst)` pairs; `partitions` (including
/// flaps) drop crossing traffic outright during their windows. Loopback
/// traffic (`src == dst`) is never faulted.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed for the plan's private RNG (kept separate from the simulation
    /// RNG so installing a plan never perturbs unrelated draws).
    pub seed: u64,
    /// Baseline drop probability on every inter-node link.
    pub default_loss: f64,
    /// Baseline latency-spike probability on every inter-node link.
    pub default_delay_prob: f64,
    /// Baseline latency-spike size.
    pub default_delay: SimDuration,
    /// Per-link overrides.
    pub links: Vec<LinkFault>,
    /// Partitions and link flaps.
    pub partitions: Vec<Partition>,
}

impl FaultPlan {
    /// An empty plan (nothing goes wrong) with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            default_loss: 0.0,
            default_delay_prob: 0.0,
            default_delay: SimDuration::ZERO,
            links: Vec::new(),
            partitions: Vec::new(),
        }
    }

    /// True when the plan can never produce anything but `Deliver`; lets
    /// the fabric skip the judge (and its RNG draws) entirely.
    pub fn is_noop(&self) -> bool {
        self.default_loss <= 0.0
            && self.default_delay_prob <= 0.0
            && self.links.is_empty()
            && self.partitions.is_empty()
    }

    /// Decide the fate of one `src → dst` message at instant `now`.
    pub fn judge(&self, now: SimTime, src: NodeId, dst: NodeId, rng: &mut DetRng) -> Verdict {
        if src == dst {
            return Verdict::Deliver;
        }
        for p in &self.partitions {
            if p.window.contains(now) && p.separates(src, dst) {
                return Verdict::Drop;
            }
        }
        let (mut drop_p, mut delay_p, mut delay) = (
            self.default_loss,
            self.default_delay_prob,
            self.default_delay,
        );
        for l in &self.links {
            if l.matches(now, src, dst) {
                drop_p = l.drop_prob;
                delay_p = l.delay_prob;
                delay = l.delay;
            }
        }
        if drop_p > 0.0 && rng.chance(drop_p) {
            return Verdict::Drop;
        }
        if delay_p > 0.0 && rng.chance(delay_p) {
            return Verdict::Delay(delay);
        }
        Verdict::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn empty_plan_is_noop_and_always_delivers() {
        let plan = FaultPlan::new(1);
        assert!(plan.is_noop());
        let mut rng = DetRng::new(1);
        for _ in 0..100 {
            assert_eq!(
                plan.judge(SimTime::from_secs(1), n(0), n(1), &mut rng),
                Verdict::Deliver
            );
        }
    }

    #[test]
    fn partition_drops_only_crossing_traffic_inside_window() {
        let mut plan = FaultPlan::new(2);
        plan.partitions.push(Partition {
            a: vec![n(0), n(1)],
            b: vec![n(2)],
            window: TimeWindow::new(SimTime::from_secs(1), SimTime::from_secs(2)),
        });
        let mut rng = DetRng::new(2);
        let inside = SimTime::from_millis(1_500);
        let outside = SimTime::from_millis(2_500);
        assert_eq!(plan.judge(inside, n(0), n(2), &mut rng), Verdict::Drop);
        assert_eq!(plan.judge(inside, n(2), n(1), &mut rng), Verdict::Drop);
        assert_eq!(plan.judge(inside, n(0), n(1), &mut rng), Verdict::Deliver);
        assert_eq!(plan.judge(outside, n(0), n(2), &mut rng), Verdict::Deliver);
    }

    #[test]
    fn loss_rate_roughly_matches_probability() {
        let mut plan = FaultPlan::new(3);
        plan.default_loss = 0.10;
        let mut rng = DetRng::new(3);
        let drops = (0..10_000)
            .filter(|_| plan.judge(SimTime::ZERO, n(0), n(1), &mut rng) == Verdict::Drop)
            .count();
        assert!((800..1200).contains(&drops), "drops {drops}");
    }

    #[test]
    fn loopback_is_never_faulted() {
        let mut plan = FaultPlan::new(4);
        plan.default_loss = 1.0;
        let mut rng = DetRng::new(4);
        assert_eq!(
            plan.judge(SimTime::ZERO, n(3), n(3), &mut rng),
            Verdict::Deliver
        );
        assert_eq!(
            plan.judge(SimTime::ZERO, n(3), n(4), &mut rng),
            Verdict::Drop
        );
    }

    #[test]
    fn link_override_beats_default_and_respects_direction() {
        let mut plan = FaultPlan::new(5);
        plan.default_loss = 1.0;
        plan.links.push(LinkFault {
            src: n(0),
            dst: n(1),
            drop_prob: 0.0,
            delay_prob: 1.0,
            delay: SimDuration::from_micros(50),
            window: None,
        });
        let mut rng = DetRng::new(5);
        assert_eq!(
            plan.judge(SimTime::ZERO, n(0), n(1), &mut rng),
            Verdict::Delay(SimDuration::from_micros(50))
        );
        // The reverse direction still sees the default.
        assert_eq!(
            plan.judge(SimTime::ZERO, n(1), n(0), &mut rng),
            Verdict::Drop
        );
    }

    #[test]
    fn same_seed_same_verdict_sequence() {
        let mut plan = FaultPlan::new(6);
        plan.default_loss = 0.3;
        plan.default_delay_prob = 0.3;
        plan.default_delay = SimDuration::from_micros(10);
        let run = |seed| {
            let mut rng = DetRng::new(seed);
            (0..256)
                .map(|i| plan.judge(SimTime::from_millis(i), n(0), n(1), &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(6), run(6));
        assert_ne!(run(6), run(7));
    }
}
