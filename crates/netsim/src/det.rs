//! Deterministic collections for simulation code.
//!
//! `std::collections::HashMap`'s iteration order depends on `RandomState`,
//! which is seeded from the OS — two runs of the *same* simulation can visit
//! entries in different orders, and any order-dependent side effect (event
//! scheduling, round-robin cursors, counter folding) then diverges between
//! runs. That silently breaks the bit-for-bit determinism every figure in
//! the reproduction rests on (see `tests/tests/chaos.rs` and
//! `tests/tests/determinism.rs`).
//!
//! [`DetMap`] and [`DetSet`] are thin wrappers over `BTreeMap`/`BTreeSet`
//! whose iteration order is the key order — a pure function of the inserted
//! keys, never of OS state. `skv-lint` (rule `hashmap`) rejects the std
//! hash collections in simulation crates and points here.

use std::collections::{btree_map, BTreeMap, BTreeSet};

/// An ordered map with deterministic iteration order (key order).
///
/// Drop-in replacement for the `HashMap` subset the simulation uses; keys
/// must be `Ord` instead of `Hash`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DetMap<K, V> {
    inner: BTreeMap<K, V>,
}

impl<K: Ord, V> DetMap<K, V> {
    /// Create an empty map.
    pub fn new() -> Self {
        DetMap {
            inner: BTreeMap::new(),
        }
    }

    /// Insert a key-value pair, returning the previous value if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.inner.insert(key, value)
    }

    /// Look up a value by key.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.inner.get(key)
    }

    /// Look up a value mutably by key.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        self.inner.get_mut(key)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.inner.contains_key(key)
    }

    /// Remove a key, returning its value if it was present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.inner.remove(key)
    }

    /// Get the value for `key`, inserting `default` first if absent.
    pub fn or_insert(&mut self, key: K, default: V) -> &mut V {
        self.inner.entry(key).or_insert(default)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Remove all entries.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Iterate entries in key order.
    pub fn iter(&self) -> btree_map::Iter<'_, K, V> {
        self.inner.iter()
    }

    /// Iterate keys in order.
    pub fn keys(&self) -> btree_map::Keys<'_, K, V> {
        self.inner.keys()
    }

    /// Iterate values in key order.
    pub fn values(&self) -> btree_map::Values<'_, K, V> {
        self.inner.values()
    }
}

impl<'a, K: Ord, V> IntoIterator for &'a DetMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = btree_map::Iter<'a, K, V>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

impl<K: Ord, V> FromIterator<(K, V)> for DetMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        DetMap {
            inner: iter.into_iter().collect(),
        }
    }
}

/// An ordered set with deterministic iteration order (element order).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DetSet<T> {
    inner: BTreeSet<T>,
}

impl<T: Ord> DetSet<T> {
    /// Create an empty set.
    pub fn new() -> Self {
        DetSet {
            inner: BTreeSet::new(),
        }
    }

    /// Insert an element; returns `true` if it was not already present.
    pub fn insert(&mut self, value: T) -> bool {
        self.inner.insert(value)
    }

    /// Whether `value` is present.
    pub fn contains(&self, value: &T) -> bool {
        self.inner.contains(value)
    }

    /// Remove an element; returns `true` if it was present.
    pub fn remove(&mut self, value: &T) -> bool {
        self.inner.remove(value)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Remove all elements.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Iterate elements in order.
    pub fn iter(&self) -> std::collections::btree_set::Iter<'_, T> {
        self.inner.iter()
    }
}

impl<'a, T: Ord> IntoIterator for &'a DetSet<T> {
    type Item = &'a T;
    type IntoIter = std::collections::btree_set::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

impl<T: Ord> FromIterator<T> for DetSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        DetSet {
            inner: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_iterates_in_key_order_regardless_of_insertion() {
        let mut a = DetMap::new();
        for k in [5u32, 1, 9, 3] {
            a.insert(k, k * 10);
        }
        let mut b = DetMap::new();
        for k in [9u32, 3, 5, 1] {
            b.insert(k, k * 10);
        }
        let ka: Vec<u32> = a.keys().copied().collect();
        let kb: Vec<u32> = b.keys().copied().collect();
        assert_eq!(ka, vec![1, 3, 5, 9]);
        assert_eq!(ka, kb);
    }

    #[test]
    fn map_basic_ops() {
        let mut m = DetMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert("a", 1), None);
        assert_eq!(m.insert("a", 2), Some(1));
        assert_eq!(m.get(&"a"), Some(&2));
        *m.or_insert("b", 0) += 7;
        assert_eq!(m.get(&"b"), Some(&7));
        assert!(m.contains_key(&"b"));
        assert_eq!(m.remove(&"a"), Some(2));
        assert_eq!(m.len(), 1);
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn set_deduplicates_and_orders() {
        let s: DetSet<u8> = [3u8, 1, 3, 2].into_iter().collect();
        assert_eq!(s.len(), 3);
        let v: Vec<u8> = s.iter().copied().collect();
        assert_eq!(v, vec![1, 2, 3]);
        let mut s = s;
        assert!(!s.insert(2));
        assert!(s.remove(&2));
        assert!(!s.contains(&2));
    }
}
