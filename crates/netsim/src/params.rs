//! Calibration parameters for the simulated fabric.
//!
//! These constants stand in for the paper's testbed (§V-A): Xeon Gold 5218
//! hosts, ConnectX-5 100 Gb RoCE NICs, an SN2100 switch, and a BlueField
//! MBF2H516A SmartNIC. Each value is either taken from the paper's own
//! measurements (e.g. Figure 3's RDMA WRITE latencies) or from published
//! characterizations of the hardware (e.g. the BlueField-2 core-speed study
//! the paper cites as [22]).
//!
//! All latencies are *one-way* unless noted. CPU costs are expressed in
//! reference-host-core time; `skv_simcore::CorePool` scales them by core
//! speed.

use skv_simcore::SimDuration;

/// Fabric calibration constants.
#[derive(Debug, Clone)]
pub struct NetParams {
    // ---- link layer ----
    /// Line rate of every port, bits per second (100 GbE).
    pub bandwidth_bps: f64,
    /// One-way base latency between two hosts through the switch
    /// (propagation + switch + NIC pipeline), excluding serialization.
    pub host_host_latency: SimDuration,
    /// Multiplier on `host_host_latency` for a host talking to its *own*
    /// SmartNIC SoC. Figure 3 shows this path is "only a little lower" than
    /// host-to-host because the SoC runs a full network stack.
    pub local_soc_factor: f64,
    /// Multiplier for a *remote* host talking to a SmartNIC SoC (Figure 3:
    /// essentially a separate endpoint; same as host-to-host).
    pub remote_soc_factor: f64,

    // ---- RDMA NIC ----
    /// NIC pipeline delay to start emitting a posted WR onto the wire.
    pub nic_tx_delay: SimDuration,
    /// DMA placement delay at the receiving NIC.
    pub dma_delay: SimDuration,
    /// Host CPU time consumed by one `ibv_post_send` (WQE build + doorbell).
    /// This is the cost SKV's offload saves (N-1) copies of per write.
    /// Also the single source of truth for the *first* WR of a linked post
    /// list: a one-WR list costs exactly one unbatched post by
    /// construction, so sweeping this knob moves both post paths together.
    pub wr_post_cpu: SimDuration,
    /// CPU time for each *linked* WR after the first in a post list: just
    /// the WQE build — the doorbell is shared by the whole chain. This gap
    /// (`wr_post_cpu - wr_post_linked`) is what doorbell batching saves
    /// per extra replica.
    pub wr_post_linked: SimDuration,
    /// Host CPU time for one `poll_cq` *call* (CQ ring scan + bookkeeping),
    /// charged by the draining actor per poll regardless of how many WCs
    /// the call returns. See `wc_handle_cpu` for the per-WC part.
    pub cq_poll_cpu: SimDuration,
    /// Host CPU time to handle one *returned* completion (parse the WC,
    /// dispatch to the owning connection). A drain of n WCs costs
    /// `cq_poll_cpu + n × wc_handle_cpu` on the polling core.
    pub wc_handle_cpu: SimDuration,
    /// Interrupt moderation (ConnectX-style event coalescing): an armed CQ
    /// fires `CqNotify` only once this many completions are queued.
    /// `0` or `1` disables moderation — every completion on an armed CQ
    /// notifies immediately, the historical behaviour.
    pub cq_notify_threshold: usize,
    /// Coalescing deadline for moderation: an armed CQ holding fewer than
    /// `cq_notify_threshold` completions fires no later than this after the
    /// first sub-threshold completion arrives, so a lone completion is
    /// never stranded waiting for peers. Moderation is only *active* when
    /// the threshold is above one **and** this timer is non-zero
    /// ([`NetParams::cq_moderation_active`]) — a threshold without a
    /// deadline could park completions forever, so it is rejected.
    pub cq_notify_timer: SimDuration,

    // ---- TCP-like kernel stack ----
    /// One-way latency added by each kernel network stack traversal
    /// (softirq, memory copies, context switch).
    pub tcp_stack_latency: SimDuration,
    /// CPU time per message consumed in the sender's kernel (syscall +
    /// copies). Charged by the application actor to its own core.
    pub tcp_send_cpu: SimDuration,
    /// CPU time per message in the receiver's kernel.
    pub tcp_recv_cpu: SimDuration,
    /// Extra CPU time per KiB of payload for kernel memory copies.
    pub tcp_copy_cpu_per_kib: SimDuration,
    /// One-way propagation for the TCP path (same physical network).
    pub tcp_base_latency: SimDuration,

    // ---- connection management ----
    /// Handshake round-trips cost for TCP connect and RDMA_CM establish.
    pub connect_latency: SimDuration,

    // ---- fault injection (see `crate::FaultPlan`) ----
    /// Time for an RC QP to exhaust its retransmits and surface an error
    /// completion when the fault plan drops a message.
    // skv-lint: allow(config-drift) -- fault-model constant (RC retry budget from the ConnectX manual); exercised by the chaos/probe-loss tests, not swept
    pub rc_retry_latency: SimDuration,
    /// Extra delivery delay modelling one TCP retransmission timeout when
    /// the fault plan drops a segment (the stream stays reliable).
    // skv-lint: allow(config-drift) -- fault-model constant (minimum Linux RTO); exercised by the chaos tests, not swept
    pub tcp_rto: SimDuration,
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams {
            bandwidth_bps: 100e9,
            host_host_latency: SimDuration::from_nanos(1_900),
            local_soc_factor: 0.85,
            remote_soc_factor: 1.0,
            nic_tx_delay: SimDuration::from_nanos(250),
            dma_delay: SimDuration::from_nanos(350),
            wr_post_cpu: SimDuration::from_nanos(200),
            wr_post_linked: SimDuration::from_nanos(80),
            cq_poll_cpu: SimDuration::from_nanos(200),
            wc_handle_cpu: SimDuration::from_nanos(60),
            cq_notify_threshold: 1,
            cq_notify_timer: SimDuration::from_micros(16),
            tcp_stack_latency: SimDuration::from_nanos(2_000),
            tcp_send_cpu: SimDuration::from_nanos(2_600),
            tcp_recv_cpu: SimDuration::from_nanos(2_800),
            tcp_copy_cpu_per_kib: SimDuration::from_nanos(120),
            tcp_base_latency: SimDuration::from_nanos(1_900),
            connect_latency: SimDuration::from_micros(40),
            rc_retry_latency: SimDuration::from_micros(500),
            tcp_rto: SimDuration::from_millis(200),
        }
    }
}

impl NetParams {
    /// Wire serialization time for `bytes` at line rate.
    pub fn serialize_time(&self, bytes: usize) -> SimDuration {
        let secs = (bytes as f64 * 8.0) / self.bandwidth_bps;
        SimDuration::from_secs_f64(secs)
    }

    /// CPU cost of posting `n` WRs through one `ibv_post_send` call (one
    /// doorbell): the first WR pays the full [`NetParams::wr_post_cpu`]
    /// (WQE build + doorbell), each linked WR pays
    /// [`NetParams::wr_post_linked`]. Deriving the first-WR cost from
    /// `wr_post_cpu` keeps `post_list_cpu(1) == wr_post_cpu` true for
    /// *every* configuration, not just the defaults — sweeping the post
    /// cost (the `wrcost` ablation) moves both paths together.
    pub fn post_list_cpu(&self, n: usize) -> SimDuration {
        if n == 0 {
            return SimDuration::ZERO;
        }
        self.wr_post_cpu + self.wr_post_linked.mul_f64((n - 1) as f64)
    }

    /// Whether CQ interrupt moderation is active: a notify threshold above
    /// one **and** a non-zero coalescing deadline. The deadline is what
    /// makes a threshold safe — without it, sub-threshold completions on an
    /// armed CQ would wait indefinitely for company — so a zero timer
    /// falls back to unmoderated (immediate) notification.
    pub fn cq_moderation_active(&self) -> bool {
        self.cq_notify_threshold > 1 && self.cq_notify_timer > SimDuration::ZERO
    }

    /// Kernel-stack CPU cost for a TCP message of `bytes` on the send side.
    pub fn tcp_send_cost(&self, bytes: usize) -> SimDuration {
        self.tcp_send_cpu + self.tcp_copy_cpu_per_kib.mul_f64(bytes as f64 / 1024.0)
    }

    /// Kernel-stack CPU cost for a TCP message of `bytes` on the receive side.
    pub fn tcp_recv_cost(&self, bytes: usize) -> SimDuration {
        self.tcp_recv_cpu + self.tcp_copy_cpu_per_kib.mul_f64(bytes as f64 / 1024.0)
    }
}

/// Core-count and speed constants for the simulated machines (paper §V-A).
#[derive(Debug, Clone)]
pub struct MachineParams {
    /// Cores available to a host server process. The testbed machines have
    /// 2×16 physical cores, but Redis/SKV's Host-KV is single-threaded by
    /// design; the pool exists so multi-threaded baselines can be modelled.
    pub host_cores: usize,
    /// Host core speed (reference = 1.0).
    pub host_core_speed: f64,
    /// SmartNIC SoC cores (BlueField: 8× ARM A72).
    pub nic_cores: usize,
    /// SoC core speed relative to a host core (~0.35 per the BlueField-2
    /// characterization the paper cites).
    pub nic_core_speed: f64,
}

impl Default for MachineParams {
    fn default() -> Self {
        MachineParams {
            host_cores: 32,
            host_core_speed: 1.0,
            nic_cores: 8,
            nic_core_speed: 0.35,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_scales_with_size() {
        let p = NetParams::default();
        // 1250 bytes at 100 Gb/s = 100 ns.
        assert_eq!(p.serialize_time(1250).as_nanos(), 100);
        assert_eq!(p.serialize_time(0).as_nanos(), 0);
        assert!(p.serialize_time(4096) > p.serialize_time(64));
    }

    #[test]
    fn local_soc_is_faster_but_comparable() {
        let p = NetParams::default();
        let local = p.host_host_latency.mul_f64(p.local_soc_factor);
        assert!(local < p.host_host_latency);
        // "only a little lower": within 30%.
        assert!(local.as_nanos() as f64 > 0.7 * p.host_host_latency.as_nanos() as f64);
    }

    #[test]
    fn post_list_amortizes_the_doorbell() {
        let p = NetParams::default();
        assert_eq!(p.post_list_cpu(0), SimDuration::ZERO);
        // A single-WR list costs exactly one unbatched post.
        assert_eq!(p.post_list_cpu(1), p.wr_post_cpu);
        // N linked WRs are strictly cheaper than N doorbells.
        for n in [2usize, 5, 10] {
            assert!(p.post_list_cpu(n) < p.wr_post_cpu.mul_f64(n as f64));
            assert!(p.post_list_cpu(n) > p.post_list_cpu(n - 1));
        }
    }

    #[test]
    fn single_wr_cost_has_one_source_of_truth() {
        // Regression for the batched/unbatched cost split: the invariant
        // `post_list_cpu(1) == wr_post_cpu` must hold for *non-default*
        // configs too, not coincide only because two defaults agree. A
        // swept post cost (the `wrcost` ablation) must move both paths.
        for ns in [55u64, 200, 777, 5_000] {
            let p = NetParams {
                wr_post_cpu: SimDuration::from_nanos(ns),
                ..NetParams::default()
            };
            assert_eq!(
                p.post_list_cpu(1),
                p.wr_post_cpu,
                "one-WR list must cost exactly one unbatched post at {ns}ns"
            );
            assert_eq!(
                p.post_list_cpu(3),
                p.wr_post_cpu + p.wr_post_linked.mul_f64(2.0)
            );
        }
    }

    #[test]
    fn moderation_requires_threshold_and_deadline() {
        let mut p = NetParams::default();
        assert!(!p.cq_moderation_active(), "default config is unmoderated");
        p.cq_notify_threshold = 8;
        assert!(p.cq_moderation_active());
        p.cq_notify_timer = SimDuration::ZERO;
        assert!(
            !p.cq_moderation_active(),
            "a threshold with no coalescing deadline could strand completions"
        );
    }

    #[test]
    fn tcp_costs_grow_with_payload() {
        let p = NetParams::default();
        assert!(p.tcp_send_cost(16 * 1024) > p.tcp_send_cost(64));
        assert!(p.tcp_recv_cost(16 * 1024) > p.tcp_recv_cost(64));
    }

    #[test]
    fn nic_cores_slower_than_host() {
        let m = MachineParams::default();
        assert!(m.nic_core_speed < m.host_core_speed);
        assert_eq!(m.nic_cores, 8);
    }
}
