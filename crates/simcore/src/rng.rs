//! Deterministic random number generation.
//!
//! Every run of the simulation with the same seed must produce identical
//! results, so all randomness flows from a single root seed. Actors that
//! need private streams obtain them with [`DetRng::split`], which derives an
//! independent child generator; adding an actor therefore never perturbs the
//! streams of existing actors.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic, splittable random number generator.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: StdRng,
    /// Counter mixed into child seeds so successive splits differ.
    splits: u64,
    seed: u64,
}

impl DetRng {
    /// Create a generator from a root seed.
    pub fn new(seed: u64) -> Self {
        DetRng {
            inner: StdRng::seed_from_u64(seed),
            splits: 0,
            seed,
        }
    }

    /// The seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent child generator.
    ///
    /// Children are keyed by (parent seed, split index) through a mixing
    /// function, so the order of draws on the parent does not affect the
    /// child streams.
    pub fn split(&mut self) -> DetRng {
        self.splits += 1;
        let child_seed = splitmix64(self.seed ^ splitmix64(self.splits));
        DetRng::new(child_seed)
    }

    /// A raw 64-bit draw (inherent, so callers need no trait import).
    pub fn gen_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw in `[0, n)`. Returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.inner.gen_range(0..n)
        }
    }

    /// Uniform draw in `[lo, hi)`. Requires `lo < hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        self.inner.gen_range(lo..hi)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen_range(0.0..1.0)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// A multiplicative jitter factor drawn from a two-sided distribution
    /// around 1.0 with the given relative spread.
    ///
    /// Used to give simulated service times realistic dispersion (and hence
    /// realistic p99 tails). The distribution is a mixture: mostly a uniform
    /// band `1 ± spread`, with a 1% chance of a heavier tail up to
    /// `1 + 8*spread`, which mimics the occasional scheduler hiccup or cache
    /// miss burst seen on real servers.
    pub fn service_jitter(&mut self, spread: f64) -> f64 {
        if spread <= 0.0 {
            return 1.0;
        }
        if self.chance(0.01) {
            1.0 + spread * (1.0 + 7.0 * self.unit())
        } else {
            1.0 + spread * (2.0 * self.unit() - 1.0)
        }
    }

    /// An exponentially distributed value with the given mean (for Poisson
    /// arrival processes).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = self.unit().max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

/// SplitMix64 mixing function: maps a 64-bit value to a well-distributed
/// 64-bit value; used to derive child seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn splits_are_independent_of_parent_draws() {
        // Drawing from the parent between splits must not change child seeds.
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        let _ = b.next_u64(); // perturb b's internal stream only
        let mut ca = a.split();
        let mut cb = b.split();
        for _ in 0..32 {
            assert_eq!(ca.next_u64(), cb.next_u64());
        }
    }

    #[test]
    fn successive_splits_differ() {
        let mut r = DetRng::new(7);
        let mut c1 = r.split();
        let mut c2 = r.split();
        let v1: Vec<u64> = (0..8).map(|_| c1.next_u64()).collect();
        let v2: Vec<u64> = (0..8).map(|_| c2.next_u64()).collect();
        assert_ne!(v1, v2);
    }

    #[test]
    fn below_handles_zero() {
        let mut r = DetRng::new(3);
        assert_eq!(r.below(0), 0);
        for _ in 0..100 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn jitter_centred_near_one() {
        let mut r = DetRng::new(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.service_jitter(0.1)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean jitter {mean}");
        assert_eq!(r.service_jitter(0.0), 1.0);
    }

    #[test]
    fn exponential_has_requested_mean() {
        let mut r = DetRng::new(13);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exponential(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.25, "mean {mean}");
    }
}
