//! # skv-simcore — deterministic discrete-event simulation engine
//!
//! The foundation of the SKV reproduction. The paper evaluates SKV on real
//! hardware (Xeon hosts, 100 Gb RoCE NICs, a Mellanox BlueField SmartNIC);
//! this workspace replaces that testbed with a deterministic discrete-event
//! simulation, and this crate supplies the machinery:
//!
//! * [`SimTime`] / [`SimDuration`] — the nanosecond-resolution clock,
//! * [`Simulation`] — the event loop that owns actors and advances time,
//! * [`Actor`] / [`Context`] — the unit of concurrency; servers, SmartNIC
//!   services and benchmark clients are all actors exchanging messages,
//! * [`CorePool`] — serialized CPU cores with speed factors, the resource
//!   whose contention the paper's offloading argument is about,
//! * [`DetRng`] — splittable deterministic randomness,
//! * [`stats`] — histograms (p50/p95/p99), time series, counters.
//!
//! ## Example
//!
//! ```
//! use skv_simcore::{Actor, ActorId, Context, Payload, SimDuration, Simulation};
//!
//! struct Ping { peer: Option<ActorId>, bounces: u32 }
//! struct Ball;
//!
//! impl Actor for Ping {
//!     fn on_message(&mut self, ctx: &mut Context<'_>, from: ActorId, msg: Payload) {
//!         if msg.downcast::<Ball>().is_ok() && self.bounces > 0 {
//!             self.bounces -= 1;
//!             let to = self.peer.unwrap_or(from);
//!             ctx.send_in(SimDuration::from_micros(2), to, Ball);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(42);
//! let a = sim.add_actor(Box::new(Ping { peer: None, bounces: 10 }));
//! let b = sim.add_actor(Box::new(Ping { peer: Some(a), bounces: 10 }));
//! sim.actor_mut::<Ping>(a).unwrap().peer = Some(b);
//! sim.schedule(skv_simcore::SimTime::ZERO, a, Ball);
//! sim.run_to_completion();
//! assert_eq!(sim.now(), skv_simcore::SimTime::from_micros(40));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

mod actor;
mod cpu;
mod engine;
mod event;
pub mod frame;
pub mod pool;
mod rng;
pub mod stats;
mod time;
mod trace;

pub use actor::{Actor, ActorId, Context, FnActor};
pub use cpu::{CorePool, WorkDone};
pub use engine::{RunOutcome, Simulation};
pub use event::{Event, EventQueue, Payload};
pub use frame::Frame;
pub use pool::FramePool;
pub use rng::DetRng;
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceRecord};
