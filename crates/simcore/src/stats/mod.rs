//! Measurement utilities: histograms, time series, and counters.

mod histogram;
mod timeseries;

pub use histogram::Histogram;
pub use timeseries::{SeriesPoint, TimeSeries};

use std::collections::BTreeMap;
use std::fmt;

/// A set of named monotonically increasing counters.
///
/// Backed by a `BTreeMap` so that iteration (and hence any report built from
/// it) is deterministically ordered.
#[derive(Debug, Clone, Default)]
pub struct Counters {
    values: BTreeMap<&'static str, u64>,
}

impl Counters {
    /// Create an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &'static str, delta: u64) {
        *self.values.entry(name).or_insert(0) += delta;
    }

    /// Increment counter `name` by one.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Read counter `name` (0 if never written).
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Iterate over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.values.iter().map(|(k, v)| (*k, *v))
    }

    /// Merge another counter set into this one (summing shared names).
    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in self.iter() {
            writeln!(f, "{k}: {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut c = Counters::new();
        c.inc("ops");
        c.add("ops", 4);
        c.add("errors", 1);
        assert_eq!(c.get("ops"), 5);
        assert_eq!(c.get("errors"), 1);
        assert_eq!(c.get("missing"), 0);
    }

    #[test]
    fn counters_merge_and_order() {
        let mut a = Counters::new();
        a.add("b", 1);
        a.add("a", 2);
        let mut b = Counters::new();
        b.add("b", 10);
        a.merge(&b);
        let items: Vec<_> = a.iter().collect();
        assert_eq!(items, vec![("a", 2), ("b", 11)]);
        assert_eq!(a.to_string(), "a: 2\nb: 11\n");
    }
}
