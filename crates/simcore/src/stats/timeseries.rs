//! Time-bucketed event counting.
//!
//! Used for throughput-over-time plots such as the paper's Figure 14
//! (availability during a slave failure): each completed operation is
//! recorded at its completion instant, and the series reports operations
//! per second per fixed-width bucket.

use crate::time::{SimDuration, SimTime};

/// Bucket index for a nanosecond count (a `u64` bucket number only
/// overflows `usize` on 32-bit targets, and then it should be loud).
fn bucket_index(nanos: u64, width: u64) -> usize {
    usize::try_from(nanos / width).expect("time-series bucket index overflows usize")
}

/// Counts events into fixed-width time buckets.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    bucket_width: SimDuration,
    counts: Vec<u64>,
}

/// One point of a rendered series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Start of the bucket.
    pub time: SimTime,
    /// Raw event count in the bucket.
    pub count: u64,
    /// Event rate in events/second over the bucket.
    pub rate_per_sec: f64,
}

impl TimeSeries {
    /// Create a series with the given bucket width.
    ///
    /// # Panics
    /// Panics if `bucket_width` is zero.
    pub fn new(bucket_width: SimDuration) -> Self {
        assert!(!bucket_width.is_zero(), "bucket width must be positive");
        TimeSeries {
            bucket_width,
            counts: Vec::new(),
        }
    }

    /// The configured bucket width.
    pub fn bucket_width(&self) -> SimDuration {
        self.bucket_width
    }

    /// Record one event at time `t`.
    pub fn record(&mut self, t: SimTime) {
        let idx = bucket_index(t.as_nanos(), self.bucket_width.as_nanos());
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
    }

    /// Record `n` events at time `t`.
    pub fn record_n(&mut self, t: SimTime, n: u64) {
        let idx = bucket_index(t.as_nanos(), self.bucket_width.as_nanos());
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Render all buckets (including trailing empties up to the last
    /// recorded bucket).
    pub fn points(&self) -> Vec<SeriesPoint> {
        let w = self.bucket_width;
        let secs = w.as_secs_f64();
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &count)| SeriesPoint {
                time: SimTime::from_nanos(i as u64 * w.as_nanos()),
                count,
                rate_per_sec: count as f64 / secs,
            })
            .collect()
    }

    /// Count within the bucket containing `t` (0 if none recorded).
    pub fn count_at(&self, t: SimTime) -> u64 {
        let idx = bucket_index(t.as_nanos(), self.bucket_width.as_nanos());
        self.counts.get(idx).copied().unwrap_or(0)
    }

    /// Total events recorded in `[from, to)`.
    pub fn count_between(&self, from: SimTime, to: SimTime) -> u64 {
        let w = self.bucket_width.as_nanos();
        let lo = bucket_index(from.as_nanos(), w);
        let hi = bucket_index(to.as_nanos().saturating_add(w - 1), w);
        self.counts
            .iter()
            .enumerate()
            .skip(lo)
            .take(hi.saturating_sub(lo))
            .map(|(_, &c)| c)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: u64) -> SimTime {
        SimTime::from_secs(v)
    }

    #[test]
    fn buckets_by_width() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(1));
        ts.record(SimTime::from_millis(100));
        ts.record(SimTime::from_millis(900));
        ts.record(SimTime::from_millis(1100));
        let pts = ts.points();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].count, 2);
        assert_eq!(pts[1].count, 1);
        assert_eq!(pts[0].rate_per_sec, 2.0);
        assert_eq!(ts.total(), 3);
    }

    #[test]
    fn count_at_and_between() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(1));
        for ms in [100u64, 1500, 1700, 2500] {
            ts.record(SimTime::from_millis(ms));
        }
        assert_eq!(ts.count_at(SimTime::from_millis(1600)), 2);
        assert_eq!(ts.count_between(s(0), s(2)), 3);
        assert_eq!(ts.count_between(s(1), s(3)), 3);
        assert_eq!(ts.count_between(s(3), s(9)), 0);
    }

    #[test]
    fn record_n_bulk() {
        let mut ts = TimeSeries::new(SimDuration::from_millis(100));
        ts.record_n(SimTime::from_millis(250), 7);
        assert_eq!(ts.count_at(SimTime::from_millis(299)), 7);
        assert_eq!(ts.count_at(SimTime::from_millis(300)), 0);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_width_rejected() {
        let _ = TimeSeries::new(SimDuration::ZERO);
    }
}
