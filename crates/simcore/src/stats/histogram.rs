//! Log-linear latency histogram.
//!
//! An HdrHistogram-style structure: values are bucketed with a fixed number
//! of linear sub-buckets per power-of-two range, giving bounded relative
//! error (< 1.6% with 6 sub-bucket bits) at O(1) record cost and a few KiB
//! of memory — suitable for recording millions of per-operation latencies.

use crate::time::SimDuration;

/// Number of low-order bits resolved exactly within each power-of-two range.
const SUB_BITS: u32 = 6;
const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Number of power-of-two ranges above the exact region (covers u64).
const RANGES: usize = 64;

/// A histogram of `u64` values (nanoseconds, in practice).
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Exact counts for values < 2^(SUB_BITS+1).
    /// Bucket layout: `buckets[range][sub]`, flattened.
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

// Bucket arithmetic: indices are `< RANGES * SUB_COUNT` by construction
// and quantile targets are clamped into `[1, total]`, so the `as` casts
// in this impl cannot truncate meaningfully.
#[allow(clippy::cast_possible_truncation)]
impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; RANGES * SUB_COUNT as usize],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Index of the bucket holding `v`.
    #[inline]
    fn index_of(v: u64) -> usize {
        if v < 2 * SUB_COUNT {
            // Values below 2*SUB_COUNT are exact: ranges 0 and 1.
            v as usize
        } else {
            // range = position of the highest set bit above the sub-bits.
            let msb = 63 - v.leading_zeros() as u64; // >= SUB_BITS+1 here
            let range = msb - SUB_BITS as u64; // >= 1
            let sub = (v >> (msb - SUB_BITS as u64)) & (SUB_COUNT - 1);
            (range * SUB_COUNT + SUB_COUNT + sub) as usize
        }
    }

    /// Representative (midpoint) value of bucket `idx`.
    fn value_of(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < 2 * SUB_COUNT {
            idx
        } else {
            let range = (idx - SUB_COUNT) / SUB_COUNT;
            let sub = idx & (SUB_COUNT - 1);
            // Bucket covers [(SUB_COUNT+sub) << range, (SUB_COUNT+sub+1) << range).
            let base = (SUB_COUNT + sub)
                .checked_shl(range as u32)
                .unwrap_or(u64::MAX);
            let span = 1u64.checked_shl(range as u32).unwrap_or(u64::MAX);
            base.saturating_add(span / 2)
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let idx = Self::index_of(v).min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += v as u128;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Record a duration (as nanoseconds).
    #[inline]
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_nanos());
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact arithmetic mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate value at quantile `q` in `[0, 1]`.
    ///
    /// Returns 0 when empty. Relative error is bounded by the sub-bucket
    /// resolution (< 1.6%).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::value_of(idx).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Median (p50).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }
    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }
    /// 99th percentile — the paper's "99% tail latency".
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Mean as a duration.
    pub fn mean_duration(&self) -> SimDuration {
        SimDuration::from_nanos(self.mean().round() as u64)
    }

    /// Quantile as a duration.
    pub fn quantile_duration(&self, q: f64) -> SimDuration {
        SimDuration::from_nanos(self.quantile(q))
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.total += other.total;
        self.sum += other.sum;
        if other.total > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Reset to empty without releasing memory.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert!(h.is_empty());
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 99);
        assert!((h.mean() - 49.5).abs() < 1e-9);
        assert_eq!(h.quantile(0.0), 0);
    }

    #[test]
    fn quantiles_bounded_relative_error() {
        let mut h = Histogram::new();
        // Uniform 1..=1_000_000 ns.
        for v in (1..=1_000_000u64).step_by(37) {
            h.record(v);
        }
        for (q, expect) in [(0.5, 500_000.0), (0.95, 950_000.0), (0.99, 990_000.0)] {
            let got = h.quantile(q) as f64;
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.03, "q={q}: got {got}, expect {expect}, rel {rel}");
        }
    }

    #[test]
    fn quantile_clamped_to_observed_range() {
        let mut h = Histogram::new();
        h.record(1000);
        assert_eq!(h.quantile(0.01), 1000);
        assert_eq!(h.quantile(0.99), 1000);
        assert_eq!(h.p50(), 1000);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn clear_resets() {
        let mut h = Histogram::new();
        h.record(5);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn huge_values_do_not_panic() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX / 2);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn index_monotone_in_value() {
        let mut last = 0usize;
        for shift in 0..60 {
            let v = 1u64 << shift;
            let idx = Histogram::index_of(v);
            assert!(idx >= last, "index must be monotone at v={v}");
            last = idx;
        }
    }
}
