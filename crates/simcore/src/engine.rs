//! The simulation driver.
//!
//! [`Simulation`] owns the actors, the event queue, the clock, and the root
//! RNG, and advances the world by repeatedly popping the earliest event and
//! dispatching it to its destination actor. Actors are temporarily removed
//! from their slot during dispatch, which lets them schedule new events
//! (including to themselves) without aliasing.

use std::any::Any;

use crate::actor::{Actor, ActorId, Context};
use crate::event::{EventQueue, Payload};
use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::Trace;

/// Outcome of a [`Simulation::run_until`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained before the deadline.
    Drained,
    /// The deadline was reached with events still pending.
    DeadlineReached,
    /// An actor called [`Context::halt`].
    Halted,
    /// The event budget was exhausted (runaway protection).
    BudgetExhausted,
}

/// A deterministic discrete-event simulation.
pub struct Simulation {
    actors: Vec<Option<Box<dyn Actor>>>,
    queue: EventQueue,
    now: SimTime,
    rng: DetRng,
    halt: bool,
    trace: Trace,
    events_processed: u64,
    /// Safety valve against runaway event loops; `u64::MAX` by default.
    event_budget: u64,
}

impl Simulation {
    /// Create a simulation with the given root seed.
    pub fn new(seed: u64) -> Self {
        Simulation {
            actors: Vec::new(),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            rng: DetRng::new(seed),
            halt: false,
            trace: Trace::disabled(),
            events_processed: 0,
            event_budget: u64::MAX,
        }
    }

    /// Enable tracing with the given record capacity.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Trace::enabled(capacity);
    }

    /// Access captured trace records.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Cap the total number of events this simulation may process.
    pub fn set_event_budget(&mut self, budget: u64) {
        self.event_budget = budget;
    }

    /// Register an actor and immediately run its [`Actor::on_start`] hook at
    /// the current simulated time.
    pub fn add_actor(&mut self, actor: Box<dyn Actor>) -> ActorId {
        let raw = u32::try_from(self.actors.len()).expect("actor id space exhausted");
        let id = ActorId::from_raw(raw);
        self.actors.push(Some(actor));
        // Run on_start with a full context so the actor can set timers.
        let mut slot = self.actors[id.index()].take();
        if let Some(actor) = slot.as_mut() {
            let mut ctx = Context {
                now: self.now,
                self_id: id,
                queue: &mut self.queue,
                rng: &mut self.rng,
                halt: &mut self.halt,
                trace: &mut self.trace,
            };
            actor.on_start(&mut ctx);
        }
        self.actors[id.index()] = slot;
        id
    }

    /// Schedule a message from the outside world (source =
    /// [`ActorId::SYSTEM`]) for delivery at absolute time `at`.
    pub fn schedule<M: Any>(&mut self, at: SimTime, to: ActorId, msg: M) {
        let at = at.max(self.now);
        self.queue.push(at, to, ActorId::SYSTEM, Box::new(msg));
    }

    /// Schedule a message from the outside world after `delay`.
    pub fn schedule_in<M: Any>(&mut self, delay: SimDuration, to: ActorId, msg: M) {
        let at = self.now + delay;
        self.queue.push(at, to, ActorId::SYSTEM, Box::new(msg));
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of events waiting in the queue.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Borrow an actor by id, downcast to its concrete type.
    ///
    /// Panics if `id` is out of range; returns `None` if the type does not
    /// match or the actor is mid-dispatch (it never is between `run` calls).
    pub fn actor_mut<T: Actor>(&mut self, id: ActorId) -> Option<&mut T> {
        self.actors[id.index()]
            .as_mut()
            .and_then(|a| a.downcast_mut::<T>())
    }

    /// Borrow an actor by id (shared), downcast to its concrete type.
    pub fn actor_ref<T: Actor>(&self, id: ActorId) -> Option<&T> {
        self.actors[id.index()]
            .as_ref()
            .and_then(|a| a.downcast_ref::<T>())
    }

    /// Run until the queue drains or `deadline` passes. Events scheduled
    /// exactly at the deadline are processed.
    pub fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        loop {
            if self.halt {
                self.halt = false;
                return RunOutcome::Halted;
            }
            if self.events_processed >= self.event_budget {
                return RunOutcome::BudgetExhausted;
            }
            let Some(next_time) = self.queue.peek_time() else {
                return RunOutcome::Drained;
            };
            if next_time > deadline {
                self.now = deadline;
                return RunOutcome::DeadlineReached;
            }
            let ev = self.queue.pop().expect("peeked event must exist");
            debug_assert!(ev.time >= self.now, "time must not run backwards");
            self.now = ev.time;
            self.events_processed += 1;
            self.dispatch(ev.to, ev.from, ev.payload);
        }
    }

    /// Run for `d` simulated time from now.
    pub fn run_for(&mut self, d: SimDuration) -> RunOutcome {
        let deadline = self.now + d;
        self.run_until(deadline)
    }

    /// Run until the event queue is completely drained.
    pub fn run_to_completion(&mut self) -> RunOutcome {
        self.run_until(SimTime::MAX)
    }

    fn dispatch(&mut self, to: ActorId, from: ActorId, payload: Payload) {
        if to == ActorId::SYSTEM || to.index() >= self.actors.len() {
            return; // message to nowhere: dropped
        }
        let mut slot = self.actors[to.index()].take();
        if let Some(actor) = slot.as_mut() {
            let mut ctx = Context {
                now: self.now,
                self_id: to,
                queue: &mut self.queue,
                rng: &mut self.rng,
                halt: &mut self.halt,
                trace: &mut self.trace,
            };
            actor.on_message(&mut ctx, from, payload);
        }
        self.actors[to.index()] = slot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sends itself `count` ticks spaced `gap` apart, recording fire times.
    struct Ticker {
        gap: SimDuration,
        remaining: u32,
        fired_at: Vec<SimTime>,
    }

    struct Tick;

    impl Actor for Ticker {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            if self.remaining > 0 {
                ctx.timer(self.gap, Tick);
            }
        }
        fn on_message(&mut self, ctx: &mut Context<'_>, _from: ActorId, msg: Payload) {
            if msg.downcast::<Tick>().is_ok() {
                self.fired_at.push(ctx.now());
                self.remaining -= 1;
                if self.remaining > 0 {
                    ctx.timer(self.gap, Tick);
                }
            }
        }
        fn name(&self) -> &str {
            "ticker"
        }
    }

    #[test]
    fn timers_fire_on_schedule() {
        let mut sim = Simulation::new(1);
        let id = sim.add_actor(Box::new(Ticker {
            gap: SimDuration::from_micros(10),
            remaining: 3,
            fired_at: Vec::new(),
        }));
        assert_eq!(sim.run_to_completion(), RunOutcome::Drained);
        let t = sim.actor_ref::<Ticker>(id).unwrap();
        assert_eq!(
            t.fired_at,
            vec![
                SimTime::from_micros(10),
                SimTime::from_micros(20),
                SimTime::from_micros(30)
            ]
        );
        assert_eq!(sim.events_processed(), 3);
    }

    #[test]
    fn deadline_stops_mid_run() {
        let mut sim = Simulation::new(1);
        let id = sim.add_actor(Box::new(Ticker {
            gap: SimDuration::from_micros(10),
            remaining: 100,
            fired_at: Vec::new(),
        }));
        assert_eq!(
            sim.run_until(SimTime::from_micros(25)),
            RunOutcome::DeadlineReached
        );
        assert_eq!(sim.now(), SimTime::from_micros(25));
        assert_eq!(sim.actor_ref::<Ticker>(id).unwrap().fired_at.len(), 2);
        // Resume to completion.
        assert_eq!(sim.run_to_completion(), RunOutcome::Drained);
        assert_eq!(sim.actor_ref::<Ticker>(id).unwrap().fired_at.len(), 100);
    }

    #[test]
    fn event_at_deadline_is_processed() {
        let mut sim = Simulation::new(1);
        let id = sim.add_actor(Box::new(Ticker {
            gap: SimDuration::from_micros(10),
            remaining: 2,
            fired_at: Vec::new(),
        }));
        sim.run_until(SimTime::from_micros(10));
        assert_eq!(sim.actor_ref::<Ticker>(id).unwrap().fired_at.len(), 1);
    }

    struct Halter;
    struct Go;
    impl Actor for Halter {
        fn on_message(&mut self, ctx: &mut Context<'_>, _from: ActorId, _msg: Payload) {
            ctx.halt();
        }
    }

    #[test]
    fn halt_stops_the_run() {
        let mut sim = Simulation::new(1);
        let id = sim.add_actor(Box::new(Halter));
        sim.schedule(SimTime::from_micros(5), id, Go);
        sim.schedule(SimTime::from_micros(6), id, Go);
        assert_eq!(sim.run_to_completion(), RunOutcome::Halted);
        assert_eq!(sim.now(), SimTime::from_micros(5));
        // The halt flag is cleared; the rest of the queue can still run.
        assert_eq!(sim.run_to_completion(), RunOutcome::Halted);
    }

    #[test]
    fn budget_protects_against_runaway() {
        struct Looper;
        struct Spin;
        impl Actor for Looper {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.timer(SimDuration::ZERO, Spin);
            }
            fn on_message(&mut self, ctx: &mut Context<'_>, _from: ActorId, _msg: Payload) {
                ctx.timer(SimDuration::ZERO, Spin);
            }
        }
        let mut sim = Simulation::new(1);
        sim.set_event_budget(1000);
        sim.add_actor(Box::new(Looper));
        assert_eq!(sim.run_to_completion(), RunOutcome::BudgetExhausted);
        assert_eq!(sim.events_processed(), 1000);
    }

    #[test]
    fn messages_to_unknown_actor_are_dropped() {
        let mut sim = Simulation::new(1);
        sim.schedule(SimTime::from_micros(1), ActorId::from_raw(99), Go);
        assert_eq!(sim.run_to_completion(), RunOutcome::Drained);
    }

    #[test]
    fn deterministic_across_runs() {
        fn run() -> Vec<SimTime> {
            let mut sim = Simulation::new(77);
            let id = sim.add_actor(Box::new(Ticker {
                gap: SimDuration::from_micros(3),
                remaining: 50,
                fired_at: Vec::new(),
            }));
            sim.run_to_completion();
            sim.actor_ref::<Ticker>(id).unwrap().fired_at.clone()
        }
        assert_eq!(run(), run());
    }
}
