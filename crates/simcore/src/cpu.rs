//! CPU core modelling.
//!
//! The paper's central resource argument is about *CPU time*: the master's
//! single server thread spends cycles posting one RDMA Work Request per
//! slave per write command, and SKV reclaims those cycles by moving the
//! fan-out onto the SmartNIC's (slower) ARM cores. [`CorePool`] models a set
//! of serialized execution units with a speed factor, tracking when each
//! core next becomes free and how much busy time it has accumulated.
//!
//! Work submitted to a core runs FIFO: completion time is
//! `max(now, busy_until) + cost / speed`. Actors schedule their own
//! completion events at the returned instant, which is how a single-threaded
//! Redis event loop's serialization (and its queueing-driven tail latency)
//! emerges in the simulation.

use crate::time::{SimDuration, SimTime};

/// A set of CPU cores with a common speed factor.
#[derive(Debug, Clone)]
pub struct CorePool {
    /// `busy_until[i]` is the instant core `i` next becomes free.
    busy_until: Vec<SimTime>,
    /// Accumulated busy time per core (for utilization reporting).
    busy_total: Vec<SimDuration>,
    /// Relative speed: 1.0 = reference host core. A BlueField ARM A72 core
    /// is ~0.35 of a Xeon core on this workload (paper §II-C / [22]).
    speed: f64,
}

/// Receipt for one piece of executed work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkDone {
    /// Core the work ran on.
    pub core: usize,
    /// Instant the work started executing (after any queueing).
    pub started: SimTime,
    /// Instant the work completed.
    pub finished: SimTime,
}

impl WorkDone {
    /// Time spent waiting for the core plus executing.
    pub fn total_delay_from(&self, submitted: SimTime) -> SimDuration {
        self.finished.saturating_since(submitted)
    }
}

impl CorePool {
    /// Create `n` cores with the given speed factor.
    ///
    /// # Panics
    /// Panics if `n == 0` or `speed` is not a positive finite number.
    pub fn new(n: usize, speed: f64) -> Self {
        assert!(n > 0, "a core pool needs at least one core");
        assert!(
            speed.is_finite() && speed > 0.0,
            "core speed must be positive"
        );
        CorePool {
            busy_until: vec![SimTime::ZERO; n],
            busy_total: vec![SimDuration::ZERO; n],
            speed,
        }
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.busy_until.len()
    }

    /// The speed factor.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Scale `cost` (expressed in reference-core time) to this pool's cores.
    #[inline]
    pub fn scaled(&self, cost: SimDuration) -> SimDuration {
        cost.mul_f64(1.0 / self.speed)
    }

    /// Run `cost` of work on a specific core, FIFO after anything already
    /// queued there. Returns start/finish instants.
    pub fn run_on(&mut self, core: usize, now: SimTime, cost: SimDuration) -> WorkDone {
        let scaled = self.scaled(cost);
        let started = self.busy_until[core].max(now);
        let finished = started + scaled;
        self.busy_until[core] = finished;
        self.busy_total[core] += scaled;
        WorkDone {
            core,
            started,
            finished,
        }
    }

    /// Run `cost` on the core that frees up earliest (lowest index wins
    /// ties, keeping runs deterministic).
    pub fn run_any(&mut self, now: SimTime, cost: SimDuration) -> WorkDone {
        let core = self.earliest_free_core();
        self.run_on(core, now, cost)
    }

    /// Index of the core that becomes free soonest (lowest index on ties).
    pub fn earliest_free_core(&self) -> usize {
        self.busy_until
            .iter()
            .enumerate()
            .min_by_key(|&(i, t)| (*t, i))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Instant the given core next becomes free.
    pub fn free_at(&self, core: usize) -> SimTime {
        self.busy_until[core]
    }

    /// Queueing depth proxy: how far in the future the given core's queue
    /// currently extends.
    pub fn backlog(&self, core: usize, now: SimTime) -> SimDuration {
        self.busy_until[core].saturating_since(now)
    }

    /// Total busy time accumulated on a core.
    pub fn busy_time(&self, core: usize) -> SimDuration {
        self.busy_total[core]
    }

    /// Utilization of a core over the window `[0, now]`, in `[0, 1]`.
    pub fn utilization(&self, core: usize, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        (self.busy_total[core].as_secs_f64() / now.as_secs_f64()).min(1.0)
    }

    /// Mean utilization across all cores over `[0, now]`.
    pub fn mean_utilization(&self, now: SimTime) -> f64 {
        let n = self.num_cores();
        (0..n).map(|c| self.utilization(c, now)).sum::<f64>() / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }
    fn at(v: u64) -> SimTime {
        SimTime::from_micros(v)
    }

    #[test]
    fn fifo_on_one_core() {
        let mut pool = CorePool::new(1, 1.0);
        let a = pool.run_on(0, at(0), us(10));
        assert_eq!(a.started, at(0));
        assert_eq!(a.finished, at(10));
        // Submitted at t=2 but the core is busy until t=10.
        let b = pool.run_on(0, at(2), us(5));
        assert_eq!(b.started, at(10));
        assert_eq!(b.finished, at(15));
        assert_eq!(b.total_delay_from(at(2)), us(13));
    }

    #[test]
    fn idle_gap_does_not_accumulate_busy_time() {
        let mut pool = CorePool::new(1, 1.0);
        pool.run_on(0, at(0), us(10));
        pool.run_on(0, at(100), us(10)); // 80us idle in between
        assert_eq!(pool.busy_time(0), us(20));
        assert!((pool.utilization(0, at(200)) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn speed_factor_scales_cost() {
        let mut slow = CorePool::new(1, 0.5);
        let w = slow.run_on(0, at(0), us(10));
        assert_eq!(w.finished, at(20)); // half-speed core takes twice as long
        assert_eq!(slow.scaled(us(7)), us(14));
    }

    #[test]
    fn run_any_picks_least_loaded_core() {
        let mut pool = CorePool::new(2, 1.0);
        let w0 = pool.run_any(at(0), us(10));
        let w1 = pool.run_any(at(0), us(10));
        assert_eq!(w0.core, 0);
        assert_eq!(w1.core, 1);
        assert_eq!(w1.started, at(0)); // parallel, not queued
        let w2 = pool.run_any(at(0), us(1));
        assert_eq!(w2.started, at(10)); // both busy; queued on core 0
        assert_eq!(w2.core, 0);
    }

    #[test]
    fn backlog_reflects_queue_depth() {
        let mut pool = CorePool::new(1, 1.0);
        pool.run_on(0, at(0), us(30));
        assert_eq!(pool.backlog(0, at(10)), us(20));
        assert_eq!(pool.backlog(0, at(40)), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = CorePool::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn bad_speed_rejected() {
        let _ = CorePool::new(1, 0.0);
    }

    #[test]
    fn mean_utilization_averages() {
        let mut pool = CorePool::new(2, 1.0);
        pool.run_on(0, at(0), us(100));
        assert!((pool.mean_utilization(at(100)) - 0.5).abs() < 1e-9);
    }
}
