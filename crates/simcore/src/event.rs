//! The simulation event queue.
//!
//! Events are totally ordered by `(time, sequence)`. The sequence number is
//! assigned at scheduling time, so two events scheduled for the same instant
//! fire in scheduling order — this is what makes the simulation fully
//! deterministic regardless of hash-map iteration order elsewhere.

use std::any::Any;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::actor::ActorId;
use crate::time::SimTime;

/// An opaque message payload delivered to an actor.
///
/// Actors downcast payloads to the concrete types they understand; see
/// [`crate::actor::Actor::on_message`].
pub type Payload = Box<dyn Any>;

/// A scheduled delivery.
pub struct Event {
    /// When the event fires.
    pub time: SimTime,
    /// Tie-break for events at the same instant (scheduling order).
    pub seq: u64,
    /// Destination actor.
    pub to: ActorId,
    /// Source actor (the scheduler itself uses [`ActorId::SYSTEM`]).
    pub from: ActorId,
    /// The message.
    pub payload: Payload,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is popped
        // first, with the lowest sequence number breaking ties.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Priority queue of pending events.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule a delivery. Events at equal times fire in insertion order.
    pub fn push(&mut self, time: SimTime, to: ActorId, from: ActorId, payload: Payload) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event {
            time,
            seq,
            to,
            from,
            payload,
        });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> ActorId {
        ActorId::from_raw(n)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), id(1), id(0), Box::new(3u32));
        q.push(SimTime::from_nanos(10), id(1), id(0), Box::new(1u32));
        q.push(SimTime::from_nanos(20), id(1), id(0), Box::new(2u32));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| *e.payload.downcast::<u32>().unwrap())
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100u32 {
            q.push(t, id(1), id(0), Box::new(i));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| *e.payload.downcast::<u32>().unwrap())
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_nanos(42), id(1), id(0), Box::new(()));
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(42)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
