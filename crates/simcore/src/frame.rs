//! Cheap-to-clone, sliceable byte buffers for the simulated data path.
//!
//! A [`Frame`] is a reference-counted byte buffer plus an `(offset, len)`
//! view — the same discipline real RDMA stacks apply to registered memory:
//! payloads are written once and every later hop (replication fan-out,
//! ring-buffer delivery, stream reassembly) hands around *views*, never
//! copies. `clone` is a refcount bump, `slice`/`split_to` adjust the view,
//! and only `extend_from_slice` on a shared buffer ever copies.
//!
//! Determinism note: a `Frame` exposes nothing about its allocation (no
//! addresses, no capacity), so substituting it for `Vec<u8>` anywhere in
//! the simulation cannot change simulated outcomes — only host wall-clock
//! cost. `tests/tests/determinism.rs` is the dynamic backstop for that
//! claim.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::{Arc, Weak};

use crate::pool::PoolShared;

/// The refcounted backing allocation of a [`Frame`]: the bytes plus an
/// optional link back to the [`crate::FramePool`] the buffer was borrowed
/// from. When the last view over a pooled buffer drops, the allocation is
/// recycled into its pool instead of freed — that is the whole "send ring
/// returned on completion" lifecycle, and it needs no cooperation from any
/// of the hops a frame passes through.
pub(crate) struct Storage {
    pub(crate) bytes: Vec<u8>,
    home: Option<Weak<PoolShared>>,
}

impl Storage {
    fn owned(bytes: Vec<u8>) -> Storage {
        Storage { bytes, home: None }
    }
}

impl Default for Storage {
    fn default() -> Storage {
        Storage::owned(Vec::new())
    }
}

impl Drop for Storage {
    fn drop(&mut self) {
        if let Some(pool) = self.home.take().and_then(|weak| weak.upgrade()) {
            pool.give_back(std::mem::take(&mut self.bytes));
        }
    }
}

/// A shared byte buffer with an `(offset, len)` view. See the module docs.
#[derive(Clone, Default)]
pub struct Frame {
    buf: Arc<Storage>,
    off: usize,
    len: usize,
}

impl Frame {
    /// An empty frame (no allocation beyond the shared empty buffer).
    pub fn new() -> Frame {
        Frame::default()
    }

    /// Take ownership of `vec` without copying.
    pub fn from_vec(vec: Vec<u8>) -> Frame {
        let len = vec.len();
        Frame {
            buf: Arc::new(Storage::owned(vec)),
            off: 0,
            len,
        }
    }

    /// Wrap a buffer borrowed from a [`crate::FramePool`]; the allocation
    /// flows back into the pool when the last view over it drops.
    pub(crate) fn from_pooled(bytes: Vec<u8>, home: Weak<PoolShared>) -> Frame {
        let len = bytes.len();
        Frame {
            buf: Arc::new(Storage {
                bytes,
                home: Some(home),
            }),
            off: 0,
            len,
        }
    }

    /// Copy `bytes` into a fresh frame. The one constructor that always
    /// copies — use it exactly where a real stack would DMA bytes in.
    pub fn copy_from_slice(bytes: &[u8]) -> Frame {
        Frame::from_vec(bytes.to_vec())
    }

    /// Number of visible bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf.bytes[self.off..self.off + self.len]
    }

    /// A sub-view of this frame; refcount bump, no copy.
    ///
    /// # Panics
    /// If the range is out of bounds (mirrors slice indexing).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Frame {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} out of range for frame of {}",
            self.len
        );
        Frame {
            buf: Arc::clone(&self.buf),
            off: self.off + start,
            len: end - start,
        }
    }

    /// Split off and return the first `n` bytes; `self` keeps the rest.
    /// Both halves share the underlying buffer.
    ///
    /// # Panics
    /// If `n > self.len()`.
    pub fn split_to(&mut self, n: usize) -> Frame {
        let head = self.slice(..n);
        self.off += n;
        self.len -= n;
        head
    }

    /// Drop the first `n` bytes from the view.
    ///
    /// # Panics
    /// If `n > self.len()`.
    pub fn advance(&mut self, n: usize) {
        assert!(
            n <= self.len,
            "advance {n} past end of frame of {}",
            self.len
        );
        self.off += n;
        self.len -= n;
    }

    /// Shorten the view to `n` bytes; no-op if already shorter.
    pub fn truncate(&mut self, n: usize) {
        self.len = self.len.min(n);
    }

    /// Append bytes. In place when this frame is the sole owner and its
    /// view ends at the buffer's end (the streaming-append case);
    /// otherwise copies out into a fresh buffer first (copy-on-write).
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        if bytes.is_empty() {
            return;
        }
        let end = self.off + self.len;
        if end == self.buf.bytes.len() {
            if let Some(storage) = Arc::get_mut(&mut self.buf) {
                storage.bytes.extend_from_slice(bytes);
                self.len += bytes.len();
                return;
            }
        }
        let mut vec = Vec::with_capacity(self.len + bytes.len());
        vec.extend_from_slice(&self.buf.bytes[self.off..end]);
        vec.extend_from_slice(bytes);
        self.len = vec.len();
        self.off = 0;
        self.buf = Arc::new(Storage::owned(vec));
    }

    /// Copy the viewed bytes out into an owned `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Frame {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Frame {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Frame {
    fn from(vec: Vec<u8>) -> Frame {
        Frame::from_vec(vec)
    }
}

impl From<&[u8]> for Frame {
    fn from(bytes: &[u8]) -> Frame {
        Frame::copy_from_slice(bytes)
    }
}

impl<const N: usize> From<&[u8; N]> for Frame {
    fn from(bytes: &[u8; N]) -> Frame {
        Frame::copy_from_slice(bytes)
    }
}

impl From<Frame> for Vec<u8> {
    /// Recover an owned `Vec`; free only when the frame is the sole owner
    /// of the whole buffer, otherwise one copy. A pooled buffer recovered
    /// this way leaves its pool for good (its `Storage` drops empty).
    fn from(frame: Frame) -> Vec<u8> {
        if frame.off == 0 && frame.len == frame.buf.bytes.len() {
            match Arc::try_unwrap(frame.buf) {
                Ok(mut storage) => return std::mem::take(&mut storage.bytes),
                Err(buf) => return buf.bytes[..frame.len].to_vec(),
            }
        }
        frame.to_vec()
    }
}

impl fmt::Debug for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Frame({:?})", self.as_slice())
    }
}

impl PartialEq for Frame {
    fn eq(&self, other: &Frame) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Frame {}

impl Hash for Frame {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Frame {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Frame {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Frame {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Frame> for Vec<u8> {
    fn eq(&self, other: &Frame) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Frame {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Frame {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn clone_is_a_view_not_a_copy() {
        let a = Frame::from_vec(vec![1, 2, 3, 4]);
        let b = a.clone();
        assert_eq!(Arc::strong_count(&a.buf), 2);
        assert_eq!(a, b);
    }

    #[test]
    fn slice_and_split_share_the_buffer() {
        let mut f = Frame::from_vec((0u8..32).collect());
        let head = f.split_to(10);
        assert_eq!(head.len(), 10);
        assert_eq!(f.len(), 22);
        assert_eq!(head.as_slice(), &(0u8..10).collect::<Vec<_>>()[..]);
        assert_eq!(f.as_slice(), &(10u8..32).collect::<Vec<_>>()[..]);
        let mid = f.slice(2..5);
        assert_eq!(mid, vec![12u8, 13, 14]);
        assert_eq!(Arc::strong_count(&f.buf), 3);
    }

    #[test]
    fn extend_appends_in_place_when_unique() {
        let mut f = Frame::from_vec(vec![1, 2]);
        let arc_before = Arc::as_ptr(&f.buf);
        f.extend_from_slice(&[3, 4]);
        assert_eq!(Arc::as_ptr(&f.buf), arc_before, "unique append reallocated");
        assert_eq!(f, vec![1, 2, 3, 4]);
    }

    #[test]
    fn extend_copies_when_shared() {
        let mut f = Frame::from_vec(vec![1, 2]);
        let view = f.clone();
        f.extend_from_slice(&[3]);
        assert_eq!(f, vec![1, 2, 3]);
        assert_eq!(view, vec![1, 2], "shared view must not observe the append");
    }

    #[test]
    fn truncate_and_advance_adjust_the_view() {
        let mut f = Frame::from(&[9u8, 8, 7, 6, 5]);
        f.advance(1);
        f.truncate(3);
        assert_eq!(f, vec![8u8, 7, 6]);
        f.truncate(100); // no-op
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn into_vec_round_trips_without_copy_when_unique() {
        let v = vec![5u8; 1000];
        let ptr = v.as_ptr();
        let f = Frame::from_vec(v);
        let back: Vec<u8> = f.into();
        assert_eq!(back.as_ptr(), ptr, "sole-owner unwrap copied");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_past_end_panics() {
        let f = Frame::from_vec(vec![0; 4]);
        let _ = f.slice(2..6);
    }

    /// A random byte vector and an ordered pair of cut points within it.
    fn bytes_and_cuts() -> impl Strategy<Value = (Vec<u8>, usize, usize)> {
        (
            prop::collection::vec(any::<u8>(), 0..200),
            any::<u16>(),
            any::<u16>(),
        )
            .prop_map(|(v, x, y)| {
                let bound = v.len() + 1;
                let (mut a, mut b) = (x as usize % bound, y as usize % bound);
                if a > b {
                    std::mem::swap(&mut a, &mut b);
                }
                (v, a, b)
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any slice of a Frame equals the same slice of the source Vec.
        #[test]
        fn prop_slice_matches_vec(case in bytes_and_cuts()) {
            let (v, a, b) = case;
            let f = Frame::from_vec(v.clone());
            prop_assert_eq!(f.slice(a..b).to_vec(), v[a..b].to_vec());
            prop_assert_eq!(f.slice(..a).to_vec(), v[..a].to_vec());
            prop_assert_eq!(f.slice(b..).to_vec(), v[b..].to_vec());
            prop_assert_eq!(f.slice(..).to_vec(), v.clone());
        }

        /// split_to partitions exactly like Vec::split_off (mirrored).
        #[test]
        fn prop_split_to_partitions(case in bytes_and_cuts()) {
            let (v, a, _b) = case;
            let mut f = Frame::from_vec(v.clone());
            let head = f.split_to(a);
            let mut expect_head = v.clone();
            let expect_tail = expect_head.split_off(a);
            prop_assert_eq!(head.as_slice(), expect_head.as_slice());
            prop_assert_eq!(f.as_slice(), expect_tail.as_slice());
        }

        /// Concatenation by repeated extend_from_slice round-trips, with
        /// and without an outstanding shared view (CoW path).
        #[test]
        fn prop_extend_concat_round_trip(
            case in bytes_and_cuts(),
            shared in any::<bool>(),
        ) {
            let (v, a, b) = case;
            let mut f = Frame::from_vec(v[..a].to_vec());
            let view = shared.then(|| f.clone());
            f.extend_from_slice(&v[a..b]);
            f.extend_from_slice(&v[b..]);
            prop_assert_eq!(f.as_slice(), &v[..]);
            if let Some(view) = view {
                prop_assert_eq!(view.as_slice(), &v[..a]);
            }
            let back: Vec<u8> = f.into();
            prop_assert_eq!(back, v);
        }

        /// Frames delivered as split+slice views reassemble to the source.
        #[test]
        fn prop_views_reassemble(case in bytes_and_cuts()) {
            let (v, a, b) = case;
            let whole = Frame::from_vec(v.clone());
            let mut rest = whole.clone();
            let first = rest.split_to(a);
            let second = rest.slice(..b - a);
            let third = rest.slice(b - a..);
            let mut rejoined = first.to_vec();
            rejoined.extend_from_slice(&second);
            rejoined.extend_from_slice(&third);
            prop_assert_eq!(rejoined, v);
        }
    }
}
