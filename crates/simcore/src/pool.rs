//! Frame-pooled send rings: a slab of reusable byte buffers.
//!
//! `Channel::send` used to allocate one wire frame per message; at
//! millions of ops this is the send side's last steady-state allocation
//! (the receive path went zero-copy in the frame-pipeline PR). A
//! [`FramePool`] removes it: senders borrow a recycled ring buffer, build
//! the wire frame in place, and hand it around as an ordinary [`Frame`]
//! view. When the last view drops — i.e. when the send has *completed*
//! and every receiver has let go — the allocation flows back into the
//! pool automatically via the frame storage's drop hook, exactly like a
//! hardware send ring whose slot is reusable once the WQE completes.
//!
//! Determinism note: the free list is a LIFO `Vec` and every borrow /
//! return follows the deterministic event schedule, so buffer reuse order
//! is itself deterministic — and, like `Frame`, the pool exposes nothing
//! about allocation (no addresses, no capacities) to simulated code, so
//! pooling cannot change simulated outcomes, only host wall-clock cost.
//!
//! The hit/miss/recycle counters are observability for tests and benches
//! (the steady-state send path is asserted allocation-free by checking
//! the hit rate), not part of any simulated cost model.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::frame::Frame;

/// Shared interior of a [`FramePool`]: the free slab plus counters.
/// Frame storages hold a `Weak` back-reference so buffers outliving the
/// pool are simply freed instead of kept alive.
pub(crate) struct PoolShared {
    free: Mutex<Vec<Vec<u8>>>,
    max_free: usize,
    buf_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    recycled: AtomicU64,
}

impl PoolShared {
    /// Return a buffer to the slab (called from `Storage::drop`). Buffers
    /// whose bytes were stolen (`From<Frame> for Vec<u8>`) arrive with
    /// zero capacity and are not worth keeping; a full slab drops the
    /// buffer on the floor rather than grow without bound.
    pub(crate) fn give_back(&self, mut bytes: Vec<u8>) {
        if bytes.capacity() == 0 {
            return;
        }
        bytes.clear();
        let mut free = self.free.lock().unwrap_or_else(PoisonError::into_inner);
        if free.len() < self.max_free {
            free.push(bytes);
            self.recycled.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A slab of reusable send-ring buffers; see the module docs. Cloning the
/// handle shares the slab.
#[derive(Clone)]
pub struct FramePool {
    shared: Arc<PoolShared>,
}

impl FramePool {
    /// Create a pool that retains up to `max_free` idle buffers and
    /// allocates fresh ones with `buf_capacity` bytes of capacity (grown
    /// buffers keep their larger capacity when recycled).
    pub fn new(buf_capacity: usize, max_free: usize) -> FramePool {
        FramePool {
            shared: Arc::new(PoolShared {
                free: Mutex::new(Vec::new()),
                max_free,
                buf_capacity,
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                recycled: AtomicU64::new(0),
            }),
        }
    }

    /// Borrow a ring buffer, let `fill` build the wire frame in place,
    /// and return the result as a pooled [`Frame`]. The buffer arrives
    /// empty (capacity intact) and flows back into the pool when the last
    /// view over the frame drops.
    pub fn build(&self, fill: impl FnOnce(&mut Vec<u8>)) -> Frame {
        let mut bytes = self.take();
        fill(&mut bytes);
        Frame::from_pooled(bytes, Arc::downgrade(&self.shared))
    }

    /// Copy `bytes` into a pooled frame — the pooled analogue of
    /// [`Frame::copy_from_slice`].
    pub fn frame_from_slice(&self, bytes: &[u8]) -> Frame {
        self.build(|buf| buf.extend_from_slice(bytes))
    }

    fn take(&self) -> Vec<u8> {
        let recycled = {
            let mut free = self
                .shared
                .free
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            free.pop()
        };
        match recycled {
            Some(bytes) => {
                self.shared.hits.fetch_add(1, Ordering::Relaxed);
                bytes
            }
            None => {
                self.shared.misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(self.shared.buf_capacity)
            }
        }
    }

    /// Borrows served from the slab (no allocation).
    pub fn hits(&self) -> u64 {
        self.shared.hits.load(Ordering::Relaxed)
    }

    /// Borrows that had to allocate a fresh buffer.
    pub fn misses(&self) -> u64 {
        self.shared.misses.load(Ordering::Relaxed)
    }

    /// Buffers returned to the slab so far.
    pub fn recycled(&self) -> u64 {
        self.shared.recycled.load(Ordering::Relaxed)
    }

    /// Fraction of borrows served without allocating, in `[0, 1]`;
    /// `1.0` for an untouched pool.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits();
        let total = hits + self.misses();
        if total == 0 {
            1.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Idle buffers currently in the slab.
    pub fn free_len(&self) -> usize {
        self.shared
            .free
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_returns_to_the_pool_when_the_last_view_drops() {
        let pool = FramePool::new(64, 8);
        let frame = pool.build(|b| b.extend_from_slice(b"hello"));
        assert_eq!(frame, b"hello");
        assert_eq!(pool.misses(), 1);
        assert_eq!(pool.free_len(), 0, "buffer still borrowed");

        let view = frame.slice(1..4);
        drop(frame);
        assert_eq!(pool.free_len(), 0, "a live view pins the buffer");
        assert_eq!(view, b"ell");
        drop(view);
        assert_eq!(pool.free_len(), 1, "last view drop recycles");
        assert_eq!(pool.recycled(), 1);
    }

    #[test]
    fn steady_state_reuses_one_buffer() {
        let pool = FramePool::new(32, 8);
        for i in 0..100u8 {
            let frame = pool.frame_from_slice(&[i; 16]);
            assert_eq!(frame, &[i; 16][..]);
            // frame drops here; the buffer goes straight back.
        }
        assert_eq!(pool.misses(), 1, "steady state must not allocate");
        assert_eq!(pool.hits(), 99);
        assert!(pool.hit_rate() > 0.98);
    }

    #[test]
    fn recycled_buffers_arrive_empty_with_capacity() {
        let pool = FramePool::new(8, 8);
        let big = pool.frame_from_slice(&[7u8; 4096]); // grows past buf_capacity
        drop(big);
        assert_eq!(pool.free_len(), 1);
        let next = pool.build(|b| {
            assert!(b.is_empty(), "recycled buffer must be cleared");
            assert!(b.capacity() >= 4096, "grown capacity must be kept");
            b.push(1);
        });
        assert_eq!(next, &[1u8][..]);
        assert_eq!(pool.hits(), 1);
    }

    #[test]
    fn stolen_buffers_do_not_poison_the_slab() {
        let pool = FramePool::new(16, 8);
        let frame = pool.frame_from_slice(b"take me");
        let owned: Vec<u8> = frame.into(); // steals the allocation
        assert_eq!(owned, b"take me");
        assert_eq!(pool.free_len(), 0, "stolen buffer must not be recycled");
        assert_eq!(pool.recycled(), 0);
    }

    #[test]
    fn slab_size_is_bounded() {
        let pool = FramePool::new(16, 2);
        let frames: Vec<_> = (0..5).map(|_| pool.frame_from_slice(b"x")).collect();
        drop(frames);
        assert_eq!(pool.free_len(), 2, "slab must cap at max_free");
    }

    #[test]
    fn buffers_outliving_the_pool_are_freed_not_leaked() {
        let pool = FramePool::new(16, 8);
        let frame = pool.frame_from_slice(b"orphan");
        drop(pool);
        // The weak back-reference is dead; dropping the frame must not
        // panic (the bytes are simply freed).
        drop(frame);
    }
}
