//! Lightweight simulation tracing.
//!
//! Tracing is off by default and costs one branch per call site when
//! disabled (the formatting closure is never invoked). When enabled, trace
//! records accumulate in memory and can be dumped after a run — invaluable
//! when debugging protocol state machines.

use crate::actor::ActorId;
use crate::time::SimTime;

/// One trace record.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// When the record was emitted.
    pub time: SimTime,
    /// Which actor emitted it.
    pub actor: ActorId,
    /// The message.
    pub text: String,
}

/// A bounded in-memory trace buffer.
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    records: Vec<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// A disabled trace (the default).
    pub fn disabled() -> Self {
        Trace::default()
    }

    /// An enabled trace retaining up to `capacity` records; older records
    /// beyond the cap are counted in [`Trace::dropped`] rather than stored.
    pub fn enabled(capacity: usize) -> Self {
        Trace {
            enabled: true,
            records: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Whether records are being captured.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record a line. `text` is only evaluated when tracing is enabled.
    #[inline]
    pub fn record(&mut self, time: SimTime, actor: ActorId, text: impl FnOnce() -> String) {
        if !self.enabled {
            return;
        }
        if self.records.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.records.push(TraceRecord {
            time,
            actor,
            text: text(),
        });
    }

    /// All captured records, in emission order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records discarded because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render the trace as text, one record per line.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for r in &self.records {
            let _ = writeln!(out, "[{}] {} {}", r.time, r.actor, r.text);
        }
        if self.dropped > 0 {
            let _ = writeln!(out, "... {} records dropped", self.dropped);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_skips_closure() {
        let mut t = Trace::disabled();
        let mut evaluated = false;
        t.record(SimTime::ZERO, ActorId::SYSTEM, || {
            evaluated = true;
            String::new()
        });
        assert!(!evaluated);
        assert!(t.records().is_empty());
    }

    #[test]
    fn enabled_trace_captures_and_caps() {
        let mut t = Trace::enabled(2);
        for i in 0..5 {
            t.record(SimTime::from_nanos(i), ActorId::from_raw(1), || {
                format!("msg {i}")
            });
        }
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.dropped(), 3);
        assert_eq!(t.records()[0].text, "msg 0");
        let rendered = t.render();
        assert!(rendered.contains("msg 1"));
        assert!(rendered.contains("3 records dropped"));
    }
}
