//! The actor abstraction.
//!
//! Every active component of the simulated system — a key-value server, a
//! SmartNIC SoC service, a benchmark client — is an [`Actor`]. Actors never
//! hold references to each other; all interaction happens by scheduling
//! message events through the [`Context`], which the engine delivers in
//! deterministic time order.

use std::any::Any;
use std::fmt;

use crate::event::{EventQueue, Payload};
use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// Identifies an actor within one [`crate::Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(u32);

impl ActorId {
    /// The pseudo-actor used as the source of externally scheduled events
    /// (initial kicks, injected failures).
    pub const SYSTEM: ActorId = ActorId(u32::MAX);

    /// Construct from a raw index. Exposed for tests and id maps.
    pub const fn from_raw(raw: u32) -> Self {
        ActorId(raw)
    }

    /// The raw index.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Index usable for slab storage.
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == ActorId::SYSTEM {
            write!(f, "actor(system)")
        } else {
            write!(f, "actor({})", self.0)
        }
    }
}

/// A component of the simulated system.
///
/// Implementors must also be `Any` (automatic for `'static` types), which
/// lets harness code downcast actors for setup and inspection via
/// [`crate::Simulation::actor_mut`].
pub trait Actor: Any {
    /// Called once, at the simulated instant the actor is started.
    fn on_start(&mut self, _ctx: &mut Context<'_>) {}

    /// Called for every message delivered to this actor.
    fn on_message(&mut self, ctx: &mut Context<'_>, from: ActorId, msg: Payload);

    /// Human-readable name used in traces.
    fn name(&self) -> &str {
        "actor"
    }
}

impl dyn Actor {
    /// Downcast a dynamic actor to a concrete type.
    pub fn downcast_mut<T: Actor>(&mut self) -> Option<&mut T> {
        let any: &mut dyn Any = self;
        any.downcast_mut::<T>()
    }

    /// Downcast a dynamic actor to a concrete type (shared).
    pub fn downcast_ref<T: Actor>(&self) -> Option<&T> {
        let any: &dyn Any = self;
        any.downcast_ref::<T>()
    }
}

/// The actor's handle to the engine while processing an event.
pub struct Context<'a> {
    pub(crate) now: SimTime,
    pub(crate) self_id: ActorId,
    pub(crate) queue: &'a mut EventQueue,
    pub(crate) rng: &'a mut DetRng,
    pub(crate) halt: &'a mut bool,
    pub(crate) trace: &'a mut crate::trace::Trace,
}

impl Context<'_> {
    /// The current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This actor's id.
    #[inline]
    pub fn id(&self) -> ActorId {
        self.self_id
    }

    /// Deliver `msg` to `to` at the current instant (processed after the
    /// current event, in scheduling order).
    pub fn send<M: Any>(&mut self, to: ActorId, msg: M) {
        self.queue.push(self.now, to, self.self_id, Box::new(msg));
    }

    /// Deliver `msg` to `to` after `delay`.
    pub fn send_in<M: Any>(&mut self, delay: SimDuration, to: ActorId, msg: M) {
        self.queue
            .push(self.now + delay, to, self.self_id, Box::new(msg));
    }

    /// Deliver `msg` to `to` at the absolute instant `at` (clamped to now).
    pub fn send_at<M: Any>(&mut self, at: SimTime, to: ActorId, msg: M) {
        let at = at.max(self.now);
        self.queue.push(at, to, self.self_id, Box::new(msg));
    }

    /// Schedule a message to self after `delay` (a timer).
    pub fn timer<M: Any>(&mut self, delay: SimDuration, msg: M) {
        let to = self.self_id;
        self.send_in(delay, to, msg);
    }

    /// Schedule a message to self at the absolute instant `at`.
    pub fn timer_at<M: Any>(&mut self, at: SimTime, msg: M) {
        let to = self.self_id;
        self.send_at(at, to, msg);
    }

    /// The engine-wide deterministic RNG.
    ///
    /// Actors that draw frequently should [`DetRng::split`] a private stream
    /// at start-up instead, so their draws do not interleave with other
    /// actors' draws.
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
    }

    /// Request that the simulation stop after the current event.
    pub fn halt(&mut self) {
        *self.halt = true;
    }

    /// Record a trace line (no-op unless tracing is enabled).
    pub fn trace(&mut self, text: impl FnOnce() -> String) {
        let now = self.now;
        let id = self.self_id;
        self.trace.record(now, id, text);
    }
}

/// An actor defined by a closure — convenient for tests and small glue
/// components that don't warrant a named type.
///
/// The closure receives the context, the sender, and the payload, exactly
/// like [`Actor::on_message`].
pub struct FnActor {
    handler: FnActorHandler,
}

/// Boxed handler signature for [`FnActor`].
pub type FnActorHandler = Box<dyn FnMut(&mut Context<'_>, ActorId, Payload) + 'static>;

impl FnActor {
    /// Wrap a closure as an actor.
    pub fn new(handler: impl FnMut(&mut Context<'_>, ActorId, Payload) + 'static) -> Self {
        FnActor {
            handler: Box::new(handler),
        }
    }
}

impl Actor for FnActor {
    fn on_message(&mut self, ctx: &mut Context<'_>, from: ActorId, msg: Payload) {
        (self.handler)(ctx, from, msg);
    }
    fn name(&self) -> &str {
        "fn-actor"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy {
        hits: u32,
    }
    impl Actor for Dummy {
        fn on_message(&mut self, _ctx: &mut Context<'_>, _from: ActorId, _msg: Payload) {
            self.hits += 1;
        }
        fn name(&self) -> &str {
            "dummy"
        }
    }

    #[test]
    fn downcast_roundtrip() {
        let mut boxed: Box<dyn Actor> = Box::new(Dummy { hits: 3 });
        assert!(boxed.downcast_ref::<Dummy>().is_some());
        assert_eq!(boxed.downcast_ref::<Dummy>().unwrap().hits, 3);
        boxed.downcast_mut::<Dummy>().unwrap().hits = 9;
        assert_eq!(boxed.downcast_ref::<Dummy>().unwrap().hits, 9);
    }

    #[test]
    fn actor_id_display() {
        assert_eq!(ActorId::from_raw(4).to_string(), "actor(4)");
        assert_eq!(ActorId::SYSTEM.to_string(), "actor(system)");
    }
}
