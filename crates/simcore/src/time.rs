//! Simulated time.
//!
//! The simulation clock is a monotonically non-decreasing nanosecond counter.
//! All latencies in the SKV reproduction are microsecond-scale (RDMA writes,
//! command execution), so nanosecond resolution leaves plenty of headroom
//! while still allowing multi-hour simulated runs inside a `u64`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time since start expressed in (fractional) microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time since start expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Duration elapsed since `earlier`. Saturates at zero if `earlier` is
    /// in the future, which keeps failure-detector arithmetic total.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

/// Round fractional nanoseconds to ticks. Non-finite and negative
/// inputs clamp to zero; overflow saturates at `u64::MAX` (the defined
/// behaviour of a float-to-int `as` cast), which is the intended clamp.
#[allow(clippy::cast_possible_truncation)]
fn ticks_from_f64(ns: f64) -> u64 {
    if !ns.is_finite() || ns <= 0.0 {
        0
    } else {
        ns.round() as u64
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional microseconds (rounds to nearest ns).
    ///
    /// Negative or non-finite inputs clamp to zero: durations are lengths.
    #[inline]
    pub fn from_micros_f64(us: f64) -> Self {
        SimDuration(ticks_from_f64(us * 1_000.0))
    }

    /// Construct from fractional seconds (rounds to nearest ns, clamps at 0).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration(ticks_from_f64(s * 1_000_000_000.0))
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// True if this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scale by a dimensionless factor (e.g. a CPU speed divisor).
    /// Clamps negative and non-finite results to zero.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration(ticks_from_f64(self.0 as f64 * factor))
    }

    /// The longer of two spans.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000_000.0)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_micros(10);
        let d = SimDuration::from_micros(4);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn subtraction_saturates() {
        let early = SimTime::from_nanos(5);
        let late = SimTime::from_nanos(10);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_nanos(5));
    }

    #[test]
    fn fractional_micros() {
        let d = SimDuration::from_micros_f64(1.5);
        assert_eq!(d.as_nanos(), 1_500);
        assert_eq!(SimDuration::from_micros_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_micros_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d.mul_f64(0.5).as_nanos(), 5_000);
        assert_eq!(d.mul_f64(2.0).as_nanos(), 20_000);
        assert_eq!(d.mul_f64(-3.0), SimDuration::ZERO);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total, SimDuration::from_micros(10));
    }
}
