//! Regenerates the paper's Figure 14: SET throughput over time while one
//! slave crashes at 4 s and recovers at 9 s. Nic-KV detects both, the
//! master's throughput stays above 300 kops/s, and clients see no errors.
use skv_bench::experiments as exp;

fn main() {
    exp::print_fig14(&exp::fig14_availability());
}
