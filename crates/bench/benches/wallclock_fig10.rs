//! Wall-clock: a full Figure-10-style cluster run (mixed GET/SET, 8
//! clients, 1 master + 3 slaves) for both the TCP baseline and SKV.
//! This is the end-to-end number — how long reproducing one figure data
//! point actually takes on the host.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use skv_bench::wallclock::fig10_style_spec;
use skv_core::cluster::run_spec;
use skv_core::config::Mode;
use std::time::Duration;

fn fig10_style(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_style");
    g.sample_size(5);
    for (name, mode) in [("redis-tcp", Mode::TcpRedis), ("skv", Mode::Skv)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let report = run_spec(fig10_style_spec(mode, 0x10F1));
                assert!(report.ops > 0, "figure-10-style run produced no operations");
                black_box(report.ops)
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(1))
        .measurement_time(Duration::from_millis(2_000))
        .sample_size(5);
    targets = fig10_style
}
criterion_main!(benches);
