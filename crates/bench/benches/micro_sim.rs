//! Criterion micro-benchmarks for the simulation engine itself: how fast
//! the reproduction can push events, which bounds how much simulated time
//! the figure benches can afford.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use skv_core::cluster::{Cluster, RunSpec};
use skv_core::config::{ClusterConfig, Mode};
use skv_simcore::{Actor, ActorId, Context, CorePool, Payload, SimDuration, SimTime, Simulation};

/// Minimal self-ticking actor for raw event-loop throughput.
struct Ticker {
    remaining: u64,
}
struct Tick;
impl Actor for Ticker {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.timer(SimDuration::from_nanos(10), Tick);
    }
    fn on_message(&mut self, ctx: &mut Context<'_>, _from: ActorId, _msg: Payload) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.timer(SimDuration::from_nanos(10), Tick);
        }
    }
}

fn bench_event_loop(c: &mut Criterion) {
    let mut g = c.benchmark_group("simcore");
    let n = 100_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("events_100k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(1);
            sim.add_actor(Box::new(Ticker { remaining: n }));
            sim.run_to_completion();
            black_box(sim.events_processed())
        });
    });
    g.bench_function("corepool_run_on", |b| {
        let mut pool = CorePool::new(8, 1.0);
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += SimDuration::from_nanos(100);
            black_box(pool.run_any(t, SimDuration::from_nanos(250)))
        });
    });
    g.finish();
}

fn bench_cluster_second(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster");
    g.sample_size(10);
    g.bench_function("skv_200ms_sim", |b| {
        b.iter(|| {
            let mut cfg = ClusterConfig::for_mode(Mode::Skv);
            cfg.num_slaves = 3;
            let mut cluster = Cluster::build(RunSpec {
                cfg,
                num_clients: 8,
                warmup: SimDuration::from_millis(50),
                measure: SimDuration::from_millis(150),
                ..Default::default()
            });
            black_box(cluster.run().ops)
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(30);
    targets = bench_event_loop, bench_cluster_second
}
criterion_main!(benches);
