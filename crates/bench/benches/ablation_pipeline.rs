//! Extension ablation: client pipelining depth (redis-benchmark -P).
//! Pipeline depth substitutes for connection concurrency: one pipelined
//! client saturates the server core just like many unpipelined ones.
use skv_bench::ablations as abl;

fn main() {
    abl::print_pipeline(&abl::ablation_pipeline());
}
