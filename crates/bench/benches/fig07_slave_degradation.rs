//! Regenerates the paper's Figure 7: RDMA-Redis SET performance degradation
//! when the master replicates to three slaves (avg latency up, 99% tail up
//! by more than 25%, throughput down).
use skv_bench::experiments as exp;

fn main() {
    exp::print_fig07(&exp::fig07_slave_degradation());
}
