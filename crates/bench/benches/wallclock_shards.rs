//! Wall-clock: keyspace-shard sweep under a pipelined GET/SET workload.
//! Same spec per arm; only `num_shards` differs. The single-shard arm is
//! the historical engine (and must stay schedule-identical to it); the
//! sharded arms run hash-slot routing, per-shard CQs and the serialized
//! replication egress, so the sweep prices what the shard layer costs in
//! host CPU per simulated run.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use skv_bench::wallclock::shards_spec;
use skv_core::cluster::run_spec;
use std::time::Duration;

fn shards(c: &mut Criterion) {
    let mut g = c.benchmark_group("shards");
    g.sample_size(5);
    for num_shards in [1usize, 2, 4] {
        g.bench_function(&format!("skv-shards-{num_shards}"), |b| {
            b.iter(|| {
                let report = run_spec(shards_spec(num_shards, 0x5EED));
                assert!(report.ops > 0, "sharded run produced no operations");
                assert_eq!(report.errors, 0, "sharded run saw error replies");
                black_box(report.ops)
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(1))
        .measurement_time(Duration::from_millis(2_000))
        .sample_size(5);
    targets = shards
}
criterion_main!(benches);
