//! Wall-clock: RESP protocol encode and parse throughput. Every simulated
//! command and reply passes through these routines, on both the host and
//! the SmartNIC data paths.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use skv_bench::wallclock::smoke;
use skv_store::resp::{Resp, RespStream};
use std::time::Duration;

const VALUE: usize = 64;

fn batch(n: usize) -> Vec<u8> {
    let mut wire = Vec::new();
    for i in 0..n {
        let key = format!("key:{i:012}");
        Resp::command([b"SET".as_slice(), key.as_bytes(), &[b'x'; VALUE]]).encode_into(&mut wire);
    }
    wire
}

fn resp(c: &mut Criterion) {
    let cmds = if smoke() { 200 } else { 1_000 };
    let wire = batch(cmds);

    let mut g = c.benchmark_group("resp");
    g.throughput(Throughput::Bytes(wire.len() as u64));
    g.bench_function("parse-set-64", |b| {
        b.iter(|| {
            let mut stream = RespStream::new();
            stream.feed(&wire);
            let mut frames = 0u64;
            while let Ok(Some(frame)) = stream.next_frame() {
                black_box(&frame);
                frames += 1;
            }
            assert_eq!(frames, cmds as u64);
            frames
        });
    });
    g.finish();

    let mut g = c.benchmark_group("resp");
    g.throughput(Throughput::Elements(cmds as u64));
    g.bench_function("encode-set-64", |b| {
        b.iter(|| black_box(batch(cmds)).len());
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1_500))
        .sample_size(10);
    targets = resp
}
criterion_main!(benches);
