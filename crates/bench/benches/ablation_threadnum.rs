//! Ablation (paper §III-C): multi-threaded replication on the SmartNIC.
//! Expected: client throughput/latency flat (replication is background),
//! replication lag shrinks as threads increase, clamped at
//! min(NIC cores, slaves).
use skv_bench::ablations as abl;

fn main() {
    abl::print_threadnum(&abl::ablation_threadnum());
}
