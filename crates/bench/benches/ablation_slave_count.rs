//! Ablation: offload gain vs number of slaves. The host saves (N-1) WR
//! posts per write, so the gain grows with N and vanishes at N <= 1.
use skv_bench::ablations as abl;

fn main() {
    abl::print_slave_count(&abl::ablation_slave_count());
}
