//! Wall-clock: replication-protocol sweep at a fixed 3-slave fan-out.
//! Same SET workload per arm; only the `ReplicationMode` differs. The
//! async arm is the pre-existing stream path (the cost floor), quorum adds
//! per-write WR-ack tracking plus deferred-reply release on the master,
//! and chain serializes each write through hop timers and applied-ack
//! advancement — the sweep keeps the tracked modes' host-CPU overhead
//! honest relative to the stream they wrap.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use skv_bench::wallclock::replmode_spec;
use skv_core::cluster::run_spec;
use skv_core::replmode::ReplModeKind;
use std::time::Duration;

fn replmode(c: &mut Criterion) {
    let mut g = c.benchmark_group("replmode");
    g.sample_size(5);
    for mode in ReplModeKind::ALL {
        g.bench_function(&format!("skv-{}", mode.label()), |b| {
            b.iter(|| {
                let report = run_spec(replmode_spec(mode, 0x5EED));
                assert!(report.ops > 0, "replmode run produced no operations");
                assert_eq!(report.errors, 0, "replmode run saw error replies");
                black_box(report.ops)
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(1))
        .measurement_time(Duration::from_millis(2_000))
        .sample_size(5);
    targets = replmode
}
criterion_main!(benches);
