//! Criterion micro-benchmarks for the storage engine's hot paths: the
//! structures whose costs the simulation's CPU model abstracts.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use skv_store::backlog::Backlog;
use skv_store::dict::Dict;
use skv_store::engine::Engine;
use skv_store::hash::siphash13;
use skv_store::rdb;
use skv_store::resp::Resp;
use skv_store::sds::Sds;
use skv_store::skiplist::SkipList;

fn bench_dict(c: &mut Criterion) {
    let mut g = c.benchmark_group("dict");
    g.throughput(Throughput::Elements(1));
    g.bench_function("insert_10k_keyspace", |b| {
        let mut d: Dict<u64> = Dict::new();
        let mut i = 0u64;
        b.iter(|| {
            let key = format!("key:{:08}", i % 10_000);
            d.insert(key.as_bytes(), i);
            i += 1;
        });
    });
    g.bench_function("get_hit", |b| {
        let mut d: Dict<u64> = Dict::new();
        for i in 0..10_000u64 {
            d.insert(format!("key:{i:08}").as_bytes(), i);
        }
        let mut i = 0u64;
        b.iter(|| {
            let key = format!("key:{:08}", i % 10_000);
            black_box(d.get(key.as_bytes()));
            i += 1;
        });
    });
    g.finish();
}

fn bench_skiplist(c: &mut Criterion) {
    let mut g = c.benchmark_group("skiplist");
    g.bench_function("insert_sequential", |b| {
        let mut sl = SkipList::new(7);
        let mut i = 0u64;
        b.iter(|| {
            sl.insert(i as f64, Sds::from(format!("m{i:010}").as_str()));
            i += 1;
        });
    });
    g.bench_function("rank_lookup_10k", |b| {
        let mut sl = SkipList::new(7);
        for i in 0..10_000u64 {
            sl.insert(i as f64, Sds::from(format!("m{i:06}").as_str()));
        }
        let mut i = 0u64;
        b.iter(|| {
            let m = format!("m{:06}", i % 10_000);
            black_box(sl.rank((i % 10_000) as f64, m.as_bytes()));
            i += 1;
        });
    });
    g.finish();
}

fn bench_resp(c: &mut Criterion) {
    let mut g = c.benchmark_group("resp");
    let cmd = Resp::command(["SET", "key:000000000042", &"x".repeat(64)]);
    let wire = cmd.encode();
    g.throughput(Throughput::Bytes(wire.len() as u64));
    g.bench_function("encode_set", |b| b.iter(|| black_box(cmd.encode())));
    g.bench_function("decode_set", |b| {
        b.iter(|| black_box(Resp::decode(&wire)));
    });
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.throughput(Throughput::Elements(1));
    g.bench_function("set_64b", |b| {
        let mut e = Engine::new(1);
        let val = "x".repeat(64);
        let mut i = 0u64;
        b.iter(|| {
            let key = format!("key:{:08}", i % 10_000);
            black_box(e.exec_str(0, &["SET", &key, &val]));
            i += 1;
        });
    });
    g.bench_function("get_hit", |b| {
        let mut e = Engine::new(1);
        for i in 0..10_000u64 {
            e.exec_str(0, &["SET", &format!("key:{i:08}"), "v"]);
        }
        let mut i = 0u64;
        b.iter(|| {
            let key = format!("key:{:08}", i % 10_000);
            black_box(e.exec_str(0, &["GET", &key]));
            i += 1;
        });
    });
    g.finish();
}

fn bench_rdb(c: &mut Criterion) {
    let mut g = c.benchmark_group("rdb");
    let mut e = Engine::new(3);
    for i in 0..10_000u64 {
        e.exec_str(0, &["SET", &format!("key:{i:08}"), &"v".repeat(64)]);
    }
    let snapshot = rdb::save(e.db());
    g.throughput(Throughput::Bytes(snapshot.len() as u64));
    g.bench_function("save_10k_keys", |b| b.iter(|| black_box(rdb::save(e.db()))));
    g.bench_function("load_10k_keys", |b| {
        let mut target = Engine::new(5);
        b.iter(|| {
            rdb::load(target.db_mut(), &snapshot, 5).expect("valid snapshot");
        });
    });
    g.finish();
}

fn bench_hash_and_backlog(c: &mut Criterion) {
    let mut g = c.benchmark_group("primitives");
    let data = vec![0xABu8; 64];
    g.throughput(Throughput::Bytes(64));
    g.bench_function("siphash13_64b", |b| {
        b.iter(|| black_box(siphash13(&data)));
    });
    g.bench_function("backlog_feed_64b", |b| {
        let mut log = Backlog::new(1 << 20);
        b.iter(|| log.feed(&data));
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(30);
    targets = bench_dict, bench_skiplist, bench_resp, bench_engine, bench_rdb,
        bench_hash_and_backlog
}
criterion_main!(benches);
