//! Wall-clock: N-slave replication fan-out. Pure SET with 4 KiB values so
//! per-replica payload handling dominates host CPU; the sweep shows how
//! the cost of one simulated run scales with the replica count. This is
//! the headline number for the zero-copy frame pipeline: refcount bumps
//! per slave instead of full payload clones.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use skv_bench::wallclock::{fanout_spec, smoke};
use skv_core::cluster::run_spec;
use skv_core::config::Mode;
use std::time::Duration;

fn fanout(c: &mut Criterion) {
    let sweep: &[usize] = if smoke() { &[1, 5] } else { &[1, 5, 10] };
    let mut g = c.benchmark_group("fanout");
    g.sample_size(5);
    for &slaves in sweep {
        g.bench_function(&format!("skv-slaves-{slaves}"), |b| {
            b.iter(|| {
                let report = run_spec(fanout_spec(Mode::Skv, slaves, 0xFA0));
                assert!(report.ops > 0, "fan-out run produced no operations");
                black_box(report.ops)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(1))
        .measurement_time(Duration::from_millis(2_000))
        .sample_size(5);
    targets = fanout
}
criterion_main!(benches);
