//! Wall-clock: N-slave replication fan-out. Pure SET with 4 KiB values so
//! per-replica payload handling dominates host CPU; the sweep shows how
//! the cost of one simulated run scales with the replica count. This is
//! the headline number for the zero-copy frame pipeline (refcount bumps
//! per slave instead of payload clones) and for the doorbell-batched
//! post-list path: the `skv-batched-slaves-*` arms run the same workload
//! with `batch_wr_posts` on, so one fabric call carries the whole fan-out.
//! The `skv-value-*` arms sweep the payload from 64 B to 64 KiB at a
//! fixed fan-out, exercising the pooled send rings across frame sizes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use skv_bench::wallclock::{fanout_spec, fanout_spec_sized, smoke};
use skv_core::cluster::run_spec;
use skv_core::config::Mode;
use std::time::Duration;

fn fanout(c: &mut Criterion) {
    let sweep: &[usize] = if smoke() { &[1, 5] } else { &[1, 5, 10] };
    let values: &[usize] = if smoke() {
        &[64, 4096]
    } else {
        &[64, 1024, 4096, 16384, 65536]
    };
    let mut g = c.benchmark_group("fanout");
    g.sample_size(5);
    for &slaves in sweep {
        g.bench_function(&format!("skv-slaves-{slaves}"), |b| {
            b.iter(|| {
                let report = run_spec(fanout_spec(Mode::Skv, slaves, 0xFA0));
                assert!(report.ops > 0, "fan-out run produced no operations");
                black_box(report.ops)
            });
        });
    }
    for &slaves in sweep {
        g.bench_function(&format!("skv-batched-slaves-{slaves}"), |b| {
            b.iter(|| {
                let report = run_spec(fanout_spec_sized(Mode::Skv, slaves, true, 4096, 0xFA0));
                assert!(report.ops > 0, "fan-out run produced no operations");
                black_box(report.ops)
            });
        });
    }
    for &value_size in values {
        g.bench_function(&format!("skv-value-{value_size}"), |b| {
            b.iter(|| {
                let report = run_spec(fanout_spec_sized(Mode::Skv, 5, false, value_size, 0xFA0));
                assert!(report.ops > 0, "fan-out run produced no operations");
                black_box(report.ops)
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(1))
        .measurement_time(Duration::from_millis(2_000))
        .sample_size(5);
    targets = fanout
}
criterion_main!(benches);
