//! Ablation (paper §V-C): SKV's gain comes from posting one Work Request
//! per write instead of one per slave; the gain must scale with the per-WR
//! host CPU cost.
use skv_bench::ablations as abl;

fn main() {
    abl::print_wr_cost(&abl::ablation_wr_cost());
}
