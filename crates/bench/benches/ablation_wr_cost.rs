//! Ablation (paper §V-C): SKV's gain comes from posting one Work Request
//! per write instead of one per slave; the gain must scale with the per-WR
//! host CPU cost. The second table sweeps the doorbell-batched post-list
//! path against serial posting: doorbells per replicated write collapse
//! from N to 1 while the WRs per write stay at N.
use skv_bench::ablations as abl;

fn main() {
    abl::print_wr_cost(&abl::ablation_wr_cost());
    println!();
    abl::print_wr_batching(&abl::ablation_wr_batching());
}
