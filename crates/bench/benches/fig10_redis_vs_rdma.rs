//! Regenerates the paper's Figure 10: original Redis vs RDMA-Redis
//! throughput (a) and 99% tail latency (b) as client concurrency grows.
//! Expected shape: Redis plateaus early near 130 kops/s; RDMA-Redis climbs
//! past 330 kops/s; Redis's tail latency is roughly double at high
//! concurrency.
use skv_bench::experiments as exp;

fn main() {
    exp::print_fig10(&exp::fig10_redis_vs_rdma(&[1, 2, 4, 8, 16, 24, 32]));
}
