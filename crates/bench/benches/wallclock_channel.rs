//! Wall-clock: TCP frame reassembly in the channel layer — the host-side
//! byte-shuffling the zero-copy frame pipeline is meant to eliminate.
//! Two delivery patterns: one big burst (everything in one segment) and
//! MSS-sized segments (partial frames straddle segment boundaries).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use skv_bench::wallclock::smoke;
use skv_core::channel::Channel;
use skv_netsim::{Frame, TcpConnId};
use std::time::Duration;

const PAYLOAD: usize = 4096;
const MSS: usize = 1460;

fn wire(frames: usize) -> Vec<u8> {
    let payload = vec![0xA5u8; PAYLOAD];
    let payload_len = u32::try_from(PAYLOAD).expect("payload fits u32");
    let mut wire = Vec::with_capacity(frames * (PAYLOAD + 8));
    for tag in 0..u32::try_from(frames).expect("frame count fits u32") {
        wire.extend_from_slice(&tag.to_le_bytes());
        wire.extend_from_slice(&payload_len.to_le_bytes());
        wire.extend_from_slice(&payload);
    }
    wire
}

fn channel(c: &mut Criterion) {
    let frames = if smoke() { 64 } else { 512 };
    let wire = Frame::from(wire(frames));

    let mut g = c.benchmark_group("channel");
    g.throughput(Throughput::Bytes(wire.len() as u64));
    g.bench_function("tcp-reassembly-burst", |b| {
        b.iter(|| {
            let mut rx = Channel::tcp(TcpConnId(1));
            let got = rx.on_tcp_bytes(wire.clone());
            assert_eq!(got.len(), frames);
            black_box(got.len())
        });
    });
    g.bench_function("tcp-reassembly-mss", |b| {
        b.iter(|| {
            let mut rx = Channel::tcp(TcpConnId(1));
            let mut got = 0usize;
            let mut at = 0;
            while at < wire.len() {
                let end = (at + MSS).min(wire.len());
                got += rx.on_tcp_bytes(wire.slice(at..end)).len();
                at = end;
            }
            assert_eq!(got, frames);
            black_box(got)
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1_500))
        .sample_size(10);
    targets = channel
}
criterion_main!(benches);
