//! Wall-clock: raw discrete-event dispatch throughput of the simulation
//! engine. Every experiment in this repo is bounded by how fast the event
//! loop turns over, so this is the suite's canary for engine regressions.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use skv_bench::wallclock::smoke;
use skv_simcore::{FnActor, SimDuration, SimTime, Simulation};
use std::time::Duration;

fn event_loop(c: &mut Criterion) {
    let events: u64 = if smoke() { 20_000 } else { 100_000 };
    let mut g = c.benchmark_group("event_loop");
    g.throughput(Throughput::Elements(events));
    g.bench_function("timer-chain", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(7);
            let actor = sim.add_actor(Box::new(FnActor::new(move |ctx, _from, msg| {
                if let Ok(n) = msg.downcast::<u64>() {
                    if *n > 0 {
                        ctx.timer(SimDuration::from_nanos(100), *n - 1);
                    }
                }
            })));
            sim.schedule(SimTime::ZERO, actor, events);
            sim.run_to_completion();
            sim.now()
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1_500))
        .sample_size(10);
    targets = event_loop
}
criterion_main!(benches);
