//! Regenerates the paper's Figure 13: GET with one master and three slaves.
//! Reads don't replicate, so SKV and RDMA-Redis perform identically
//! (~340 kops/s at 8/16 clients).
use skv_bench::experiments as exp;

fn main() {
    exp::print_vs(
        "Figure 13 — GET, 1 master + 3 slaves (SKV vs RDMA-Redis)",
        &exp::fig13_get_parity(),
    );
}
