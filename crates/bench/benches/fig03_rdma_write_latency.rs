//! Regenerates the paper's Figure 3: RDMA WRITE latency between two hosts,
//! from a remote host to the SmartNIC, and from the local host to its own
//! SmartNIC.
use skv_bench::experiments as exp;

fn main() {
    exp::print_fig03(&exp::fig03_rdma_write_latency());
}
