//! Ablation (paper §III-D): the `waiting-time` / `min-slaves` parameters.
//! Shorter waiting-time detects a crashed slave sooner, so min-slaves
//! write rejection kicks in earlier (more NOREPLICAS errors).
use skv_bench::ablations as abl;

fn main() {
    abl::print_failure_params(&abl::ablation_failure_params());
}
