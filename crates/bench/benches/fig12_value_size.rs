//! Regenerates the paper's Figure 12: SET throughput across value sizes;
//! SKV stays above RDMA-Redis throughout.
use skv_bench::experiments as exp;

fn main() {
    exp::print_fig12(&exp::fig12_value_size(&[64, 256, 1024, 4096, 16384]));
}
