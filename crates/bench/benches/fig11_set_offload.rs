//! Regenerates the paper's Figure 11: SET with one master and three slaves
//! at 4/8/16 clients. Expected shape at 8 clients: SKV ~+14% throughput,
//! ~-14% average latency, ~-21% tail latency vs RDMA-Redis.
use skv_bench::experiments as exp;

fn main() {
    exp::print_vs(
        "Figure 11 — SET, 1 master + 3 slaves (SKV vs RDMA-Redis)",
        &exp::fig11_set_offload(),
    );
}
