//! Ablation (paper §IV-A): the rejected design of storing data on the
//! off-path SmartNIC. Expected: strictly worse latency and throughput than
//! host-resident data, justifying SKV's host-side store.
use skv_bench::ablations as abl;

fn main() {
    abl::print_nic_datastore(&abl::ablation_nic_datastore());
}
