//! Wall-clock: SoC hot-key GET cache under a Zipf-skewed read-heavy
//! workload. Same spec per arm; only the cache budget and admission
//! policy differ. The `off` arm is the legacy client→master path (and
//! must stay schedule-identical to it); the cache-on arms route every
//! client command through the NIC front end — forwarding, admission,
//! stream-driven invalidation — so the sweep prices the cache layer in
//! host CPU per simulated run.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use skv_bench::wallclock::hotcache_spec;
use skv_core::cluster::run_spec;
use std::time::Duration;

fn hotcache(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotcache");
    g.sample_size(5);
    for (label, cache_bytes, policy) in [
        ("skv-hotcache-off", 0usize, "lru"),
        ("skv-hotcache-lru-1m", 1 << 20, "lru"),
        ("skv-hotcache-tinylfu-1m", 1 << 20, "tinylfu"),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let report = run_spec(hotcache_spec(cache_bytes, policy, 0.99, 0x5EED));
                assert!(report.ops > 0, "hot-cache run produced no operations");
                assert_eq!(report.errors, 0, "hot-cache run saw error replies");
                black_box(report.ops)
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(1))
        .measurement_time(Duration::from_millis(2_000))
        .sample_size(5);
    targets = hotcache
}
criterion_main!(benches);
