//! Fixtures for the wall-clock benchmark suite (`benches/wallclock_*.rs`).
//!
//! Everything else in this crate measures *simulated* time — the numbers
//! the paper's figures are made of. The wall-clock suite instead measures
//! how much host CPU the reproduction itself burns, so perf PRs land with
//! before/after numbers (`scripts/bench.sh` → `BENCH_results.json`).
//! Keeping the specs here (rather than inline in each bench) guarantees
//! the before/after runs execute the exact same workloads.

use skv_core::cluster::RunSpec;
use skv_core::config::{ClusterConfig, Mode};
use skv_simcore::SimDuration;

/// True when `SKV_BENCH_SMOKE` is set (non-empty): benches shrink their
/// sweeps and windows so CI can smoke-test the suite in seconds.
pub fn smoke() -> bool {
    std::env::var("SKV_BENCH_SMOKE").is_ok_and(|v| !v.is_empty())
}

/// Replication fan-out workload: pure SET with a fat value so per-replica
/// payload handling dominates, swept over the slave count.
pub fn fanout_spec(mode: Mode, slaves: usize, seed: u64) -> RunSpec {
    fanout_spec_sized(mode, slaves, false, 4096, seed)
}

/// [`fanout_spec`] with the doorbell-batching knob and value size exposed:
/// the batched-arm and value-size sweeps of `wallclock_fanout` must differ
/// from the baseline arms in *only* these two parameters.
pub fn fanout_spec_sized(
    mode: Mode,
    slaves: usize,
    batched: bool,
    value_size: usize,
    seed: u64,
) -> RunSpec {
    let mut cfg = ClusterConfig::for_mode(mode);
    cfg.num_slaves = slaves;
    cfg.batch_wr_posts = batched;
    RunSpec {
        cfg,
        num_clients: 4,
        pipeline: 4,
        set_ratio: 1.0,
        mset_keys: 0,
        value_size,
        key_space: 1_000,
        warmup: SimDuration::from_millis(20),
        measure: if smoke() {
            SimDuration::from_millis(30)
        } else {
            SimDuration::from_millis(100)
        },
        seed,
        zipf_theta: 0.0,
        zipf_shift_every: 0,
    }
}

/// Replication-mode workload: pure SET at a 3-slave fan-out with the
/// protocol knob exposed. The tracked modes (quorum, chain) run the ack
/// bookkeeping — WR-ack maps, commit windows, deferred-reply queues — that
/// the async stream skips, so the sweep prices that machinery in host CPU.
pub fn replmode_spec(mode: skv_core::replmode::ReplModeKind, seed: u64) -> RunSpec {
    let mut spec = fanout_spec_sized(Mode::Skv, 3, false, 1024, seed);
    spec.cfg.repl_mode = mode;
    spec
}

/// A Figure-10-style point: mixed GET/SET, small values, closed loop,
/// 8 clients against 1 master + 3 slaves.
pub fn fig10_style_spec(mode: Mode, seed: u64) -> RunSpec {
    let mut cfg = ClusterConfig::for_mode(mode);
    cfg.num_slaves = 3;
    RunSpec {
        cfg,
        num_clients: 8,
        pipeline: 1,
        set_ratio: 0.5,
        mset_keys: 0,
        value_size: 64,
        key_space: 10_000,
        warmup: SimDuration::from_millis(20),
        measure: if smoke() {
            SimDuration::from_millis(30)
        } else {
            SimDuration::from_millis(100)
        },
        seed,
        zipf_theta: 0.0,
        zipf_shift_every: 0,
    }
}

/// Hot-key cache workload: read-heavy (5% SET) Zipf-skewed stream against
/// a 2-slave SKV cluster with the SoC GET cache's budget and policy
/// exposed. The cache-off arm prices the legacy client→master path; the
/// cache-on arms add the NIC front end (forwarding, admission, the
/// invalidation scan on every stream frame), so the sweep measures what
/// the cache layer costs in host CPU per simulated run.
pub fn hotcache_spec(cache_bytes: usize, policy: &str, theta: f64, seed: u64) -> RunSpec {
    let mut cfg = ClusterConfig::for_mode(Mode::Skv);
    cfg.num_slaves = 2;
    cfg.hot_cache_bytes = cache_bytes;
    cfg.hot_cache_policy = policy.to_string();
    RunSpec {
        cfg,
        num_clients: 8,
        pipeline: 4,
        set_ratio: 0.05,
        mset_keys: 0,
        value_size: 64,
        key_space: 10_000,
        warmup: SimDuration::from_millis(20),
        measure: if smoke() {
            SimDuration::from_millis(30)
        } else {
            SimDuration::from_millis(100)
        },
        seed,
        zipf_theta: theta,
        zipf_shift_every: 0,
    }
}

/// Sharded-engine workload: mixed GET/SET at pipeline depth 8 against a
/// 2-slave SKV cluster, swept over `num_shards`. The pipelined clients
/// keep every shard core busy, so the sweep prices both the scaling win
/// (more simulated work per simulated second means more host work per
/// simulated run) and the routing overhead the shard layer adds.
pub fn shards_spec(num_shards: usize, seed: u64) -> RunSpec {
    let mut cfg = ClusterConfig::for_mode(Mode::Skv);
    cfg.num_slaves = 2;
    cfg.num_shards = num_shards;
    RunSpec {
        cfg,
        num_clients: 8,
        pipeline: 8,
        set_ratio: 0.5,
        mset_keys: 0,
        value_size: 64,
        key_space: 10_000,
        warmup: SimDuration::from_millis(20),
        measure: if smoke() {
            SimDuration::from_millis(30)
        } else {
            SimDuration::from_millis(100)
        },
        seed,
        zipf_theta: 0.0,
        zipf_shift_every: 0,
    }
}
