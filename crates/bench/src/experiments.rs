//! One entry point per figure of the paper's evaluation (§V).
//!
//! Each function builds the corresponding testbed, runs the workload, and
//! returns structured rows; `print_*` helpers render them as the tables the
//! paper plots. Absolute numbers come from the calibrated simulator, so the
//! claims to check are the *shapes*: who wins, by what factor, and where
//! curves flatten or cross.

use skv_core::cluster::{Cluster, RunSpec};
use skv_core::config::{ClusterConfig, Mode};
use skv_core::cqdrain;
use skv_core::metrics::RunReport;
use skv_netsim::{Net, NetEvent, NetParams, SendOp, SendWr, SocketAddr, Topology};
use skv_simcore::{FnActor, SimDuration, SimTime, Simulation};
use std::cell::RefCell;
use std::rc::Rc;

/// Default measurement window for throughput/latency experiments.
/// (~450k operations per data point at the calibrated throughput —
/// percentiles are stable well below this.)
pub const MEASURE: SimDuration = SimDuration::from_millis(1_500);
/// Default warmup.
pub const WARMUP: SimDuration = SimDuration::from_millis(300);

fn base_spec(mode: Mode, slaves: usize, clients: usize, seed: u64) -> RunSpec {
    let mut cfg = ClusterConfig::for_mode(mode);
    cfg.num_slaves = slaves;
    RunSpec {
        cfg,
        num_clients: clients,
        pipeline: 1,
        set_ratio: 1.0,
        mset_keys: 0,
        value_size: 64,
        key_space: 100_000,
        warmup: WARMUP,
        measure: MEASURE,
        seed,
        zipf_theta: 0.0,
        zipf_shift_every: 0,
    }
}

// ===========================================================================
// Figure 3 — RDMA WRITE latency: host↔host vs remote↔SoC vs local-host↔SoC
// ===========================================================================

/// One row of Figure 3.
#[derive(Debug, Clone)]
pub struct Fig03Row {
    /// Payload size in bytes.
    pub size: usize,
    /// Host → host WRITE latency (µs, receiver-observed).
    pub host_host_us: f64,
    /// Remote host → SmartNIC SoC latency (µs).
    pub remote_soc_us: f64,
    /// Local host → its own SmartNIC SoC latency (µs).
    pub local_soc_us: f64,
}

/// Measure one-way RDMA WRITE delivery latency over a path.
fn write_latency(size: usize, to_local_soc: bool, from_remote: bool) -> f64 {
    let mut sim = Simulation::new(99);
    let mut topo = Topology::new();
    let master = topo.add_host();
    let remote = topo.add_host();
    let soc = topo.add_smartnic(master);
    let net = Net::install(&mut sim, topo, NetParams::default());

    let (src, dst) = match (to_local_soc, from_remote) {
        (true, false) => (master, soc),
        (true, true) => (remote, soc),
        _ => (master, remote),
    };

    let recv_at: Rc<RefCell<Option<SimTime>>> = Rc::default();
    let r2 = recv_at.clone();
    let net2 = net.clone();
    let dst_addr = SocketAddr::new(dst, 9000);
    let server = sim.add_actor(Box::new(FnActor::new(move |ctx, _from, msg| {
        if let Ok(ev) = msg.downcast::<NetEvent>() {
            match *ev {
                NetEvent::CmConnectRequest { req, .. } => {
                    let cq = net2.create_cq(ctx.id());
                    let qp = net2.rdma_accept(ctx, req, cq).expect("fresh CM request");
                    for i in 0..8 {
                        net2.post_recv(qp, i).unwrap();
                    }
                    net2.req_notify_cq(ctx, cq);
                }
                NetEvent::CqNotify { cq } => {
                    let out = cqdrain::drain_budgeted(&net2, ctx, cq, 8, |ctx, wc| {
                        if wc.opcode == skv_netsim::WcOpcode::RecvRdmaWithImm {
                            *r2.borrow_mut() = Some(ctx.now());
                        }
                    });
                    if out.more {
                        // This probe measures the fabric, not the host CPU,
                        // so the continuation is scheduled after the drain
                        // cost without charging a core pool.
                        ctx.timer(out.cpu_cost, NetEvent::CqNotify { cq });
                    }
                }
                _ => {}
            }
        }
    })));
    net.rdma_listen(dst_addr, server);

    let dst_mr = net.register_mr(dst, size.max(64));
    let sent_at: Rc<RefCell<Option<SimTime>>> = Rc::default();
    let s2 = sent_at.clone();
    let net2 = net.clone();
    let client = sim.add_actor(Box::new(FnActor::new(move |ctx, _from, msg| {
        if let Ok(ev) = msg.downcast::<NetEvent>() {
            if let NetEvent::CmEstablished { qp, .. } = *ev {
                *s2.borrow_mut() = Some(ctx.now());
                net2.post_send(
                    ctx,
                    qp,
                    SendWr {
                        wr_id: 1,
                        op: SendOp::WriteImm {
                            remote_mr: dst_mr,
                            remote_offset: 0,
                            imm: 0,
                        },
                        data: vec![0xAB; size].into(),
                    },
                )
                .unwrap();
            }
        }
    })));
    let net2 = net.clone();
    let starter = sim.add_actor(Box::new(FnActor::new(move |ctx, _from, _| {
        let cq = net2.create_cq(client);
        net2.rdma_connect(ctx, src, client, cq, dst_addr);
    })));
    sim.schedule(SimTime::ZERO, starter, ());
    sim.run_to_completion();

    let t0 = sent_at.borrow().expect("sent");
    let t1 = recv_at.borrow().expect("received");
    t1.saturating_since(t0).as_micros_f64()
}

/// Reproduce Figure 3.
pub fn fig03_rdma_write_latency() -> Vec<Fig03Row> {
    [16usize, 64, 256, 1024, 4096]
        .iter()
        .map(|&size| Fig03Row {
            size,
            host_host_us: write_latency(size, false, false),
            remote_soc_us: write_latency(size, true, true),
            local_soc_us: write_latency(size, true, false),
        })
        .collect()
}

/// Print Figure 3 rows.
pub fn print_fig03(rows: &[Fig03Row]) {
    println!("Figure 3 — RDMA WRITE latency (us, one-way)");
    println!(
        "{:>8} {:>12} {:>14} {:>14}",
        "size(B)", "host-host", "remote-SoC", "local-SoC"
    );
    for r in rows {
        println!(
            "{:>8} {:>12.2} {:>14.2} {:>14.2}",
            r.size, r.host_host_us, r.remote_soc_us, r.local_soc_us
        );
    }
}

// ===========================================================================
// Figure 7 — RDMA-Redis degradation with slaves
// ===========================================================================

/// One configuration of Figure 7.
#[derive(Debug, Clone)]
pub struct Fig07Row {
    /// Number of slaves.
    pub slaves: usize,
    /// The run summary.
    pub report: RunReport,
}

/// Reproduce Figure 7: RDMA-Redis SET with 0 vs 3 slaves, 8 clients.
pub fn fig07_slave_degradation() -> Vec<Fig07Row> {
    [0usize, 3]
        .iter()
        .map(|&slaves| {
            let spec = base_spec(Mode::RdmaRedis, slaves, 8, 7_000 + slaves as u64);
            Fig07Row {
                slaves,
                report: skv_core::cluster::run_spec(spec),
            }
        })
        .collect()
}

/// Print Figure 7 rows.
pub fn print_fig07(rows: &[Fig07Row]) {
    println!("Figure 7 — RDMA-Redis SET with slaves (8 clients)");
    println!("{:<8} {}", "slaves", RunReport::header());
    for r in rows {
        println!("{:<8} {}", r.slaves, r.report.row());
    }
}

// ===========================================================================
// Figure 10 — original Redis vs RDMA-Redis, throughput & p99 vs #clients
// ===========================================================================

/// One concurrency level of Figure 10.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// Concurrent client connections.
    pub clients: usize,
    /// Original Redis (TCP) summary.
    pub tcp: RunReport,
    /// RDMA-Redis summary.
    pub rdma: RunReport,
}

/// Reproduce Figure 10 (SET, no slaves).
pub fn fig10_redis_vs_rdma(client_counts: &[usize]) -> Vec<Fig10Row> {
    client_counts
        .iter()
        .map(|&clients| {
            let tcp = skv_core::cluster::run_spec(base_spec(
                Mode::TcpRedis,
                0,
                clients,
                10_000 + clients as u64,
            ));
            let rdma = skv_core::cluster::run_spec(base_spec(
                Mode::RdmaRedis,
                0,
                clients,
                10_100 + clients as u64,
            ));
            Fig10Row { clients, tcp, rdma }
        })
        .collect()
}

/// Print Figure 10 rows.
pub fn print_fig10(rows: &[Fig10Row]) {
    println!("Figure 10 — original Redis vs RDMA-Redis (SET, no slaves)");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "clients", "Redis kops", "Redis p99", "RDMA kops", "RDMA p99"
    );
    for r in rows {
        println!(
            "{:>8} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
            r.clients,
            r.tcp.throughput_kops,
            r.tcp.p99_latency_us,
            r.rdma.throughput_kops,
            r.rdma.p99_latency_us
        );
    }
}

// ===========================================================================
// Figures 11 & 13 — SKV vs RDMA-Redis, SET and GET
// ===========================================================================

/// One concurrency level comparing the two systems.
#[derive(Debug, Clone)]
pub struct VsRow {
    /// Concurrent client connections.
    pub clients: usize,
    /// RDMA-Redis summary.
    pub baseline: RunReport,
    /// SKV summary.
    pub skv: RunReport,
}

fn vs_rows(set_ratio: f64, client_counts: &[usize], seed: u64) -> Vec<VsRow> {
    client_counts
        .iter()
        .map(|&clients| {
            let mut b = base_spec(Mode::RdmaRedis, 3, clients, seed + clients as u64);
            b.set_ratio = set_ratio;
            let mut s = base_spec(Mode::Skv, 3, clients, seed + 50 + clients as u64);
            s.set_ratio = set_ratio;
            VsRow {
                clients,
                baseline: skv_core::cluster::run_spec(b),
                skv: skv_core::cluster::run_spec(s),
            }
        })
        .collect()
}

/// Reproduce Figure 11: SET with 1 master + 3 slaves at 4/8/16 clients.
pub fn fig11_set_offload() -> Vec<VsRow> {
    vs_rows(1.0, &[4, 8, 16], 11_000)
}

/// Reproduce Figure 13: GET under the same topology (parity expected).
pub fn fig13_get_parity() -> Vec<VsRow> {
    vs_rows(0.0, &[4, 8, 16], 13_000)
}

/// Print a SKV-vs-baseline table.
pub fn print_vs(title: &str, rows: &[VsRow]) {
    println!("{title}");
    println!(
        "{:>8} {:>12} {:>10} {:>10} {:>12} {:>10} {:>10} {:>9} {:>9}",
        "clients",
        "RDMA kops",
        "avg(us)",
        "p99(us)",
        "SKV kops",
        "avg(us)",
        "p99(us)",
        "tput+%",
        "p99-%"
    );
    for r in rows {
        let tput_gain = (r.skv.throughput_kops / r.baseline.throughput_kops - 1.0) * 100.0;
        let p99_cut = (1.0 - r.skv.p99_latency_us / r.baseline.p99_latency_us) * 100.0;
        println!(
            "{:>8} {:>12.1} {:>10.1} {:>10.1} {:>12.1} {:>10.1} {:>10.1} {:>+9.1} {:>+9.1}",
            r.clients,
            r.baseline.throughput_kops,
            r.baseline.avg_latency_us,
            r.baseline.p99_latency_us,
            r.skv.throughput_kops,
            r.skv.avg_latency_us,
            r.skv.p99_latency_us,
            tput_gain,
            p99_cut
        );
    }
}

// ===========================================================================
// Figure 12 — throughput vs value size
// ===========================================================================

/// One value size of Figure 12.
#[derive(Debug, Clone)]
pub struct Fig12Row {
    /// SET value size in bytes.
    pub value_size: usize,
    /// RDMA-Redis summary.
    pub baseline: RunReport,
    /// SKV summary.
    pub skv: RunReport,
}

/// Reproduce Figure 12: SET throughput across value sizes (8 clients,
/// 3 slaves).
pub fn fig12_value_size(sizes: &[usize]) -> Vec<Fig12Row> {
    sizes
        .iter()
        .map(|&value_size| {
            let mut b = base_spec(Mode::RdmaRedis, 3, 8, 12_000 + value_size as u64);
            b.value_size = value_size;
            let mut s = base_spec(Mode::Skv, 3, 8, 12_500 + value_size as u64);
            s.value_size = value_size;
            Fig12Row {
                value_size,
                baseline: skv_core::cluster::run_spec(b),
                skv: skv_core::cluster::run_spec(s),
            }
        })
        .collect()
}

/// Print Figure 12 rows.
pub fn print_fig12(rows: &[Fig12Row]) {
    println!("Figure 12 — SET throughput vs value size (8 clients, 3 slaves)");
    println!(
        "{:>10} {:>14} {:>12} {:>8}",
        "value(B)", "RDMA kops", "SKV kops", "gain%"
    );
    for r in rows {
        println!(
            "{:>10} {:>14.1} {:>12.1} {:>+8.1}",
            r.value_size,
            r.baseline.throughput_kops,
            r.skv.throughput_kops,
            (r.skv.throughput_kops / r.baseline.throughput_kops - 1.0) * 100.0
        );
    }
}

// ===========================================================================
// Figure 14 — availability under slave failure
// ===========================================================================

/// Result of the availability run.
#[derive(Debug, Clone)]
pub struct Fig14Result {
    /// Throughput per 500 ms bucket over the run.
    pub series: Vec<(f64, f64)>,
    /// When the crash was injected (seconds).
    pub crash_at_s: f64,
    /// When the slave recovered (seconds).
    pub recover_at_s: f64,
    /// Minimum bucket throughput between crash and recovery (kops/s).
    pub min_kops_during_failure: f64,
    /// Error replies observed by clients over the whole run.
    pub client_errors: u64,
    /// Whether keyspaces converged after recovery.
    pub converged: bool,
}

/// Reproduce Figure 14: SET stream; one slave crashes at 4 s and recovers
/// at 9 s; Nic-KV detects both, throughput stays high, clients see no
/// errors.
pub fn fig14_availability() -> Fig14Result {
    let mut spec = base_spec(Mode::Skv, 3, 8, 14_000);
    spec.warmup = SimDuration::from_millis(400);
    spec.measure = SimDuration::from_millis(11_600);
    let mut cluster = Cluster::build(spec);
    let crash_at = SimTime::from_secs(4);
    let recover_at = SimTime::from_secs(9);
    cluster.schedule_slave_crash(1, crash_at);
    cluster.schedule_slave_recover(1, recover_at);
    let report = cluster.run();
    // Let the recovered slave finish resyncing, then compare keyspaces.
    cluster
        .sim
        .run_until(cluster.measure_until + SimDuration::from_secs(2));
    let digests = cluster.keyspace_digests();
    let converged = digests.iter().all(|&d| d == digests[0]);

    let series: Vec<(f64, f64)> = report
        .series
        .iter()
        .map(|p| (p.time.as_secs_f64(), p.rate_per_sec / 1000.0))
        .collect();
    let min_kops_during_failure = series
        .iter()
        .filter(|(t, _)| *t >= crash_at.as_secs_f64() && *t < recover_at.as_secs_f64())
        .map(|(_, k)| *k)
        .fold(f64::INFINITY, f64::min);
    Fig14Result {
        series,
        crash_at_s: crash_at.as_secs_f64(),
        recover_at_s: recover_at.as_secs_f64(),
        min_kops_during_failure,
        client_errors: report.errors,
        converged,
    }
}

/// Print the Figure 14 series.
pub fn print_fig14(r: &Fig14Result) {
    println!(
        "Figure 14 — throughput during slave failure (crash at {:.0}s, recovery at {:.0}s)",
        r.crash_at_s, r.recover_at_s
    );
    println!("{:>8} {:>12}", "t(s)", "kops/s");
    for (t, kops) in &r.series {
        println!("{t:>8.1} {kops:>12.1}");
    }
    println!(
        "min during failure: {:.1} kops/s; client errors: {}; converged after recovery: {}",
        r.min_kops_during_failure, r.client_errors, r.converged
    );
}

// ===========================================================================
// SmartNIC SoC failure — degradation timeline (extension beyond the paper)
// ===========================================================================

/// Result of the SoC-crash degradation run.
#[derive(Debug, Clone)]
pub struct NicCrashResult {
    /// Throughput per 500 ms bucket (seconds, kops/s).
    pub series: Vec<(f64, f64)>,
    /// When the SoC crashed (s).
    pub crash_at_s: f64,
    /// When the SoC came back (s).
    pub recover_at_s: f64,
    /// The degraded window the master recorded: entered at / exited at (s).
    pub degraded_from_s: f64,
    /// End of the degraded window (NaN if it never closed).
    pub degraded_until_s: f64,
    /// Minimum bucket throughput while degraded (kops/s).
    pub min_kops_degraded: f64,
    /// NIC fan-out messages up to the SoC's return vs end of run — the
    /// second exceeding the first proves replication was re-offloaded.
    pub fanout_at_recovery: u64,
    /// Fan-out total at the end of the run.
    pub fanout_at_end: u64,
    /// Error replies clients saw.
    pub client_errors: u64,
    /// Whether keyspaces converged after the run.
    pub converged: bool,
}

/// The failure the paper does not plot: the SmartNIC SoC itself dies at 3 s
/// and returns at 8 s. The master must notice the probe silence
/// (`upstream-silence`), fall back to host-driven serial fan-out — degraded
/// RDMA-Redis-shaped throughput, but *nonzero* — and hand replication back
/// to the SoC once probes resume.
pub fn nic_crash_timeline() -> NicCrashResult {
    let mut spec = base_spec(Mode::Skv, 3, 8, 15_000);
    spec.warmup = SimDuration::from_millis(400);
    spec.measure = SimDuration::from_millis(11_600);
    let crash_at = SimTime::from_secs(3);
    let recover_at = SimTime::from_secs(8);
    let mut cluster = Cluster::build(spec);
    cluster.schedule_nic_crash(crash_at);
    cluster.schedule_nic_recover(recover_at);

    // Step to the SoC's return: its fan-out counter is frozen while it is
    // down, so this snapshot is the pre-crash total.
    cluster.sim.run_until(recover_at);
    let fanout_at_recovery = cluster.nic_kv().map_or(0, |n| n.stat_fanout_msgs);

    let report = cluster.run();
    cluster
        .sim
        .run_until(cluster.measure_until + SimDuration::from_secs(2));
    let fanout_at_end = cluster.nic_kv().map_or(0, |n| n.stat_fanout_msgs);
    let digests = cluster.keyspace_digests();
    let converged = digests.iter().all(|&d| d == digests[0]);

    let (entered, exited) = cluster
        .master_server()
        .degraded_periods
        .last()
        .copied()
        .expect("the SoC crash must degrade the master");
    let degraded_from_s = entered.as_secs_f64();
    let degraded_until_s = exited.map_or(f64::NAN, SimTime::as_secs_f64);

    let series: Vec<(f64, f64)> = report
        .series
        .iter()
        .map(|p| (p.time.as_secs_f64(), p.rate_per_sec / 1000.0))
        .collect();
    let min_kops_degraded = series
        .iter()
        .filter(|(t, _)| *t >= degraded_from_s && *t < recover_at.as_secs_f64())
        .map(|(_, k)| *k)
        .fold(f64::INFINITY, f64::min);
    NicCrashResult {
        series,
        crash_at_s: crash_at.as_secs_f64(),
        recover_at_s: recover_at.as_secs_f64(),
        degraded_from_s,
        degraded_until_s,
        min_kops_degraded,
        fanout_at_recovery,
        fanout_at_end,
        client_errors: report.errors,
        converged,
    }
}

/// Print the SoC-crash timeline.
pub fn print_nic_crash(r: &NicCrashResult) {
    println!(
        "SmartNIC SoC failure — degradation timeline (crash at {:.0}s, return at {:.0}s)",
        r.crash_at_s, r.recover_at_s
    );
    println!("{:>8} {:>12}  phase", "t(s)", "kops/s");
    for &(t, kops) in &r.series {
        let phase = if t < r.degraded_from_s {
            "offloaded"
        } else if r.degraded_until_s.is_nan() || t < r.degraded_until_s {
            "degraded (host fan-out)"
        } else {
            "re-offloaded"
        };
        println!("{t:>8.1} {kops:>12.1}  {phase}");
    }
    println!(
        "degraded {:.2}s → {:.2}s; min while degraded: {:.1} kops/s; \
         NIC fan-out {} → {}; client errors: {}; converged: {}",
        r.degraded_from_s,
        r.degraded_until_s,
        r.min_kops_degraded,
        r.fanout_at_recovery,
        r.fanout_at_end,
        r.client_errors,
        r.converged
    );
}
