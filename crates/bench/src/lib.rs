//! # skv-bench — experiment harness for the SKV reproduction
//!
//! One entry point per figure of the paper's evaluation, plus ablations.
//! Run everything with:
//!
//! ```text
//! cargo run --release -p skv-bench --bin experiments -- all
//! ```

#![warn(missing_docs)]

pub mod ablations;
pub mod experiments;
pub mod wallclock;
