//! Collect criterion JSON-lines into `BENCH_results.json`, and validate it.
//!
//! Usage:
//!   bench_report assemble <raw.jsonl> <out.json>   # build the report
//!   bench_report check <out.json> [min_benches]    # validate (default 4)
//!   bench_report diff <old.json> <new.json>        # per-bench deltas
//!   bench_report ratios <results.json> <out.json>  # store reference ratios
//!   bench_report gate <ratios.json> <new.json> [max_pct]  # fail on regression
//!
//! `ratios` normalizes each benchmark's median by the file's geometric
//! mean, producing a machine-portable shape of the benchmark suite: a
//! faster host scales every median down together, leaving the ratios
//! intact. `gate` recomputes the ratios for fresh results and exits
//! non-zero when any common benchmark's ratio regressed by more than
//! `max_pct` percent (default 25) — the CI guard against one benchmark
//! quietly ballooning relative to the rest.
//!
//! The raw input is the JSON-lines stream the vendored criterion shim
//! appends when `CRITERION_JSON` is set (one object per benchmark). The
//! parser here is deliberately narrow: it accepts exactly what the shim
//! emits, so a malformed line means a broken producer and is a hard error.

use std::process::ExitCode;

/// One benchmark record, as parsed back from a shim-emitted JSON line.
struct Record {
    name: String,
    median_ns: f64,
    line: String,
}

/// Extract the value of `"key":` from a shim JSON line. Values are either
/// a quoted string (no embedded escapes besides `\"`/`\\`) or a bare
/// number/null token.
fn field(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = line.get(start..)?;
    if let Some(inner) = rest.strip_prefix('"') {
        let mut out = String::new();
        let mut chars = inner.chars();
        while let Some(c) = chars.next() {
            match c {
                '\\' => out.push(chars.next()?),
                '"' => return Some(out),
                c => out.push(c),
            }
        }
        None
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest.get(..end)?.trim().to_string())
    }
}

fn parse_line(line: &str) -> Result<Record, String> {
    let name = field(line, "name").ok_or("missing \"name\"")?;
    let median: f64 = field(line, "median_ns")
        .ok_or("missing \"median_ns\"")?
        .parse()
        .map_err(|e| format!("bad median_ns: {e}"))?;
    if name.is_empty() {
        return Err("empty benchmark name".into());
    }
    if !(median.is_finite() && median > 0.0) {
        return Err(format!("non-positive median_ns {median}"));
    }
    Ok(Record {
        name,
        median_ns: median,
        line: line.to_string(),
    })
}

fn load_records(path: &str, raw: bool) -> Result<Vec<Record>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim().trim_end_matches(',');
        // In report mode only the per-benchmark object lines count.
        let is_record = if raw {
            !line.is_empty()
        } else {
            line.starts_with("{\"name\":")
        };
        if !is_record {
            continue;
        }
        let rec = parse_line(line).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        records.push(rec);
    }
    Ok(records)
}

fn assemble(raw_path: &str, out_path: &str) -> Result<(), String> {
    let records = load_records(raw_path, true)?;
    if records.is_empty() {
        return Err(format!("{raw_path}: no benchmark records"));
    }
    let mut names = std::collections::BTreeSet::new();
    for r in &records {
        if !names.insert(r.name.clone()) {
            return Err(format!("duplicate benchmark name {:?}", r.name));
        }
    }
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"skv-bench-results/v1\",\n  \"benchmarks\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&r.line);
        if i + 1 < records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    std::fs::write(out_path, out).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    println!(
        "bench_report: wrote {out_path} ({} benchmarks)",
        records.len()
    );
    Ok(())
}

fn check(path: &str, min: usize) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if !text.contains("\"schema\": \"skv-bench-results/v1\"") {
        return Err(format!("{path}: missing schema marker"));
    }
    let records = load_records(path, false)?;
    if records.len() < min {
        return Err(format!(
            "{path}: only {} benchmarks, expected at least {min}",
            records.len()
        ));
    }
    println!("bench_report: {path} OK ({} benchmarks)", records.len());
    for r in &records {
        println!("  {:<40} median {:>12.1} ns/iter", r.name, r.median_ns);
    }
    Ok(())
}

/// Per-benchmark median deltas between two result files, matched by name.
/// Benchmarks present in only one file are listed rather than failing the
/// diff: sweeps legitimately gain and lose arms between commits.
fn diff(old_path: &str, new_path: &str) -> Result<(), String> {
    let old = load_records(old_path, false)?;
    let new = load_records(new_path, false)?;
    let old_by_name: std::collections::BTreeMap<&str, f64> =
        old.iter().map(|r| (r.name.as_str(), r.median_ns)).collect();
    let new_by_name: std::collections::BTreeMap<&str, f64> =
        new.iter().map(|r| (r.name.as_str(), r.median_ns)).collect();

    println!("bench_report: {old_path} -> {new_path}");
    println!(
        "  {:<40} {:>14} {:>14} {:>8}",
        "benchmark", "old (ns)", "new (ns)", "delta"
    );
    for r in &new {
        match old_by_name.get(r.name.as_str()) {
            Some(&old_median) => {
                let pct = (r.median_ns / old_median - 1.0) * 100.0;
                println!(
                    "  {:<40} {:>14.1} {:>14.1} {:>+7.1}%",
                    r.name, old_median, r.median_ns, pct
                );
            }
            None => println!("  {:<40} {:>14} {:>14.1}     new", r.name, "-", r.median_ns),
        }
    }
    for r in &old {
        if !new_by_name.contains_key(r.name.as_str()) {
            println!("  {:<40} {:>14.1} {:>14} removed", r.name, r.median_ns, "-");
        }
    }
    Ok(())
}

/// Each benchmark's median divided by the file-wide geometric mean of
/// medians, sorted by name. The geomean (rather than a fixed pivot
/// benchmark) keeps the normalization stable when individual benchmarks
/// come and go between commits.
fn compute_ratios(records: &[Record]) -> Vec<(String, f64)> {
    let log_sum: f64 = records.iter().map(|r| r.median_ns.ln()).sum();
    let geomean = (log_sum / records.len() as f64).exp();
    let mut out: Vec<(String, f64)> = records
        .iter()
        .map(|r| (r.name.clone(), r.median_ns / geomean))
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

fn write_ratios(results_path: &str, out_path: &str) -> Result<(), String> {
    let records = load_records(results_path, false)?;
    if records.is_empty() {
        return Err(format!("{results_path}: no benchmark records"));
    }
    let ratios = compute_ratios(&records);
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"skv-bench-ratios/v1\",\n  \"ratios\": [\n");
    for (i, (name, ratio)) in ratios.iter().enumerate() {
        out.push_str(&format!("    {{\"name\":\"{name}\",\"ratio\":{ratio:.6}}}"));
        if i + 1 < ratios.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    std::fs::write(out_path, out).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    println!(
        "bench_report: wrote {out_path} ({} reference ratios)",
        ratios.len()
    );
    Ok(())
}

fn load_ratios(path: &str) -> Result<std::collections::BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if !text.contains("\"schema\": \"skv-bench-ratios/v1\"") {
        return Err(format!("{path}: missing ratios schema marker"));
    }
    let mut out = std::collections::BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with("{\"name\":") {
            continue;
        }
        let err = |e: &str| format!("{path}:{}: {e}", i + 1);
        let name = field(line, "name").ok_or_else(|| err("missing \"name\""))?;
        let ratio: f64 = field(line, "ratio")
            .ok_or_else(|| err("missing \"ratio\""))?
            .parse()
            .map_err(|e| err(&format!("bad ratio: {e}")))?;
        if !(ratio.is_finite() && ratio > 0.0) {
            return Err(err(&format!("non-positive ratio {ratio}")));
        }
        if out.insert(name.clone(), ratio).is_some() {
            return Err(err(&format!("duplicate benchmark {name:?}")));
        }
    }
    if out.is_empty() {
        return Err(format!("{path}: no ratio records"));
    }
    Ok(out)
}

/// Benchmarks whose normalized median regressed past `max_pct` percent
/// relative to the reference ratios. Returns `(name, regression_pct)`
/// rows, worst first; benchmarks present on only one side are skipped
/// (sweeps gain and lose arms between commits).
fn gate_failures(
    reference: &std::collections::BTreeMap<String, f64>,
    current: &[(String, f64)],
    max_pct: f64,
) -> Vec<(String, f64)> {
    let mut failures: Vec<(String, f64)> = current
        .iter()
        .filter_map(|(name, ratio)| {
            let reference = reference.get(name)?;
            let pct = (ratio / reference - 1.0) * 100.0;
            (pct > max_pct).then(|| (name.clone(), pct))
        })
        .collect();
    failures.sort_by(|a, b| b.1.total_cmp(&a.1));
    failures
}

fn gate(ratios_path: &str, new_path: &str, max_pct: f64) -> Result<(), String> {
    let reference = load_ratios(ratios_path)?;
    let records = load_records(new_path, false)?;
    if records.is_empty() {
        return Err(format!("{new_path}: no benchmark records"));
    }
    let current = compute_ratios(&records);
    let common = current
        .iter()
        .filter(|(name, _)| reference.contains_key(name))
        .count();
    if common == 0 {
        return Err(format!(
            "{new_path}: no benchmarks in common with {ratios_path}"
        ));
    }
    let failures = gate_failures(&reference, &current, max_pct);
    println!(
        "bench_report: gating {new_path} against {ratios_path} \
         ({common} common benchmarks, max +{max_pct:.0}%)"
    );
    if failures.is_empty() {
        println!("bench_report: gate OK — no benchmark regressed past +{max_pct:.0}%");
        return Ok(());
    }
    for (name, pct) in &failures {
        eprintln!("  {name:<40} {pct:>+7.1}% vs reference ratio");
    }
    Err(format!(
        "{} benchmark(s) regressed more than {max_pct:.0}% relative to the suite",
        failures.len()
    ))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        ["assemble", raw, out] => assemble(raw, out),
        ["check", path] => check(path, 4),
        ["check", path, min] => match min.parse() {
            Ok(min) => check(path, min),
            Err(e) => Err(format!("bad min_benches {min:?}: {e}")),
        },
        ["diff", old, new] => diff(old, new),
        ["ratios", results, out] => write_ratios(results, out),
        ["gate", ratios, new] => gate(ratios, new, 25.0),
        ["gate", ratios, new, max] => match max.parse() {
            Ok(max) => gate(ratios, new, max),
            Err(e) => Err(format!("bad max_pct {max:?}: {e}")),
        },
        _ => Err(
            "usage: bench_report assemble <raw.jsonl> <out.json> | check <out.json> [min] \
             | diff <old.json> <new.json> | ratios <results.json> <out.json> \
             | gate <ratios.json> <new.json> [max_pct]"
                .into(),
        ),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_report: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &str, median_ns: f64) -> Record {
        Record {
            name: name.into(),
            median_ns,
            line: String::new(),
        }
    }

    #[test]
    fn ratios_are_scale_invariant() {
        // The whole point of normalizing by the geomean: a uniformly 3×
        // slower machine produces identical ratios.
        let a = compute_ratios(&[rec("x", 100.0), rec("y", 400.0), rec("z", 50.0)]);
        let b = compute_ratios(&[rec("x", 300.0), rec("y", 1200.0), rec("z", 150.0)]);
        for ((an, av), (bn, bv)) in a.iter().zip(&b) {
            assert_eq!(an, bn);
            assert!((av - bv).abs() < 1e-12, "{an}: {av} vs {bv}");
        }
    }

    #[test]
    fn gate_passes_identical_and_uniformly_scaled_runs() {
        let reference: std::collections::BTreeMap<String, f64> =
            compute_ratios(&[rec("x", 100.0), rec("y", 400.0)])
                .into_iter()
                .collect();
        let same = compute_ratios(&[rec("x", 100.0), rec("y", 400.0)]);
        assert!(gate_failures(&reference, &same, 25.0).is_empty());
        let slower_host = compute_ratios(&[rec("x", 250.0), rec("y", 1000.0)]);
        assert!(gate_failures(&reference, &slower_host, 25.0).is_empty());
    }

    #[test]
    fn gate_flags_a_single_ballooning_benchmark() {
        let reference: std::collections::BTreeMap<String, f64> =
            compute_ratios(&[rec("x", 100.0), rec("y", 100.0), rec("z", 100.0)])
                .into_iter()
                .collect();
        // `z` triples while the rest hold: its ratio roughly doubles
        // (the geomean moved too), far past a 25% allowance.
        let regressed = compute_ratios(&[rec("x", 100.0), rec("y", 100.0), rec("z", 300.0)]);
        let failures = gate_failures(&reference, &regressed, 25.0);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert_eq!(failures[0].0, "z");
        assert!(failures[0].1 > 25.0);
    }

    #[test]
    fn gate_ignores_benchmarks_on_one_side_only() {
        let reference: std::collections::BTreeMap<String, f64> =
            compute_ratios(&[rec("x", 100.0), rec("gone", 100.0)])
                .into_iter()
                .collect();
        let current = compute_ratios(&[rec("x", 100.0), rec("fresh", 10_000.0)]);
        assert!(gate_failures(&reference, &current, 25.0).is_empty());
    }

    #[test]
    fn ratio_file_roundtrip() {
        let dir = std::env::temp_dir();
        let results = dir.join("skv_bench_gate_test_results.json");
        let ratios = dir.join("skv_bench_gate_test_ratios.json");
        std::fs::write(
            &results,
            "{\n  \"schema\": \"skv-bench-results/v1\",\n  \"benchmarks\": [\n    \
             {\"name\":\"a\",\"median_ns\":100.0},\n    \
             {\"name\":\"b\",\"median_ns\":400.0}\n  ]\n}\n",
        )
        .unwrap();
        write_ratios(results.to_str().unwrap(), ratios.to_str().unwrap()).unwrap();
        let loaded = load_ratios(ratios.to_str().unwrap()).unwrap();
        assert_eq!(loaded.len(), 2);
        // 100 and 400 around a geomean of 200: ratios 0.5 and 2.0.
        assert!((loaded["a"] - 0.5).abs() < 1e-6);
        assert!((loaded["b"] - 2.0).abs() < 1e-6);
        // And the unchanged results gate cleanly against themselves.
        gate(ratios.to_str().unwrap(), results.to_str().unwrap(), 25.0).unwrap();
        std::fs::remove_file(&results).ok();
        std::fs::remove_file(&ratios).ok();
    }
}
