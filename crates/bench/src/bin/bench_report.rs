//! Collect criterion JSON-lines into `BENCH_results.json`, and validate it.
//!
//! Usage:
//!   bench_report assemble <raw.jsonl> <out.json>   # build the report
//!   bench_report check <out.json> [min_benches]    # validate (default 4)
//!   bench_report diff <old.json> <new.json>        # per-bench deltas
//!
//! The raw input is the JSON-lines stream the vendored criterion shim
//! appends when `CRITERION_JSON` is set (one object per benchmark). The
//! parser here is deliberately narrow: it accepts exactly what the shim
//! emits, so a malformed line means a broken producer and is a hard error.

use std::process::ExitCode;

/// One benchmark record, as parsed back from a shim-emitted JSON line.
struct Record {
    name: String,
    median_ns: f64,
    line: String,
}

/// Extract the value of `"key":` from a shim JSON line. Values are either
/// a quoted string (no embedded escapes besides `\"`/`\\`) or a bare
/// number/null token.
fn field(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    if let Some(inner) = rest.strip_prefix('"') {
        let mut out = String::new();
        let mut chars = inner.chars();
        while let Some(c) = chars.next() {
            match c {
                '\\' => out.push(chars.next()?),
                '"' => return Some(out),
                c => out.push(c),
            }
        }
        None
    } else {
        let end = rest
            .find([',', '}'])
            .unwrap_or(rest.len());
        Some(rest[..end].trim().to_string())
    }
}

fn parse_line(line: &str) -> Result<Record, String> {
    let name = field(line, "name").ok_or("missing \"name\"")?;
    let median: f64 = field(line, "median_ns")
        .ok_or("missing \"median_ns\"")?
        .parse()
        .map_err(|e| format!("bad median_ns: {e}"))?;
    if name.is_empty() {
        return Err("empty benchmark name".into());
    }
    if !(median.is_finite() && median > 0.0) {
        return Err(format!("non-positive median_ns {median}"));
    }
    Ok(Record {
        name,
        median_ns: median,
        line: line.to_string(),
    })
}

fn load_records(path: &str, raw: bool) -> Result<Vec<Record>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim().trim_end_matches(',');
        // In report mode only the per-benchmark object lines count.
        let is_record = if raw {
            !line.is_empty()
        } else {
            line.starts_with("{\"name\":")
        };
        if !is_record {
            continue;
        }
        let rec = parse_line(line).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        records.push(rec);
    }
    Ok(records)
}

fn assemble(raw_path: &str, out_path: &str) -> Result<(), String> {
    let records = load_records(raw_path, true)?;
    if records.is_empty() {
        return Err(format!("{raw_path}: no benchmark records"));
    }
    let mut names = std::collections::BTreeSet::new();
    for r in &records {
        if !names.insert(r.name.clone()) {
            return Err(format!("duplicate benchmark name {:?}", r.name));
        }
    }
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"skv-bench-results/v1\",\n  \"benchmarks\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&r.line);
        if i + 1 < records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    std::fs::write(out_path, out).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    println!(
        "bench_report: wrote {out_path} ({} benchmarks)",
        records.len()
    );
    Ok(())
}

fn check(path: &str, min: usize) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if !text.contains("\"schema\": \"skv-bench-results/v1\"") {
        return Err(format!("{path}: missing schema marker"));
    }
    let records = load_records(path, false)?;
    if records.len() < min {
        return Err(format!(
            "{path}: only {} benchmarks, expected at least {min}",
            records.len()
        ));
    }
    println!("bench_report: {path} OK ({} benchmarks)", records.len());
    for r in &records {
        println!("  {:<40} median {:>12.1} ns/iter", r.name, r.median_ns);
    }
    Ok(())
}

/// Per-benchmark median deltas between two result files, matched by name.
/// Benchmarks present in only one file are listed rather than failing the
/// diff: sweeps legitimately gain and lose arms between commits.
fn diff(old_path: &str, new_path: &str) -> Result<(), String> {
    let old = load_records(old_path, false)?;
    let new = load_records(new_path, false)?;
    let old_by_name: std::collections::BTreeMap<&str, f64> =
        old.iter().map(|r| (r.name.as_str(), r.median_ns)).collect();
    let new_by_name: std::collections::BTreeMap<&str, f64> =
        new.iter().map(|r| (r.name.as_str(), r.median_ns)).collect();

    println!("bench_report: {old_path} -> {new_path}");
    println!(
        "  {:<40} {:>14} {:>14} {:>8}",
        "benchmark", "old (ns)", "new (ns)", "delta"
    );
    for r in &new {
        match old_by_name.get(r.name.as_str()) {
            Some(&old_median) => {
                let pct = (r.median_ns / old_median - 1.0) * 100.0;
                println!(
                    "  {:<40} {:>14.1} {:>14.1} {:>+7.1}%",
                    r.name, old_median, r.median_ns, pct
                );
            }
            None => println!(
                "  {:<40} {:>14} {:>14.1}     new",
                r.name, "-", r.median_ns
            ),
        }
    }
    for r in &old {
        if !new_by_name.contains_key(r.name.as_str()) {
            println!(
                "  {:<40} {:>14.1} {:>14} removed",
                r.name, r.median_ns, "-"
            );
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        ["assemble", raw, out] => assemble(raw, out),
        ["check", path] => check(path, 4),
        ["check", path, min] => match min.parse() {
            Ok(min) => check(path, min),
            Err(e) => Err(format!("bad min_benches {min:?}: {e}")),
        },
        ["diff", old, new] => diff(old, new),
        _ => Err(
            "usage: bench_report assemble <raw.jsonl> <out.json> | check <out.json> [min] \
             | diff <old.json> <new.json>"
                .into(),
        ),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_report: {e}");
            ExitCode::FAILURE
        }
    }
}
