//! CLI driver: regenerate any (or all) of the paper's figures.
//!
//! Usage: `experiments [fig3|fig7|...|fig14|niccrash|threadnum|...|probeloss|all]...`

use skv_bench::ablations as abl;
use skv_bench::experiments as exp;

fn run(which: &str) {
    match which {
        "fig3" => exp::print_fig03(&exp::fig03_rdma_write_latency()),
        "fig7" => exp::print_fig07(&exp::fig07_slave_degradation()),
        "fig10" => exp::print_fig10(&exp::fig10_redis_vs_rdma(&[1, 2, 4, 8, 16, 24, 32])),
        "fig11" => exp::print_vs(
            "Figure 11 — SET, 1 master + 3 slaves (SKV vs RDMA-Redis)",
            &exp::fig11_set_offload(),
        ),
        "fig12" => exp::print_fig12(&exp::fig12_value_size(&[64, 256, 1024, 4096, 16384])),
        "fig13" => exp::print_vs(
            "Figure 13 — GET, 1 master + 3 slaves (SKV vs RDMA-Redis)",
            &exp::fig13_get_parity(),
        ),
        "fig14" => exp::print_fig14(&exp::fig14_availability()),
        "niccrash" => exp::print_nic_crash(&exp::nic_crash_timeline()),
        "threadnum" => abl::print_threadnum(&abl::ablation_threadnum()),
        "nicstore" => abl::print_nic_datastore(&abl::ablation_nic_datastore()),
        "wrcost" => abl::print_wr_cost(&abl::ablation_wr_cost()),
        "wrbatch" => abl::print_wr_batching(&abl::ablation_wr_batching()),
        "cqmod" => abl::print_cq_moderation(&abl::ablation_cq_moderation()),
        "cqbudget" => abl::print_cq_budget(&abl::ablation_cq_budget()),
        "netcal" => abl::print_netcal(&abl::ablation_netcal()),
        "backoff" => abl::print_backoff(&abl::ablation_backoff()),
        "replmode" => abl::print_replmode(&abl::ablation_replmode()),
        "slavecount" => abl::print_slave_count(&abl::ablation_slave_count()),
        "failparams" => abl::print_failure_params(&abl::ablation_failure_params()),
        "probeloss" => abl::print_probe_loss(&abl::ablation_probe_loss()),
        "pipeline" => abl::print_pipeline(&abl::ablation_pipeline()),
        "shards" => abl::print_shards(&abl::ablation_shards()),
        "hotcache" => abl::print_hotcache(&abl::ablation_hotcache()),
        other => eprintln!("unknown experiment {other:?}"),
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let list: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "fig3",
            "fig7",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "niccrash",
            "threadnum",
            "nicstore",
            "wrcost",
            "wrbatch",
            "cqmod",
            "cqbudget",
            "netcal",
            "backoff",
            "replmode",
            "slavecount",
            "failparams",
            "probeloss",
            "pipeline",
            "shards",
            "hotcache",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };
    for which in list {
        run(which);
    }
}
