//! Ablation studies for the design choices the paper argues for.
//!
//! * `thread-num` (§III-C): multi-threaded NIC replication shrinks
//!   replication lag but cannot improve client latency/throughput.
//! * NIC-side data store (§IV-A): the rejected design — serving requests
//!   from the off-path SoC is strictly worse.
//! * WR post cost (§V-C): SKV's gain is proportional to slaves × post cost.
//! * Slave count: the offload's benefit grows with the fan-out degree.
//! * `min-slaves` / `waiting-time` (§III-D): detection-latency trade-off.

use skv_core::cluster::{Cluster, RunSpec};
use skv_core::config::{ClusterConfig, Mode};
use skv_core::histcheck;
use skv_core::metrics::RunReport;
use skv_core::replmode::ReplModeKind;
use skv_netsim::{FaultPlan, LinkFault, TimeWindow};
use skv_simcore::{SimDuration, SimTime};

use crate::experiments::{MEASURE, WARMUP};

fn spec(mode: Mode, slaves: usize, clients: usize, seed: u64) -> RunSpec {
    let mut cfg = ClusterConfig::for_mode(mode);
    cfg.num_slaves = slaves;
    RunSpec {
        cfg,
        num_clients: clients,
        pipeline: 1,
        set_ratio: 1.0,
        mset_keys: 0,
        value_size: 64,
        key_space: 100_000,
        warmup: WARMUP,
        measure: MEASURE,
        seed,
        zipf_theta: 0.0,
        zipf_shift_every: 0,
    }
}

// ===========================================================================
// thread-num
// ===========================================================================

/// One `thread-num` setting.
#[derive(Debug, Clone)]
pub struct ThreadNumRow {
    /// Configured `thread-num`.
    pub thread_num: usize,
    /// Effective threads after the min(cores, slaves) clamp.
    pub effective: usize,
    /// Client-visible summary (expected ~flat across rows).
    pub report: RunReport,
    /// Maximum replication lag across slaves at measure end, in bytes
    /// (expected to shrink as threads increase).
    pub max_lag_bytes: u64,
    /// Mean ARM-core utilization.
    pub nic_utilization: f64,
}

/// Sweep `thread-num` with a fan-out wide enough (12 slaves) that a single
/// ARM core cannot keep up.
pub fn ablation_threadnum() -> Vec<ThreadNumRow> {
    [1usize, 2, 4, 8, 16]
        .iter()
        .map(|&tn| {
            let mut s = spec(Mode::Skv, 12, 8, 21_000 + tn as u64);
            s.cfg.thread_num = tn;
            // A single ARM core cannot keep up with this fan-out; bound the
            // overload window so the undrained-queue memory stays modest.
            s.measure = SimDuration::from_millis(1_000);
            let effective = s.cfg.effective_nic_threads();
            let mut cluster = Cluster::build(s);
            let report = cluster.run();
            let now = cluster.sim.now();
            let master_offset = cluster.master_server().repl_offset();
            let max_lag_bytes = (0..cluster.slaves.len())
                .map(|i| master_offset.saturating_sub(cluster.slave_server(i).repl_offset()))
                .max()
                .unwrap_or(0);
            let nic_utilization = cluster
                .nic_kv()
                .map(|n| n.mean_utilization(now))
                .unwrap_or(0.0);
            ThreadNumRow {
                thread_num: tn,
                effective,
                report,
                max_lag_bytes,
                nic_utilization,
            }
        })
        .collect()
}

/// Print the thread-num ablation.
pub fn print_threadnum(rows: &[ThreadNumRow]) {
    println!("Ablation — thread-num (SKV, 12 slaves, 8 clients)");
    println!(
        "{:>10} {:>10} {:>12} {:>10} {:>14} {:>10}",
        "thread", "effective", "kops/s", "p99(us)", "max lag (B)", "nic util"
    );
    for r in rows {
        println!(
            "{:>10} {:>10} {:>12.1} {:>10.1} {:>14} {:>10.2}",
            r.thread_num,
            r.effective,
            r.report.throughput_kops,
            r.report.p99_latency_us,
            r.max_lag_bytes,
            r.nic_utilization
        );
    }
}

// ===========================================================================
// NIC-side data store (the rejected design of §IV-A)
// ===========================================================================

/// Comparison of serving GETs from the host vs from the SmartNIC SoC.
#[derive(Debug, Clone)]
pub struct NicStoreResult {
    /// GETs served by Host-KV on the host (SKV's actual design).
    pub host_store: RunReport,
    /// GETs served by a KV store running on the SmartNIC SoC cores.
    pub nic_store: RunReport,
}

/// Run the rejected design: the whole store on the SoC (weak cores, and the
/// client's RDMA path to the SoC costs nearly a full host-to-host hop).
pub fn ablation_nic_datastore() -> NicStoreResult {
    // Host store: plain RDMA-Redis GETs, no slaves.
    let mut host_spec = spec(Mode::RdmaRedis, 0, 8, 22_000);
    host_spec.set_ratio = 0.0;
    let host_store = skv_core::cluster::run_spec(host_spec);

    // NIC store: same server logic, but its event-loop cores are the
    // BlueField's ARM cores. (The cluster builder places servers on hosts;
    // slowing the host cores to the ARM factor models the §IV-A variant —
    // the network path difference is second-order next to the ~3x core
    // speed gap, as the paper's Figure 3 argument implies.)
    let mut nic_spec = spec(Mode::RdmaRedis, 0, 8, 22_001);
    nic_spec.set_ratio = 0.0;
    nic_spec.cfg.machines.host_core_speed = nic_spec.cfg.machines.nic_core_speed;
    let mut nic_store = skv_core::cluster::run_spec(nic_spec);
    nic_store.label = "NIC-store".into();

    NicStoreResult {
        host_store,
        nic_store,
    }
}

/// Print the NIC-datastore ablation.
pub fn print_nic_datastore(r: &NicStoreResult) {
    println!("Ablation — data store placement for GETs (§IV-A rejected design)");
    println!("{:<12} {}", "placement", RunReport::header());
    println!("{:<12} {}", "host", r.host_store.row());
    println!("{:<12} {}", "SmartNIC", r.nic_store.row());
}

// ===========================================================================
// WR post cost
// ===========================================================================

/// One WR-post-cost setting.
#[derive(Debug, Clone)]
pub struct WrCostRow {
    /// `ibv_post_send` CPU cost, nanoseconds.
    pub wr_post_ns: u64,
    /// RDMA-Redis throughput (kops/s).
    pub baseline_kops: f64,
    /// SKV throughput (kops/s).
    pub skv_kops: f64,
    /// SKV gain, percent.
    pub gain_pct: f64,
}

/// Sweep the per-WR host CPU cost: the offload's benefit must scale with it
/// (§V-C's causal claim).
pub fn ablation_wr_cost() -> Vec<WrCostRow> {
    [50u64, 100, 200, 400, 800]
        .iter()
        .map(|&ns| {
            let mut b = spec(Mode::RdmaRedis, 3, 8, 23_000 + ns);
            b.cfg.net.wr_post_cpu = SimDuration::from_nanos(ns);
            let mut s = spec(Mode::Skv, 3, 8, 23_500 + ns);
            s.cfg.net.wr_post_cpu = SimDuration::from_nanos(ns);
            let baseline = skv_core::cluster::run_spec(b);
            let skv = skv_core::cluster::run_spec(s);
            WrCostRow {
                wr_post_ns: ns,
                baseline_kops: baseline.throughput_kops,
                skv_kops: skv.throughput_kops,
                gain_pct: (skv.throughput_kops / baseline.throughput_kops - 1.0) * 100.0,
            }
        })
        .collect()
}

/// Print the WR-cost ablation.
pub fn print_wr_cost(rows: &[WrCostRow]) {
    println!("Ablation — WR post cost vs offload gain (SET, 3 slaves, 8 clients)");
    println!(
        "{:>12} {:>14} {:>12} {:>8}",
        "post(ns)", "RDMA kops", "SKV kops", "gain%"
    );
    for r in rows {
        println!(
            "{:>12} {:>14.1} {:>12.1} {:>+8.1}",
            r.wr_post_ns, r.baseline_kops, r.skv_kops, r.gain_pct
        );
    }
}

// ===========================================================================
// doorbell batching (linked-WR post lists)
// ===========================================================================

/// One slave-count setting of the doorbell-batching ablation.
#[derive(Debug, Clone)]
pub struct WrBatchRow {
    /// Number of slaves (= WRs per replicated write).
    pub slaves: usize,
    /// Throughput with serial posting (kops/s).
    pub serial_kops: f64,
    /// Throughput with linked post lists (kops/s).
    pub batched_kops: f64,
    /// Doorbells per replicated write, serial (expected ≈ N).
    pub serial_doorbells_per_write: f64,
    /// Doorbells per replicated write, batched (expected ≈ 1).
    pub batched_doorbells_per_write: f64,
    /// WRs per replicated write, serial (expected ≈ N).
    pub serial_wrs_per_write: f64,
    /// WRs per replicated write, batched (must equal the serial column —
    /// batching amortizes doorbells, not work requests).
    pub batched_wrs_per_write: f64,
}

/// Sweep the fan-out width with `batch_wr_posts` off vs on. The Nic-KV's
/// own counters show the mechanism: a serial fan-out rings one doorbell
/// per slave per write, a linked post list rings exactly one — while the
/// WRs per write stay at N in both arms.
pub fn ablation_wr_batching() -> Vec<WrBatchRow> {
    [1usize, 2, 3, 5, 8]
        .iter()
        .map(|&n| {
            let run_arm = |batched: bool| {
                let mut s = spec(Mode::Skv, n, 8, 29_000 + n as u64);
                s.cfg.batch_wr_posts = batched;
                let mut cluster = Cluster::build(s);
                let report = cluster.run();
                let (writes, doorbells, wrs) = cluster
                    .nic_kv()
                    .map(|nic| {
                        (
                            nic.stat_fanout_msgs,
                            nic.stat_doorbells,
                            nic.stat_wrs_posted,
                        )
                    })
                    .unwrap_or((0, 0, 0));
                let per_write = |v: u64| {
                    if writes == 0 {
                        0.0
                    } else {
                        v as f64 / writes as f64
                    }
                };
                (report, per_write(doorbells), per_write(wrs))
            };
            let (serial, serial_db, serial_wrs) = run_arm(false);
            let (batched, batched_db, batched_wrs) = run_arm(true);
            WrBatchRow {
                slaves: n,
                serial_kops: serial.throughput_kops,
                batched_kops: batched.throughput_kops,
                serial_doorbells_per_write: serial_db,
                batched_doorbells_per_write: batched_db,
                serial_wrs_per_write: serial_wrs,
                batched_wrs_per_write: batched_wrs,
            }
        })
        .collect()
}

/// Print the doorbell-batching ablation.
pub fn print_wr_batching(rows: &[WrBatchRow]) {
    println!("Ablation — doorbell batching on the Nic-KV fan-out (SET, 8 clients)");
    println!(
        "{:>8} {:>12} {:>12} {:>11} {:>11} {:>9} {:>9}",
        "slaves", "serial kops", "batch kops", "db/wr(ser)", "db/wr(bat)", "wr(ser)", "wr(bat)"
    );
    for r in rows {
        println!(
            "{:>8} {:>12.1} {:>12.1} {:>11.2} {:>11.2} {:>9.2} {:>9.2}",
            r.slaves,
            r.serial_kops,
            r.batched_kops,
            r.serial_doorbells_per_write,
            r.batched_doorbells_per_write,
            r.serial_wrs_per_write,
            r.batched_wrs_per_write
        );
    }
}

// ===========================================================================
// CQ interrupt moderation
// ===========================================================================

/// One CQ-moderation threshold setting.
#[derive(Debug, Clone)]
pub struct CqModRow {
    /// `cq_notify_threshold` (1 = moderation off).
    pub threshold: usize,
    /// Coalescing deadline, µs.
    pub timer_us: u64,
    /// Client throughput (kops/s).
    pub kops: f64,
    /// p99 latency (µs).
    pub p99_us: f64,
    /// Completion notifies the whole testbed saw.
    pub cq_notifies: u64,
    /// Work completions polled.
    pub wcs_polled: u64,
    /// Notifies per polled WC — collapses toward 1/threshold under load.
    pub notify_ratio: f64,
}

/// Sweep the notify threshold at a fixed 10 µs coalescing deadline,
/// mirroring ConnectX interrupt-moderation profiles. The event count
/// (the simulator's stand-in for interrupt rate) must fall as the
/// threshold grows while the served workload stays intact; past the point
/// where bursts rarely reach the threshold the coalescing timer flushes
/// sub-threshold batches and the ratio flattens out.
pub fn ablation_cq_moderation() -> Vec<CqModRow> {
    const TIMER_US: u64 = 10;
    [1usize, 2, 4, 8, 16]
        .iter()
        .map(|&threshold| {
            let mut s = spec(Mode::Skv, 3, 8, 30_000 + threshold as u64);
            s.pipeline = 4; // keep completions bursty enough to coalesce
            s.cfg.net.cq_notify_threshold = threshold;
            s.cfg.net.cq_notify_timer = SimDuration::from_micros(TIMER_US);
            let mut cluster = Cluster::build(s);
            let report = cluster.run();
            let c = cluster.net.counters();
            let cq_notifies = c.get("rdma.cq_notifies");
            let wcs_polled = c.get("rdma.wcs_polled");
            CqModRow {
                threshold,
                timer_us: TIMER_US,
                kops: report.throughput_kops,
                p99_us: report.p99_latency_us,
                cq_notifies,
                wcs_polled,
                notify_ratio: if wcs_polled == 0 {
                    0.0
                } else {
                    cq_notifies as f64 / wcs_polled as f64
                },
            }
        })
        .collect()
}

/// Print the CQ-moderation ablation.
pub fn print_cq_moderation(rows: &[CqModRow]) {
    println!("Ablation — CQ interrupt moderation (SKV, 3 slaves, 8 clients, P=4)");
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "threshold", "timer(us)", "kops/s", "p99(us)", "notifies", "wcs polled", "notify/wc"
    );
    for r in rows {
        println!(
            "{:>10} {:>10} {:>10.1} {:>10.1} {:>12} {:>12} {:>12.3}",
            r.threshold, r.timer_us, r.kops, r.p99_us, r.cq_notifies, r.wcs_polled, r.notify_ratio
        );
    }
}

// ===========================================================================
// replication mode (async stream vs quorum vs chain)
// ===========================================================================

/// One replication-mode setting.
#[derive(Debug, Clone)]
pub struct ReplModeRow {
    /// The protocol behind the `ReplicationMode` trait.
    pub mode: ReplModeKind,
    /// Client-visible summary.
    pub report: RunReport,
    /// Writes the NIC committed through ack tracking (0 for async — the
    /// stream mode has no commit point).
    pub commits: u64,
    /// Quorum retransmits to re-registered slaves.
    pub retransmits: u64,
    /// Chain-repair events (hops spliced out of in-flight writes).
    pub chain_repairs: u64,
    /// Replies the master deferred until the NIC's commit frontier (and
    /// the slave census) caught up.
    pub deferred_replies: u64,
    /// Ops in the history the bench clients recorded of themselves
    /// (`record_history`): the linearizability checker's input size.
    pub hist_ops: u64,
    /// Violations `histcheck::check_linearizable` found in that history
    /// (0 is the expected verdict for every fault-free arm).
    pub violations: usize,
}

/// Sweep the replication protocol at a fixed fan-out: the async stream is
/// the latency/throughput ceiling (replies return as soon as the host
/// write lands), quorum pays one NIC→slave RTT before release, and chain
/// pays the full hop-by-hop pipeline — the paper's offload numbers are
/// the async arm, the other two price its durability upgrade.
pub fn ablation_replmode() -> Vec<ReplModeRow> {
    ReplModeKind::ALL
        .iter()
        .enumerate()
        .map(|(i, &mode)| {
            let mut s = spec(Mode::Skv, 3, 8, 31_000 + i as u64);
            s.cfg.repl_mode = mode;
            // Every arm records its own client traffic and runs the
            // linearizability checker over it: the verdict column proves
            // the protocol (not just prices it). Mixed GET/SET so reads
            // actually constrain the order.
            s.cfg.record_history = true;
            s.set_ratio = 0.5;
            // The quorum arm carries the cross-mode failover knob too;
            // with no faults injected the mode never moves, so the knob's
            // steady-state cost shows up here as exactly zero transitions.
            if mode == ReplModeKind::Quorum {
                s.cfg.mode_failover = true;
            }
            let mut cluster = Cluster::build(s);
            let report = cluster.run();
            let (commits, retransmits, chain_repairs) = cluster
                .nic_kv()
                .map(|n| (n.stat_commits, n.stat_retransmits, n.stat_chain_repairs))
                .unwrap_or((0, 0, 0));
            let deferred_replies = cluster.master_server().stat_deferred_replies;
            let (hist_ops, violations) = cluster
                .bench_history
                .as_ref()
                .map(|h| {
                    let hb = h.borrow();
                    (hb.ops.len() as u64, histcheck::check_linearizable(&hb).len())
                })
                .unwrap_or((0, 0));
            ReplModeRow {
                mode,
                report,
                commits,
                retransmits,
                chain_repairs,
                deferred_replies,
                hist_ops,
                violations,
            }
        })
        .collect()
}

/// Print the replication-mode ablation.
pub fn print_replmode(rows: &[ReplModeRow]) {
    println!("Ablation — replication protocol (SKV, 3 slaves, 8 clients, GET/SET)");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} {:>8} {:>10} {:>10} {:>8}",
        "mode", "kops/s", "p99(us)", "commits", "deferred", "rexmit", "repairs", "hist ops", "lin"
    );
    for r in rows {
        println!(
            "{:>8} {:>10.1} {:>10.1} {:>10} {:>10} {:>8} {:>10} {:>10} {:>8}",
            r.mode.label(),
            r.report.throughput_kops,
            r.report.p99_latency_us,
            r.commits,
            r.deferred_replies,
            r.retransmits,
            r.chain_repairs,
            r.hist_ops,
            if r.violations == 0 { "ok" } else { "FAIL" }
        );
    }
}

// ===========================================================================
// slave count
// ===========================================================================

/// One slave-count setting.
#[derive(Debug, Clone)]
pub struct SlaveCountRow {
    /// Number of slaves.
    pub slaves: usize,
    /// RDMA-Redis throughput.
    pub baseline_kops: f64,
    /// SKV throughput.
    pub skv_kops: f64,
    /// SKV gain, percent.
    pub gain_pct: f64,
}

/// Sweep the number of slaves: the host saves (N−1) WR posts per write, so
/// the gain must grow with N.
pub fn ablation_slave_count() -> Vec<SlaveCountRow> {
    [0usize, 1, 2, 3, 5, 8]
        .iter()
        .map(|&n| {
            let baseline =
                skv_core::cluster::run_spec(spec(Mode::RdmaRedis, n, 8, 24_000 + n as u64));
            let skv = skv_core::cluster::run_spec(spec(Mode::Skv, n, 8, 24_500 + n as u64));
            SlaveCountRow {
                slaves: n,
                baseline_kops: baseline.throughput_kops,
                skv_kops: skv.throughput_kops,
                gain_pct: (skv.throughput_kops / baseline.throughput_kops - 1.0) * 100.0,
            }
        })
        .collect()
}

/// Print the slave-count ablation.
pub fn print_slave_count(rows: &[SlaveCountRow]) {
    println!("Ablation — offload gain vs number of slaves (SET, 8 clients)");
    println!(
        "{:>8} {:>14} {:>12} {:>8}",
        "slaves", "RDMA kops", "SKV kops", "gain%"
    );
    for r in rows {
        println!(
            "{:>8} {:>14.1} {:>12.1} {:>+8.1}",
            r.slaves, r.baseline_kops, r.skv_kops, r.gain_pct
        );
    }
}

// ===========================================================================
// failure-detection parameters
// ===========================================================================

/// One `waiting-time` setting.
#[derive(Debug, Clone)]
pub struct FailureParamRow {
    /// Configured waiting-time (ms).
    pub waiting_ms: u64,
    /// Measured detection delay after the crash (ms).
    pub detection_delay_ms: f64,
    /// Write errors clients saw (min-slaves = 3 with one slave down).
    pub errors: u64,
    /// Client ops completed.
    pub ops: u64,
}

/// Sweep `waiting-time` with `min-slaves = 3`: shorter timeouts detect the
/// crash sooner, so clients see `NOREPLICAS` errors earlier (more of them).
pub fn ablation_failure_params() -> Vec<FailureParamRow> {
    [500u64, 1500, 3000]
        .iter()
        .map(|&wt| {
            let mut s = spec(Mode::Skv, 3, 4, 25_000 + wt);
            s.cfg.waiting_time = SimDuration::from_millis(wt);
            s.cfg.min_slaves = 3;
            s.measure = SimDuration::from_millis(7_000);
            let crash_at = SimTime::from_secs(3);
            let mut cluster = Cluster::build(s);
            cluster.schedule_slave_crash(0, crash_at);
            let report = cluster.run();
            let detection = cluster
                .nic_kv()
                .and_then(|n| n.detections.iter().find(|(t, _)| *t >= crash_at).copied())
                .map(|(t, _)| t.saturating_since(crash_at).as_secs_f64() * 1000.0)
                .unwrap_or(f64::NAN);
            FailureParamRow {
                waiting_ms: wt,
                detection_delay_ms: detection,
                errors: report.errors,
                ops: report.ops,
            }
        })
        .collect()
}

/// Print the failure-parameter ablation.
pub fn print_failure_params(rows: &[FailureParamRow]) {
    println!("Ablation — waiting-time vs detection delay (min-slaves=3, crash at 3s)");
    println!(
        "{:>12} {:>16} {:>10} {:>10}",
        "waiting(ms)", "detect delay(ms)", "errors", "ops"
    );
    for r in rows {
        println!(
            "{:>12} {:>16.0} {:>10} {:>10}",
            r.waiting_ms, r.detection_delay_ms, r.errors, r.ops
        );
    }
}

// ===========================================================================
// probe loss — detection false positives vs waiting-time
// ===========================================================================

/// One (outage duration, waiting-time) cell.
#[derive(Debug, Clone)]
pub struct ProbeLossRow {
    /// Duration of the NIC↔slave link outage (ms).
    pub blip_ms: u64,
    /// Configured `waiting-time` (ms).
    pub waiting_ms: u64,
    /// Nodes declared failed. The slave never crashes and keeps serving
    /// through its other links, so every detection is a false positive.
    pub false_positives: u64,
    /// Failed nodes later seen alive again (the false alarm clearing).
    pub recoveries: u64,
    /// Client ops completed.
    pub ops: u64,
    /// Error replies clients saw.
    pub errors: u64,
}

/// The cost of aggressive detection (§III-D): cut one slave's link to the
/// NIC — probes, replies and re-registration — for a bounded blip while
/// the slave itself stays alive, and sweep `waiting-time`. A timeout
/// shorter than the blip flags the live slave as failed; a longer one
/// rides it out (but would detect a real crash correspondingly later —
/// the other half of the trade-off, in `ablation_failure_params`).
///
/// Independent per-message probe loss is deliberately *not* the x-axis:
/// a dropped probe errors the sender's QP, the slave redials within
/// milliseconds and registration resets the probe clock, so uniform loss
/// up to 5% produces zero false positives at any `waiting-time`. Only
/// sustained silence — an outage the retry machinery cannot route around
/// — can outlive the timeout.
pub fn ablation_probe_loss() -> Vec<ProbeLossRow> {
    let mut rows = Vec::new();
    for &blip_ms in &[250u64, 1_000, 2_500, 5_000] {
        for &wt in &[500u64, 1_500, 3_000] {
            let mut s = spec(Mode::Skv, 2, 1, 27_000 + wt + blip_ms);
            s.cfg.waiting_time = SimDuration::from_millis(wt);
            s.measure = SimDuration::from_millis(8_000);
            let mut cluster = Cluster::build(s);

            // Black out slave 0's link to the NIC, both directions, from
            // t=2s. Clients and the master↔NIC path stay clean, and the
            // slave still reaches the master directly — the write path is
            // undisturbed except through the detector's own mistakes.
            let window = Some(TimeWindow::new(
                SimTime::from_secs(2),
                SimTime::from_secs(2) + SimDuration::from_millis(blip_ms),
            ));
            let mut plan = FaultPlan::new(28_000 + wt + blip_ms);
            if let Some(nic) = cluster.nic_node {
                let node = cluster.slave_nodes[0];
                for (src, dst) in [(nic, node), (node, nic)] {
                    plan.links.push(LinkFault {
                        src,
                        dst,
                        drop_prob: 1.0,
                        delay_prob: 0.0,
                        delay: SimDuration::ZERO,
                        window,
                    });
                }
            }
            cluster.net.set_fault_plan(plan);

            let report = cluster.run();
            let (false_positives, recoveries) = cluster.nic_kv().map_or((0, 0), |n| {
                (n.detections.len() as u64, n.recoveries.len() as u64)
            });
            rows.push(ProbeLossRow {
                blip_ms,
                waiting_ms: wt,
                false_positives,
                recoveries,
                ops: report.ops,
                errors: report.errors,
            });
        }
    }
    rows
}

/// Print the probe-outage ablation.
pub fn print_probe_loss(rows: &[ProbeLossRow]) {
    println!("Ablation — probe-path outage vs false detections (slave stays alive)");
    println!(
        "{:>9} {:>12} {:>10} {:>11} {:>9} {:>8}",
        "blip(ms)", "waiting(ms)", "false-pos", "recoveries", "ops", "errors"
    );
    for r in rows {
        println!(
            "{:>9} {:>12} {:>10} {:>11} {:>9} {:>8}",
            r.blip_ms, r.waiting_ms, r.false_positives, r.recoveries, r.ops, r.errors
        );
    }
}

// ===========================================================================
// client pipelining (extension: redis-benchmark -P)
// ===========================================================================

/// One pipeline-depth setting.
#[derive(Debug, Clone)]
pub struct PipelineRow {
    /// Commands in flight per connection.
    pub depth: usize,
    /// Throughput with a single client connection.
    pub kops_1_client: f64,
    /// p99 latency with a single client (µs).
    pub p99_us: f64,
}

/// Sweep pipeline depth with ONE client: depth substitutes for connection
/// concurrency until the server core saturates (an extension beyond the
/// paper, which benchmarks unpipelined clients only).
pub fn ablation_pipeline() -> Vec<PipelineRow> {
    [1usize, 2, 4, 8, 16]
        .iter()
        .map(|&depth| {
            let mut s = spec(Mode::RdmaRedis, 0, 1, 26_000 + depth as u64);
            s.pipeline = depth;
            let report = skv_core::cluster::run_spec(s);
            PipelineRow {
                depth,
                kops_1_client: report.throughput_kops,
                p99_us: report.p99_latency_us,
            }
        })
        .collect()
}

/// Print the pipelining ablation.
pub fn print_pipeline(rows: &[PipelineRow]) {
    println!("Ablation — client pipelining (RDMA-Redis, 1 client, no slaves)");
    println!("{:>8} {:>12} {:>10}", "depth", "kops/s", "p99(us)");
    for r in rows {
        println!(
            "{:>8} {:>12.1} {:>10.1}",
            r.depth, r.kops_1_client, r.p99_us
        );
    }
}

// ===========================================================================
// fabric-calibration sensitivity
// ===========================================================================

/// One calibration-sensitivity arm: a single fabric/CPU knob perturbed.
#[derive(Debug, Clone)]
pub struct NetCalRow {
    /// The knob and how it was moved.
    pub knob: &'static str,
    /// Which system variant the knob matters for.
    pub mode: Mode,
    /// Throughput at the default calibration (kops/s).
    pub base_kops: f64,
    /// Throughput with the knob perturbed (kops/s).
    pub kops: f64,
    /// Throughput delta, percent.
    pub delta_pct: f64,
    /// p99 latency delta, percent.
    pub p99_delta_pct: f64,
}

/// Perturb each [`skv_netsim::NetParams`] calibration knob (and the host
/// command-CPU cost) in isolation — latencies and CPU costs doubled,
/// bandwidth halved — and measure how the client-visible numbers move
/// against the default calibration. This is the robustness check behind
/// quoting absolute numbers from a calibrated simulator: the knobs the
/// paper's claims lean on (WR post cost, SoC path factors) must matter,
/// and the ones it abstracts away (connect latency) must not.
pub fn ablation_netcal() -> Vec<NetCalRow> {
    fn x2(d: SimDuration) -> SimDuration {
        d.mul_f64(2.0)
    }
    type Apply = fn(&mut ClusterConfig);
    let arms: &[(&'static str, Mode, Apply)] = &[
        ("bandwidth_bps /2", Mode::Skv, |c: &mut ClusterConfig| {
            c.net.bandwidth_bps /= 2.0;
        }),
        (
            "host_host_latency x2",
            Mode::Skv,
            |c: &mut ClusterConfig| {
                c.net.host_host_latency = x2(c.net.host_host_latency);
            },
        ),
        ("local_soc_factor x2", Mode::Skv, |c: &mut ClusterConfig| {
            c.net.local_soc_factor *= 2.0;
        }),
        (
            "remote_soc_factor x2",
            Mode::Skv,
            |c: &mut ClusterConfig| {
                c.net.remote_soc_factor *= 2.0;
            },
        ),
        ("nic_tx_delay x2", Mode::Skv, |c: &mut ClusterConfig| {
            c.net.nic_tx_delay = x2(c.net.nic_tx_delay);
        }),
        ("dma_delay x2", Mode::Skv, |c: &mut ClusterConfig| {
            c.net.dma_delay = x2(c.net.dma_delay);
        }),
        ("wr_post_linked x2", Mode::Skv, |c: &mut ClusterConfig| {
            c.net.wr_post_linked = x2(c.net.wr_post_linked);
        }),
        ("cq_poll_cpu x2", Mode::Skv, |c: &mut ClusterConfig| {
            c.net.cq_poll_cpu = x2(c.net.cq_poll_cpu);
        }),
        ("wc_handle_cpu x2", Mode::Skv, |c: &mut ClusterConfig| {
            c.net.wc_handle_cpu = x2(c.net.wc_handle_cpu);
        }),
        ("connect_latency x2", Mode::Skv, |c: &mut ClusterConfig| {
            c.net.connect_latency = x2(c.net.connect_latency);
        }),
        ("costs.cmd cpu x2", Mode::Skv, |c: &mut ClusterConfig| {
            c.costs.cmd_base = x2(c.costs.cmd_base);
            c.costs.cmd_per_kib = x2(c.costs.cmd_per_kib);
        }),
        (
            "tcp_stack_latency x2",
            Mode::TcpRedis,
            |c: &mut ClusterConfig| {
                c.net.tcp_stack_latency = x2(c.net.tcp_stack_latency);
            },
        ),
        (
            "tcp_send_cpu x2",
            Mode::TcpRedis,
            |c: &mut ClusterConfig| {
                c.net.tcp_send_cpu = x2(c.net.tcp_send_cpu);
            },
        ),
        (
            "tcp_recv_cpu x2",
            Mode::TcpRedis,
            |c: &mut ClusterConfig| {
                c.net.tcp_recv_cpu = x2(c.net.tcp_recv_cpu);
            },
        ),
        (
            "tcp_copy_cpu_per_kib x2",
            Mode::TcpRedis,
            |c: &mut ClusterConfig| {
                c.net.tcp_copy_cpu_per_kib = x2(c.net.tcp_copy_cpu_per_kib);
            },
        ),
        (
            "tcp_base_latency x2",
            Mode::TcpRedis,
            |c: &mut ClusterConfig| {
                c.net.tcp_base_latency = x2(c.net.tcp_base_latency);
            },
        ),
    ];
    let run = |mode: Mode, apply: Option<Apply>| {
        // Same seed per mode in every arm: each knob faces the identical
        // workload, so rows differ only by the perturbation.
        let (slaves, seed) = match mode {
            Mode::TcpRedis => (0, 31_500),
            _ => (2, 31_000),
        };
        let mut s = spec(mode, slaves, 4, seed);
        if let Some(f) = apply {
            f(&mut s.cfg);
        }
        skv_core::cluster::run_spec(s)
    };
    let base_skv = run(Mode::Skv, None);
    let base_tcp = run(Mode::TcpRedis, None);
    arms.iter()
        .map(|&(knob, mode, apply)| {
            let base = if mode == Mode::TcpRedis {
                &base_tcp
            } else {
                &base_skv
            };
            let r = run(mode, Some(apply));
            NetCalRow {
                knob,
                mode,
                base_kops: base.throughput_kops,
                kops: r.throughput_kops,
                delta_pct: (r.throughput_kops / base.throughput_kops - 1.0) * 100.0,
                p99_delta_pct: (r.p99_latency_us / base.p99_latency_us - 1.0) * 100.0,
            }
        })
        .collect()
}

/// Print the calibration-sensitivity ablation.
pub fn print_netcal(rows: &[NetCalRow]) {
    println!("Ablation — fabric-calibration sensitivity (one knob per row, 4 clients)");
    println!(
        "{:<24} {:<10} {:>10} {:>10} {:>8} {:>9}",
        "knob", "mode", "base kops", "kops", "d kops%", "d p99%"
    );
    for r in rows {
        println!(
            "{:<24} {:<10} {:>10.1} {:>10.1} {:>+8.1} {:>+9.1}",
            r.knob,
            r.mode.label(),
            r.base_kops,
            r.kops,
            r.delta_pct,
            r.p99_delta_pct
        );
    }
}

// ===========================================================================
// reconnect backoff / client retry
// ===========================================================================

/// One reconnect-backoff profile under a master outage.
#[derive(Debug, Clone)]
pub struct BackoffRow {
    /// Profile name.
    pub label: &'static str,
    /// `reconnect_base`, milliseconds.
    pub base_ms: u64,
    /// `reconnect_max_delay`, milliseconds.
    pub max_delay_ms: u64,
    /// `reconnect_max_attempts`.
    pub max_attempts: u32,
    /// `client_retry_timeout`, milliseconds.
    pub client_retry_ms: u64,
    /// Throughput over the window containing the outage (kops/s).
    pub kops: f64,
    /// Error replies observed by clients.
    pub errors: u64,
    /// Server-side reconnect attempts (master + slaves).
    pub server_reconnects: u64,
    /// Client connection teardowns + redials.
    pub client_reconnects: u64,
    /// Client dials that failed outright (master still down).
    pub client_dial_failures: u64,
}

/// Crash the master for 300 ms mid-measurement and compare reconnect
/// profiles: an aggressive schedule redials often (dial-failure storm,
/// fastest recovery), a lazy one stays quiet but gives up throughput.
/// The numbers come from [`Cluster::counters_snapshot`] — the run report
/// itself stays byte-identical to a chaos-free run's shape.
pub fn ablation_backoff() -> Vec<BackoffRow> {
    let profiles: &[(&'static str, u64, u64, u32, u64)] = &[
        ("aggressive", 2, 40, 16, 50),
        ("default", 10, 640, 8, 250),
        ("lazy", 100, 2_000, 3, 800),
    ];
    profiles
        .iter()
        .enumerate()
        .map(
            |(i, &(label, base_ms, max_delay_ms, max_attempts, client_retry_ms))| {
                let mut s = spec(Mode::Skv, 2, 4, 33_000 + i as u64);
                s.cfg.reconnect_base = SimDuration::from_millis(base_ms);
                s.cfg.reconnect_max_delay = SimDuration::from_millis(max_delay_ms);
                s.cfg.reconnect_max_attempts = max_attempts;
                s.cfg.client_retry_timeout = SimDuration::from_millis(client_retry_ms);
                let mut cluster = Cluster::build(s);
                cluster.schedule_master_crash(SimTime::from_millis(800));
                cluster.schedule_master_recover(SimTime::from_millis(1_100));
                let report = cluster.run();
                let snap = cluster.counters_snapshot();
                BackoffRow {
                    label,
                    base_ms,
                    max_delay_ms,
                    max_attempts,
                    client_retry_ms,
                    kops: report.throughput_kops,
                    errors: report.errors,
                    server_reconnects: snap.get("server.stat_reconnects"),
                    client_reconnects: snap.get("client.stat_reconnects"),
                    client_dial_failures: snap.get("client.stat_dial_failures"),
                }
            },
        )
        .collect()
}

/// Print the reconnect-backoff ablation.
pub fn print_backoff(rows: &[BackoffRow]) {
    println!("Ablation — reconnect backoff under a 300 ms master outage (SKV, 2 slaves)");
    println!(
        "{:<12} {:>8} {:>8} {:>9} {:>9} {:>8} {:>7} {:>8} {:>8} {:>8}",
        "profile",
        "base",
        "cap",
        "attempts",
        "retry",
        "kops/s",
        "errors",
        "srv rc",
        "cli rc",
        "dialfail"
    );
    for r in rows {
        println!(
            "{:<12} {:>7}m {:>7}m {:>9} {:>8}m {:>8.1} {:>7} {:>8} {:>8} {:>8}",
            r.label,
            r.base_ms,
            r.max_delay_ms,
            r.max_attempts,
            r.client_retry_ms,
            r.kops,
            r.errors,
            r.server_reconnects,
            r.client_reconnects,
            r.client_dial_failures
        );
    }
}

// ===========================================================================
// CQ poll budget
// ===========================================================================

/// One `cq_poll_budget` setting.
#[derive(Debug, Clone)]
pub struct CqBudgetRow {
    /// Maximum WCs drained per `CqNotify` (see `skv_core::cqdrain`).
    pub budget: usize,
    /// Client throughput (kops/s).
    pub kops: f64,
    /// p99 latency (µs).
    pub p99_us: f64,
    /// Work completions polled across the testbed.
    pub wcs_polled: u64,
}

/// Sweep the budgeted-drain size with pipelined clients: tiny budgets pay
/// a `cq_poll_cpu` call per few completions (throughput sags), huge ones
/// approach the old unbounded drain. The default (64) sits on the flat
/// part of the curve.
pub fn ablation_cq_budget() -> Vec<CqBudgetRow> {
    [2usize, 8, 32, 64, 256]
        .iter()
        .map(|&budget| {
            let mut s = spec(Mode::Skv, 3, 8, 32_000 + budget as u64);
            s.pipeline = 4;
            s.cfg.cq_poll_budget = budget;
            let mut cluster = Cluster::build(s);
            let report = cluster.run();
            CqBudgetRow {
                budget,
                kops: report.throughput_kops,
                p99_us: report.p99_latency_us,
                wcs_polled: cluster.net.counters().get("rdma.wcs_polled"),
            }
        })
        .collect()
}

/// Print the CQ-poll-budget ablation.
pub fn print_cq_budget(rows: &[CqBudgetRow]) {
    println!("Ablation — CQ drain budget (SKV, 3 slaves, 8 clients, P=4)");
    println!(
        "{:>8} {:>10} {:>10} {:>12}",
        "budget", "kops/s", "p99(us)", "wcs polled"
    );
    for r in rows {
        println!(
            "{:>8} {:>10.1} {:>10.1} {:>12}",
            r.budget, r.kops, r.p99_us, r.wcs_polled
        );
    }
}

// ===========================================================================
// keyspace sharding (extension: hash-slot multi-core master engine)
// ===========================================================================

/// One shard-count (or MSET batch-width) setting.
#[derive(Debug, Clone)]
pub struct ShardRow {
    /// Master/slave shard count (`ClusterConfig::num_shards`).
    pub shards: usize,
    /// Client pipeline depth used to saturate the shard cores.
    pub pipeline_depth: usize,
    /// Keys per MSET write batch (0 = plain SET workload).
    pub mset_keys: usize,
    /// Client-visible throughput (kops/s).
    pub kops: f64,
    /// Client-visible p99 latency (µs).
    pub p99_us: f64,
    /// Cross-shard fragment handoffs (`shard.cross_msgs`, all servers).
    pub cross_msgs: u64,
    /// Deepest slave parse→apply ring occupancy (`shard.queue_depth`).
    pub queue_depth: u64,
}

/// Sweep the shard count 1→8 under a pipelined GET/SET workload (the
/// scaling curve the tentpole buys), then hold 4 shards and widen the
/// MSET batch (the cross-shard tax those wins are paid from). Pure
/// GET/SET never crosses shards — `cross_msgs` stays 0 on those rows —
/// while every batched row pays hop costs on the split writes.
pub fn ablation_shards() -> Vec<ShardRow> {
    let mut rows = Vec::new();
    let mut arm = |shards: usize, mset_keys: usize, seed: u64| {
        let mut s = spec(Mode::Skv, 2, 8, seed);
        s.cfg.num_shards = shards;
        s.pipeline = 8;
        s.set_ratio = 0.5;
        s.mset_keys = mset_keys;
        s.key_space = 10_000;
        let mut cluster = Cluster::build(s);
        let report = cluster.run();
        let counters = cluster.counters_snapshot();
        rows.push(ShardRow {
            shards,
            pipeline_depth: 8,
            mset_keys,
            kops: report.throughput_kops,
            p99_us: report.p99_latency_us,
            cross_msgs: counters.get("shard.cross_msgs"),
            queue_depth: counters.get("shard.queue_depth"),
        });
    };
    for (i, &shards) in [1usize, 2, 4, 8].iter().enumerate() {
        arm(shards, 0, 34_000 + i as u64);
    }
    for (i, &mset) in [2usize, 4].iter().enumerate() {
        arm(4, mset, 35_000 + i as u64);
    }
    rows
}

/// Print the sharding ablation.
pub fn print_shards(rows: &[ShardRow]) {
    println!("Ablation — keyspace shards (SKV, 2 slaves, 8 clients, P=8, 50% SET)");
    println!(
        "{:>7} {:>9} {:>10} {:>10} {:>10} {:>11} {:>11}",
        "shards", "P", "mset_keys", "kops/s", "p99(us)", "cross_msgs", "queue_depth"
    );
    for r in rows {
        println!(
            "{:>7} {:>9} {:>10} {:>10.1} {:>10.1} {:>11} {:>11}",
            r.shards, r.pipeline_depth, r.mset_keys, r.kops, r.p99_us, r.cross_msgs, r.queue_depth
        );
    }
}

// ===========================================================================
// hot-key cache (extension: SoC-resident GET cache + admission policies)
// ===========================================================================

/// One hot-cache setting under a Zipf-skewed, read-heavy workload.
#[derive(Debug, Clone)]
pub struct HotCacheRow {
    /// Admission policy label (`ClusterConfig::hot_cache_policy`), or
    /// `"off"` for the cache-disabled baseline.
    pub policy: String,
    /// Zipf skew of the client key stream (`RunSpec::zipf_theta`).
    pub theta: f64,
    /// Cache budget in KiB (`ClusterConfig::hot_cache_bytes`); 0 = off.
    pub cache_kib: usize,
    /// Hot-set rotation period in key draws (`RunSpec::zipf_shift_every`).
    pub shift_every: u64,
    /// Client-visible throughput (kops/s).
    pub kops: f64,
    /// Client-visible p99 latency (µs).
    pub p99_us: f64,
    /// GETs served from SoC memory (`cache.hits`).
    pub hits: u64,
    /// GETs forwarded to the host (`cache.misses`).
    pub misses: u64,
    /// Admissions, evictions, stream-driven invalidations.
    pub admits: u64,
    /// Entries evicted under the byte budget.
    pub evicts: u64,
    /// Entries dropped/refreshed off the replication stream.
    pub invalidations: u64,
    /// Resident cache bytes at run end.
    pub bytes: u64,
}

impl HotCacheRow {
    /// Hit fraction over all front-end GET lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// Sweep the SoC hot-key cache under a read-heavy (5% SET) Zipf-skewed
/// stream: policy (LRU vs TinyLFU admission) × skew theta × byte budget,
/// against a cache-off baseline on the *same* workload. The headline row
/// pair is `off` vs any cache-on arm at theta 0.99 — the SoC answers the
/// hot head of the distribution without crossing to the host, so the
/// host core stops being the GET bottleneck. The last arm rotates the
/// hot set mid-run (`zipf_shift_every`) to price re-warming: admissions
/// and evictions churn while the steady-state arms sit at a full,
/// quiet cache.
pub fn ablation_hotcache() -> Vec<HotCacheRow> {
    let mut rows = Vec::new();
    let mut arm =
        |policy: &str, theta: f64, cache_kib: usize, shift_every: u64, seed: u64| {
            let mut s = spec(Mode::Skv, 2, 8, seed);
            s.pipeline = 4;
            s.set_ratio = 0.05;
            s.key_space = 10_000;
            s.value_size = 64;
            s.zipf_theta = theta;
            s.zipf_shift_every = shift_every;
            s.cfg.hot_cache_bytes = cache_kib << 10;
            s.cfg.hot_cache_policy = policy.to_string();
            // Values are small here; cap single entries well below the
            // budget so one oversized reply can never pin the whole cache.
            s.cfg.hot_cache_max_value = 4 << 10;
            let mut cluster = Cluster::build(s);
            let report = cluster.run();
            let counters = cluster.counters_snapshot();
            rows.push(HotCacheRow {
                policy: if cache_kib == 0 {
                    "off".to_string()
                } else {
                    policy.to_string()
                },
                theta,
                cache_kib,
                shift_every,
                kops: report.throughput_kops,
                p99_us: report.p99_latency_us,
                hits: counters.get("cache.hits"),
                misses: counters.get("cache.misses"),
                admits: counters.get("cache.admits"),
                evicts: counters.get("cache.evicts"),
                invalidations: counters.get("cache.invalidations"),
                bytes: counters.get("cache.bytes"),
            });
        };
    // Cache-off baseline on the exact headline workload.
    arm("lru", 0.99, 0, 0, 36_000);
    // Policy × budget at the headline skew.
    arm("lru", 0.99, 64, 0, 36_001);
    arm("tinylfu", 0.99, 64, 0, 36_002);
    arm("lru", 0.99, 1024, 0, 36_003);
    arm("tinylfu", 0.99, 1024, 0, 36_004);
    // Skew sweep at a fixed budget (0.0 = the uniform legacy stream).
    arm("lru", 0.6, 1024, 0, 36_005);
    arm("lru", 0.0, 1024, 0, 36_006);
    // Shifting hot set: rotate every 50k key draws.
    arm("lru", 0.99, 1024, 50_000, 36_007);
    rows
}

/// Print the hot-key cache ablation.
pub fn print_hotcache(rows: &[HotCacheRow]) {
    println!("Ablation — SoC hot-key GET cache (SKV, 2 slaves, 8 clients, P=4, 5% SET)");
    println!(
        "{:>8} {:>6} {:>7} {:>7} {:>9} {:>8} {:>9} {:>9} {:>6} {:>8} {:>8} {:>7} {:>9}",
        "policy", "theta", "KiB", "shift", "kops/s", "p99(us)", "hits", "misses", "hit%", "admits",
        "evicts", "invals", "bytes"
    );
    for r in rows {
        println!(
            "{:>8} {:>6.2} {:>7} {:>7} {:>9.1} {:>8.1} {:>9} {:>9} {:>6.1} {:>8} {:>8} {:>7} {:>9}",
            r.policy,
            r.theta,
            r.cache_kib,
            r.shift_every,
            r.kops,
            r.p99_us,
            r.hits,
            r.misses,
            r.hit_rate() * 100.0,
            r.admits,
            r.evicts,
            r.invalidations,
            r.bytes
        );
    }
}
