//! Per-command semantic tests for the Redis-like engine, checked against
//! documented Redis behaviour.

use skv_store::engine::Engine;
use skv_store::resp::Resp;

fn eng() -> Engine {
    Engine::new(42)
}

/// Execute and return the reply.
fn r(e: &mut Engine, parts: &[&str]) -> Resp {
    e.exec_str(0, parts).reply
}

/// Execute at a given time.
fn rt(e: &mut Engine, now_ms: u64, parts: &[&str]) -> Resp {
    e.execute(
        now_ms,
        &parts
            .iter()
            .map(|p| p.as_bytes().to_vec())
            .collect::<Vec<_>>(),
    )
    .reply
}

fn bulk(s: &str) -> Resp {
    Resp::Bulk(s.as_bytes().to_vec())
}

fn array(items: &[&str]) -> Resp {
    Resp::Array(items.iter().map(|s| bulk(s)).collect())
}

// ---------------------------------------------------------------------------
// strings
// ---------------------------------------------------------------------------

#[test]
fn set_get_basic() {
    let mut e = eng();
    assert_eq!(r(&mut e, &["SET", "k", "v"]), Resp::ok());
    assert_eq!(r(&mut e, &["GET", "k"]), bulk("v"));
    assert_eq!(r(&mut e, &["GET", "missing"]), Resp::NullBulk);
}

#[test]
fn set_nx_xx_options() {
    let mut e = eng();
    assert_eq!(r(&mut e, &["SET", "k", "v1", "NX"]), Resp::ok());
    assert_eq!(r(&mut e, &["SET", "k", "v2", "NX"]), Resp::NullBulk);
    assert_eq!(r(&mut e, &["GET", "k"]), bulk("v1"));
    assert_eq!(r(&mut e, &["SET", "k", "v3", "XX"]), Resp::ok());
    assert_eq!(r(&mut e, &["SET", "nope", "v", "XX"]), Resp::NullBulk);
    assert!(r(&mut e, &["SET", "k", "v", "NX", "XX"]).is_error());
    assert!(r(&mut e, &["SET", "k", "v", "BOGUS"]).is_error());
}

#[test]
fn set_ex_px_and_keepttl() {
    let mut e = eng();
    assert_eq!(rt(&mut e, 0, &["SET", "k", "v", "EX", "10"]), Resp::ok());
    assert_eq!(rt(&mut e, 0, &["TTL", "k"]), Resp::Int(10));
    // Plain SET clears the TTL.
    assert_eq!(rt(&mut e, 0, &["SET", "k", "v2"]), Resp::ok());
    assert_eq!(rt(&mut e, 0, &["TTL", "k"]), Resp::Int(-1));
    // KEEPTTL preserves it.
    assert_eq!(rt(&mut e, 0, &["SET", "k", "v", "PX", "5000"]), Resp::ok());
    assert_eq!(rt(&mut e, 0, &["SET", "k", "v3", "KEEPTTL"]), Resp::ok());
    assert_eq!(rt(&mut e, 0, &["PTTL", "k"]), Resp::Int(5000));
    // Non-positive expirations are rejected.
    assert!(rt(&mut e, 0, &["SET", "k", "v", "EX", "0"]).is_error());
    assert!(rt(&mut e, 0, &["SET", "k", "v", "EX", "abc"]).is_error());
}

#[test]
fn setnx_setex_psetex() {
    let mut e = eng();
    assert_eq!(r(&mut e, &["SETNX", "k", "v"]), Resp::Int(1));
    assert_eq!(r(&mut e, &["SETNX", "k", "w"]), Resp::Int(0));
    assert_eq!(rt(&mut e, 0, &["SETEX", "s", "5", "v"]), Resp::ok());
    assert_eq!(rt(&mut e, 0, &["TTL", "s"]), Resp::Int(5));
    assert_eq!(rt(&mut e, 0, &["PSETEX", "p", "1500", "v"]), Resp::ok());
    assert_eq!(rt(&mut e, 0, &["PTTL", "p"]), Resp::Int(1500));
    assert!(rt(&mut e, 0, &["SETEX", "s", "0", "v"]).is_error());
}

#[test]
fn getset_and_getdel() {
    let mut e = eng();
    assert_eq!(r(&mut e, &["GETSET", "k", "new"]), Resp::NullBulk);
    assert_eq!(r(&mut e, &["GETSET", "k", "newer"]), bulk("new"));
    assert_eq!(r(&mut e, &["GETDEL", "k"]), bulk("newer"));
    assert_eq!(r(&mut e, &["EXISTS", "k"]), Resp::Int(0));
    assert_eq!(r(&mut e, &["GETDEL", "k"]), Resp::NullBulk);
}

#[test]
fn mset_mget_msetnx() {
    let mut e = eng();
    assert_eq!(r(&mut e, &["MSET", "a", "1", "b", "2"]), Resp::ok());
    assert_eq!(
        r(&mut e, &["MGET", "a", "b", "c"]),
        Resp::Array(vec![bulk("1"), bulk("2"), Resp::NullBulk])
    );
    assert_eq!(r(&mut e, &["MSETNX", "c", "3", "d", "4"]), Resp::Int(1));
    assert_eq!(r(&mut e, &["MSETNX", "d", "x", "e", "5"]), Resp::Int(0));
    assert_eq!(r(&mut e, &["EXISTS", "e"]), Resp::Int(0), "all-or-nothing");
    assert!(r(&mut e, &["MSET", "a"]).is_error());
}

#[test]
fn append_and_strlen() {
    let mut e = eng();
    assert_eq!(r(&mut e, &["APPEND", "k", "Hello"]), Resp::Int(5));
    assert_eq!(r(&mut e, &["APPEND", "k", " World"]), Resp::Int(11));
    assert_eq!(r(&mut e, &["GET", "k"]), bulk("Hello World"));
    assert_eq!(r(&mut e, &["STRLEN", "k"]), Resp::Int(11));
    assert_eq!(r(&mut e, &["STRLEN", "missing"]), Resp::Int(0));
    // APPEND to an integer-encoded value converts it.
    r(&mut e, &["SET", "n", "42"]);
    assert_eq!(r(&mut e, &["APPEND", "n", "x"]), Resp::Int(3));
    assert_eq!(r(&mut e, &["GET", "n"]), bulk("42x"));
}

#[test]
fn incr_decr_family() {
    let mut e = eng();
    assert_eq!(r(&mut e, &["INCR", "n"]), Resp::Int(1));
    assert_eq!(r(&mut e, &["INCR", "n"]), Resp::Int(2));
    assert_eq!(r(&mut e, &["INCRBY", "n", "40"]), Resp::Int(42));
    assert_eq!(r(&mut e, &["DECR", "n"]), Resp::Int(41));
    assert_eq!(r(&mut e, &["DECRBY", "n", "41"]), Resp::Int(0));
    // Non-integer values error.
    r(&mut e, &["SET", "s", "abc"]);
    assert!(r(&mut e, &["INCR", "s"]).is_error());
    // Overflow errors.
    r(&mut e, &["SET", "big", "9223372036854775807"]);
    assert!(r(&mut e, &["INCR", "big"]).is_error());
    // INCR preserves a TTL (it's an update, not a fresh SET).
    rt(&mut e, 0, &["SET", "t", "1", "EX", "100"]);
    rt(&mut e, 0, &["INCR", "t"]);
    assert_eq!(rt(&mut e, 0, &["TTL", "t"]), Resp::Int(100));
}

#[test]
fn getrange_setrange() {
    let mut e = eng();
    r(&mut e, &["SET", "k", "This is a string"]);
    assert_eq!(r(&mut e, &["GETRANGE", "k", "0", "3"]), bulk("This"));
    assert_eq!(r(&mut e, &["GETRANGE", "k", "-3", "-1"]), bulk("ing"));
    assert_eq!(
        r(&mut e, &["GETRANGE", "k", "0", "-1"]),
        bulk("This is a string")
    );
    assert_eq!(r(&mut e, &["GETRANGE", "missing", "0", "-1"]), bulk(""));
    assert_eq!(r(&mut e, &["SETRANGE", "k", "10", "Rust!!"]), Resp::Int(16));
    assert_eq!(r(&mut e, &["GET", "k"]), bulk("This is a Rust!!"));
    // Zero-padding on extension.
    assert_eq!(r(&mut e, &["SETRANGE", "pad", "3", "x"]), Resp::Int(4));
    assert_eq!(r(&mut e, &["GET", "pad"]), Resp::Bulk(vec![0, 0, 0, b'x']));
    // SETRANGE with empty value on a missing key creates nothing.
    assert_eq!(r(&mut e, &["SETRANGE", "nada", "5", ""]), Resp::Int(0));
    assert_eq!(r(&mut e, &["EXISTS", "nada"]), Resp::Int(0));
}

// ---------------------------------------------------------------------------
// keyspace
// ---------------------------------------------------------------------------

#[test]
fn del_exists_type() {
    let mut e = eng();
    r(&mut e, &["SET", "a", "1"]);
    r(&mut e, &["RPUSH", "l", "x"]);
    assert_eq!(r(&mut e, &["EXISTS", "a", "l", "nope", "a"]), Resp::Int(3));
    assert_eq!(r(&mut e, &["TYPE", "a"]), Resp::Simple("string".into()));
    assert_eq!(r(&mut e, &["TYPE", "l"]), Resp::Simple("list".into()));
    assert_eq!(r(&mut e, &["TYPE", "nope"]), Resp::Simple("none".into()));
    assert_eq!(r(&mut e, &["DEL", "a", "l", "nope"]), Resp::Int(2));
    assert_eq!(r(&mut e, &["DEL", "a"]), Resp::Int(0));
}

#[test]
fn expire_ttl_persist_lifecycle() {
    let mut e = eng();
    rt(&mut e, 1_000, &["SET", "k", "v"]);
    assert_eq!(rt(&mut e, 1_000, &["EXPIRE", "k", "10"]), Resp::Int(1));
    assert_eq!(rt(&mut e, 6_000, &["TTL", "k"]), Resp::Int(5));
    assert_eq!(rt(&mut e, 6_000, &["PERSIST", "k"]), Resp::Int(1));
    assert_eq!(rt(&mut e, 60_000, &["GET", "k"]), bulk("v"));
    // Expire a key and watch it vanish.
    assert_eq!(rt(&mut e, 60_000, &["PEXPIRE", "k", "500"]), Resp::Int(1));
    assert_eq!(rt(&mut e, 60_499, &["EXISTS", "k"]), Resp::Int(1));
    assert_eq!(rt(&mut e, 60_500, &["EXISTS", "k"]), Resp::Int(0));
    assert_eq!(rt(&mut e, 60_500, &["TTL", "k"]), Resp::Int(-2));
    // EXPIRE on a missing key.
    assert_eq!(rt(&mut e, 0, &["EXPIRE", "ghost", "10"]), Resp::Int(0));
    // Negative TTL deletes immediately.
    rt(&mut e, 0, &["SET", "dead", "v"]);
    assert_eq!(rt(&mut e, 0, &["EXPIRE", "dead", "-1"]), Resp::Int(1));
    assert_eq!(rt(&mut e, 0, &["EXISTS", "dead"]), Resp::Int(0));
}

#[test]
fn expireat_absolute() {
    let mut e = eng();
    rt(&mut e, 0, &["SET", "k", "v"]);
    assert_eq!(rt(&mut e, 0, &["EXPIREAT", "k", "100"]), Resp::Int(1));
    assert_eq!(rt(&mut e, 50_000, &["EXISTS", "k"]), Resp::Int(1));
    assert_eq!(rt(&mut e, 100_000, &["EXISTS", "k"]), Resp::Int(0));
}

#[test]
fn rename_semantics() {
    let mut e = eng();
    rt(&mut e, 0, &["SET", "src", "v"]);
    rt(&mut e, 0, &["EXPIRE", "src", "100"]);
    assert_eq!(rt(&mut e, 0, &["RENAME", "src", "dst"]), Resp::ok());
    assert_eq!(rt(&mut e, 0, &["EXISTS", "src"]), Resp::Int(0));
    assert_eq!(rt(&mut e, 0, &["TTL", "dst"]), Resp::Int(100), "TTL moves");
    assert!(rt(&mut e, 0, &["RENAME", "ghost", "x"]).is_error());
    // RENAMENX refuses an existing target.
    rt(&mut e, 0, &["SET", "other", "w"]);
    assert_eq!(rt(&mut e, 0, &["RENAMENX", "dst", "other"]), Resp::Int(0));
    assert_eq!(rt(&mut e, 0, &["RENAMENX", "dst", "fresh"]), Resp::Int(1));
}

#[test]
fn keys_glob() {
    let mut e = eng();
    for k in ["one", "two", "three", "four"] {
        r(&mut e, &["SET", k, "v"]);
    }
    assert_eq!(r(&mut e, &["KEYS", "t*"]), array(&["three", "two"]));
    assert_eq!(r(&mut e, &["KEYS", "*o*"]), array(&["four", "one", "two"]));
    assert_eq!(r(&mut e, &["KEYS", "?????"]), array(&["three"]));
    assert_eq!(
        r(&mut e, &["KEYS", "*"]),
        array(&["four", "one", "three", "two"])
    );
}

#[test]
fn randomkey_dbsize_flush() {
    let mut e = eng();
    assert_eq!(r(&mut e, &["RANDOMKEY"]), Resp::NullBulk);
    for i in 0..5 {
        r(&mut e, &["SET", &format!("k{i}"), "v"]);
    }
    assert_eq!(r(&mut e, &["DBSIZE"]), Resp::Int(5));
    match r(&mut e, &["RANDOMKEY"]) {
        Resp::Bulk(k) => assert!(k.starts_with(b"k")),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(r(&mut e, &["FLUSHDB"]), Resp::ok());
    assert_eq!(r(&mut e, &["DBSIZE"]), Resp::Int(0));
}

// ---------------------------------------------------------------------------
// lists
// ---------------------------------------------------------------------------

#[test]
fn push_pop_llen() {
    let mut e = eng();
    assert_eq!(r(&mut e, &["RPUSH", "l", "a", "b"]), Resp::Int(2));
    assert_eq!(r(&mut e, &["LPUSH", "l", "z"]), Resp::Int(3));
    assert_eq!(r(&mut e, &["LLEN", "l"]), Resp::Int(3));
    assert_eq!(r(&mut e, &["LPOP", "l"]), bulk("z"));
    assert_eq!(r(&mut e, &["RPOP", "l"]), bulk("b"));
    assert_eq!(r(&mut e, &["RPOP", "l"]), bulk("a"));
    // Empty list is reaped.
    assert_eq!(r(&mut e, &["EXISTS", "l"]), Resp::Int(0));
    assert_eq!(r(&mut e, &["LPOP", "l"]), Resp::NullBulk);
    // LPUSHX/RPUSHX require existence.
    assert_eq!(r(&mut e, &["LPUSHX", "l", "x"]), Resp::Int(0));
    assert_eq!(r(&mut e, &["RPUSHX", "l", "x"]), Resp::Int(0));
    r(&mut e, &["RPUSH", "l", "a"]);
    assert_eq!(r(&mut e, &["LPUSHX", "l", "x"]), Resp::Int(2));
}

#[test]
fn pop_with_count() {
    let mut e = eng();
    r(&mut e, &["RPUSH", "l", "a", "b", "c", "d"]);
    assert_eq!(r(&mut e, &["LPOP", "l", "2"]), array(&["a", "b"]));
    assert_eq!(r(&mut e, &["RPOP", "l", "9"]), array(&["d", "c"]));
    assert_eq!(r(&mut e, &["LPOP", "missing", "2"]), Resp::NullArray);
    assert!(r(&mut e, &["LPOP", "l", "-1"]).is_error());
}

#[test]
fn lrange_lindex_lset() {
    let mut e = eng();
    r(&mut e, &["RPUSH", "l", "a", "b", "c", "d", "e"]);
    assert_eq!(
        r(&mut e, &["LRANGE", "l", "0", "2"]),
        array(&["a", "b", "c"])
    );
    assert_eq!(r(&mut e, &["LRANGE", "l", "-2", "-1"]), array(&["d", "e"]));
    assert_eq!(r(&mut e, &["LRANGE", "l", "3", "1"]), Resp::Array(vec![]));
    assert_eq!(r(&mut e, &["LINDEX", "l", "0"]), bulk("a"));
    assert_eq!(r(&mut e, &["LINDEX", "l", "-1"]), bulk("e"));
    assert_eq!(r(&mut e, &["LINDEX", "l", "99"]), Resp::NullBulk);
    assert_eq!(r(&mut e, &["LSET", "l", "1", "B"]), Resp::ok());
    assert_eq!(r(&mut e, &["LINDEX", "l", "1"]), bulk("B"));
    assert!(r(&mut e, &["LSET", "l", "99", "x"]).is_error());
    assert!(r(&mut e, &["LSET", "ghost", "0", "x"]).is_error());
}

#[test]
fn ltrim_and_lrem() {
    let mut e = eng();
    r(&mut e, &["RPUSH", "l", "a", "b", "c", "d", "e"]);
    assert_eq!(r(&mut e, &["LTRIM", "l", "1", "3"]), Resp::ok());
    assert_eq!(
        r(&mut e, &["LRANGE", "l", "0", "-1"]),
        array(&["b", "c", "d"])
    );
    // Trim to nothing reaps the key.
    assert_eq!(r(&mut e, &["LTRIM", "l", "5", "10"]), Resp::ok());
    assert_eq!(r(&mut e, &["EXISTS", "l"]), Resp::Int(0));

    r(&mut e, &["RPUSH", "m", "x", "y", "x", "y", "x"]);
    assert_eq!(r(&mut e, &["LREM", "m", "2", "x"]), Resp::Int(2));
    assert_eq!(
        r(&mut e, &["LRANGE", "m", "0", "-1"]),
        array(&["y", "y", "x"])
    );
    assert_eq!(r(&mut e, &["LREM", "m", "-1", "y"]), Resp::Int(1));
    assert_eq!(r(&mut e, &["LRANGE", "m", "0", "-1"]), array(&["y", "x"]));
    assert_eq!(r(&mut e, &["LREM", "m", "0", "q"]), Resp::Int(0));
}

#[test]
fn list_wrongtype_errors() {
    let mut e = eng();
    r(&mut e, &["SET", "s", "v"]);
    assert_eq!(r(&mut e, &["LPUSH", "s", "x"]), Resp::wrongtype());
    assert_eq!(r(&mut e, &["LRANGE", "s", "0", "-1"]), Resp::wrongtype());
    assert_eq!(r(&mut e, &["LLEN", "s"]), Resp::wrongtype());
}

// ---------------------------------------------------------------------------
// sets
// ---------------------------------------------------------------------------

#[test]
fn sadd_srem_scard_sismember() {
    let mut e = eng();
    assert_eq!(r(&mut e, &["SADD", "s", "a", "b", "a"]), Resp::Int(2));
    assert_eq!(r(&mut e, &["SCARD", "s"]), Resp::Int(2));
    assert_eq!(r(&mut e, &["SISMEMBER", "s", "a"]), Resp::Int(1));
    assert_eq!(r(&mut e, &["SISMEMBER", "s", "z"]), Resp::Int(0));
    assert_eq!(r(&mut e, &["SREM", "s", "a", "z"]), Resp::Int(1));
    assert_eq!(r(&mut e, &["SREM", "s", "b"]), Resp::Int(1));
    assert_eq!(
        r(&mut e, &["EXISTS", "s"]),
        Resp::Int(0),
        "empty set reaped"
    );
}

#[test]
fn smembers_sorted_and_intset_transparency() {
    let mut e = eng();
    r(&mut e, &["SADD", "s", "3", "1", "2"]);
    assert_eq!(r(&mut e, &["SMEMBERS", "s"]), array(&["1", "2", "3"]));
    // Adding a non-integer converts the encoding invisibly.
    r(&mut e, &["SADD", "s", "apple"]);
    assert_eq!(
        r(&mut e, &["SMEMBERS", "s"]),
        array(&["1", "2", "3", "apple"])
    );
    assert_eq!(r(&mut e, &["SCARD", "s"]), Resp::Int(4));
}

#[test]
fn spop_and_srandmember() {
    let mut e = eng();
    r(&mut e, &["SADD", "s", "a", "b", "c"]);
    // SPOP removes; SRANDMEMBER doesn't.
    match r(&mut e, &["SRANDMEMBER", "s"]) {
        Resp::Bulk(_) => {}
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(r(&mut e, &["SCARD", "s"]), Resp::Int(3));
    match r(&mut e, &["SPOP", "s"]) {
        Resp::Bulk(_) => {}
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(r(&mut e, &["SCARD", "s"]), Resp::Int(2));
    // Count forms.
    match r(&mut e, &["SPOP", "s", "5"]) {
        Resp::Array(items) => assert_eq!(items.len(), 2),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(r(&mut e, &["SPOP", "missing"]), Resp::NullBulk);
    // Negative SRANDMEMBER count allows repeats and exact length.
    r(&mut e, &["SADD", "t", "x"]);
    match r(&mut e, &["SRANDMEMBER", "t", "-5"]) {
        Resp::Array(items) => assert_eq!(items.len(), 5),
        other => panic!("unexpected {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// hashes
// ---------------------------------------------------------------------------

#[test]
fn hset_hget_hdel() {
    let mut e = eng();
    assert_eq!(
        r(&mut e, &["HSET", "h", "f1", "v1", "f2", "v2"]),
        Resp::Int(2)
    );
    assert_eq!(r(&mut e, &["HSET", "h", "f1", "v1b"]), Resp::Int(0));
    assert_eq!(r(&mut e, &["HGET", "h", "f1"]), bulk("v1b"));
    assert_eq!(r(&mut e, &["HGET", "h", "nope"]), Resp::NullBulk);
    assert_eq!(r(&mut e, &["HLEN", "h"]), Resp::Int(2));
    assert_eq!(r(&mut e, &["HEXISTS", "h", "f2"]), Resp::Int(1));
    assert_eq!(r(&mut e, &["HDEL", "h", "f1", "f2", "nope"]), Resp::Int(2));
    assert_eq!(
        r(&mut e, &["EXISTS", "h"]),
        Resp::Int(0),
        "empty hash reaped"
    );
    assert!(r(&mut e, &["HSET", "h", "f1"]).is_error(), "odd arg count");
}

#[test]
fn hmset_hmget_hgetall() {
    let mut e = eng();
    assert_eq!(r(&mut e, &["HMSET", "h", "a", "1", "b", "2"]), Resp::ok());
    assert_eq!(
        r(&mut e, &["HMGET", "h", "a", "z", "b"]),
        Resp::Array(vec![bulk("1"), Resp::NullBulk, bulk("2")])
    );
    assert_eq!(r(&mut e, &["HGETALL", "h"]), array(&["a", "1", "b", "2"]));
    assert_eq!(r(&mut e, &["HKEYS", "h"]), array(&["a", "b"]));
    assert_eq!(r(&mut e, &["HVALS", "h"]), array(&["1", "2"]));
    assert_eq!(r(&mut e, &["HGETALL", "missing"]), Resp::Array(vec![]));
}

#[test]
fn hsetnx_hstrlen_hincrby() {
    let mut e = eng();
    assert_eq!(r(&mut e, &["HSETNX", "h", "f", "v"]), Resp::Int(1));
    assert_eq!(r(&mut e, &["HSETNX", "h", "f", "w"]), Resp::Int(0));
    assert_eq!(r(&mut e, &["HSTRLEN", "h", "f"]), Resp::Int(1));
    assert_eq!(r(&mut e, &["HSTRLEN", "h", "nope"]), Resp::Int(0));
    assert_eq!(r(&mut e, &["HINCRBY", "h", "n", "5"]), Resp::Int(5));
    assert_eq!(r(&mut e, &["HINCRBY", "h", "n", "-7"]), Resp::Int(-2));
    assert!(r(&mut e, &["HINCRBY", "h", "f", "1"]).is_error());
}

// ---------------------------------------------------------------------------
// sorted sets
// ---------------------------------------------------------------------------

#[test]
fn zadd_zscore_zcard() {
    let mut e = eng();
    assert_eq!(r(&mut e, &["ZADD", "z", "1", "a", "2", "b"]), Resp::Int(2));
    assert_eq!(r(&mut e, &["ZADD", "z", "3", "a"]), Resp::Int(0), "update");
    assert_eq!(r(&mut e, &["ZSCORE", "z", "a"]), bulk("3"));
    assert_eq!(r(&mut e, &["ZSCORE", "z", "nope"]), Resp::NullBulk);
    assert_eq!(r(&mut e, &["ZCARD", "z"]), Resp::Int(2));
    assert!(r(&mut e, &["ZADD", "z", "notanumber", "m"]).is_error());
}

#[test]
fn zadd_nx_xx_ch_flags() {
    let mut e = eng();
    r(&mut e, &["ZADD", "z", "1", "a"]);
    // NX: never update existing (flags come before the score/member pairs).
    assert_eq!(r(&mut e, &["ZADD", "z", "NX", "9", "a"]), Resp::Int(0));
    assert_eq!(r(&mut e, &["ZSCORE", "z", "a"]), bulk("1"));
    // XX: never add new.
    assert_eq!(r(&mut e, &["ZADD", "z", "XX", "5", "new"]), Resp::Int(0));
    assert_eq!(r(&mut e, &["ZCARD", "z"]), Resp::Int(1));
    // CH counts changes as well as adds.
    assert_eq!(
        r(&mut e, &["ZADD", "z", "CH", "2", "a", "3", "b"]),
        Resp::Int(2)
    );
    assert!(r(&mut e, &["ZADD", "z", "NX", "XX", "1", "m"]).is_error());
}

#[test]
fn zrank_zrange() {
    let mut e = eng();
    r(&mut e, &["ZADD", "z", "1", "a", "2", "b", "3", "c"]);
    assert_eq!(r(&mut e, &["ZRANK", "z", "a"]), Resp::Int(0));
    assert_eq!(r(&mut e, &["ZRANK", "z", "c"]), Resp::Int(2));
    assert_eq!(r(&mut e, &["ZRANK", "z", "nope"]), Resp::NullBulk);
    assert_eq!(
        r(&mut e, &["ZRANGE", "z", "0", "-1"]),
        array(&["a", "b", "c"])
    );
    assert_eq!(r(&mut e, &["ZRANGE", "z", "1", "2"]), array(&["b", "c"]));
    assert_eq!(
        r(&mut e, &["ZRANGE", "z", "0", "0", "WITHSCORES"]),
        array(&["a", "1"])
    );
    assert_eq!(r(&mut e, &["ZRANGE", "z", "5", "9"]), Resp::Array(vec![]));
}

#[test]
fn zrangebyscore_zcount_bounds() {
    let mut e = eng();
    r(&mut e, &["ZADD", "z", "1", "a", "2", "b", "3", "c"]);
    assert_eq!(
        r(&mut e, &["ZRANGEBYSCORE", "z", "1", "2"]),
        array(&["a", "b"])
    );
    assert_eq!(
        r(&mut e, &["ZRANGEBYSCORE", "z", "(1", "3"]),
        array(&["b", "c"])
    );
    assert_eq!(
        r(&mut e, &["ZRANGEBYSCORE", "z", "-inf", "+inf"]),
        array(&["a", "b", "c"])
    );
    assert_eq!(r(&mut e, &["ZCOUNT", "z", "1", "3"]), Resp::Int(3));
    assert_eq!(r(&mut e, &["ZCOUNT", "z", "(1", "(3"]), Resp::Int(1));
    assert!(r(&mut e, &["ZRANGEBYSCORE", "z", "bad", "3"]).is_error());
}

#[test]
fn zrem_and_zincrby() {
    let mut e = eng();
    r(&mut e, &["ZADD", "z", "1", "a", "2", "b"]);
    assert_eq!(r(&mut e, &["ZREM", "z", "a", "nope"]), Resp::Int(1));
    assert_eq!(r(&mut e, &["ZINCRBY", "z", "2.5", "b"]), bulk("4.5"));
    assert_eq!(r(&mut e, &["ZINCRBY", "z", "1", "fresh"]), bulk("1"));
    assert_eq!(r(&mut e, &["ZREM", "z", "b", "fresh"]), Resp::Int(2));
    assert_eq!(
        r(&mut e, &["EXISTS", "z"]),
        Resp::Int(0),
        "empty zset reaped"
    );
}

// ---------------------------------------------------------------------------
// server
// ---------------------------------------------------------------------------

#[test]
fn ping_echo_select_time() {
    let mut e = eng();
    assert_eq!(r(&mut e, &["PING"]), Resp::Simple("PONG".into()));
    assert_eq!(r(&mut e, &["PING", "hi"]), bulk("hi"));
    assert_eq!(r(&mut e, &["ECHO", "x"]), bulk("x"));
    assert_eq!(r(&mut e, &["SELECT", "0"]), Resp::ok());
    assert!(r(&mut e, &["SELECT", "5"]).is_error());
    assert_eq!(
        rt(&mut e, 1_500, &["TIME"]),
        Resp::Array(vec![bulk("1"), bulk("500000")])
    );
}

#[test]
fn command_and_info() {
    let mut e = eng();
    match r(&mut e, &["COMMAND", "COUNT"]) {
        Resp::Int(n) => assert!(n > 70, "table has {n} commands"),
        other => panic!("unexpected {other:?}"),
    }
    match r(&mut e, &["INFO"]) {
        Resp::Bulk(text) => {
            let s = String::from_utf8(text).unwrap();
            assert!(s.contains("skv_version"));
            assert!(s.contains("keyspace_hits"));
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn cross_type_protection_is_uniform() {
    let mut e = eng();
    r(&mut e, &["RPUSH", "l", "x"]);
    r(&mut e, &["SADD", "s", "x"]);
    r(&mut e, &["HSET", "h", "f", "v"]);
    r(&mut e, &["ZADD", "z", "1", "m"]);
    for cmd in [
        vec!["GET", "l"],
        vec!["INCR", "s"],
        vec!["SADD", "h", "m"],
        vec!["HGET", "z", "f"],
        vec!["ZADD", "l", "1", "m"],
        vec!["LPUSH", "z", "x"],
    ] {
        let reply = r(&mut e, &cmd);
        assert_eq!(reply, Resp::wrongtype(), "{cmd:?}");
    }
}
