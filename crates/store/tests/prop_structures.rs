//! Property-based tests: the from-scratch data structures must agree with
//! std-library models under arbitrary operation sequences.

// HashMap is the *model* here (Dict ≡ HashMap); order is never compared.
#![allow(clippy::disallowed_types)]
// Generated offsets are tiny by construction; the casts cannot truncate.
#![allow(clippy::cast_possible_truncation)]

use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet, HashMap};

use skv_store::backlog::Backlog;
use skv_store::dict::Dict;
use skv_store::intset::IntSet;
use skv_store::sds::Sds;
use skv_store::skiplist::SkipList;

// ---------------------------------------------------------------------------
// Dict ≡ HashMap
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum DictOp {
    Insert(Vec<u8>, u32),
    Remove(Vec<u8>),
    Get(Vec<u8>),
    RehashStep,
}

fn dict_key() -> impl Strategy<Value = Vec<u8>> {
    // Small key space to force collisions and replacements.
    prop::collection::vec(0u8..8, 0..3)
}

fn dict_op() -> impl Strategy<Value = DictOp> {
    prop_oneof![
        (dict_key(), any::<u32>()).prop_map(|(k, v)| DictOp::Insert(k, v)),
        dict_key().prop_map(DictOp::Remove),
        dict_key().prop_map(DictOp::Get),
        Just(DictOp::RehashStep),
    ]
}

proptest! {
    #[test]
    fn dict_matches_hashmap(ops in prop::collection::vec(dict_op(), 0..400)) {
        let mut dict: Dict<u32> = Dict::new();
        let mut model: HashMap<Vec<u8>, u32> = HashMap::new();
        for op in ops {
            match op {
                DictOp::Insert(k, v) => {
                    prop_assert_eq!(dict.insert(&k, v), model.insert(k, v));
                }
                DictOp::Remove(k) => {
                    prop_assert_eq!(dict.remove(&k), model.remove(&k));
                }
                DictOp::Get(k) => {
                    prop_assert_eq!(dict.get(&k), model.get(&k));
                }
                DictOp::RehashStep => dict.rehash_step(2),
            }
            prop_assert_eq!(dict.len(), model.len());
        }
        // Iteration agrees with the model.
        let mut seen: Vec<(Vec<u8>, u32)> =
            dict.iter().map(|(k, v)| (k.to_vec(), *v)).collect();
        seen.sort_unstable();
        let mut expect: Vec<(Vec<u8>, u32)> =
            model.into_iter().collect();
        expect.sort_unstable();
        prop_assert_eq!(seen, expect);
    }
}

// ---------------------------------------------------------------------------
// SkipList ≡ BTreeMap<(score-bits, member)>
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum SlOp {
    Insert(u8, String),
    Delete(u8, String),
}

fn sl_op() -> impl Strategy<Value = SlOp> {
    let member = prop::sample::select(vec!["a", "b", "c", "d", "e", "f", "g", "h"]);
    prop_oneof![
        (0u8..16, member.clone()).prop_map(|(s, m)| SlOp::Insert(s, m.to_string())),
        (0u8..16, member).prop_map(|(s, m)| SlOp::Delete(s, m.to_string())),
    ]
}

proptest! {
    #[test]
    fn skiplist_matches_btree(ops in prop::collection::vec(sl_op(), 0..300), seed in any::<u64>()) {
        let mut sl = SkipList::new(seed);
        // Model key: (score as integer, member). Duplicate (score, member)
        // pairs are not inserted (matching ZSet usage).
        let mut model: BTreeSet<(u8, String)> = BTreeSet::new();
        for op in ops {
            match op {
                SlOp::Insert(s, m) => {
                    if model.insert((s, m.clone())) {
                        sl.insert(s as f64, Sds::from(m.as_str()));
                    }
                }
                SlOp::Delete(s, m) => {
                    let was = model.remove(&(s, m.clone()));
                    prop_assert_eq!(sl.delete(s as f64, m.as_bytes()), was);
                }
            }
        }
        sl.check_invariants();
        prop_assert_eq!(sl.len(), model.len());
        // Full in-order agreement, plus rank agreement.
        for (rank, (s, m)) in model.iter().enumerate() {
            let (score, member) = sl.by_rank(rank).expect("rank in range");
            prop_assert_eq!(score, *s as f64);
            prop_assert_eq!(member.as_bytes(), m.as_bytes());
            prop_assert_eq!(sl.rank(*s as f64, m.as_bytes()), Some(rank));
        }
    }
}

// ---------------------------------------------------------------------------
// IntSet ≡ BTreeSet<i64>
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn intset_matches_btreeset(ops in prop::collection::vec((any::<bool>(), any::<i64>()), 0..300)) {
        let mut set = IntSet::new();
        let mut model: BTreeSet<i64> = BTreeSet::new();
        for (insert, v) in ops {
            if insert {
                prop_assert_eq!(set.insert(v), model.insert(v));
            } else {
                prop_assert_eq!(set.remove(v), model.remove(&v));
            }
        }
        prop_assert_eq!(set.len(), model.len());
        let got: Vec<i64> = set.iter().collect();
        let expect: Vec<i64> = model.iter().copied().collect();
        prop_assert_eq!(got, expect, "iteration must be sorted and complete");
    }
}

// ---------------------------------------------------------------------------
// Backlog ≡ unbounded log suffix
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn backlog_serves_exact_suffixes(
        capacity in 1usize..64,
        chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..32), 0..50),
    ) {
        let mut backlog = Backlog::new(capacity);
        let mut log: Vec<u8> = Vec::new();
        for chunk in chunks {
            backlog.feed(&chunk);
            log.extend_from_slice(&chunk);
        }
        prop_assert_eq!(backlog.offset(), log.len() as u64);
        let first = backlog.first_available_offset();
        for from in 0..=log.len() as u64 {
            match backlog.range_from(from) {
                Some(bytes) => {
                    prop_assert!(from >= first);
                    prop_assert_eq!(&bytes[..], &log[from as usize..]);
                }
                None => prop_assert!(from < first),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Sds ranges ≡ slice arithmetic
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn sds_get_range_matches_model(
        data in prop::collection::vec(any::<u8>(), 0..40),
        start in -50i64..50,
        end in -50i64..50,
    ) {
        let s = Sds::from_bytes(&data);
        let got = s.get_range(start, end);
        // Model: resolve negatives, clamp, inclusive slice.
        let len = data.len() as i64;
        let mut a = if start < 0 { len + start } else { start };
        let mut b = if end < 0 { len + end } else { end };
        a = a.max(0);
        b = b.min(len - 1);
        let expect: &[u8] = if len == 0 || a > b {
            &[]
        } else {
            &data[a as usize..=b as usize]
        };
        prop_assert_eq!(got, expect);
    }
}

// ---------------------------------------------------------------------------
// Dict random_entry stays within live entries
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn dict_random_entry_is_live(keys in prop::collection::btree_set(prop::collection::vec(any::<u8>(), 1..4), 1..40), draws in any::<u64>()) {
        let mut dict: Dict<u8> = Dict::new();
        let model: BTreeMap<Vec<u8>, u8> =
            keys.into_iter().map(|k| (k, 7)).collect();
        for (k, v) in &model {
            dict.insert(k, *v);
        }
        let mut state = draws | 1;
        let (k, v) = dict
            .random_entry(|n| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 16) % n.max(1)
            })
            .expect("non-empty");
        prop_assert_eq!(model.get(k), Some(v));
    }
}
