//! Semantic tests for the extended command set: bit operations, cursor
//! scans, set algebra, sorted-set range deletions, and the string/keyspace
//! extensions.

// Test-only HashSet: checks *what* iteration yields, never its order.
#![allow(clippy::disallowed_types)]

use std::collections::HashSet;

use skv_store::engine::Engine;
use skv_store::resp::Resp;

fn eng() -> Engine {
    Engine::new(7)
}

fn r(e: &mut Engine, parts: &[&str]) -> Resp {
    e.exec_str(0, parts).reply
}

fn rt(e: &mut Engine, now_ms: u64, parts: &[&str]) -> Resp {
    e.execute(
        now_ms,
        &parts
            .iter()
            .map(|p| p.as_bytes().to_vec())
            .collect::<Vec<_>>(),
    )
    .reply
}

fn bulk(s: &str) -> Resp {
    Resp::Bulk(s.as_bytes().to_vec())
}

fn array(items: &[&str]) -> Resp {
    Resp::Array(items.iter().map(|s| bulk(s)).collect())
}

// ---------------------------------------------------------------------------
// bit operations
// ---------------------------------------------------------------------------

#[test]
fn setbit_getbit_roundtrip() {
    let mut e = eng();
    assert_eq!(r(&mut e, &["SETBIT", "b", "7", "1"]), Resp::Int(0));
    assert_eq!(r(&mut e, &["GETBIT", "b", "7"]), Resp::Int(1));
    assert_eq!(r(&mut e, &["GETBIT", "b", "6"]), Resp::Int(0));
    assert_eq!(r(&mut e, &["GETBIT", "b", "1000"]), Resp::Int(0));
    // Bit 7 of byte 0 = 0x01.
    assert_eq!(r(&mut e, &["GET", "b"]), Resp::Bulk(vec![1]));
    // Flip it back, old value reported.
    assert_eq!(r(&mut e, &["SETBIT", "b", "7", "0"]), Resp::Int(1));
    assert_eq!(r(&mut e, &["GET", "b"]), Resp::Bulk(vec![0]));
    // Setting a far bit zero-extends.
    assert_eq!(r(&mut e, &["SETBIT", "b", "100", "1"]), Resp::Int(0));
    assert_eq!(r(&mut e, &["STRLEN", "b"]), Resp::Int(13));
    assert!(r(&mut e, &["SETBIT", "b", "-1", "1"]).is_error());
    assert!(r(&mut e, &["SETBIT", "b", "0", "2"]).is_error());
}

#[test]
fn bitcount_whole_and_ranges() {
    let mut e = eng();
    r(&mut e, &["SET", "k", "foobar"]);
    assert_eq!(r(&mut e, &["BITCOUNT", "k"]), Resp::Int(26));
    assert_eq!(r(&mut e, &["BITCOUNT", "k", "0", "0"]), Resp::Int(4));
    assert_eq!(r(&mut e, &["BITCOUNT", "k", "1", "1"]), Resp::Int(6));
    assert_eq!(r(&mut e, &["BITCOUNT", "k", "0", "-1"]), Resp::Int(26));
    assert_eq!(r(&mut e, &["BITCOUNT", "missing"]), Resp::Int(0));
}

#[test]
fn bitpos_finds_first_bit() {
    let mut e = eng();
    r(&mut e, &["SET", "k", "\u{0}"]); // one zero byte isn't expressible; use SETBIT
    r(&mut e, &["DEL", "k"]);
    r(&mut e, &["SETBIT", "k", "12", "1"]);
    assert_eq!(r(&mut e, &["BITPOS", "k", "1"]), Resp::Int(12));
    assert_eq!(r(&mut e, &["BITPOS", "k", "0"]), Resp::Int(0));
    // Missing key.
    assert_eq!(r(&mut e, &["BITPOS", "none", "0"]), Resp::Int(0));
    assert_eq!(r(&mut e, &["BITPOS", "none", "1"]), Resp::Int(-1));
    // All-ones string: first 0 is one past the end.
    r(&mut e, &["DEL", "k"]);
    for bit in 0..8 {
        r(&mut e, &["SETBIT", "k", &bit.to_string(), "1"]);
    }
    assert_eq!(r(&mut e, &["BITPOS", "k", "0"]), Resp::Int(8));
}

#[test]
fn bitop_and_or_xor_not() {
    let mut e = eng();
    r(&mut e, &["SET", "a", "abc"]);
    r(&mut e, &["SET", "b", "ab"]);
    assert_eq!(r(&mut e, &["BITOP", "AND", "dest", "a", "b"]), Resp::Int(3));
    // 'c' AND 0 = 0.
    assert_eq!(r(&mut e, &["GET", "dest"]), Resp::Bulk(vec![b'a', b'b', 0]));
    assert_eq!(r(&mut e, &["BITOP", "OR", "dest", "a", "b"]), Resp::Int(3));
    assert_eq!(r(&mut e, &["GET", "dest"]), bulk("abc"));
    assert_eq!(r(&mut e, &["BITOP", "XOR", "dest", "a", "a"]), Resp::Int(3));
    assert_eq!(r(&mut e, &["GET", "dest"]), Resp::Bulk(vec![0, 0, 0]));
    assert_eq!(r(&mut e, &["BITOP", "NOT", "dest", "a"]), Resp::Int(3));
    assert_eq!(
        r(&mut e, &["GET", "dest"]),
        Resp::Bulk(vec![!b'a', !b'b', !b'c'])
    );
    assert!(r(&mut e, &["BITOP", "NOT", "dest", "a", "b"]).is_error());
    // Empty result deletes the destination.
    assert_eq!(
        r(&mut e, &["BITOP", "AND", "dest", "ghost1", "ghost2"]),
        Resp::Int(0)
    );
    assert_eq!(r(&mut e, &["EXISTS", "dest"]), Resp::Int(0));
}

// ---------------------------------------------------------------------------
// SCAN family
// ---------------------------------------------------------------------------

fn drive_scan(e: &mut Engine, base: &[&str]) -> Vec<Vec<u8>> {
    let mut cursor = "0".to_string();
    let mut items = Vec::new();
    loop {
        let mut args: Vec<&str> = base.to_vec();
        args.push(&cursor);
        let reply = r(e, &args);
        let Resp::Array(parts) = reply else {
            panic!("scan must return an array, got {reply:?}");
        };
        let Resp::Bulk(next) = &parts[0] else {
            panic!("first element is the cursor");
        };
        let Resp::Array(batch) = &parts[1] else {
            panic!("second element is the item list");
        };
        for item in batch {
            let Resp::Bulk(b) = item else { panic!() };
            items.push(b.clone());
        }
        cursor = String::from_utf8(next.clone()).unwrap();
        if cursor == "0" {
            return items;
        }
    }
}

#[test]
fn scan_covers_whole_keyspace() {
    let mut e = eng();
    for i in 0..300 {
        r(&mut e, &["SET", &format!("k{i}"), "v"]);
    }
    let keys = drive_scan(&mut e, &["SCAN"]);
    let unique: HashSet<Vec<u8>> = keys.into_iter().collect();
    assert_eq!(unique.len(), 300, "every key seen at least once");
}

#[test]
fn scan_match_filters() {
    let mut e = eng();
    for i in 0..20 {
        r(&mut e, &["SET", &format!("user:{i}"), "v"]);
        r(&mut e, &["SET", &format!("item:{i}"), "v"]);
    }
    let mut cursor = "0".to_string();
    let mut seen = HashSet::new();
    loop {
        let reply = r(&mut e, &["SCAN", &cursor, "MATCH", "user:*", "COUNT", "4"]);
        let Resp::Array(parts) = reply else { panic!() };
        let Resp::Bulk(next) = &parts[0] else {
            panic!()
        };
        let Resp::Array(batch) = &parts[1] else {
            panic!()
        };
        for item in batch {
            let Resp::Bulk(b) = item else { panic!() };
            assert!(b.starts_with(b"user:"), "{:?}", String::from_utf8_lossy(b));
            seen.insert(b.clone());
        }
        cursor = String::from_utf8(next.clone()).unwrap();
        if cursor == "0" {
            break;
        }
    }
    assert_eq!(seen.len(), 20);
}

#[test]
fn hscan_returns_pairs() {
    let mut e = eng();
    for i in 0..50 {
        r(&mut e, &["HSET", "h", &format!("f{i}"), &format!("v{i}")]);
    }
    let items = drive_scan(&mut e, &["HSCAN", "h"]);
    assert!(items.len() >= 100, "field+value pairs");
    let mut fields = HashSet::new();
    for pair in items.chunks(2) {
        assert_eq!(pair.len(), 2);
        let f = String::from_utf8(pair[0].clone()).unwrap();
        let v = String::from_utf8(pair[1].clone()).unwrap();
        assert_eq!(
            Some(v.as_str()),
            f.strip_prefix('f').map(|n| format!("v{n}")).as_deref()
        );
        fields.insert(f);
    }
    assert_eq!(fields.len(), 50);
    // Missing key: empty, cursor 0.
    assert_eq!(
        r(&mut e, &["HSCAN", "ghost", "0"]),
        Resp::Array(vec![bulk("0"), Resp::Array(vec![])])
    );
}

#[test]
fn sscan_intset_single_shot() {
    let mut e = eng();
    r(&mut e, &["SADD", "s", "3", "1", "2"]);
    assert_eq!(
        r(&mut e, &["SSCAN", "s", "0"]),
        Resp::Array(vec![bulk("0"), array(&["1", "2", "3"])])
    );
    // Hashtable-encoded set scans with cursors.
    for i in 0..100 {
        r(&mut e, &["SADD", "big", &format!("member{i}")]);
    }
    let items = drive_scan(&mut e, &["SSCAN", "big"]);
    let unique: HashSet<Vec<u8>> = items.into_iter().collect();
    assert_eq!(unique.len(), 100);
}

#[test]
fn zscan_returns_member_score_pairs() {
    let mut e = eng();
    for i in 0..40 {
        r(&mut e, &["ZADD", "z", &i.to_string(), &format!("m{i}")]);
    }
    let items = drive_scan(&mut e, &["ZSCAN", "z"]);
    let mut seen = HashSet::new();
    for pair in items.chunks(2) {
        let m = String::from_utf8(pair[0].clone()).unwrap();
        let score = String::from_utf8(pair[1].clone()).unwrap();
        assert_eq!(Some(score.as_str()), m.get(1..));
        seen.insert(m);
    }
    assert_eq!(seen.len(), 40);
}

// ---------------------------------------------------------------------------
// set algebra
// ---------------------------------------------------------------------------

#[test]
fn sinter_sunion_sdiff() {
    let mut e = eng();
    r(&mut e, &["SADD", "a", "1", "2", "3", "x"]);
    r(&mut e, &["SADD", "b", "2", "3", "4", "x"]);
    assert_eq!(r(&mut e, &["SINTER", "a", "b"]), array(&["2", "3", "x"]));
    assert_eq!(
        r(&mut e, &["SUNION", "a", "b"]),
        array(&["1", "2", "3", "4", "x"])
    );
    assert_eq!(r(&mut e, &["SDIFF", "a", "b"]), array(&["1"]));
    assert_eq!(r(&mut e, &["SDIFF", "b", "a"]), array(&["4"]));
    // Missing keys act as empty sets.
    assert_eq!(r(&mut e, &["SINTER", "a", "ghost"]), Resp::Array(vec![]));
    assert_eq!(r(&mut e, &["SDIFF", "a", "a"]), Resp::Array(vec![]));
    // Type errors propagate.
    r(&mut e, &["SET", "str", "v"]);
    assert_eq!(r(&mut e, &["SINTER", "a", "str"]), Resp::wrongtype());
}

#[test]
fn algebra_store_variants() {
    let mut e = eng();
    r(&mut e, &["SADD", "a", "1", "2", "3"]);
    r(&mut e, &["SADD", "b", "2", "3", "4"]);
    assert_eq!(r(&mut e, &["SINTERSTORE", "dst", "a", "b"]), Resp::Int(2));
    assert_eq!(r(&mut e, &["SMEMBERS", "dst"]), array(&["2", "3"]));
    assert_eq!(r(&mut e, &["SUNIONSTORE", "dst", "a", "b"]), Resp::Int(4));
    assert_eq!(r(&mut e, &["SCARD", "dst"]), Resp::Int(4));
    // Empty result deletes the destination.
    assert_eq!(r(&mut e, &["SDIFFSTORE", "dst", "a", "a"]), Resp::Int(0));
    assert_eq!(r(&mut e, &["EXISTS", "dst"]), Resp::Int(0));
}

#[test]
fn smove_between_sets() {
    let mut e = eng();
    r(&mut e, &["SADD", "src", "a", "b"]);
    r(&mut e, &["SADD", "dst", "c"]);
    assert_eq!(r(&mut e, &["SMOVE", "src", "dst", "a"]), Resp::Int(1));
    assert_eq!(r(&mut e, &["SMEMBERS", "src"]), array(&["b"]));
    assert_eq!(r(&mut e, &["SMEMBERS", "dst"]), array(&["a", "c"]));
    assert_eq!(r(&mut e, &["SMOVE", "src", "dst", "ghost"]), Resp::Int(0));
    // Moving the last member reaps the source.
    assert_eq!(r(&mut e, &["SMOVE", "src", "dst", "b"]), Resp::Int(1));
    assert_eq!(r(&mut e, &["EXISTS", "src"]), Resp::Int(0));
}

// ---------------------------------------------------------------------------
// sorted-set extensions
// ---------------------------------------------------------------------------

#[test]
fn zrevrange_mirrors_zrange() {
    let mut e = eng();
    r(&mut e, &["ZADD", "z", "1", "a", "2", "b", "3", "c"]);
    assert_eq!(
        r(&mut e, &["ZREVRANGE", "z", "0", "-1"]),
        array(&["c", "b", "a"])
    );
    assert_eq!(r(&mut e, &["ZREVRANGE", "z", "0", "0"]), array(&["c"]));
    assert_eq!(r(&mut e, &["ZREVRANGE", "z", "1", "2"]), array(&["b", "a"]));
    assert_eq!(
        r(&mut e, &["ZREVRANGE", "z", "0", "0", "WITHSCORES"]),
        array(&["c", "3"])
    );
}

#[test]
fn zpopmin_zpopmax() {
    let mut e = eng();
    r(&mut e, &["ZADD", "z", "1", "a", "2", "b", "3", "c"]);
    assert_eq!(r(&mut e, &["ZPOPMIN", "z"]), array(&["a", "1"]));
    assert_eq!(r(&mut e, &["ZPOPMAX", "z"]), array(&["c", "3"]));
    assert_eq!(r(&mut e, &["ZCARD", "z"]), Resp::Int(1));
    assert_eq!(r(&mut e, &["ZPOPMIN", "z", "5"]), array(&["b", "2"]));
    assert_eq!(r(&mut e, &["EXISTS", "z"]), Resp::Int(0), "reaped");
    assert_eq!(r(&mut e, &["ZPOPMIN", "ghost"]), Resp::Array(vec![]));
}

#[test]
fn zremrange_by_score_and_rank() {
    let mut e = eng();
    for i in 1..=10 {
        r(&mut e, &["ZADD", "z", &i.to_string(), &format!("m{i:02}")]);
    }
    assert_eq!(
        r(&mut e, &["ZREMRANGEBYSCORE", "z", "3", "5"]),
        Resp::Int(3)
    );
    assert_eq!(r(&mut e, &["ZCARD", "z"]), Resp::Int(7));
    assert_eq!(
        r(&mut e, &["ZREMRANGEBYSCORE", "z", "(6", "7"]),
        Resp::Int(1),
        "exclusive lower bound"
    );
    assert_eq!(r(&mut e, &["ZREMRANGEBYRANK", "z", "0", "1"]), Resp::Int(2));
    assert_eq!(
        r(&mut e, &["ZRANGE", "z", "0", "-1"]),
        array(&["m06", "m08", "m09", "m10"])
    );
    assert_eq!(
        r(&mut e, &["ZREMRANGEBYRANK", "z", "-1", "-1"]),
        Resp::Int(1)
    );
    assert_eq!(
        r(&mut e, &["ZRANGE", "z", "0", "-1"]),
        array(&["m06", "m08", "m09"])
    );
}

// ---------------------------------------------------------------------------
// list extensions
// ---------------------------------------------------------------------------

#[test]
fn rpoplpush_rotates() {
    let mut e = eng();
    r(&mut e, &["RPUSH", "src", "a", "b", "c"]);
    assert_eq!(r(&mut e, &["RPOPLPUSH", "src", "dst"]), bulk("c"));
    assert_eq!(r(&mut e, &["LRANGE", "src", "0", "-1"]), array(&["a", "b"]));
    assert_eq!(r(&mut e, &["LRANGE", "dst", "0", "-1"]), array(&["c"]));
    // Self-rotation.
    assert_eq!(r(&mut e, &["RPOPLPUSH", "src", "src"]), bulk("b"));
    assert_eq!(r(&mut e, &["LRANGE", "src", "0", "-1"]), array(&["b", "a"]));
    assert_eq!(r(&mut e, &["RPOPLPUSH", "ghost", "dst"]), Resp::NullBulk);
    // Wrong destination type restores the source element.
    r(&mut e, &["SET", "str", "v"]);
    assert_eq!(r(&mut e, &["RPOPLPUSH", "dst", "str"]), Resp::wrongtype());
    assert_eq!(r(&mut e, &["LRANGE", "dst", "0", "-1"]), array(&["c"]));
}

#[test]
fn lpos_with_rank() {
    let mut e = eng();
    r(&mut e, &["RPUSH", "l", "a", "b", "c", "b", "a"]);
    assert_eq!(r(&mut e, &["LPOS", "l", "b"]), Resp::Int(1));
    assert_eq!(r(&mut e, &["LPOS", "l", "b", "RANK", "2"]), Resp::Int(3));
    assert_eq!(r(&mut e, &["LPOS", "l", "a", "RANK", "-1"]), Resp::Int(4));
    assert_eq!(r(&mut e, &["LPOS", "l", "a", "RANK", "-2"]), Resp::Int(0));
    assert_eq!(r(&mut e, &["LPOS", "l", "zz"]), Resp::NullBulk);
    assert!(r(&mut e, &["LPOS", "l", "a", "RANK", "0"]).is_error());
}

// ---------------------------------------------------------------------------
// string/keyspace extensions
// ---------------------------------------------------------------------------

#[test]
fn getex_variants() {
    let mut e = eng();
    rt(&mut e, 0, &["SET", "k", "v"]);
    // Plain GETEX does not touch the TTL.
    assert_eq!(rt(&mut e, 0, &["GETEX", "k"]), bulk("v"));
    assert_eq!(rt(&mut e, 0, &["TTL", "k"]), Resp::Int(-1));
    // GETEX EX sets one.
    assert_eq!(rt(&mut e, 0, &["GETEX", "k", "EX", "10"]), bulk("v"));
    assert_eq!(rt(&mut e, 0, &["TTL", "k"]), Resp::Int(10));
    // GETEX PERSIST clears it.
    assert_eq!(rt(&mut e, 0, &["GETEX", "k", "PERSIST"]), bulk("v"));
    assert_eq!(rt(&mut e, 0, &["TTL", "k"]), Resp::Int(-1));
    assert_eq!(rt(&mut e, 0, &["GETEX", "ghost"]), Resp::NullBulk);
}

#[test]
fn incrbyfloat_accumulates() {
    let mut e = eng();
    assert_eq!(r(&mut e, &["INCRBYFLOAT", "f", "1.5"]), bulk("1.5"));
    assert_eq!(r(&mut e, &["INCRBYFLOAT", "f", "2.25"]), bulk("3.75"));
    assert_eq!(r(&mut e, &["INCRBYFLOAT", "f", "-3.75"]), bulk("0"));
    r(&mut e, &["SET", "n", "10"]);
    assert_eq!(r(&mut e, &["INCRBYFLOAT", "n", "0.5"]), bulk("10.5"));
    r(&mut e, &["SET", "s", "notanumber"]);
    assert!(r(&mut e, &["INCRBYFLOAT", "s", "1"]).is_error());
}

#[test]
fn copy_clones_value_and_ttl() {
    let mut e = eng();
    rt(&mut e, 0, &["SET", "src", "v"]);
    rt(&mut e, 0, &["EXPIRE", "src", "100"]);
    assert_eq!(rt(&mut e, 0, &["COPY", "src", "dst"]), Resp::Int(1));
    assert_eq!(rt(&mut e, 0, &["GET", "dst"]), bulk("v"));
    assert_eq!(rt(&mut e, 0, &["TTL", "dst"]), Resp::Int(100));
    // Source is untouched (unlike RENAME).
    assert_eq!(rt(&mut e, 0, &["EXISTS", "src"]), Resp::Int(1));
    // Existing destination refuses without REPLACE.
    rt(&mut e, 0, &["SET", "dst", "other"]);
    assert_eq!(rt(&mut e, 0, &["COPY", "src", "dst"]), Resp::Int(0));
    assert_eq!(
        rt(&mut e, 0, &["COPY", "src", "dst", "REPLACE"]),
        Resp::Int(1)
    );
    assert_eq!(rt(&mut e, 0, &["COPY", "ghost", "x"]), Resp::Int(0));
}

#[test]
fn object_encoding_reports() {
    let mut e = eng();
    r(&mut e, &["SET", "int", "42"]);
    r(&mut e, &["SET", "short", "hello"]);
    r(&mut e, &["SET", "long", &"x".repeat(100)]);
    r(&mut e, &["RPUSH", "list", "a"]);
    r(&mut e, &["SADD", "iset", "1"]);
    r(&mut e, &["SADD", "hset", "word"]);
    r(&mut e, &["HSET", "hash", "f", "v"]);
    r(&mut e, &["ZADD", "zset", "1", "m"]);
    for (key, enc) in [
        ("int", "int"),
        ("short", "embstr"),
        ("long", "raw"),
        ("list", "quicklist"),
        ("iset", "intset"),
        ("hset", "hashtable"),
        ("hash", "hashtable"),
        ("zset", "skiplist"),
    ] {
        assert_eq!(
            r(&mut e, &["OBJECT", "ENCODING", key]),
            bulk(enc),
            "encoding of {key}"
        );
    }
    assert!(r(&mut e, &["OBJECT", "ENCODING", "ghost"]).is_error());
    assert!(r(&mut e, &["OBJECT", "FREQ", "int"]).is_error());
}

#[test]
fn new_write_commands_replicate() {
    // Every new mutating command must carry the WRITE flag and mark dirty.
    let mut e = eng();
    r(&mut e, &["SADD", "a", "1", "2"]);
    r(&mut e, &["SADD", "b", "2"]);
    r(&mut e, &["RPUSH", "l", "x"]);
    for cmd in [
        vec!["SETBIT", "bits", "3", "1"],
        vec!["BITOP", "NOT", "bd", "bits"],
        vec!["SINTERSTORE", "sd", "a", "b"],
        vec!["SMOVE", "a", "b", "1"],
        vec!["RPOPLPUSH", "l", "l2"],
        vec!["INCRBYFLOAT", "f", "1.5"],
        vec!["COPY", "f", "f2"],
        vec!["GETEX", "f", "EX", "5"],
        vec!["ZADD", "z", "1", "m"],
        vec!["ZPOPMIN", "z"],
    ] {
        let res = e.exec_str(1000, &cmd);
        assert!(!res.reply.is_error(), "{cmd:?} -> {:?}", res.reply);
        assert!(res.is_write, "{cmd:?} must be WRITE-flagged");
        assert!(res.should_replicate(), "{cmd:?} must replicate");
    }
}
