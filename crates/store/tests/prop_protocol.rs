//! Property-based tests for the wire formats: RESP and RDB round-trips.

use proptest::prelude::*;

use skv_store::engine::Engine;
use skv_store::rdb;
use skv_store::resp::{Decoded, Resp, RespStream};

// ---------------------------------------------------------------------------
// RESP round-trips
// ---------------------------------------------------------------------------

/// Strategy for arbitrary RESP values, bounded depth.
fn resp_value() -> impl Strategy<Value = Resp> {
    let leaf = prop_oneof![
        "[ -~]{0,20}".prop_map(Resp::Simple),
        "[ -~]{0,20}".prop_map(Resp::Error),
        any::<i64>().prop_map(Resp::Int),
        prop::collection::vec(any::<u8>(), 0..64).prop_map(Resp::Bulk),
        Just(Resp::NullBulk),
        Just(Resp::NullArray),
    ];
    leaf.prop_recursive(3, 32, 8, |inner| {
        prop::collection::vec(inner, 0..8).prop_map(Resp::Array)
    })
}

proptest! {
    #[test]
    fn resp_roundtrips(v in resp_value()) {
        let bytes = v.encode();
        match Resp::decode(&bytes) {
            Decoded::Frame(out, used) => {
                prop_assert_eq!(out, v);
                prop_assert_eq!(used, bytes.len());
            }
            other => prop_assert!(false, "decode failed: {:?}", other),
        }
    }

    #[test]
    fn resp_prefixes_are_incomplete_never_error(v in resp_value()) {
        // A truncated valid frame must report Incomplete, not a protocol
        // error — otherwise a slow sender would get disconnected.
        let bytes = v.encode();
        for cut in 0..bytes.len() {
            match Resp::decode(&bytes[..cut]) {
                Decoded::Incomplete => {}
                Decoded::Frame(_, used) => prop_assert!(used <= cut),
                Decoded::ProtocolError(e) => {
                    prop_assert!(false, "prefix len {} errored: {}", cut, e);
                }
            }
        }
    }

    #[test]
    fn resp_stream_reassembles_any_fragmentation(
        frames in prop::collection::vec(resp_value(), 1..10),
        chunk_size in 1usize..32,
    ) {
        let mut wire = Vec::new();
        for f in &frames {
            f.encode_into(&mut wire);
        }
        let mut stream = RespStream::new();
        let mut got = Vec::new();
        for chunk in wire.chunks(chunk_size) {
            stream.feed(chunk);
            while let Some(f) = stream.next_frame().unwrap() {
                got.push(f);
            }
        }
        prop_assert_eq!(got, frames);
    }
}

// ---------------------------------------------------------------------------
// RDB round-trips through random command workloads
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum WorkloadOp {
    Set(String, Vec<u8>),
    Del(String),
    Rpush(String, Vec<u8>),
    Sadd(String, String),
    Hset(String, String, Vec<u8>),
    Zadd(String, i32, String),
    Expire(String, u32),
}

fn key() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["k1", "k2", "k3", "k4", "k5"]).prop_map(str::to_string)
}

fn workload_op() -> impl Strategy<Value = WorkloadOp> {
    let val = prop::collection::vec(any::<u8>(), 0..24);
    let member = "[a-z]{1,6}";
    prop_oneof![
        (key(), val.clone()).prop_map(|(k, v)| WorkloadOp::Set(k, v)),
        key().prop_map(WorkloadOp::Del),
        (key(), val.clone()).prop_map(|(k, v)| WorkloadOp::Rpush(k, v)),
        (key(), member).prop_map(|(k, m)| WorkloadOp::Sadd(k, m)),
        (key(), "[a-z]{1,4}", val).prop_map(|(k, f, v)| WorkloadOp::Hset(k, f, v)),
        (key(), any::<i32>(), "[a-z]{1,4}").prop_map(|(k, s, m)| WorkloadOp::Zadd(k, s, m)),
        (key(), 1u32..1000).prop_map(|(k, t)| WorkloadOp::Expire(k, t)),
    ]
}

fn apply(e: &mut Engine, op: &WorkloadOp) {
    let args: Vec<Vec<u8>> = match op {
        WorkloadOp::Set(k, v) => vec![b"SET".to_vec(), k.clone().into_bytes(), v.clone()],
        WorkloadOp::Del(k) => vec![b"DEL".to_vec(), k.clone().into_bytes()],
        WorkloadOp::Rpush(k, v) => vec![b"RPUSH".to_vec(), k.clone().into_bytes(), v.clone()],
        WorkloadOp::Sadd(k, m) => vec![
            b"SADD".to_vec(),
            k.clone().into_bytes(),
            m.clone().into_bytes(),
        ],
        WorkloadOp::Hset(k, f, v) => vec![
            b"HSET".to_vec(),
            k.clone().into_bytes(),
            f.clone().into_bytes(),
            v.clone(),
        ],
        WorkloadOp::Zadd(k, s, m) => vec![
            b"ZADD".to_vec(),
            k.clone().into_bytes(),
            s.to_string().into_bytes(),
            m.clone().into_bytes(),
        ],
        WorkloadOp::Expire(k, t) => vec![
            b"EXPIRE".to_vec(),
            k.clone().into_bytes(),
            t.to_string().into_bytes(),
        ],
    };
    // Type-conflict errors are fine; the engine must simply never panic.
    let _ = e.execute(0, &args);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn rdb_roundtrips_any_workload(ops in prop::collection::vec(workload_op(), 0..120)) {
        let mut e = Engine::new(11);
        for op in &ops {
            apply(&mut e, op);
        }
        let snapshot = rdb::save(e.db());
        let mut restored = Engine::new(999);
        rdb::load(restored.db_mut(), &snapshot, 999).expect("load");
        prop_assert_eq!(e.keyspace_digest(), restored.keyspace_digest());
        // Loading an identical snapshot again must be idempotent.
        let snapshot2 = rdb::save(restored.db());
        prop_assert_eq!(snapshot, snapshot2);
    }
}
