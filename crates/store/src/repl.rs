//! Replication identity types shared by master and slaves.
//!
//! A replication history is identified by a 40-hex-character *replication
//! ID* plus a byte offset into that history (paper Figure 8: the slave's
//! initial synchronization request "contains its own replication ID,
//! replication offset and the address and port number of the master").

use std::fmt;

/// A 40-hex-character replication history identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReplicationId(pub [u8; 20]);

impl ReplicationId {
    /// The null ID a fresh slave presents before its first sync.
    pub const NONE: ReplicationId = ReplicationId([0; 20]);

    /// Derive a replication ID from a seed (deterministic).
    pub fn from_seed(seed: u64) -> Self {
        let mut bytes = [0u8; 20];
        let mut state = seed ^ 0xA5A5_5A5A_DEAD_BEEF;
        for chunk in bytes.chunks_mut(8) {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let le = state.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&le[..n]);
        }
        ReplicationId(bytes)
    }

    /// Render as 40 lowercase hex characters.
    pub fn to_hex(self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl fmt::Display for ReplicationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

/// A slave's view of where it stands in a replication history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationPosition {
    /// Which history.
    pub repl_id: ReplicationId,
    /// How many bytes of it have been applied.
    pub offset: u64,
}

impl ReplicationPosition {
    /// The position of a slave that has never synchronized.
    pub fn unsynced() -> Self {
        ReplicationPosition {
            repl_id: ReplicationId::NONE,
            offset: 0,
        }
    }

    /// True if this position belongs to `master`'s history.
    pub fn matches(&self, master: ReplicationId) -> bool {
        self.repl_id == master
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_deterministic_and_distinct() {
        assert_eq!(ReplicationId::from_seed(1), ReplicationId::from_seed(1));
        assert_ne!(ReplicationId::from_seed(1), ReplicationId::from_seed(2));
        assert_ne!(ReplicationId::from_seed(1), ReplicationId::NONE);
    }

    #[test]
    fn hex_rendering() {
        let id = ReplicationId::from_seed(7);
        let hex = id.to_hex();
        assert_eq!(hex.len(), 40);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(format!("{id}"), hex);
        assert_eq!(ReplicationId::NONE.to_hex(), "0".repeat(40));
    }

    #[test]
    fn position_matching() {
        let master = ReplicationId::from_seed(3);
        let pos = ReplicationPosition {
            repl_id: master,
            offset: 100,
        };
        assert!(pos.matches(master));
        assert!(!pos.matches(ReplicationId::from_seed(4)));
        assert!(!ReplicationPosition::unsynced().matches(master));
    }
}
