//! The single-node engine: keyspace + command dispatch + cron.
//!
//! This is the object a Host-KV server (or a slave) embeds. It is entirely
//! synchronous and clock-free: callers pass the current simulated time into
//! [`Engine::execute`] and [`Engine::cron`], which keeps the whole store
//! deterministic and testable without a simulator.

use crate::cmd::{self, CommandSpec, ExecCtx};
use crate::db::Db;
use crate::resp::Resp;

/// Outcome of executing one command.
#[derive(Debug)]
pub struct ExecResult {
    /// The reply to send to the client.
    pub reply: Resp,
    /// How many keyspace mutations the command performed.
    pub dirty_delta: u64,
    /// Whether the command is flagged `WRITE` in the command table.
    ///
    /// The paper's replication rule (§III-C): a command is forwarded to
    /// slaves iff it "can change the value of the data in the storage" —
    /// i.e. `is_write && dirty_delta > 0`.
    pub is_write: bool,
    /// Approximate bytes of payload the command touched (for CPU-cost
    /// modelling in the distributed layer).
    pub bytes_touched: usize,
}

impl ExecResult {
    /// Should this command be propagated to replicas?
    pub fn should_replicate(&self) -> bool {
        self.is_write && self.dirty_delta > 0
    }
}

/// A deterministic, single-threaded Redis-like engine.
#[derive(Debug)]
pub struct Engine {
    db: Db,
    rng_state: u64,
}

impl Engine {
    /// Create an engine. `seed` fixes all internal randomness (skiplist
    /// levels, RANDOMKEY/SPOP sampling, expire-cycle sampling).
    pub fn new(seed: u64) -> Self {
        Engine {
            db: Db::new(),
            rng_state: seed | 1,
        }
    }

    /// The underlying keyspace.
    pub fn db(&self) -> &Db {
        &self.db
    }

    /// Mutable access to the keyspace (snapshot loading, tests).
    pub fn db_mut(&mut self) -> &mut Db {
        &mut self.db
    }

    /// Execute one parsed command at simulated time `now_ms`.
    pub fn execute(&mut self, now_ms: u64, args: &[Vec<u8>]) -> ExecResult {
        let dirty_before = self.db.dirty();
        let bytes_touched = args.iter().map(Vec::len).sum();
        let (reply, spec) = {
            let mut ctx = ExecCtx {
                db: &mut self.db,
                now_ms,
                rng_state: &mut self.rng_state,
            };
            cmd::dispatch(&mut ctx, args)
        };
        ExecResult {
            reply,
            dirty_delta: self.db.dirty() - dirty_before,
            is_write: spec.is_some_and(CommandSpec::is_write),
            bytes_touched,
        }
    }

    /// Convenience: execute a command given as string slices (tests).
    pub fn exec_str(&mut self, now_ms: u64, parts: &[&str]) -> ExecResult {
        let args: Vec<Vec<u8>> = parts.iter().map(|p| p.as_bytes().to_vec()).collect();
        self.execute(now_ms, &args)
    }

    /// One cron tick: active expire cycle plus incremental-rehash work —
    /// the "time events" of the paper's Figure 4.
    pub fn cron(&mut self, now_ms: u64) -> usize {
        let rng = &mut self.rng_state;
        let reaped = self.db.active_expire_cycle(now_ms, 20, |n| {
            *rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if n == 0 {
                0
            } else {
                (*rng >> 16) % n
            }
        });
        self.db.rehash_step(8);
        reaped
    }

    /// A stable fingerprint of the entire keyspace, used by replication
    /// tests to prove master and slave converged to identical data.
    ///
    /// Built on the canonical RDB encoding, so it depends only on logical
    /// content, never on hash-table internals or insertion history.
    pub fn keyspace_digest(&self) -> u64 {
        Self::keyspace_digest_merged(&[self])
    }

    /// The same fingerprint computed over the union of several engines'
    /// keyspaces — what a sharded server reports. For one engine this is
    /// exactly [`Engine::keyspace_digest`], so a single-shard server and
    /// a sharded server holding the same logical content agree.
    pub fn keyspace_digest_merged(engines: &[&Engine]) -> u64 {
        use crate::hash::siphash13;
        let mut entries: Vec<(Vec<u8>, Vec<u8>)> = engines
            .iter()
            .flat_map(|e| {
                e.db.iter()
                    .map(|(k, v)| (k.to_vec(), crate::rdb::canonical_obj_bytes(v)))
            })
            .collect();
        entries.sort_unstable();
        let mut acc = 0u64;
        for (k, v) in entries {
            acc = acc
                .rotate_left(13)
                .wrapping_add(siphash13(&k))
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(siphash13(&v));
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_then_get() {
        let mut e = Engine::new(1);
        let r = e.exec_str(0, &["SET", "k", "v"]);
        assert_eq!(r.reply, Resp::ok());
        assert!(r.should_replicate());
        let r = e.exec_str(0, &["GET", "k"]);
        assert_eq!(r.reply, Resp::Bulk(b"v".to_vec()));
        assert!(!r.should_replicate());
        assert!(!r.is_write);
    }

    #[test]
    fn failed_write_does_not_replicate() {
        let mut e = Engine::new(1);
        // SETNX on an existing key mutates nothing.
        e.exec_str(0, &["SET", "k", "v"]);
        let r = e.exec_str(0, &["SETNX", "k", "other"]);
        assert_eq!(r.reply, Resp::Int(0));
        assert!(r.is_write);
        assert_eq!(r.dirty_delta, 0);
        assert!(!r.should_replicate());
        // DEL of a missing key likewise.
        let r = e.exec_str(0, &["DEL", "missing"]);
        assert!(!r.should_replicate());
    }

    #[test]
    fn cron_reaps_expired() {
        let mut e = Engine::new(1);
        for i in 0..50 {
            e.exec_str(0, &["SET", &format!("k{i}"), "v"]);
            e.exec_str(0, &["PEXPIRE", &format!("k{i}"), "10"]);
        }
        let mut reaped = 0;
        for _ in 0..200 {
            reaped += e.cron(1000);
        }
        assert_eq!(reaped, 50);
        assert_eq!(e.db().len(), 0);
    }

    #[test]
    fn digest_tracks_content_not_history() {
        let mut a = Engine::new(1);
        let mut b = Engine::new(999); // different seed, same final content
        a.exec_str(0, &["SET", "x", "1"]);
        a.exec_str(0, &["SET", "y", "2"]);
        b.exec_str(0, &["SET", "y", "2"]);
        b.exec_str(0, &["SET", "x", "0"]);
        b.exec_str(0, &["SET", "x", "1"]);
        assert_eq!(a.keyspace_digest(), b.keyspace_digest());
        a.exec_str(0, &["SET", "z", "3"]);
        assert_ne!(a.keyspace_digest(), b.keyspace_digest());
    }

    #[test]
    fn merged_digest_matches_single_engine_with_same_content() {
        let mut whole = Engine::new(1);
        whole.exec_str(0, &["SET", "a", "1"]);
        whole.exec_str(0, &["SET", "b", "2"]);
        whole.exec_str(0, &["RPUSH", "c", "x", "y"]);
        let mut left = Engine::new(7);
        let mut right = Engine::new(9);
        left.exec_str(0, &["SET", "b", "2"]);
        right.exec_str(0, &["RPUSH", "c", "x", "y"]);
        right.exec_str(0, &["SET", "a", "1"]);
        assert_eq!(
            whole.keyspace_digest(),
            Engine::keyspace_digest_merged(&[&left, &right]),
            "union of shards must digest like the unsharded keyspace"
        );
        // Shard order must not matter — the digest sorts by key.
        assert_eq!(
            Engine::keyspace_digest_merged(&[&left, &right]),
            Engine::keyspace_digest_merged(&[&right, &left]),
        );
    }

    #[test]
    fn unknown_command_is_not_write() {
        let mut e = Engine::new(1);
        let r = e.exec_str(0, &["WHAT"]);
        assert!(r.reply.is_error());
        assert!(!r.is_write);
    }
}
