//! SipHash-1-3 — the hash function Redis uses for its dictionaries.
//!
//! Implemented from the reference algorithm with a fixed key so that
//! simulation runs are bit-for-bit reproducible. (Real Redis randomizes the
//! key at startup for HashDoS resistance; determinism matters more here.)

/// Fixed 128-bit key (split into two words).
const K0: u64 = 0x0706_0504_0302_0100;
const K1: u64 = 0x0F0E_0D0C_0B0A_0908;

#[inline]
fn sipround(v0: &mut u64, v1: &mut u64, v2: &mut u64, v3: &mut u64) {
    *v0 = v0.wrapping_add(*v1);
    *v1 = v1.rotate_left(13);
    *v1 ^= *v0;
    *v0 = v0.rotate_left(32);
    *v2 = v2.wrapping_add(*v3);
    *v3 = v3.rotate_left(16);
    *v3 ^= *v2;
    *v0 = v0.wrapping_add(*v3);
    *v3 = v3.rotate_left(21);
    *v3 ^= *v0;
    *v2 = v2.wrapping_add(*v1);
    *v1 = v1.rotate_left(17);
    *v1 ^= *v2;
    *v2 = v2.rotate_left(32);
}

/// Hash `data` with SipHash-1-3 (1 compression round, 3 finalization
/// rounds), Redis's default since 4.0.
pub fn siphash13(data: &[u8]) -> u64 {
    let mut v0 = 0x736F_6D65_7073_6575 ^ K0;
    let mut v1 = 0x646F_7261_6E64_6F6D ^ K1;
    let mut v2 = 0x6C79_6765_6E65_7261 ^ K0;
    let mut v3 = 0x7465_6462_7974_6573 ^ K1;

    let len = data.len();
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        v3 ^= m;
        sipround(&mut v0, &mut v1, &mut v2, &mut v3);
        v0 ^= m;
    }

    // Final block: remaining bytes plus the length in the top byte.
    let rem = chunks.remainder();
    let mut b = (len as u64) << 56;
    for (i, &byte) in rem.iter().enumerate() {
        b |= (byte as u64) << (8 * i);
    }
    v3 ^= b;
    sipround(&mut v0, &mut v1, &mut v2, &mut v3);
    v0 ^= b;

    v2 ^= 0xFF;
    sipround(&mut v0, &mut v1, &mut v2, &mut v3);
    sipround(&mut v0, &mut v1, &mut v2, &mut v3);
    sipround(&mut v0, &mut v1, &mut v2, &mut v3);

    v0 ^ v1 ^ v2 ^ v3
}

#[cfg(test)]
// Test-only HashSet: checks *what* iteration yields, never its order.
#[allow(clippy::disallowed_types)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        assert_eq!(siphash13(b"key"), siphash13(b"key"));
        assert_ne!(siphash13(b"key"), siphash13(b"kez"));
        assert_ne!(siphash13(b""), siphash13(b"\0"));
    }

    #[test]
    fn all_lengths_hash() {
        // Exercise every remainder length of the final block.
        let data: Vec<u8> = (0..64u8).collect();
        let mut seen = HashSet::new();
        for l in 0..=data.len() {
            assert!(seen.insert(siphash13(&data[..l])), "collision at len {l}");
        }
    }

    #[test]
    fn avalanche_rough_check() {
        // Flipping one input bit should flip roughly half the output bits.
        let base = siphash13(b"hello world, this is skv");
        let mut input = b"hello world, this is skv".to_vec();
        input[3] ^= 1;
        let flipped = siphash13(&input);
        let differing = (base ^ flipped).count_ones();
        assert!(
            (16..=48).contains(&differing),
            "weak avalanche: {differing} bits"
        );
    }

    #[test]
    fn distribution_over_buckets() {
        // Hash 10k sequential keys into 128 buckets; no bucket should be
        // wildly over-loaded.
        let mut counts = [0u32; 128];
        for i in 0..10_000 {
            let k = format!("key:{i}");
            counts[(siphash13(k.as_bytes()) % 128) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max < 140, "max bucket {max}");
        assert!(min > 30, "min bucket {min}");
    }
}
