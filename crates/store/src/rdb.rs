//! RDB-style keyspace snapshots.
//!
//! The initial synchronization phase of master-slave replication (paper
//! Figure 8, step ③) transfers "a data file containing all key-value
//! pairs". This module produces and loads that file: a length-encoded,
//! CRC-checked binary serialization of the whole keyspace, in the spirit of
//! Redis's RDB format.
//!
//! Keys are emitted in sorted order, which makes the encoding *canonical*:
//! two keyspaces with identical logical content produce identical bytes,
//! regardless of the hash tables' internal states. Replication tests lean
//! on this.

use std::collections::VecDeque;

use crate::db::Db;
use crate::dict::Dict;
use crate::object::{RObj, SetObj, ZSet};
use crate::sds::Sds;

/// Format magic + version.
const MAGIC: &[u8; 8] = b"SKVRDB01";

/// Type tags.
const T_STRING: u8 = 0;
const T_INT: u8 = 1;
const T_LIST: u8 = 2;
const T_SET: u8 = 3;
const T_HASH: u8 = 4;
const T_ZSET: u8 = 5;
/// Marks a key with an expiry (followed by the ms timestamp).
const OP_EXPIRE_MS: u8 = 0xFD;
const OP_EOF: u8 = 0xFF;

/// Errors raised while loading a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdbError {
    /// The magic header is wrong.
    BadMagic,
    /// The payload ended unexpectedly.
    Truncated,
    /// The trailing checksum does not match.
    BadChecksum,
    /// An unknown type/op tag was encountered.
    BadTag(u8),
    /// A float failed to parse.
    BadFloat,
}

// ---------------------------------------------------------------------------
// primitives
// ---------------------------------------------------------------------------

fn put_len(out: &mut Vec<u8>, mut v: u64) {
    // LEB128-style varint.
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn get_len(buf: &[u8], pos: &mut usize) -> Result<u64, RdbError> {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let byte = *buf.get(*pos).ok_or(RdbError::Truncated)?;
        *pos += 1;
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(RdbError::BadTag(byte));
        }
    }
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_len(out, b.len() as u64);
    out.extend_from_slice(b);
}

fn get_bytes(buf: &[u8], pos: &mut usize) -> Result<Vec<u8>, RdbError> {
    let len = get_len(buf, pos)? as usize;
    let end = pos.checked_add(len).ok_or(RdbError::Truncated)?;
    if end > buf.len() {
        return Err(RdbError::Truncated);
    }
    let out = buf[*pos..end].to_vec();
    *pos = end;
    Ok(out)
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn get_f64(buf: &[u8], pos: &mut usize) -> Result<f64, RdbError> {
    let end = *pos + 8;
    if end > buf.len() {
        return Err(RdbError::Truncated);
    }
    let bits = u64::from_le_bytes(buf[*pos..end].try_into().map_err(|_| RdbError::BadFloat)?);
    *pos = end;
    Ok(f64::from_bits(bits))
}

/// CRC-32 (IEEE), bitwise implementation — small and dependency-free.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

// ---------------------------------------------------------------------------
// object encoding
// ---------------------------------------------------------------------------

fn put_obj(out: &mut Vec<u8>, obj: &RObj) {
    match obj {
        RObj::Str(s) => {
            out.push(T_STRING);
            put_bytes(out, s.as_bytes());
        }
        RObj::Int(v) => {
            out.push(T_INT);
            out.extend_from_slice(&v.to_le_bytes());
        }
        RObj::List(items) => {
            out.push(T_LIST);
            put_len(out, items.len() as u64);
            for item in items {
                put_bytes(out, item.as_bytes());
            }
        }
        RObj::Set(set) => {
            out.push(T_SET);
            let mut members = set.members();
            members.sort_unstable();
            put_len(out, members.len() as u64);
            for m in members {
                put_bytes(out, &m);
            }
        }
        RObj::Hash(h) => {
            out.push(T_HASH);
            let mut pairs: Vec<(&[u8], &Sds)> = h.iter().collect();
            pairs.sort_unstable_by_key(|(k, _)| *k);
            put_len(out, pairs.len() as u64);
            for (f, v) in pairs {
                put_bytes(out, f);
                put_bytes(out, v.as_bytes());
            }
        }
        RObj::ZSet(z) => {
            out.push(T_ZSET);
            let items = z.range(0, usize::MAX - 1);
            put_len(out, items.len() as u64);
            for (m, score) in items {
                put_bytes(out, &m);
                put_f64(out, score);
            }
        }
    }
}

fn get_obj(buf: &[u8], pos: &mut usize, seed: u64) -> Result<RObj, RdbError> {
    let tag = *buf.get(*pos).ok_or(RdbError::Truncated)?;
    *pos += 1;
    match tag {
        T_STRING => Ok(RObj::Str(Sds::from_vec(get_bytes(buf, pos)?))),
        T_INT => {
            let end = *pos + 8;
            if end > buf.len() {
                return Err(RdbError::Truncated);
            }
            let v = i64::from_le_bytes(buf[*pos..end].try_into().unwrap());
            *pos = end;
            Ok(RObj::Int(v))
        }
        T_LIST => {
            let n = get_len(buf, pos)?;
            let mut list = VecDeque::with_capacity(n as usize);
            for _ in 0..n {
                list.push_back(Sds::from_vec(get_bytes(buf, pos)?));
            }
            Ok(RObj::List(list))
        }
        T_SET => {
            let n = get_len(buf, pos)?;
            let mut set = SetObj::new();
            for _ in 0..n {
                set.add(&get_bytes(buf, pos)?);
            }
            Ok(RObj::Set(set))
        }
        T_HASH => {
            let n = get_len(buf, pos)?;
            let mut h = Dict::new();
            for _ in 0..n {
                let f = get_bytes(buf, pos)?;
                let v = get_bytes(buf, pos)?;
                h.insert(&f, Sds::from_vec(v));
            }
            Ok(RObj::Hash(h))
        }
        T_ZSET => {
            let n = get_len(buf, pos)?;
            let mut z = ZSet::new(seed);
            for _ in 0..n {
                let m = get_bytes(buf, pos)?;
                let score = get_f64(buf, pos)?;
                z.add(&m, score);
            }
            Ok(RObj::ZSet(z))
        }
        other => Err(RdbError::BadTag(other)),
    }
}

// ---------------------------------------------------------------------------
// whole-keyspace snapshots
// ---------------------------------------------------------------------------

/// Serialize the whole keyspace to a canonical snapshot.
pub fn save(db: &Db) -> Vec<u8> {
    save_union(&[db])
}

/// Serialize the union of several keyspaces (the shards of one logical
/// store) to a canonical snapshot. Entries are globally sorted by key, so
/// the output is byte-identical to [`save`] of a single keyspace holding
/// the same content — receivers never need to know the sender's shard
/// count.
pub fn save_union(dbs: &[&Db]) -> Vec<u8> {
    let total: usize = dbs.iter().map(|db| db.len()).sum();
    let mut body = Vec::with_capacity(64 + total * 32);
    body.extend_from_slice(MAGIC);
    let mut entries: Vec<(&[u8], &RObj, &Db)> = dbs
        .iter()
        .flat_map(|db| db.iter().map(move |(k, v)| (k, v, *db)))
        .collect();
    entries.sort_unstable_by_key(|(k, _, _)| *k);
    for (key, obj, db) in entries {
        if let Some(at) = db.expiry_of(key) {
            body.push(OP_EXPIRE_MS);
            put_len(&mut body, at);
        }
        put_bytes(&mut body, key);
        put_obj(&mut body, obj);
    }
    body.push(OP_EOF);
    let crc = crc32(&body);
    body.extend_from_slice(&crc.to_le_bytes());
    body
}

/// Load a snapshot into `db`, replacing its contents.
///
/// `seed` initializes skiplist randomness for loaded sorted sets.
pub fn load(db: &mut Db, bytes: &[u8], seed: u64) -> Result<usize, RdbError> {
    load_routed(std::slice::from_mut(db), bytes, seed, &|_| 0)
}

/// Load a snapshot into a set of shard keyspaces, replacing all of their
/// contents. Every decoded key is placed in `dbs[route(key)]` (clamped to
/// the slice), so a sharded receiver can split one wire snapshot without
/// re-serializing. With a single shard this is exactly [`load`]: same
/// validation, same flush-then-insert order, same per-object seeds.
pub fn load_routed(
    dbs: &mut [Db],
    bytes: &[u8],
    seed: u64,
    route: &dyn Fn(&[u8]) -> usize,
) -> Result<usize, RdbError> {
    if bytes.len() < MAGIC.len() + 5 {
        return Err(RdbError::Truncated);
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let expect = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if crc32(body) != expect {
        return Err(RdbError::BadChecksum);
    }
    if &body[..MAGIC.len()] != MAGIC {
        return Err(RdbError::BadMagic);
    }

    for db in dbs.iter_mut() {
        db.flush();
    }
    let mut pos = MAGIC.len();
    let mut loaded = 0;
    let mut pending_expire: Option<u64> = None;
    loop {
        let tag = *body.get(pos).ok_or(RdbError::Truncated)?;
        match tag {
            OP_EOF => break,
            OP_EXPIRE_MS => {
                pos += 1;
                pending_expire = Some(get_len(body, &mut pos)?);
            }
            _ => {
                let key = get_bytes(body, &mut pos)?;
                let obj = get_obj(body, &mut pos, seed.wrapping_add(loaded as u64))?;
                let idx = route(&key).min(dbs.len().saturating_sub(1));
                let db = dbs.get_mut(idx).ok_or(RdbError::Truncated)?;
                db.set(&key, obj);
                if let Some(at) = pending_expire.take() {
                    db.set_expire(&key, at);
                }
                loaded += 1;
            }
        }
    }
    Ok(loaded)
}

/// Canonical serialization of one object (for digests).
pub fn canonical_obj_bytes(obj: &RObj) -> Vec<u8> {
    let mut out = Vec::new();
    put_obj(&mut out, obj);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    fn populated_engine() -> Engine {
        let mut e = Engine::new(42);
        e.exec_str(0, &["SET", "str", "hello"]);
        e.exec_str(0, &["SET", "int", "12345"]);
        e.exec_str(0, &["SET", "ttl-key", "x"]);
        e.exec_str(0, &["PEXPIREAT", "ttl-key", "999999"]);
        e.exec_str(0, &["RPUSH", "list", "a", "b", "c"]);
        e.exec_str(0, &["SADD", "iset", "1", "2", "3"]);
        e.exec_str(0, &["SADD", "sset", "x", "y"]);
        e.exec_str(0, &["HSET", "hash", "f1", "v1", "f2", "v2"]);
        e.exec_str(0, &["ZADD", "zset", "1.5", "a", "2.5", "b"]);
        e
    }

    #[test]
    fn union_save_matches_single_save_and_routed_load_splits() {
        let whole = populated_engine();
        let single = save(whole.db());
        // Split the same content across two shard engines by key parity.
        let route = |key: &[u8]| usize::from(key.first().copied().unwrap_or(0) % 2 == 0);
        let mut shards = [Engine::new(3), Engine::new(4)];
        let mut dbs: Vec<crate::db::Db> = shards
            .iter_mut()
            .map(|e| std::mem::take(e.db_mut()))
            .collect();
        let n = load_routed(&mut dbs, &single, 7, &route).unwrap();
        assert_eq!(n, 8);
        assert!(!dbs[0].is_empty() && !dbs[1].is_empty(), "both shards populated");
        // The union snapshot of the shards is byte-identical to the
        // unsharded snapshot: global key sort erases the shard split.
        let union = save_union(&[&dbs[0], &dbs[1]]);
        assert_eq!(union, single, "union snapshot must be canonical");
        // Misrouted indexes clamp to the last shard instead of panicking.
        let mut one = [crate::db::Db::new()];
        let n = load_routed(&mut one, &single, 7, &|_| 99).unwrap();
        assert_eq!(n, 8);
        assert_eq!(one[0].len(), 8);
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let e = populated_engine();
        let snapshot = save(e.db());
        let mut e2 = Engine::new(7);
        e2.exec_str(0, &["SET", "junk", "togo"]);
        let n = load(e2.db_mut(), &snapshot, 7).unwrap();
        assert_eq!(n, 8);
        assert_eq!(e2.db().len(), 8);
        assert!(!e2.db_mut().exists(b"junk", 0), "load replaces contents");
        assert_eq!(e.keyspace_digest(), e2.keyspace_digest());
        // TTL survived.
        assert_eq!(e2.db_mut().ttl_ms(b"ttl-key", 0), Some(Some(999_999)));
        // Spot checks.
        assert_eq!(
            e2.exec_str(0, &["LRANGE", "list", "0", "-1"]).reply,
            crate::resp::Resp::Array(vec![
                crate::resp::Resp::Bulk(b"a".to_vec()),
                crate::resp::Resp::Bulk(b"b".to_vec()),
                crate::resp::Resp::Bulk(b"c".to_vec()),
            ])
        );
        assert_eq!(
            e2.exec_str(0, &["ZSCORE", "zset", "b"]).reply,
            crate::resp::Resp::Bulk(b"2.5".to_vec())
        );
    }

    #[test]
    fn snapshot_is_canonical() {
        // Same logical content reached by different histories → same bytes.
        let mut a = Engine::new(1);
        a.exec_str(0, &["SET", "k1", "v"]);
        a.exec_str(0, &["SET", "k2", "v"]);
        let mut b = Engine::new(2);
        b.exec_str(0, &["SET", "k2", "v"]);
        b.exec_str(0, &["SET", "tmp", "x"]);
        b.exec_str(0, &["DEL", "tmp"]);
        b.exec_str(0, &["SET", "k1", "other"]);
        b.exec_str(0, &["SET", "k1", "v"]);
        assert_eq!(save(a.db()), save(b.db()));
    }

    #[test]
    fn corruption_is_detected() {
        let e = populated_engine();
        let mut snapshot = save(e.db());
        let mid = snapshot.len() / 2;
        snapshot[mid] ^= 0xFF;
        let mut fresh = Engine::new(1);
        assert_eq!(
            load(fresh.db_mut(), &snapshot, 1),
            Err(RdbError::BadChecksum)
        );
    }

    #[test]
    fn truncation_is_detected() {
        let e = populated_engine();
        let snapshot = save(e.db());
        let mut fresh = Engine::new(1);
        assert!(load(fresh.db_mut(), &snapshot[..10], 1).is_err());
        assert!(load(fresh.db_mut(), &[], 1).is_err());
    }

    #[test]
    fn bad_magic_is_detected() {
        let e = populated_engine();
        let mut snapshot = save(e.db());
        snapshot[0] = b'X';
        // Fix the CRC so only the magic is wrong.
        let body_len = snapshot.len() - 4;
        let crc = crc32(&snapshot[..body_len]);
        snapshot[body_len..].copy_from_slice(&crc.to_le_bytes());
        let mut fresh = Engine::new(1);
        assert_eq!(load(fresh.db_mut(), &snapshot, 1), Err(RdbError::BadMagic));
    }

    #[test]
    fn empty_db_roundtrips() {
        let e = Engine::new(1);
        let snapshot = save(e.db());
        let mut e2 = Engine::new(2);
        assert_eq!(load(e2.db_mut(), &snapshot, 2), Ok(0));
        assert!(e2.db().is_empty());
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX] {
            let mut buf = Vec::new();
            put_len(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_len(&buf, &mut pos), Ok(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn crc32_known_vector() {
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
