//! Skip list for sorted sets, after Redis's `t_zset.c`.
//!
//! Ordered by `(score, member)` with per-link spans so rank queries
//! (`ZRANK`, `ZRANGE` by index) are O(log n). Nodes live in an arena and
//! link by index, keeping the structure safe-Rust without reference
//! gymnastics.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::sds::Sds;

/// Maximum tower height (Redis `ZSKIPLIST_MAXLEVEL` is 32; 24 is ample for
/// the sizes simulated here while keeping headers small).
const MAX_LEVEL: usize = 24;
/// Probability of promoting a node one more level (Redis uses 0.25).
const P: f64 = 0.25;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Link {
    forward: usize,
    /// Number of elements this link skips over (inclusive of the target).
    span: usize,
}

#[derive(Debug, Clone)]
struct Node {
    member: Sds,
    score: f64,
    links: Vec<Link>,
    backward: usize,
}

/// A skip list of `(score, member)` pairs, unique by member at a given
/// score position (member uniqueness is enforced by the owning `ZSet`'s
/// dict, as in Redis).
#[derive(Debug, Clone)]
pub struct SkipList {
    /// Arena of nodes; index 0 is the header (no member).
    nodes: Vec<Node>,
    /// Recycled arena slots.
    free: Vec<usize>,
    level: usize,
    len: usize,
    rng: StdRng,
}

impl SkipList {
    /// Create an empty list. `seed` fixes the level-generation stream so
    /// runs are reproducible.
    pub fn new(seed: u64) -> Self {
        let header = Node {
            member: Sds::new(),
            score: f64::NEG_INFINITY,
            links: (0..MAX_LEVEL)
                .map(|_| Link {
                    forward: NIL,
                    span: 0,
                })
                .collect(),
            backward: NIL,
        };
        SkipList {
            nodes: vec![header],
            free: Vec::new(),
            level: 1,
            len: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn random_level(&mut self) -> usize {
        let mut level = 1;
        while level < MAX_LEVEL && self.rng.gen_range(0.0..1.0) < P {
            level += 1;
        }
        level
    }

    /// Ordering used throughout: by score, then lexicographically by member.
    #[inline]
    fn precedes(score_a: f64, member_a: &[u8], score_b: f64, member_b: &[u8]) -> bool {
        score_a < score_b || (score_a == score_b && member_a < member_b)
    }

    /// Insert a `(score, member)` pair. The caller (the ZSet layer)
    /// guarantees the member is not already present.
    // Levels index `update`, `rank`, and the arena simultaneously; index
    // loops are clearer than zipped iterators here.
    #[allow(clippy::needless_range_loop)]
    pub fn insert(&mut self, score: f64, member: Sds) {
        let mut update = [0usize; MAX_LEVEL]; // last node before insert point per level
        let mut rank = [0usize; MAX_LEVEL]; // rank of that node per level

        let mut x = 0;
        for lvl in (0..self.level).rev() {
            rank[lvl] = if lvl == self.level - 1 {
                0
            } else {
                rank[lvl + 1]
            };
            loop {
                let fwd = self.nodes[x].links[lvl].forward;
                if fwd == NIL {
                    break;
                }
                let f = &self.nodes[fwd];
                if Self::precedes(f.score, &f.member, score, &member) {
                    rank[lvl] += self.nodes[x].links[lvl].span;
                    x = fwd;
                } else {
                    break;
                }
            }
            update[lvl] = x;
        }

        let new_level = self.random_level();
        if new_level > self.level {
            for item in update.iter_mut().take(new_level).skip(self.level) {
                *item = 0;
            }
            for lvl in self.level..new_level {
                rank[lvl] = 0;
                // Freshly activated header links have no forward node yet;
                // the invariant (NIL ⇒ span 0) already holds.
                debug_assert_eq!(self.nodes[0].links[lvl].forward, NIL);
            }
            self.level = new_level;
        }

        let node = Node {
            member,
            score,
            links: (0..new_level)
                .map(|_| Link {
                    forward: NIL,
                    span: 0,
                })
                .collect(),
            backward: NIL,
        };
        let idx = if let Some(slot) = self.free.pop() {
            self.nodes[slot] = node;
            slot
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        };

        for lvl in 0..new_level {
            let prev = update[lvl];
            let next = self.nodes[prev].links[lvl].forward;
            self.nodes[idx].links[lvl].forward = next;
            let prev_span = self.nodes[prev].links[lvl].span;
            // rank[0] is the rank of the node immediately before `idx`.
            let new_span_prev = rank[0] + 1 - rank[lvl];
            // Invariant: links with no forward node always carry span 0.
            self.nodes[idx].links[lvl].span = if next == NIL {
                0
            } else {
                prev_span + 1 - new_span_prev
            };
            self.nodes[prev].links[lvl].span = new_span_prev;
            self.nodes[prev].links[lvl].forward = idx;
        }
        // Levels above the new node's height just gained one skipped element.
        for lvl in new_level..self.level {
            let link = &mut self.nodes[update[lvl]].links[lvl];
            if link.forward != NIL {
                link.span += 1;
            }
        }

        self.nodes[idx].backward = if update[0] == 0 { NIL } else { update[0] };
        let next0 = self.nodes[idx].links[0].forward;
        if next0 != NIL {
            self.nodes[next0].backward = idx;
        }
        self.len += 1;
    }

    /// Remove a `(score, member)` pair. Returns true if it was present.
    #[allow(clippy::needless_range_loop)]
    pub fn delete(&mut self, score: f64, member: &[u8]) -> bool {
        let mut update = [0usize; MAX_LEVEL];
        let mut x = 0;
        for lvl in (0..self.level).rev() {
            loop {
                let fwd = self.nodes[x].links[lvl].forward;
                if fwd == NIL {
                    break;
                }
                let f = &self.nodes[fwd];
                if Self::precedes(f.score, &f.member, score, member) {
                    x = fwd;
                } else {
                    break;
                }
            }
            update[lvl] = x;
        }
        let target = self.nodes[x].links[0].forward;
        if target == NIL {
            return false;
        }
        {
            let t = &self.nodes[target];
            if t.score != score || &*t.member != member {
                return false;
            }
        }

        for lvl in 0..self.level {
            let prev = update[lvl];
            if self.nodes[prev].links[lvl].forward == target {
                let target_span = self.nodes[target].links[lvl].span;
                let target_fwd = self.nodes[target].links[lvl].forward;
                let link = &mut self.nodes[prev].links[lvl];
                link.forward = target_fwd;
                link.span = if target_fwd == NIL {
                    0
                } else {
                    link.span + target_span - 1
                };
            } else if self.nodes[prev].links[lvl].forward != NIL {
                self.nodes[prev].links[lvl].span -= 1;
            }
        }
        let next0 = self.nodes[target].links[0].forward;
        if next0 != NIL {
            self.nodes[next0].backward = self.nodes[target].backward;
        }
        while self.level > 1 && self.nodes[0].links[self.level - 1].forward == NIL {
            self.level -= 1;
        }
        self.free.push(target);
        self.len -= 1;
        true
    }

    /// 0-based rank of a member with the given score, if present.
    pub fn rank(&self, score: f64, member: &[u8]) -> Option<usize> {
        let mut x = 0;
        let mut rank = 0usize;
        for lvl in (0..self.level).rev() {
            loop {
                let fwd = self.nodes[x].links[lvl].forward;
                if fwd == NIL {
                    break;
                }
                let f = &self.nodes[fwd];
                let go = f.score < score || (f.score == score && f.member.as_bytes() <= member);
                if go {
                    rank += self.nodes[x].links[lvl].span;
                    x = fwd;
                } else {
                    break;
                }
                if self.nodes[x].score == score && &*self.nodes[x].member == member {
                    return Some(rank - 1);
                }
            }
        }
        None
    }

    /// The `(score, member)` at 0-based rank `r`.
    pub fn by_rank(&self, r: usize) -> Option<(f64, &Sds)> {
        if r >= self.len {
            return None;
        }
        let target = r + 1; // spans are 1-based
        let mut x = 0;
        let mut traversed = 0;
        for lvl in (0..self.level).rev() {
            loop {
                let link = &self.nodes[x].links[lvl];
                if link.forward != NIL && traversed + link.span <= target {
                    traversed += link.span;
                    x = link.forward;
                } else {
                    break;
                }
            }
            if traversed == target {
                let n = &self.nodes[x];
                return Some((n.score, &n.member));
            }
        }
        None
    }

    /// Iterate in order over all `(score, member)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, &Sds)> {
        let mut x = self.nodes[0].links[0].forward;
        std::iter::from_fn(move || {
            if x == NIL {
                return None;
            }
            let n = &self.nodes[x];
            x = n.links[0].forward;
            Some((n.score, &n.member))
        })
    }

    /// All members with `min <= score <= max`, in order.
    pub fn range_by_score(&self, min: f64, max: f64) -> Vec<(f64, &Sds)> {
        // Skip to the first candidate using the index levels.
        let mut x = 0;
        for lvl in (0..self.level).rev() {
            loop {
                let fwd = self.nodes[x].links[lvl].forward;
                if fwd != NIL && self.nodes[fwd].score < min {
                    x = fwd;
                } else {
                    break;
                }
            }
        }
        let mut out = Vec::new();
        let mut cur = self.nodes[x].links[0].forward;
        while cur != NIL {
            let n = &self.nodes[cur];
            if n.score > max {
                break;
            }
            out.push((n.score, &n.member));
            cur = n.links[0].forward;
        }
        out
    }

    /// Count elements with `min <= score <= max`.
    pub fn count_by_score(&self, min: f64, max: f64) -> usize {
        self.range_by_score(min, max).len()
    }

    /// Check internal invariants (test support): ordering, spans, len.
    pub fn check_invariants(&self) {
        // Order and backward pointers on level 0.
        let mut prev = 0usize;
        let mut x = self.nodes[0].links[0].forward;
        let mut count = 0;
        while x != NIL {
            let n = &self.nodes[x];
            if prev != 0 {
                let p = &self.nodes[prev];
                assert!(
                    Self::precedes(p.score, &p.member, n.score, &n.member),
                    "ordering violated"
                );
                assert_eq!(n.backward, prev, "backward pointer wrong");
            } else {
                assert_eq!(n.backward, NIL);
            }
            prev = x;
            x = n.links[0].forward;
            count += 1;
        }
        assert_eq!(count, self.len, "len mismatch");
        // Span consistency: walking any level's spans must agree with rank.
        for lvl in 0..self.level {
            let mut x = 0;
            let mut pos = 0usize;
            loop {
                let link = &self.nodes[x].links[lvl];
                if link.forward == NIL {
                    break;
                }
                pos += link.span;
                x = link.forward;
                let r = self
                    .rank(self.nodes[x].score, &self.nodes[x].member)
                    .expect("node must have a rank");
                assert_eq!(pos - 1, r, "span walk disagrees with rank at level {lvl}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sl(pairs: &[(f64, &str)]) -> SkipList {
        let mut s = SkipList::new(42);
        for &(score, m) in pairs {
            s.insert(score, Sds::from(m));
        }
        s
    }

    #[test]
    fn insert_orders_by_score_then_member() {
        let s = sl(&[(3.0, "c"), (1.0, "a"), (2.0, "b"), (2.0, "a")]);
        let items: Vec<(f64, String)> = s
            .iter()
            .map(|(sc, m)| (sc, String::from_utf8_lossy(m).into_owned()))
            .collect();
        assert_eq!(
            items,
            vec![
                (1.0, "a".into()),
                (2.0, "a".into()),
                (2.0, "b".into()),
                (3.0, "c".into())
            ]
        );
        s.check_invariants();
    }

    #[test]
    fn rank_and_by_rank_agree() {
        let mut s = SkipList::new(7);
        for i in 0..200 {
            s.insert(i as f64, Sds::from(format!("m{i:04}").as_str()));
        }
        s.check_invariants();
        for i in 0..200 {
            let m = format!("m{i:04}");
            assert_eq!(s.rank(i as f64, m.as_bytes()), Some(i), "rank of {m}");
            let (score, member) = s.by_rank(i).unwrap();
            assert_eq!(score, i as f64);
            assert_eq!(member.as_bytes(), m.as_bytes());
        }
        assert_eq!(s.by_rank(200), None);
        assert_eq!(s.rank(5.0, b"nope"), None);
    }

    #[test]
    fn delete_maintains_structure() {
        let mut s = SkipList::new(11);
        for i in 0..100 {
            s.insert((i % 10) as f64, Sds::from(format!("m{i:03}").as_str()));
        }
        s.check_invariants();
        // Delete every other element.
        for i in (0..100).step_by(2) {
            assert!(s.delete((i % 10) as f64, format!("m{i:03}").as_bytes()));
        }
        assert_eq!(s.len(), 50);
        s.check_invariants();
        // Deleting a missing element fails cleanly.
        assert!(!s.delete(0.0, b"m000"));
        assert!(!s.delete(99.0, b"zzz"));
        s.check_invariants();
    }

    #[test]
    fn range_by_score_inclusive() {
        let s = sl(&[(1.0, "a"), (2.0, "b"), (3.0, "c"), (4.0, "d")]);
        let r: Vec<&str> = s
            .range_by_score(2.0, 3.0)
            .into_iter()
            .map(|(_, m)| std::str::from_utf8(m).unwrap())
            .collect();
        assert_eq!(r, vec!["b", "c"]);
        assert_eq!(s.count_by_score(f64::NEG_INFINITY, f64::INFINITY), 4);
        assert_eq!(s.count_by_score(10.0, 20.0), 0);
    }

    #[test]
    fn empty_list_behaviour() {
        let s = SkipList::new(1);
        assert!(s.is_empty());
        assert_eq!(s.by_rank(0), None);
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.range_by_score(0.0, 100.0).len(), 0);
        s.check_invariants();
    }

    #[test]
    fn arena_slots_are_recycled() {
        let mut s = SkipList::new(3);
        for i in 0..50 {
            s.insert(i as f64, Sds::from(format!("a{i}").as_str()));
        }
        let arena_before = s.nodes.len();
        for i in 0..50 {
            assert!(s.delete(i as f64, format!("a{i}").as_bytes()));
        }
        for i in 0..50 {
            s.insert(i as f64, Sds::from(format!("b{i}").as_str()));
        }
        assert_eq!(s.nodes.len(), arena_before, "arena should not grow");
        s.check_invariants();
    }

    #[test]
    fn negative_and_fractional_scores() {
        let s = sl(&[(-1.5, "n"), (0.0, "z"), (0.25, "q")]);
        let items: Vec<f64> = s.iter().map(|(sc, _)| sc).collect();
        assert_eq!(items, vec![-1.5, 0.0, 0.25]);
        s.check_invariants();
    }
}
