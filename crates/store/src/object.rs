//! The value object model, after Redis's `robj`.
//!
//! Every key maps to an [`RObj`]: a string (with the shared integer-encoding
//! fast path), a list, a set (intset- or dict-encoded, with automatic
//! conversion), a hash, or a sorted set (dict + skiplist, kept in lockstep).

use std::collections::VecDeque;

use crate::dict::Dict;
use crate::intset::IntSet;
use crate::sds::Sds;
use crate::skiplist::SkipList;

/// Max intset cardinality before a set converts to dict encoding
/// (Redis `set-max-intset-entries`).
pub const SET_MAX_INTSET_ENTRIES: usize = 512;

/// A set, in one of its two encodings.
#[derive(Debug, Clone)]
pub enum SetObj {
    /// Compact sorted-integer encoding.
    Ints(IntSet),
    /// General hash-table encoding (values are unit).
    Dict(Dict<()>),
}

impl Default for SetObj {
    fn default() -> Self {
        SetObj::Ints(IntSet::new())
    }
}

impl SetObj {
    /// Create an empty set (intset-encoded).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        match self {
            SetObj::Ints(s) => s.len(),
            SetObj::Dict(d) => d.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True while intset-encoded.
    pub fn is_intset(&self) -> bool {
        matches!(self, SetObj::Ints(_))
    }

    fn convert_to_dict(&mut self) {
        if let SetObj::Ints(ints) = self {
            let mut d = Dict::new();
            for v in ints.iter() {
                d.insert(v.to_string().as_bytes(), ());
            }
            *self = SetObj::Dict(d);
        }
    }

    /// Add a member. Returns true if newly added. Converts encodings when a
    /// non-integer member arrives or the intset grows too large.
    pub fn add(&mut self, member: &[u8]) -> bool {
        match self {
            SetObj::Ints(ints) => {
                if let Some(v) = Sds::from_bytes(member).parse_i64() {
                    let added = ints.insert(v);
                    if ints.len() > SET_MAX_INTSET_ENTRIES {
                        self.convert_to_dict();
                    }
                    added
                } else {
                    self.convert_to_dict();
                    self.add(member)
                }
            }
            SetObj::Dict(d) => d.insert(member, ()).is_none(),
        }
    }

    /// Remove a member. Returns true if it was present.
    pub fn remove(&mut self, member: &[u8]) -> bool {
        match self {
            SetObj::Ints(ints) => match Sds::from_bytes(member).parse_i64() {
                Some(v) => ints.remove(v),
                None => false,
            },
            SetObj::Dict(d) => d.remove(member).is_some(),
        }
    }

    /// Membership test.
    pub fn contains(&self, member: &[u8]) -> bool {
        match self {
            SetObj::Ints(ints) => Sds::from_bytes(member)
                .parse_i64()
                .is_some_and(|v| ints.contains(v)),
            SetObj::Dict(d) => d.contains(member),
        }
    }

    /// All members as owned byte strings (intset members are rendered as
    /// decimal, as Redis does).
    pub fn members(&self) -> Vec<Vec<u8>> {
        match self {
            SetObj::Ints(ints) => ints.iter().map(|v| v.to_string().into_bytes()).collect(),
            SetObj::Dict(d) => d.iter().map(|(k, _)| k.to_vec()).collect(),
        }
    }
}

/// A sorted set: member→score dict plus a score-ordered skiplist, mutated
/// in lockstep exactly as Redis's zset does.
#[derive(Debug, Clone)]
pub struct ZSet {
    dict: Dict<f64>,
    list: SkipList,
}

impl ZSet {
    /// Create an empty sorted set. `seed` fixes skiplist level choices.
    pub fn new(seed: u64) -> Self {
        ZSet {
            dict: Dict::new(),
            list: SkipList::new(seed),
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.dict.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.dict.is_empty()
    }

    /// Insert or update a member's score. Returns true if newly added.
    pub fn add(&mut self, member: &[u8], score: f64) -> bool {
        if let Some(&old) = self.dict.get(member) {
            if old != score {
                // Same-member score change: remove + reinsert in the list.
                assert!(self.list.delete(old, member));
                self.list.insert(score, Sds::from_bytes(member));
                self.dict.insert(member, score);
            }
            false
        } else {
            self.dict.insert(member, score);
            self.list.insert(score, Sds::from_bytes(member));
            true
        }
    }

    /// Remove a member. Returns true if it was present.
    pub fn remove(&mut self, member: &[u8]) -> bool {
        match self.dict.remove(member) {
            Some(score) => {
                assert!(self.list.delete(score, member));
                true
            }
            None => false,
        }
    }

    /// A member's score.
    pub fn score(&self, member: &[u8]) -> Option<f64> {
        self.dict.get(member).copied()
    }

    /// A member's 0-based rank by ascending `(score, member)`.
    pub fn rank(&self, member: &[u8]) -> Option<usize> {
        let score = self.score(member)?;
        self.list.rank(score, member)
    }

    /// Members in rank range `[start, stop]` (inclusive, clamped).
    pub fn range(&self, start: usize, stop: usize) -> Vec<(Vec<u8>, f64)> {
        let mut out = Vec::new();
        let mut r = start;
        while r <= stop {
            match self.list.by_rank(r) {
                Some((score, member)) => out.push((member.as_bytes().to_vec(), score)),
                None => break,
            }
            r += 1;
        }
        out
    }

    /// One cursor step of a guaranteed-coverage member scan (`ZSCAN`).
    pub fn scan(&self, cursor: u64, mut emit: impl FnMut(&[u8], f64)) -> u64 {
        self.dict.scan(cursor, |m, &score| emit(m, score))
    }

    /// Members with scores in `[min, max]`.
    pub fn range_by_score(&self, min: f64, max: f64) -> Vec<(Vec<u8>, f64)> {
        self.list
            .range_by_score(min, max)
            .into_iter()
            .map(|(s, m)| (m.as_bytes().to_vec(), s))
            .collect()
    }
}

/// A value stored at a key.
///
/// Variant sizes differ (a `ZSet` carries a dict and a skiplist header),
/// but objects live behind the keyspace dict's allocation, so boxing the
/// large variants would only add indirection on the hot SET/GET path.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
pub enum RObj {
    /// A raw byte string.
    Str(Sds),
    /// An integer-encoded string (Redis `OBJ_ENCODING_INT`).
    Int(i64),
    /// A list (deque of strings).
    List(VecDeque<Sds>),
    /// A set.
    Set(SetObj),
    /// A field→value hash.
    Hash(Dict<Sds>),
    /// A sorted set.
    ZSet(ZSet),
}

impl RObj {
    /// Build a string object, using the integer encoding when possible.
    pub fn string(bytes: &[u8]) -> RObj {
        match Sds::from_bytes(bytes).parse_i64() {
            Some(v) => RObj::Int(v),
            None => RObj::Str(Sds::from_bytes(bytes)),
        }
    }

    /// The `TYPE` command's name for this object.
    pub fn type_name(&self) -> &'static str {
        match self {
            RObj::Str(_) | RObj::Int(_) => "string",
            RObj::List(_) => "list",
            RObj::Set(_) => "set",
            RObj::Hash(_) => "hash",
            RObj::ZSet(_) => "zset",
        }
    }

    /// True for either string representation.
    pub fn is_string(&self) -> bool {
        matches!(self, RObj::Str(_) | RObj::Int(_))
    }

    /// Render a string-typed object as bytes (panics on other types;
    /// command code checks types first, as Redis does with `checkType`).
    pub fn as_string_bytes(&self) -> Vec<u8> {
        match self {
            RObj::Str(s) => s.as_bytes().to_vec(),
            RObj::Int(v) => v.to_string().into_bytes(),
            other => panic!("as_string_bytes on {}", other.type_name()),
        }
    }

    /// Approximate payload size in bytes, used by the CPU-cost model (a
    /// SET of a 4 KiB value costs more than a 16-byte one).
    pub fn payload_len(&self) -> usize {
        match self {
            RObj::Str(s) => s.len(),
            RObj::Int(_) => 8,
            RObj::List(l) => l.iter().map(Sds::len).sum(),
            RObj::Set(s) => match s {
                SetObj::Ints(i) => i.memory_usage(),
                SetObj::Dict(d) => d.iter().map(|(k, _)| k.len()).sum(),
            },
            RObj::Hash(h) => h.iter().map(|(k, v)| k.len() + v.len()).sum(),
            RObj::ZSet(z) => z
                .range(0, usize::MAX - 1)
                .iter()
                .map(|(m, _)| m.len() + 8)
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_objects_integer_encode() {
        assert!(matches!(RObj::string(b"12345"), RObj::Int(12345)));
        assert!(matches!(RObj::string(b"hello"), RObj::Str(_)));
        assert!(matches!(RObj::string(b"012"), RObj::Str(_)));
        assert_eq!(RObj::string(b"99").as_string_bytes(), b"99");
        assert_eq!(RObj::string(b"abc").as_string_bytes(), b"abc");
    }

    #[test]
    fn set_converts_on_non_integer_member() {
        let mut s = SetObj::new();
        assert!(s.add(b"1"));
        assert!(s.add(b"2"));
        assert!(s.is_intset());
        assert!(s.add(b"apple"));
        assert!(!s.is_intset());
        // All members survive the conversion.
        assert!(s.contains(b"1"));
        assert!(s.contains(b"2"));
        assert!(s.contains(b"apple"));
        assert!(!s.add(b"1"), "duplicate after conversion");
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn set_converts_on_size_threshold() {
        let mut s = SetObj::new();
        for i in 0..=SET_MAX_INTSET_ENTRIES as i64 {
            s.add(i.to_string().as_bytes());
        }
        assert!(!s.is_intset());
        assert_eq!(s.len(), SET_MAX_INTSET_ENTRIES + 1);
        assert!(s.contains(b"0"));
        assert!(s.contains(b"512"));
    }

    #[test]
    fn set_remove_both_encodings() {
        let mut s = SetObj::new();
        s.add(b"7");
        assert!(s.remove(b"7"));
        assert!(!s.remove(b"7"));
        assert!(!s.remove(b"pear"), "non-integer can't be in an intset");
        s.add(b"pear");
        assert!(s.remove(b"pear"));
    }

    #[test]
    fn zset_add_update_remove() {
        let mut z = ZSet::new(5);
        assert!(z.add(b"a", 1.0));
        assert!(z.add(b"b", 2.0));
        assert!(!z.add(b"a", 3.0), "update is not an add");
        assert_eq!(z.score(b"a"), Some(3.0));
        assert_eq!(z.rank(b"b"), Some(0));
        assert_eq!(z.rank(b"a"), Some(1));
        assert!(z.remove(b"a"));
        assert!(!z.remove(b"a"));
        assert_eq!(z.len(), 1);
    }

    #[test]
    fn zset_range_queries() {
        let mut z = ZSet::new(5);
        for (m, s) in [("a", 1.0), ("b", 2.0), ("c", 3.0), ("d", 4.0)] {
            z.add(m.as_bytes(), s);
        }
        let r = z.range(1, 2);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].0, b"b");
        assert_eq!(r[1].0, b"c");
        let r = z.range_by_score(2.0, 3.5);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].0, b"b");
        // Out-of-range start yields empty.
        assert!(z.range(10, 20).is_empty());
    }

    #[test]
    fn type_names() {
        assert_eq!(RObj::string(b"x").type_name(), "string");
        assert_eq!(RObj::Int(1).type_name(), "string");
        assert_eq!(RObj::List(VecDeque::new()).type_name(), "list");
        assert_eq!(RObj::Set(SetObj::new()).type_name(), "set");
        assert_eq!(RObj::Hash(Dict::new()).type_name(), "hash");
        assert_eq!(RObj::ZSet(ZSet::new(1)).type_name(), "zset");
    }
}
