//! RESP2 — the REdis Serialization Protocol.
//!
//! SKV keeps Redis's wire protocol (clients are unchanged); commands arrive
//! as arrays of bulk strings and replies use the full RESP2 type set. The
//! decoder is incremental: it consumes complete frames from a byte buffer
//! and reports how many bytes each frame used, so a transport can deliver
//! arbitrary fragments.

use std::fmt;

/// A RESP2 value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resp {
    /// `+OK\r\n`
    Simple(String),
    /// `-ERR ...\r\n`
    Error(String),
    /// `:42\r\n`
    Int(i64),
    /// `$5\r\nhello\r\n`
    Bulk(Vec<u8>),
    /// `$-1\r\n`
    NullBulk,
    /// `*N\r\n...`
    Array(Vec<Resp>),
    /// `*-1\r\n`
    NullArray,
}

/// Decoder outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decoded {
    /// A complete frame and the bytes it consumed.
    Frame(Resp, usize),
    /// More bytes are needed.
    Incomplete,
    /// The input violates the protocol.
    ProtocolError(String),
}

impl Resp {
    /// The canonical `+OK` reply.
    pub fn ok() -> Resp {
        Resp::Simple("OK".into())
    }

    /// An `-ERR`-prefixed error reply.
    pub fn err(msg: impl fmt::Display) -> Resp {
        Resp::Error(format!("ERR {msg}"))
    }

    /// The `WRONGTYPE` error Redis returns on type mismatches.
    pub fn wrongtype() -> Resp {
        Resp::Error("WRONGTYPE Operation against a key holding the wrong kind of value".into())
    }

    /// Build a command frame: an array of bulk strings.
    pub fn command<I, B>(parts: I) -> Resp
    where
        I: IntoIterator<Item = B>,
        B: AsRef<[u8]>,
    {
        Resp::Array(
            parts
                .into_iter()
                .map(|p| Resp::Bulk(p.as_ref().to_vec()))
                .collect(),
        )
    }

    /// True for `-...` replies.
    pub fn is_error(&self) -> bool {
        matches!(self, Resp::Error(_))
    }

    /// Serialize to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len_hint());
        self.encode_into(&mut out);
        out
    }

    fn encoded_len_hint(&self) -> usize {
        match self {
            Resp::Bulk(b) => b.len() + 16,
            Resp::Array(items) => items.iter().map(Resp::encoded_len_hint).sum::<usize>() + 16,
            _ => 32,
        }
    }

    /// Serialize, appending to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Resp::Simple(s) => {
                out.push(b'+');
                out.extend_from_slice(s.as_bytes());
                out.extend_from_slice(b"\r\n");
            }
            Resp::Error(s) => {
                out.push(b'-');
                out.extend_from_slice(s.as_bytes());
                out.extend_from_slice(b"\r\n");
            }
            Resp::Int(v) => {
                out.push(b':');
                out.extend_from_slice(v.to_string().as_bytes());
                out.extend_from_slice(b"\r\n");
            }
            Resp::Bulk(b) => {
                out.push(b'$');
                out.extend_from_slice(b.len().to_string().as_bytes());
                out.extend_from_slice(b"\r\n");
                out.extend_from_slice(b);
                out.extend_from_slice(b"\r\n");
            }
            Resp::NullBulk => out.extend_from_slice(b"$-1\r\n"),
            Resp::Array(items) => {
                out.push(b'*');
                out.extend_from_slice(items.len().to_string().as_bytes());
                out.extend_from_slice(b"\r\n");
                for item in items {
                    item.encode_into(out);
                }
            }
            Resp::NullArray => out.extend_from_slice(b"*-1\r\n"),
        }
    }

    /// Decode one frame from the front of `buf`.
    pub fn decode(buf: &[u8]) -> Decoded {
        match parse(buf) {
            Ok(Some((v, used))) => Decoded::Frame(v, used),
            Ok(None) => Decoded::Incomplete,
            Err(e) => Decoded::ProtocolError(e),
        }
    }

    /// Interpret this value as a command (array of bulk strings), returning
    /// the argument vector.
    pub fn into_command_args(self) -> Result<Vec<Vec<u8>>, String> {
        let Resp::Array(items) = self else {
            return Err("expected array".into());
        };
        if items.is_empty() {
            return Err("empty command".into());
        }
        items
            .into_iter()
            .map(|item| match item {
                Resp::Bulk(b) => Ok(b),
                other => Err(format!("expected bulk string, got {other:?}")),
            })
            .collect()
    }
}

type ParseResult = Result<Option<(Resp, usize)>, String>;

/// Find `\r\n` starting at `from`; return the index of `\r`.
fn find_crlf(buf: &[u8], from: usize) -> Option<usize> {
    buf[from..]
        .windows(2)
        .position(|w| w == b"\r\n")
        .map(|p| p + from)
}

fn parse_line(buf: &[u8], from: usize) -> Result<Option<(&[u8], usize)>, String> {
    match find_crlf(buf, from) {
        Some(cr) => Ok(Some((&buf[from..cr], cr + 2))),
        None => Ok(None),
    }
}

fn parse_int_line(buf: &[u8], from: usize) -> Result<Option<(i64, usize)>, String> {
    let Some((line, next)) = parse_line(buf, from)? else {
        return Ok(None);
    };
    let s = std::str::from_utf8(line).map_err(|_| "non-utf8 length".to_string())?;
    let v: i64 = s.parse().map_err(|_| format!("bad integer: {s:?}"))?;
    Ok(Some((v, next)))
}

fn parse_at(buf: &[u8], at: usize) -> ParseResult {
    if at >= buf.len() {
        return Ok(None);
    }
    match buf[at] {
        b'+' => Ok(parse_line(buf, at + 1)?.map(|(line, next)| {
            (
                Resp::Simple(String::from_utf8_lossy(line).into_owned()),
                next,
            )
        })),
        b'-' => Ok(parse_line(buf, at + 1)?.map(|(line, next)| {
            (
                Resp::Error(String::from_utf8_lossy(line).into_owned()),
                next,
            )
        })),
        b':' => Ok(parse_int_line(buf, at + 1)?.map(|(v, next)| (Resp::Int(v), next))),
        b'$' => {
            let Some((len, next)) = parse_int_line(buf, at + 1)? else {
                return Ok(None);
            };
            if len == -1 {
                return Ok(Some((Resp::NullBulk, next)));
            }
            if len < 0 {
                return Err(format!("bad bulk length {len}"));
            }
            let len = len as usize;
            if buf.len() < next + len + 2 {
                return Ok(None);
            }
            if &buf[next + len..next + len + 2] != b"\r\n" {
                return Err("bulk string not CRLF-terminated".into());
            }
            Ok(Some((
                Resp::Bulk(buf[next..next + len].to_vec()),
                next + len + 2,
            )))
        }
        b'*' => {
            let Some((n, mut next)) = parse_int_line(buf, at + 1)? else {
                return Ok(None);
            };
            if n == -1 {
                return Ok(Some((Resp::NullArray, next)));
            }
            if n < 0 {
                return Err(format!("bad array length {n}"));
            }
            let mut items = Vec::with_capacity(n as usize);
            for _ in 0..n {
                match parse_at(buf, next)? {
                    Some((item, after)) => {
                        items.push(item);
                        next = after;
                    }
                    None => return Ok(None),
                }
            }
            Ok(Some((Resp::Array(items), next)))
        }
        other => Err(format!("unknown type byte {:?}", other as char)),
    }
}

fn parse(buf: &[u8]) -> ParseResult {
    parse_at(buf, 0)
}

/// A stateful frame assembler over a byte stream.
///
/// Feed arbitrary fragments with [`RespStream::feed`]; pull complete frames
/// with [`RespStream::next_frame`].
#[derive(Debug, Default)]
pub struct RespStream {
    buf: Vec<u8>,
    /// consumed prefix length (compacted lazily)
    read: usize,
}

impl RespStream {
    /// Create an empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed.
    pub fn pending_len(&self) -> usize {
        self.buf.len() - self.read
    }

    /// Pull the next complete frame, if any.
    ///
    /// # Errors
    /// Returns the protocol error message if the stream is corrupt; the
    /// caller should drop the connection, as Redis does.
    pub fn next_frame(&mut self) -> Result<Option<Resp>, String> {
        match Resp::decode(&self.buf[self.read..]) {
            Decoded::Frame(v, used) => {
                self.read += used;
                // Compact once half the buffer is dead space.
                if self.read > 4096 && self.read * 2 > self.buf.len() {
                    self.buf.drain(..self.read);
                    self.read = 0;
                }
                Ok(Some(v))
            }
            Decoded::Incomplete => Ok(None),
            Decoded::ProtocolError(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Resp) {
        let bytes = v.encode();
        match Resp::decode(&bytes) {
            Decoded::Frame(out, used) => {
                assert_eq!(&out, v);
                assert_eq!(used, bytes.len());
            }
            other => panic!("decode failed: {other:?}"),
        }
    }

    #[test]
    fn roundtrips_all_types() {
        roundtrip(&Resp::ok());
        roundtrip(&Resp::err("something broke"));
        roundtrip(&Resp::Int(-42));
        roundtrip(&Resp::Int(i64::MAX));
        roundtrip(&Resp::Bulk(b"hello\r\nworld".to_vec()));
        roundtrip(&Resp::Bulk(Vec::new()));
        roundtrip(&Resp::NullBulk);
        roundtrip(&Resp::NullArray);
        roundtrip(&Resp::Array(vec![]));
        roundtrip(&Resp::Array(vec![
            Resp::Bulk(b"SET".to_vec()),
            Resp::Bulk(b"k".to_vec()),
            Resp::Bulk(vec![0, 1, 2, 255]),
            Resp::Array(vec![Resp::Int(7), Resp::NullBulk]),
        ]));
    }

    #[test]
    fn known_wire_encodings() {
        assert_eq!(Resp::ok().encode(), b"+OK\r\n");
        assert_eq!(Resp::Int(42).encode(), b":42\r\n");
        assert_eq!(Resp::Bulk(b"hi".to_vec()).encode(), b"$2\r\nhi\r\n");
        assert_eq!(Resp::NullBulk.encode(), b"$-1\r\n");
        assert_eq!(
            Resp::command(["GET", "key"]).encode(),
            b"*2\r\n$3\r\nGET\r\n$3\r\nkey\r\n"
        );
    }

    #[test]
    fn incomplete_frames_wait() {
        let full = Resp::command(["SET", "key", "value"]).encode();
        for cut in 0..full.len() {
            assert_eq!(
                Resp::decode(&full[..cut]),
                Decoded::Incomplete,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn protocol_errors_detected() {
        assert!(matches!(
            Resp::decode(b"?bogus\r\n"),
            Decoded::ProtocolError(_)
        ));
        assert!(matches!(
            Resp::decode(b"$abc\r\n"),
            Decoded::ProtocolError(_)
        ));
        assert!(matches!(
            Resp::decode(b"$-5\r\n"),
            Decoded::ProtocolError(_)
        ));
        assert!(matches!(
            Resp::decode(b"$2\r\nhiXX"),
            Decoded::ProtocolError(_)
        ));
    }

    #[test]
    fn stream_reassembles_fragments() {
        let mut s = RespStream::new();
        let frames: Vec<Resp> = (0..10)
            .map(|i| Resp::command(["SET", &format!("k{i}"), &"v".repeat(i * 7)]))
            .collect();
        let mut wire = Vec::new();
        for f in &frames {
            f.encode_into(&mut wire);
        }
        // Feed in 3-byte fragments.
        let mut got = Vec::new();
        for chunk in wire.chunks(3) {
            s.feed(chunk);
            while let Some(f) = s.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
        assert_eq!(s.pending_len(), 0);
    }

    #[test]
    fn stream_reports_corruption() {
        let mut s = RespStream::new();
        s.feed(b"!nope\r\n");
        assert!(s.next_frame().is_err());
    }

    #[test]
    fn into_command_args() {
        let args = Resp::command(["SET", "k", "v"])
            .into_command_args()
            .unwrap();
        assert_eq!(args, vec![b"SET".to_vec(), b"k".to_vec(), b"v".to_vec()]);
        assert!(Resp::Int(5).into_command_args().is_err());
        assert!(Resp::Array(vec![]).into_command_args().is_err());
        assert!(Resp::Array(vec![Resp::Int(1)]).into_command_args().is_err());
    }
}
