//! The replication backlog, after Redis's `repl_backlog`.
//!
//! The master appends every propagated write command to a fixed-size ring
//! buffer and tracks a monotonically increasing *replication offset* (total
//! bytes ever written). During the initial synchronization phase (paper
//! Figure 8) the master compares the slave's offset with its own: if the
//! missing range is still inside the backlog, it sends just that range
//! (partial resynchronization); otherwise it falls back to a full RDB
//! transfer.

/// Fixed-capacity ring buffer of replication stream bytes.
#[derive(Debug, Clone)]
pub struct Backlog {
    buf: Vec<u8>,
    capacity: usize,
    /// Total bytes ever fed (the master replication offset).
    offset: u64,
    /// Number of valid bytes currently retained (≤ capacity).
    histlen: usize,
    /// Write position within `buf`.
    idx: usize,
}

impl Backlog {
    /// Create a backlog with the given capacity in bytes.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "backlog capacity must be positive");
        Backlog {
            buf: vec![0; capacity],
            capacity,
            offset: 0,
            histlen: 0,
            idx: 0,
        }
    }

    /// The master replication offset: total bytes ever appended.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Bytes currently retained.
    pub fn histlen(&self) -> usize {
        self.histlen
    }

    /// The oldest offset still available for partial resync.
    pub fn first_available_offset(&self) -> u64 {
        self.offset - self.histlen as u64
    }

    /// Append replication stream bytes.
    pub fn feed(&mut self, data: &[u8]) {
        self.offset += data.len() as u64;
        // If the chunk exceeds capacity only its tail survives.
        let data = if data.len() > self.capacity {
            &data[data.len() - self.capacity..]
        } else {
            data
        };
        let first = (self.capacity - self.idx).min(data.len());
        self.buf[self.idx..self.idx + first].copy_from_slice(&data[..first]);
        let rest = data.len() - first;
        if rest > 0 {
            self.buf[..rest].copy_from_slice(&data[first..]);
        }
        self.idx = (self.idx + data.len()) % self.capacity;
        self.histlen = (self.histlen + data.len()).min(self.capacity);
    }

    /// Can a slave at `slave_offset` be served by partial resync?
    pub fn can_serve(&self, slave_offset: u64) -> bool {
        slave_offset >= self.first_available_offset() && slave_offset <= self.offset
    }

    /// The bytes from `from_offset` to the current offset, if retained.
    pub fn range_from(&self, from_offset: u64) -> Option<Vec<u8>> {
        if !self.can_serve(from_offset) {
            return None;
        }
        let want = (self.offset - from_offset) as usize;
        let mut out = Vec::with_capacity(want);
        // The newest `histlen` bytes end at `idx` (exclusive) in ring
        // order, so the range starts `want` bytes back from the write
        // head and spans at most one wrap: one or two slice copies.
        let start = (self.idx + self.capacity - want) % self.capacity;
        let first = want.min(self.capacity - start);
        out.extend_from_slice(&self.buf[start..start + first]);
        out.extend_from_slice(&self.buf[..want - first]);
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feeds_and_serves_ranges() {
        let mut b = Backlog::new(16);
        b.feed(b"hello");
        b.feed(b"world");
        assert_eq!(b.offset(), 10);
        assert_eq!(b.histlen(), 10);
        assert_eq!(b.range_from(0).unwrap(), b"helloworld");
        assert_eq!(b.range_from(5).unwrap(), b"world");
        assert_eq!(b.range_from(10).unwrap(), b"");
    }

    #[test]
    fn wraparound_keeps_newest_bytes() {
        let mut b = Backlog::new(8);
        b.feed(b"abcdefgh"); // fills exactly
        b.feed(b"XY"); // evicts "ab"
        assert_eq!(b.offset(), 10);
        assert_eq!(b.histlen(), 8);
        assert_eq!(b.first_available_offset(), 2);
        assert!(!b.can_serve(1));
        assert_eq!(b.range_from(2).unwrap(), b"cdefghXY");
        assert_eq!(b.range_from(8).unwrap(), b"XY");
    }

    #[test]
    fn oversized_chunk_keeps_tail() {
        let mut b = Backlog::new(4);
        b.feed(b"0123456789");
        assert_eq!(b.offset(), 10);
        assert_eq!(b.histlen(), 4);
        assert_eq!(b.range_from(6).unwrap(), b"6789");
        assert!(b.range_from(5).is_none());
    }

    #[test]
    fn cannot_serve_future_offsets() {
        let mut b = Backlog::new(8);
        b.feed(b"abc");
        assert!(!b.can_serve(4));
        assert!(b.range_from(4).is_none());
    }

    #[test]
    fn many_wraps_stay_consistent() {
        let mut b = Backlog::new(13); // deliberately not a power of two
        let mut reference = Vec::new();
        for i in 0..100u32 {
            let chunk = format!("<{i}>");
            b.feed(chunk.as_bytes());
            reference.extend_from_slice(chunk.as_bytes());
        }
        let total = reference.len() as u64;
        assert_eq!(b.offset(), total);
        for back in 0..=13u64 {
            let from = total - back;
            let got = b.range_from(from).unwrap();
            assert_eq!(got, &reference[from as usize..], "from offset {from}");
        }
        assert!(b.range_from(total - 14).is_none());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = Backlog::new(0);
    }
}
