//! Incrementally rehashed hash table, after Redis's `dict.c`.
//!
//! Redis never rehashes a table in one blocking step: when the load factor
//! crosses a threshold it allocates a second table and migrates a few
//! buckets per operation, so the latency cost of resizing is spread across
//! requests instead of appearing as a tail-latency spike. That property
//! matters for the latency figures this reproduction measures, so the
//! structure is modelled faithfully: two tables, a `rehash_idx` cursor, one
//! bucket-migration step per mutating operation, and an explicit
//! [`Dict::rehash_step`] hook for the server cron to burn idle cycles.

use crate::hash::siphash13;

/// Initial table size (Redis `DICT_HT_INITIAL_SIZE`).
const INITIAL_SIZE: usize = 4;
/// Grow when used/size reaches this ratio.
const GROW_RATIO: f64 = 1.0;
/// Shrink when used/size drops below this ratio (and size > initial).
const SHRINK_RATIO: f64 = 0.1;

type Bucket<V> = Vec<(Box<[u8]>, V)>;

#[derive(Debug, Clone)]
struct Table<V> {
    buckets: Vec<Bucket<V>>,
    used: usize,
}

impl<V> Table<V> {
    fn new(size: usize) -> Self {
        debug_assert!(size.is_power_of_two());
        Table {
            buckets: (0..size).map(|_| Vec::new()).collect(),
            used: 0,
        }
    }

    #[inline]
    fn index(&self, key: &[u8]) -> usize {
        (siphash13(key) as usize) & (self.buckets.len() - 1)
    }
}

/// A hash map from byte-string keys to `V`, with incremental rehashing.
#[derive(Debug, Clone)]
pub struct Dict<V> {
    ht0: Table<V>,
    /// Present while a rehash is in progress; new entries go here.
    ht1: Option<Table<V>>,
    /// Next bucket of `ht0` to migrate.
    rehash_idx: usize,
}

impl<V> Default for Dict<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> Dict<V> {
    /// Create an empty dictionary.
    pub fn new() -> Self {
        Dict {
            ht0: Table::new(INITIAL_SIZE),
            ht1: None,
            rehash_idx: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.ht0.used + self.ht1.as_ref().map_or(0, |t| t.used)
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True while an incremental rehash is in progress.
    pub fn is_rehashing(&self) -> bool {
        self.ht1.is_some()
    }

    /// Total bucket slots across both tables (diagnostics).
    pub fn capacity(&self) -> usize {
        self.ht0.buckets.len() + self.ht1.as_ref().map_or(0, |t| t.buckets.len())
    }

    /// Insert or replace. Returns the previous value if the key existed.
    pub fn insert(&mut self, key: &[u8], value: V) -> Option<V> {
        self.maybe_start_resize();
        self.rehash_step(1);
        // Replace in whichever table currently holds the key.
        if let Some(slot) = self.find_mut(key) {
            return Some(std::mem::replace(slot, value));
        }
        // New entries always go to the newest table.
        let table = self.ht1.as_mut().unwrap_or(&mut self.ht0);
        let idx = table.index(key);
        table.buckets[idx].push((key.to_vec().into_boxed_slice(), value));
        table.used += 1;
        None
    }

    /// Look up a key.
    pub fn get(&self, key: &[u8]) -> Option<&V> {
        let idx = self.ht0.index(key);
        if let Some(v) = self.ht0.buckets[idx]
            .iter()
            .find(|(k, _)| &**k == key)
            .map(|(_, v)| v)
        {
            return Some(v);
        }
        let ht1 = self.ht1.as_ref()?;
        let idx = ht1.index(key);
        ht1.buckets[idx]
            .iter()
            .find(|(k, _)| &**k == key)
            .map(|(_, v)| v)
    }

    /// Mutable lookup (performs a rehash step, as any Redis dict op would).
    pub fn get_mut(&mut self, key: &[u8]) -> Option<&mut V> {
        self.rehash_step(1);
        self.find_mut(key)
    }

    fn find_mut(&mut self, key: &[u8]) -> Option<&mut V> {
        let idx = self.ht0.index(key);
        // (Two lookups to appease the borrow checker without unsafe.)
        if self.ht0.buckets[idx].iter().any(|(k, _)| &**k == key) {
            return self.ht0.buckets[idx]
                .iter_mut()
                .find(|(k, _)| &**k == key)
                .map(|(_, v)| v);
        }
        let ht1 = self.ht1.as_mut()?;
        let idx = ht1.index(key);
        ht1.buckets[idx]
            .iter_mut()
            .find(|(k, _)| &**k == key)
            .map(|(_, v)| v)
    }

    /// True if the key exists.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.get(key).is_some()
    }

    /// Remove a key, returning its value.
    pub fn remove(&mut self, key: &[u8]) -> Option<V> {
        self.rehash_step(1);
        let idx = self.ht0.index(key);
        if let Some(pos) = self.ht0.buckets[idx].iter().position(|(k, _)| &**k == key) {
            let (_, v) = self.ht0.buckets[idx].swap_remove(pos);
            self.ht0.used -= 1;
            self.maybe_start_resize();
            return Some(v);
        }
        if let Some(ht1) = self.ht1.as_mut() {
            let idx = ht1.index(key);
            if let Some(pos) = ht1.buckets[idx].iter().position(|(k, _)| &**k == key) {
                let (_, v) = ht1.buckets[idx].swap_remove(pos);
                ht1.used -= 1;
                return Some(v);
            }
        }
        None
    }

    /// Migrate up to `buckets` buckets from the old table. Called
    /// implicitly by mutating operations and explicitly by the server cron.
    pub fn rehash_step(&mut self, buckets: usize) {
        let Some(ht1) = self.ht1.as_mut() else { return };
        let mut moved = 0;
        while moved < buckets && self.rehash_idx < self.ht0.buckets.len() {
            let bucket = std::mem::take(&mut self.ht0.buckets[self.rehash_idx]);
            for (k, v) in bucket {
                let idx = ht1.index(&k);
                ht1.buckets[idx].push((k, v));
                ht1.used += 1;
                self.ht0.used -= 1;
            }
            self.rehash_idx += 1;
            moved += 1;
        }
        if self.rehash_idx >= self.ht0.buckets.len() {
            // Rehash complete: the new table becomes ht0.
            debug_assert_eq!(self.ht0.used, 0);
            self.ht0 = self.ht1.take().expect("checked above");
            self.rehash_idx = 0;
        }
    }

    fn maybe_start_resize(&mut self) {
        if self.ht1.is_some() {
            return;
        }
        let used = self.ht0.used as f64;
        let size = self.ht0.buckets.len() as f64;
        let target = if used / size >= GROW_RATIO {
            (self.ht0.used * 2).next_power_of_two().max(INITIAL_SIZE)
        } else if used / size < SHRINK_RATIO && self.ht0.buckets.len() > INITIAL_SIZE {
            self.ht0.used.next_power_of_two().max(INITIAL_SIZE)
        } else {
            return;
        };
        if target == self.ht0.buckets.len() {
            return;
        }
        self.ht1 = Some(Table::new(target));
        self.rehash_idx = 0;
    }

    /// Iterate over all entries (order unspecified but deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], &V)> {
        let t0 = self
            .ht0
            .buckets
            .iter()
            .flat_map(|b| b.iter().map(|(k, v)| (&**k, v)));
        let t1 = self.ht1.iter().flat_map(|t| {
            t.buckets
                .iter()
                .flat_map(|b| b.iter().map(|(k, v)| (&**k, v)))
        });
        t0.chain(t1)
    }

    /// Iterate mutably over all values.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&[u8], &mut V)> {
        let t1 = self.ht1.iter_mut().flat_map(|t| {
            t.buckets
                .iter_mut()
                .flat_map(|b| b.iter_mut().map(|(k, v)| (&**k, v)))
        });
        self.ht0
            .buckets
            .iter_mut()
            .flat_map(|b| b.iter_mut().map(|(k, v)| (&**k, v)))
            .chain(t1)
    }

    /// A uniformly-ish random entry, for `RANDOMKEY` and the active expire
    /// cycle. `r` supplies randomness (two draws).
    pub fn random_entry(&self, mut r: impl FnMut(u64) -> u64) -> Option<(&[u8], &V)> {
        if self.is_empty() {
            return None;
        }
        // Sample a non-empty bucket by scanning from a random start.
        let total_buckets = self.capacity();
        let start = r(total_buckets as u64) as usize;
        for i in 0..total_buckets {
            let idx = (start + i) % total_buckets;
            let bucket = if idx < self.ht0.buckets.len() {
                &self.ht0.buckets[idx]
            } else {
                &self
                    .ht1
                    .as_ref()
                    .expect("idx beyond ht0 implies ht1")
                    .buckets[idx - self.ht0.buckets.len()]
            };
            if !bucket.is_empty() {
                let (k, v) = &bucket[r(bucket.len() as u64) as usize];
                return Some((&**k, v));
            }
        }
        None
    }

    /// Remove entries for which `pred` returns false. Returns removed count.
    pub fn retain(&mut self, mut pred: impl FnMut(&[u8], &mut V) -> bool) -> usize {
        let mut removed = 0;
        for bucket in &mut self.ht0.buckets {
            let before = bucket.len();
            bucket.retain_mut(|(k, v)| pred(k, v));
            let delta = before - bucket.len();
            self.ht0.used -= delta;
            removed += delta;
        }
        if let Some(ht1) = self.ht1.as_mut() {
            for bucket in &mut ht1.buckets {
                let before = bucket.len();
                bucket.retain_mut(|(k, v)| pred(k, v));
                let delta = before - bucket.len();
                ht1.used -= delta;
                removed += delta;
            }
        }
        removed
    }

    /// Drop everything, resetting to the initial size.
    pub fn clear(&mut self) {
        *self = Dict::new();
    }

    /// One step of a guaranteed-coverage incremental scan, after Redis's
    /// `dictScan` (Pieter Noordhuis's reverse-binary-iteration algorithm).
    ///
    /// Call with `cursor = 0` to start; feed the returned cursor back in;
    /// the scan is complete when it returns 0. Elements present for the
    /// whole duration of the scan are emitted at least once, even across
    /// incremental rehashes; elements may occasionally be emitted twice.
    pub fn scan(&self, cursor: u64, mut emit: impl FnMut(&[u8], &V)) -> u64 {
        if self.is_empty() {
            return 0;
        }
        let mut v = cursor;
        match &self.ht1 {
            None => {
                let t0 = &self.ht0;
                let m0 = (t0.buckets.len() - 1) as u64;
                for (k, val) in &t0.buckets[(v & m0) as usize] {
                    emit(k, val);
                }
                v |= !m0;
                v = reverse_increment(v);
            }
            Some(ht1) => {
                // Scan both tables; iterate the smaller mask's bucket and
                // all its expansions in the larger table.
                let (small, large) = if self.ht0.buckets.len() <= ht1.buckets.len() {
                    (&self.ht0, ht1)
                } else {
                    (ht1, &self.ht0)
                };
                let m_small = (small.buckets.len() - 1) as u64;
                let m_large = (large.buckets.len() - 1) as u64;
                for (k, val) in &small.buckets[(v & m_small) as usize] {
                    emit(k, val);
                }
                loop {
                    for (k, val) in &large.buckets[(v & m_large) as usize] {
                        emit(k, val);
                    }
                    // Increment the bits not covered by the smaller mask.
                    v |= !m_large;
                    v = reverse_increment(v);
                    if v & (!m_small & m_large) == 0 {
                        break;
                    }
                }
            }
        }
        v
    }
}

/// Increment `v` on its reversed bit pattern (the dictScan cursor step).
fn reverse_increment(v: u64) -> u64 {
    let mut r = v.reverse_bits();
    r = r.wrapping_add(1);
    r.reverse_bits()
}

#[cfg(test)]
// Test-only HashSet: checks *what* iteration yields, never its order.
#[allow(clippy::disallowed_types)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut d: Dict<u32> = Dict::new();
        assert_eq!(d.insert(b"a", 1), None);
        assert_eq!(d.insert(b"b", 2), None);
        assert_eq!(d.insert(b"a", 10), Some(1));
        assert_eq!(d.get(b"a"), Some(&10));
        assert_eq!(d.get(b"b"), Some(&2));
        assert_eq!(d.get(b"c"), None);
        assert_eq!(d.len(), 2);
        assert_eq!(d.remove(b"a"), Some(10));
        assert_eq!(d.remove(b"a"), None);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn grows_through_incremental_rehash() {
        let mut d: Dict<usize> = Dict::new();
        for i in 0..1000 {
            d.insert(format!("key:{i}").as_bytes(), i);
        }
        assert_eq!(d.len(), 1000);
        // Everything must be reachable regardless of rehash state.
        for i in 0..1000 {
            assert_eq!(d.get(format!("key:{i}").as_bytes()), Some(&i), "key {i}");
        }
    }

    #[test]
    fn rehash_eventually_completes() {
        let mut d: Dict<usize> = Dict::new();
        for i in 0..100 {
            d.insert(format!("k{i}").as_bytes(), i);
        }
        // Drive any in-progress rehash to completion.
        for _ in 0..1000 {
            d.rehash_step(16);
        }
        assert!(!d.is_rehashing());
        assert_eq!(d.len(), 100);
        assert_eq!(d.iter().count(), 100);
    }

    #[test]
    fn shrinks_after_mass_delete() {
        let mut d: Dict<usize> = Dict::new();
        for i in 0..1000 {
            d.insert(format!("k{i}").as_bytes(), i);
        }
        for i in 0..995 {
            d.remove(format!("k{i}").as_bytes());
        }
        for _ in 0..1000 {
            d.rehash_step(16);
        }
        // A shrink may have been deferred while an earlier rehash was in
        // flight (as in Redis); the next mutation re-evaluates the ratio.
        d.remove(format!("k{}", 995).as_bytes());
        for _ in 0..1000 {
            d.rehash_step(16);
        }
        assert_eq!(d.len(), 4);
        assert!(
            d.capacity() <= 64,
            "table should shrink, capacity {}",
            d.capacity()
        );
    }

    #[test]
    fn get_during_rehash_sees_both_tables() {
        let mut d: Dict<usize> = Dict::new();
        // Force a rehash to be mid-flight.
        for i in 0..5 {
            d.insert(format!("k{i}").as_bytes(), i);
        }
        assert!(d.is_rehashing() || d.len() == 5);
        for i in 0..5 {
            assert!(d.contains(format!("k{i}").as_bytes()));
        }
    }

    #[test]
    fn iter_sees_everything_once() {
        let mut d: Dict<u32> = Dict::new();
        for i in 0..123u32 {
            d.insert(format!("k{i}").as_bytes(), i);
        }
        let mut seen: Vec<u32> = d.iter().map(|(_, v)| *v).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..123).collect::<Vec<_>>());
    }

    #[test]
    fn retain_filters() {
        let mut d: Dict<u32> = Dict::new();
        for i in 0..100u32 {
            d.insert(format!("k{i}").as_bytes(), i);
        }
        let removed = d.retain(|_, v| *v % 2 == 0);
        assert_eq!(removed, 50);
        assert_eq!(d.len(), 50);
        assert!(d.iter().all(|(_, v)| *v % 2 == 0));
    }

    #[test]
    fn random_entry_returns_valid_entries() {
        let mut d: Dict<u32> = Dict::new();
        assert!(d.random_entry(|n| n / 2).is_none());
        for i in 0..50u32 {
            d.insert(format!("k{i}").as_bytes(), i);
        }
        let mut counter = 7u64;
        for _ in 0..100 {
            let (k, v) = d
                .random_entry(|n| {
                    counter = counter.wrapping_mul(6364136223846793005).wrapping_add(1);
                    counter % n.max(1)
                })
                .unwrap();
            assert_eq!(d.get(k), Some(v));
        }
    }

    #[test]
    fn binary_keys() {
        let mut d: Dict<u8> = Dict::new();
        d.insert(&[0, 1, 2], 1);
        d.insert(&[0, 1, 3], 2);
        d.insert(b"", 3);
        assert_eq!(d.get(&[0, 1, 2]), Some(&1));
        assert_eq!(d.get(&[0, 1, 3]), Some(&2));
        assert_eq!(d.get(b""), Some(&3));
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut d: Dict<Vec<u8>> = Dict::new();
        d.insert(b"x", vec![1]);
        d.get_mut(b"x").unwrap().push(2);
        assert_eq!(d.get(b"x"), Some(&vec![1, 2]));
    }

    #[test]
    fn scan_covers_stable_dict() {
        let mut d: Dict<u32> = Dict::new();
        for i in 0..500u32 {
            d.insert(format!("k{i}").as_bytes(), i);
        }
        for _ in 0..100 {
            d.rehash_step(16); // settle
        }
        let mut seen = std::collections::HashSet::new();
        let mut cursor = 0u64;
        let mut rounds = 0;
        loop {
            cursor = d.scan(cursor, |_, v| {
                seen.insert(*v);
            });
            rounds += 1;
            if cursor == 0 {
                break;
            }
            assert!(rounds < 10_000, "scan must terminate");
        }
        assert_eq!(seen.len(), 500, "every element emitted at least once");
    }

    #[test]
    fn scan_covers_during_rehash() {
        // Start a scan, then grow the table mid-scan: elements present the
        // whole time must still all be emitted.
        let mut d: Dict<u32> = Dict::new();
        for i in 0..64u32 {
            d.insert(format!("k{i}").as_bytes(), i);
        }
        let mut seen = std::collections::HashSet::new();
        let mut cursor = 0u64;
        // A few steps before the mutation.
        for _ in 0..2 {
            cursor = d.scan(cursor, |_, v| {
                seen.insert(*v);
            });
        }
        // Trigger growth (new keys may or may not be seen; originals must).
        for i in 64..256u32 {
            d.insert(format!("k{i}").as_bytes(), i);
        }
        let mut rounds = 0;
        while cursor != 0 {
            cursor = d.scan(cursor, |_, v| {
                seen.insert(*v);
            });
            rounds += 1;
            assert!(rounds < 10_000);
        }
        for i in 0..64u32 {
            assert!(seen.contains(&i), "pre-existing element {i} missed");
        }
    }

    #[test]
    fn scan_on_empty_dict() {
        let d: Dict<u32> = Dict::new();
        let mut count = 0;
        assert_eq!(d.scan(0, |_, _| count += 1), 0);
        assert_eq!(count, 0);
    }

    #[test]
    fn clear_resets() {
        let mut d: Dict<u32> = Dict::new();
        for i in 0..100u32 {
            d.insert(format!("k{i}").as_bytes(), i);
        }
        d.clear();
        assert!(d.is_empty());
        assert_eq!(d.capacity(), INITIAL_SIZE);
    }
}
