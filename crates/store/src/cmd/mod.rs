//! Command table and dispatch, after Redis's `server.c` command table.
//!
//! Each command declares an arity (Redis convention: positive = exact
//! argument count including the command name, negative = minimum) and
//! flags. The `WRITE` flag is what the distributed layer keys replication
//! on: the paper's Host-KV "first checks whether the command can change
//! the value of the data in the storage" (§III-C) — that check is
//! [`CommandSpec::is_write`].

mod bitops;
mod hash_cmds;
pub(crate) mod keyspace;
mod list;
mod scan;
mod server;
mod set;
mod string;
mod zset;

use crate::db::Db;
use crate::resp::Resp;

/// Command flag: may modify the keyspace (must be replicated).
pub const CMD_WRITE: u32 = 1 << 0;
/// Command flag: reads the keyspace only.
pub const CMD_READONLY: u32 = 1 << 1;
/// Command flag: server administration / introspection.
pub const CMD_ADMIN: u32 = 1 << 2;

/// Execution context handed to command handlers.
pub struct ExecCtx<'a> {
    /// The keyspace.
    pub db: &'a mut Db,
    /// Current time in milliseconds (simulated).
    pub now_ms: u64,
    /// Cheap deterministic randomness for `RANDOMKEY`/`SPOP`/zset seeds.
    pub rng_state: &'a mut u64,
}

impl ExecCtx<'_> {
    /// Draw a pseudo-random value in `[0, n)` (LCG; determinism matters
    /// more than quality here).
    pub fn rand_below(&mut self, n: u64) -> u64 {
        *self.rng_state = self
            .rng_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        if n == 0 {
            0
        } else {
            (*self.rng_state >> 16) % n
        }
    }

    /// A fresh seed (for per-zset skiplists).
    pub fn next_seed(&mut self) -> u64 {
        self.rand_below(u64::MAX)
    }
}

type Handler = fn(&mut ExecCtx<'_>, &[Vec<u8>]) -> Resp;

/// A command table entry.
pub struct CommandSpec {
    /// Uppercase command name.
    pub name: &'static str,
    /// Redis arity convention: >0 exact (incl. name), <0 minimum.
    pub arity: i32,
    /// `CMD_*` flags.
    pub flags: u32,
    handler: Handler,
}

impl CommandSpec {
    /// True if the command can modify the keyspace.
    pub fn is_write(&self) -> bool {
        self.flags & CMD_WRITE != 0
    }

    fn arity_ok(&self, argc: usize) -> bool {
        let argc = argc as i32;
        if self.arity >= 0 {
            argc == self.arity
        } else {
            argc >= -self.arity
        }
    }
}

macro_rules! cmd {
    ($name:literal, $arity:literal, $flags:expr, $handler:path) => {
        CommandSpec {
            name: $name,
            arity: $arity,
            flags: $flags,
            handler: $handler,
        }
    };
}

/// The full command table.
pub static COMMANDS: &[CommandSpec] = &[
    // --- server / connection ---
    cmd!("PING", -1, CMD_READONLY, server::ping),
    cmd!("ECHO", 2, CMD_READONLY, server::echo),
    cmd!("SELECT", 2, CMD_READONLY, server::select),
    cmd!("DBSIZE", 1, CMD_READONLY, server::dbsize),
    cmd!("FLUSHDB", 1, CMD_WRITE, server::flushdb),
    cmd!("FLUSHALL", 1, CMD_WRITE, server::flushdb),
    cmd!("COMMAND", -1, CMD_READONLY, server::command),
    cmd!("INFO", -1, CMD_ADMIN, server::info),
    cmd!("TIME", 1, CMD_READONLY, server::time),
    // --- keyspace ---
    cmd!("TYPE", 2, CMD_READONLY, keyspace::type_cmd),
    cmd!("DEL", -2, CMD_WRITE, keyspace::del),
    cmd!("UNLINK", -2, CMD_WRITE, keyspace::del),
    cmd!("EXISTS", -2, CMD_READONLY, keyspace::exists),
    cmd!("EXPIRE", 3, CMD_WRITE, keyspace::expire),
    cmd!("PEXPIRE", 3, CMD_WRITE, keyspace::pexpire),
    cmd!("EXPIREAT", 3, CMD_WRITE, keyspace::expireat),
    cmd!("PEXPIREAT", 3, CMD_WRITE, keyspace::pexpireat),
    cmd!("TTL", 2, CMD_READONLY, keyspace::ttl),
    cmd!("PTTL", 2, CMD_READONLY, keyspace::pttl),
    cmd!("PERSIST", 2, CMD_WRITE, keyspace::persist),
    cmd!("RENAME", 3, CMD_WRITE, keyspace::rename),
    cmd!("RENAMENX", 3, CMD_WRITE, keyspace::renamenx),
    cmd!("KEYS", 2, CMD_READONLY, keyspace::keys),
    cmd!("RANDOMKEY", 1, CMD_READONLY, keyspace::randomkey),
    cmd!("COPY", -3, CMD_WRITE, keyspace::copy),
    cmd!("OBJECT", -2, CMD_READONLY, keyspace::object),
    cmd!("SCAN", -2, CMD_READONLY, scan::scan),
    // --- strings ---
    cmd!("SET", -3, CMD_WRITE, string::set),
    cmd!("SETNX", 3, CMD_WRITE, string::setnx),
    cmd!("SETEX", 4, CMD_WRITE, string::setex),
    cmd!("PSETEX", 4, CMD_WRITE, string::psetex),
    cmd!("GET", 2, CMD_READONLY, string::get),
    cmd!("GETSET", 3, CMD_WRITE, string::getset),
    cmd!("GETDEL", 2, CMD_WRITE, string::getdel),
    cmd!("MSET", -3, CMD_WRITE, string::mset),
    cmd!("MSETNX", -3, CMD_WRITE, string::msetnx),
    cmd!("MGET", -2, CMD_READONLY, string::mget),
    cmd!("APPEND", 3, CMD_WRITE, string::append),
    cmd!("STRLEN", 2, CMD_READONLY, string::strlen),
    cmd!("INCR", 2, CMD_WRITE, string::incr),
    cmd!("DECR", 2, CMD_WRITE, string::decr),
    cmd!("INCRBY", 3, CMD_WRITE, string::incrby),
    cmd!("DECRBY", 3, CMD_WRITE, string::decrby),
    cmd!("GETRANGE", 4, CMD_READONLY, string::getrange),
    cmd!("SETRANGE", 4, CMD_WRITE, string::setrange),
    cmd!("GETEX", -2, CMD_WRITE, string::getex),
    cmd!("INCRBYFLOAT", 3, CMD_WRITE, string::incrbyfloat),
    cmd!("SETBIT", 4, CMD_WRITE, bitops::setbit),
    cmd!("GETBIT", 3, CMD_READONLY, bitops::getbit),
    cmd!("BITCOUNT", -2, CMD_READONLY, bitops::bitcount),
    cmd!("BITPOS", -3, CMD_READONLY, bitops::bitpos),
    cmd!("BITOP", -4, CMD_WRITE, bitops::bitop),
    // --- lists ---
    cmd!("LPUSH", -3, CMD_WRITE, list::lpush),
    cmd!("RPUSH", -3, CMD_WRITE, list::rpush),
    cmd!("LPUSHX", -3, CMD_WRITE, list::lpushx),
    cmd!("RPUSHX", -3, CMD_WRITE, list::rpushx),
    cmd!("LPOP", -2, CMD_WRITE, list::lpop),
    cmd!("RPOP", -2, CMD_WRITE, list::rpop),
    cmd!("LLEN", 2, CMD_READONLY, list::llen),
    cmd!("LRANGE", 4, CMD_READONLY, list::lrange),
    cmd!("LINDEX", 3, CMD_READONLY, list::lindex),
    cmd!("LSET", 4, CMD_WRITE, list::lset),
    cmd!("LTRIM", 4, CMD_WRITE, list::ltrim),
    cmd!("LREM", 4, CMD_WRITE, list::lrem),
    cmd!("RPOPLPUSH", 3, CMD_WRITE, list::rpoplpush),
    cmd!("LPOS", -3, CMD_READONLY, list::lpos),
    // --- sets ---
    cmd!("SADD", -3, CMD_WRITE, set::sadd),
    cmd!("SREM", -3, CMD_WRITE, set::srem),
    cmd!("SCARD", 2, CMD_READONLY, set::scard),
    cmd!("SISMEMBER", 3, CMD_READONLY, set::sismember),
    cmd!("SMEMBERS", 2, CMD_READONLY, set::smembers),
    cmd!("SPOP", -2, CMD_WRITE, set::spop),
    cmd!("SRANDMEMBER", -2, CMD_READONLY, set::srandmember),
    cmd!("SINTER", -2, CMD_READONLY, set::sinter),
    cmd!("SUNION", -2, CMD_READONLY, set::sunion),
    cmd!("SDIFF", -2, CMD_READONLY, set::sdiff),
    cmd!("SINTERSTORE", -3, CMD_WRITE, set::sinterstore),
    cmd!("SUNIONSTORE", -3, CMD_WRITE, set::sunionstore),
    cmd!("SDIFFSTORE", -3, CMD_WRITE, set::sdiffstore),
    cmd!("SMOVE", 4, CMD_WRITE, set::smove),
    cmd!("SSCAN", -3, CMD_READONLY, scan::sscan),
    // --- hashes ---
    cmd!("HSET", -4, CMD_WRITE, hash_cmds::hset),
    cmd!("HMSET", -4, CMD_WRITE, hash_cmds::hmset),
    cmd!("HSETNX", 4, CMD_WRITE, hash_cmds::hsetnx),
    cmd!("HGET", 3, CMD_READONLY, hash_cmds::hget),
    cmd!("HMGET", -3, CMD_READONLY, hash_cmds::hmget),
    cmd!("HDEL", -3, CMD_WRITE, hash_cmds::hdel),
    cmd!("HEXISTS", 3, CMD_READONLY, hash_cmds::hexists),
    cmd!("HLEN", 2, CMD_READONLY, hash_cmds::hlen),
    cmd!("HSTRLEN", 3, CMD_READONLY, hash_cmds::hstrlen),
    cmd!("HGETALL", 2, CMD_READONLY, hash_cmds::hgetall),
    cmd!("HKEYS", 2, CMD_READONLY, hash_cmds::hkeys),
    cmd!("HVALS", 2, CMD_READONLY, hash_cmds::hvals),
    cmd!("HINCRBY", 4, CMD_WRITE, hash_cmds::hincrby),
    cmd!("HSCAN", -3, CMD_READONLY, scan::hscan),
    // --- sorted sets ---
    cmd!("ZADD", -4, CMD_WRITE, zset::zadd),
    cmd!("ZSCORE", 3, CMD_READONLY, zset::zscore),
    cmd!("ZCARD", 2, CMD_READONLY, zset::zcard),
    cmd!("ZREM", -3, CMD_WRITE, zset::zrem),
    cmd!("ZRANK", 3, CMD_READONLY, zset::zrank),
    cmd!("ZRANGE", -4, CMD_READONLY, zset::zrange),
    cmd!("ZRANGEBYSCORE", -4, CMD_READONLY, zset::zrangebyscore),
    cmd!("ZCOUNT", 4, CMD_READONLY, zset::zcount),
    cmd!("ZINCRBY", 4, CMD_WRITE, zset::zincrby),
    cmd!("ZREVRANGE", -4, CMD_READONLY, zset::zrevrange),
    cmd!("ZPOPMIN", -2, CMD_WRITE, zset::zpopmin),
    cmd!("ZPOPMAX", -2, CMD_WRITE, zset::zpopmax),
    cmd!("ZREMRANGEBYSCORE", 4, CMD_WRITE, zset::zremrangebyscore),
    cmd!("ZREMRANGEBYRANK", 4, CMD_WRITE, zset::zremrangebyrank),
    cmd!("ZSCAN", -3, CMD_READONLY, scan::zscan),
];

/// Look up a command by (case-insensitive) name.
pub fn lookup(name: &[u8]) -> Option<&'static CommandSpec> {
    let upper: Vec<u8> = name.iter().map(u8::to_ascii_uppercase).collect();
    COMMANDS.iter().find(|c| c.name.as_bytes() == upper)
}

/// Dispatch a parsed command. Arity and existence checks mirror Redis's
/// `processCommand`.
pub fn dispatch(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> (Resp, Option<&'static CommandSpec>) {
    let Some(first) = args.first() else {
        return (Resp::err("empty command"), None);
    };
    let Some(spec) = lookup(first) else {
        return (
            Resp::Error(format!(
                "ERR unknown command '{}'",
                String::from_utf8_lossy(first)
            )),
            None,
        );
    };
    if !spec.arity_ok(args.len()) {
        return (
            Resp::Error(format!(
                "ERR wrong number of arguments for '{}' command",
                spec.name.to_ascii_lowercase()
            )),
            Some(spec),
        );
    }
    ((spec.handler)(ctx, args), Some(spec))
}

// ---------------------------------------------------------------------------
// shared helpers for command implementations
// ---------------------------------------------------------------------------

pub(crate) fn parse_i64(arg: &[u8]) -> Result<i64, Resp> {
    std::str::from_utf8(arg)
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| Resp::err("value is not an integer or out of range"))
}

pub(crate) fn parse_f64(arg: &[u8]) -> Result<f64, Resp> {
    let s = std::str::from_utf8(arg).map_err(|_| Resp::err("value is not a valid float"))?;
    match s {
        "+inf" | "inf" => Ok(f64::INFINITY),
        "-inf" => Ok(f64::NEG_INFINITY),
        _ => s
            .parse()
            .map_err(|_| Resp::err("value is not a valid float")),
    }
}

/// Format a float the way Redis does (`%.17g`, trimmed).
pub(crate) fn format_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e17 {
        format!("{}", v as i64)
    } else {
        let s = format!("{v:.17}");
        let trimmed = s.trim_end_matches('0').trim_end_matches('.');
        trimmed.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_exec(args: &[&str]) -> Resp {
        let mut db = Db::new();
        let mut rng = 1u64;
        let mut ctx = ExecCtx {
            db: &mut db,
            now_ms: 0,
            rng_state: &mut rng,
        };
        let argv: Vec<Vec<u8>> = args.iter().map(|s| s.as_bytes().to_vec()).collect();
        dispatch(&mut ctx, &argv).0
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(lookup(b"set").is_some());
        assert!(lookup(b"SET").is_some());
        assert!(lookup(b"SeT").is_some());
        assert!(lookup(b"nope").is_none());
    }

    #[test]
    fn unknown_command_errors() {
        let r = ctx_exec(&["BOGUS"]);
        assert!(r.is_error());
    }

    #[test]
    fn arity_enforced() {
        assert!(ctx_exec(&["GET"]).is_error());
        assert!(ctx_exec(&["GET", "a", "b"]).is_error());
        assert!(ctx_exec(&["SET", "k"]).is_error());
        assert!(!ctx_exec(&["PING"]).is_error());
    }

    #[test]
    fn write_flags_cover_mutating_commands() {
        for name in ["SET", "DEL", "LPUSH", "SADD", "HSET", "ZADD", "EXPIRE"] {
            assert!(lookup(name.as_bytes()).unwrap().is_write(), "{name}");
        }
        for name in ["GET", "LRANGE", "SMEMBERS", "HGETALL", "ZRANGE", "TTL"] {
            assert!(!lookup(name.as_bytes()).unwrap().is_write(), "{name}");
        }
    }

    #[test]
    fn float_formatting_matches_redis_style() {
        assert_eq!(format_f64(3.0), "3");
        assert_eq!(format_f64(3.5), "3.5");
        assert_eq!(format_f64(-0.25), "-0.25");
    }

    #[test]
    fn command_names_are_unique() {
        let mut names: Vec<&str> = COMMANDS.iter().map(|c| c.name).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate command names");
    }
}
