//! Cursor-based iteration (`SCAN`, `HSCAN`, `SSCAN`, `ZSCAN`).
//!
//! Built on the dict's reverse-binary-iteration scan, so full-coverage
//! guarantees hold across incremental rehashes. As in Redis, a `COUNT`
//! hint bounds the *buckets* visited per call, not the elements returned,
//! and compact encodings (intsets) are returned in one shot with cursor 0.

use super::keyspace::glob_match;
use super::{format_f64, parse_i64, ExecCtx};
use crate::object::{RObj, SetObj};
use crate::resp::Resp;

fn parse_scan_options(args: &[Vec<u8>]) -> Result<(Option<Vec<u8>>, usize), Resp> {
    let mut pattern = None;
    let mut count = 10usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].to_ascii_uppercase().as_slice() {
            b"MATCH" => {
                i += 1;
                pattern = Some(
                    args.get(i)
                        .ok_or_else(|| Resp::err("syntax error"))?
                        .clone(),
                );
            }
            b"COUNT" => {
                i += 1;
                let n = parse_i64(args.get(i).ok_or_else(|| Resp::err("syntax error"))?)?;
                if n < 1 {
                    return Err(Resp::err("syntax error"));
                }
                count = n as usize;
            }
            _ => return Err(Resp::err("syntax error")),
        }
        i += 1;
    }
    Ok((pattern, count))
}

fn scan_reply(cursor: u64, items: Vec<Vec<u8>>) -> Resp {
    Resp::Array(vec![
        Resp::Bulk(cursor.to_string().into_bytes()),
        Resp::Array(items.into_iter().map(Resp::Bulk).collect()),
    ])
}

fn parse_cursor(arg: &[u8]) -> Result<u64, Resp> {
    std::str::from_utf8(arg)
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| Resp::err("invalid cursor"))
}

pub(super) fn scan(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let mut cursor = match parse_cursor(&args[1]) {
        Ok(c) => c,
        Err(e) => return e,
    };
    let (pattern, count) = match parse_scan_options(&args[2..]) {
        Ok(v) => v,
        Err(e) => return e,
    };
    let now = ctx.now_ms;
    let mut keys = Vec::new();
    for _ in 0..count {
        cursor = ctx.db.scan_step(cursor, |k, _| {
            if pattern.as_deref().is_none_or(|p| glob_match(p, k)) {
                keys.push(k.to_vec());
            }
        });
        if cursor == 0 {
            break;
        }
    }
    // Filter out expired-but-unreaped keys without mutating.
    keys.retain(|k| ctx.db.expiry_of(k).is_none_or(|at| at > now));
    scan_reply(cursor, keys)
}

pub(super) fn hscan(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let mut cursor = match parse_cursor(&args[2]) {
        Ok(c) => c,
        Err(e) => return e,
    };
    let (pattern, count) = match parse_scan_options(&args[3..]) {
        Ok(v) => v,
        Err(e) => return e,
    };
    let hash = match ctx.db.lookup_read(&args[1], ctx.now_ms) {
        None => return scan_reply(0, Vec::new()),
        Some(RObj::Hash(h)) => h,
        Some(_) => return Resp::wrongtype(),
    };
    let mut items = Vec::new();
    for _ in 0..count {
        cursor = hash.scan(cursor, |f, v| {
            if pattern.as_deref().is_none_or(|p| glob_match(p, f)) {
                items.push(f.to_vec());
                items.push(v.as_bytes().to_vec());
            }
        });
        if cursor == 0 {
            break;
        }
    }
    scan_reply(cursor, items)
}

pub(super) fn sscan(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let mut cursor = match parse_cursor(&args[2]) {
        Ok(c) => c,
        Err(e) => return e,
    };
    let (pattern, count) = match parse_scan_options(&args[3..]) {
        Ok(v) => v,
        Err(e) => return e,
    };
    let set = match ctx.db.lookup_read(&args[1], ctx.now_ms) {
        None => return scan_reply(0, Vec::new()),
        Some(RObj::Set(s)) => s,
        Some(_) => return Resp::wrongtype(),
    };
    match set {
        SetObj::Ints(ints) => {
            // Compact encoding: everything in one pass (Redis behaviour).
            let items = ints
                .iter()
                .map(|v| v.to_string().into_bytes())
                .filter(|m| pattern.as_deref().is_none_or(|p| glob_match(p, m)))
                .collect();
            scan_reply(0, items)
        }
        SetObj::Dict(d) => {
            let mut items = Vec::new();
            for _ in 0..count {
                cursor = d.scan(cursor, |m, _| {
                    if pattern.as_deref().is_none_or(|p| glob_match(p, m)) {
                        items.push(m.to_vec());
                    }
                });
                if cursor == 0 {
                    break;
                }
            }
            scan_reply(cursor, items)
        }
    }
}

pub(super) fn zscan(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let mut cursor = match parse_cursor(&args[2]) {
        Ok(c) => c,
        Err(e) => return e,
    };
    let (pattern, count) = match parse_scan_options(&args[3..]) {
        Ok(v) => v,
        Err(e) => return e,
    };
    let zset = match ctx.db.lookup_read(&args[1], ctx.now_ms) {
        None => return scan_reply(0, Vec::new()),
        Some(RObj::ZSet(z)) => z,
        Some(_) => return Resp::wrongtype(),
    };
    let mut items = Vec::new();
    for _ in 0..count {
        cursor = zset.scan(cursor, |m, score| {
            if pattern.as_deref().is_none_or(|p| glob_match(p, m)) {
                items.push(m.to_vec());
                items.push(format_f64(score).into_bytes());
            }
        });
        if cursor == 0 {
            break;
        }
    }
    scan_reply(cursor, items)
}
