//! Generic keyspace commands (`DEL`, `EXPIRE`, `KEYS`, …).

use super::{parse_i64, ExecCtx};
use crate::object::{RObj, SetObj};
use crate::resp::Resp;

pub(super) fn type_cmd(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    match ctx.db.lookup_read(&args[1], ctx.now_ms) {
        Some(o) => Resp::Simple(o.type_name().into()),
        None => Resp::Simple("none".into()),
    }
}

pub(super) fn del(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let mut n = 0;
    for key in &args[1..] {
        // Expired keys count as absent, so reap first.
        if ctx.db.exists(key, ctx.now_ms) && ctx.db.delete(key) {
            n += 1;
        }
    }
    Resp::Int(n)
}

pub(super) fn exists(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let n = args[1..]
        .iter()
        .filter(|key| ctx.db.exists(key, ctx.now_ms))
        .count();
    Resp::Int(n as i64)
}

fn expire_generic(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>], unit_ms: u64, absolute: bool) -> Resp {
    let v = match parse_i64(&args[2]) {
        Ok(v) => v,
        Err(e) => return e,
    };
    if !ctx.db.exists(&args[1], ctx.now_ms) {
        return Resp::Int(0);
    }
    let at_ms = if absolute {
        if v <= 0 {
            0 // already in the past
        } else {
            v as u64 * unit_ms
        }
    } else if v <= 0 {
        // Non-positive relative TTL deletes immediately, as in Redis.
        ctx.db.delete(&args[1]);
        return Resp::Int(1);
    } else {
        ctx.now_ms + v as u64 * unit_ms
    };
    if at_ms <= ctx.now_ms {
        ctx.db.delete(&args[1]);
        return Resp::Int(1);
    }
    ctx.db.set_expire(&args[1], at_ms);
    Resp::Int(1)
}

pub(super) fn expire(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    expire_generic(ctx, args, 1000, false)
}

pub(super) fn pexpire(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    expire_generic(ctx, args, 1, false)
}

pub(super) fn expireat(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    expire_generic(ctx, args, 1000, true)
}

pub(super) fn pexpireat(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    expire_generic(ctx, args, 1, true)
}

fn ttl_generic(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>], unit_ms: u64) -> Resp {
    match ctx.db.ttl_ms(&args[1], ctx.now_ms) {
        None => Resp::Int(-2),
        Some(None) => Resp::Int(-1),
        Some(Some(ms)) => Resp::Int((ms / unit_ms) as i64),
    }
}

pub(super) fn ttl(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    ttl_generic(ctx, args, 1000)
}

pub(super) fn pttl(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    ttl_generic(ctx, args, 1)
}

pub(super) fn persist(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    if !ctx.db.exists(&args[1], ctx.now_ms) {
        return Resp::Int(0);
    }
    Resp::Int(ctx.db.persist(&args[1]) as i64)
}

fn rename_generic(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>], fail_if_target: bool) -> Resp {
    if !ctx.db.exists(&args[1], ctx.now_ms) {
        return Resp::err("no such key");
    }
    if fail_if_target && ctx.db.exists(&args[2], ctx.now_ms) {
        return Resp::Int(0);
    }
    let ttl = ctx.db.expiry_of(&args[1]);
    let value = ctx
        .db
        .lookup_read(&args[1], ctx.now_ms)
        .expect("checked exists")
        .clone();
    ctx.db.delete(&args[1]);
    ctx.db.set(&args[2], value);
    if let Some(at) = ttl {
        ctx.db.set_expire(&args[2], at);
    }
    if fail_if_target {
        Resp::Int(1)
    } else {
        Resp::ok()
    }
}

pub(super) fn rename(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    rename_generic(ctx, args, false)
}

pub(super) fn renamenx(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    rename_generic(ctx, args, true)
}

pub(super) fn keys(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let pattern = &args[1];
    let now = ctx.now_ms;
    let mut out: Vec<Vec<u8>> = ctx
        .db
        .iter()
        .filter(|(k, _)| glob_match(pattern, k))
        .map(|(k, _)| k.to_vec())
        .collect();
    // Deterministic output order (Redis's order is table order; sorting
    // makes tests and reports stable).
    out.sort_unstable();
    // Filter expired keys without reaping (KEYS is read-only here).
    out.retain(|k| ctx.db.expiry_of(k).is_none_or(|at| at > now));
    Resp::Array(out.into_iter().map(Resp::Bulk).collect())
}

pub(super) fn randomkey(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let _ = args;
    // Retry a few times to skip expired-but-unreaped keys, as Redis does.
    for _ in 0..16 {
        let Some(key) = ctx.db.random_key(|n| ctx_rand(ctx.rng_state, n)) else {
            return Resp::NullBulk;
        };
        if ctx.db.exists(&key, ctx.now_ms) {
            return Resp::Bulk(key);
        }
    }
    Resp::NullBulk
}

fn ctx_rand(state: &mut u64, n: u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    if n == 0 {
        0
    } else {
        (*state >> 16) % n
    }
}

/// Redis-style glob matching: `*`, `?`, `[abc]`, `[^abc]`, `[a-z]`, `\x`.
pub fn glob_match(pattern: &[u8], text: &[u8]) -> bool {
    glob_at(pattern, text)
}

fn glob_at(mut p: &[u8], mut t: &[u8]) -> bool {
    while let Some(&pc) = p.first() {
        match pc {
            b'*' => {
                // Collapse consecutive stars.
                while p.first() == Some(&b'*') {
                    p = &p[1..];
                }
                if p.is_empty() {
                    return true;
                }
                for skip in 0..=t.len() {
                    if glob_at(p, &t[skip..]) {
                        return true;
                    }
                }
                return false;
            }
            b'?' => {
                if t.is_empty() {
                    return false;
                }
                p = &p[1..];
                t = &t[1..];
            }
            b'[' => {
                let Some(close) = p.iter().position(|&c| c == b']') else {
                    // Unterminated class: literal match.
                    if t.first() != Some(&b'[') {
                        return false;
                    }
                    p = &p[1..];
                    t = &t[1..];
                    continue;
                };
                if t.is_empty() {
                    return false;
                }
                let class = &p[1..close];
                let (neg, class) = if class.first() == Some(&b'^') {
                    (true, &class[1..])
                } else {
                    (false, class)
                };
                let c = t[0];
                let mut matched = false;
                let mut i = 0;
                while i < class.len() {
                    if i + 2 < class.len() && class[i + 1] == b'-' {
                        if class[i] <= c && c <= class[i + 2] {
                            matched = true;
                        }
                        i += 3;
                    } else {
                        if class[i] == c {
                            matched = true;
                        }
                        i += 1;
                    }
                }
                if matched == neg {
                    return false;
                }
                p = &p[close + 1..];
                t = &t[1..];
            }
            b'\\' if p.len() > 1 => {
                if t.first() != Some(&p[1]) {
                    return false;
                }
                p = &p[2..];
                t = &t[1..];
            }
            _ => {
                if t.first() != Some(&pc) {
                    return false;
                }
                p = &p[1..];
                t = &t[1..];
            }
        }
    }
    t.is_empty()
}

pub(super) fn copy(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let replace = match args.get(3) {
        None => false,
        Some(a) if a.eq_ignore_ascii_case(b"REPLACE") => true,
        Some(_) => return Resp::err("syntax error"),
    };
    if !ctx.db.exists(&args[1], ctx.now_ms) {
        return Resp::Int(0);
    }
    if !replace && ctx.db.exists(&args[2], ctx.now_ms) {
        return Resp::Int(0);
    }
    let ttl = ctx.db.expiry_of(&args[1]);
    let value = ctx
        .db
        .lookup_read(&args[1], ctx.now_ms)
        .expect("checked exists")
        .clone();
    ctx.db.set(&args[2], value);
    if let Some(at) = ttl {
        ctx.db.set_expire(&args[2], at);
    }
    Resp::Int(1)
}

pub(super) fn object(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    if !args[1].eq_ignore_ascii_case(b"ENCODING") {
        return Resp::err("unknown OBJECT subcommand (only ENCODING is supported)");
    }
    let Some(key) = args.get(2) else {
        return Resp::err("wrong number of arguments for 'object' command");
    };
    match ctx.db.lookup_read(key, ctx.now_ms) {
        None => Resp::err("no such key"),
        Some(RObj::Int(_)) => Resp::Bulk(b"int".to_vec()),
        Some(RObj::Str(s)) => {
            // Redis: <= 44 bytes is embstr, beyond that raw.
            if s.len() <= 44 {
                Resp::Bulk(b"embstr".to_vec())
            } else {
                Resp::Bulk(b"raw".to_vec())
            }
        }
        Some(RObj::List(_)) => Resp::Bulk(b"quicklist".to_vec()),
        Some(RObj::Set(SetObj::Ints(_))) => Resp::Bulk(b"intset".to_vec()),
        Some(RObj::Set(SetObj::Dict(_))) => Resp::Bulk(b"hashtable".to_vec()),
        Some(RObj::Hash(_)) => Resp::Bulk(b"hashtable".to_vec()),
        Some(RObj::ZSet(_)) => Resp::Bulk(b"skiplist".to_vec()),
    }
}

#[cfg(test)]
mod tests {
    use super::glob_match;

    #[test]
    fn glob_literals_and_wildcards() {
        assert!(glob_match(b"hello", b"hello"));
        assert!(!glob_match(b"hello", b"hellO"));
        assert!(glob_match(b"*", b"anything"));
        assert!(glob_match(b"*", b""));
        assert!(glob_match(b"h*llo", b"hello"));
        assert!(glob_match(b"h*llo", b"heeeello"));
        assert!(glob_match(b"h?llo", b"hallo"));
        assert!(!glob_match(b"h?llo", b"hllo"));
        assert!(glob_match(b"key:*", b"key:123"));
        assert!(!glob_match(b"key:*", b"k:123"));
        assert!(glob_match(b"**a**", b"bab"));
    }

    #[test]
    fn glob_classes() {
        assert!(glob_match(b"h[ae]llo", b"hallo"));
        assert!(glob_match(b"h[ae]llo", b"hello"));
        assert!(!glob_match(b"h[ae]llo", b"hillo"));
        assert!(glob_match(b"h[^x]llo", b"hello"));
        assert!(!glob_match(b"h[^e]llo", b"hello"));
        assert!(glob_match(b"k[0-9]", b"k5"));
        assert!(!glob_match(b"k[0-9]", b"kx"));
    }

    #[test]
    fn glob_escapes() {
        assert!(glob_match(b"a\\*b", b"a*b"));
        assert!(!glob_match(b"a\\*b", b"axb"));
        assert!(glob_match(b"a\\?b", b"a?b"));
    }
}
