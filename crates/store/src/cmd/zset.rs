//! Sorted-set commands (`ZADD`, `ZRANGE`, …).

use super::{format_f64, parse_f64, parse_i64, ExecCtx};
use crate::object::{RObj, ZSet};
use crate::resp::Resp;

fn with_zset<'a>(
    ctx: &'a mut ExecCtx<'_>,
    key: &[u8],
    create: bool,
) -> Result<Option<&'a mut ZSet>, Resp> {
    let now = ctx.now_ms;
    if ctx.db.lookup_write(key, now).is_none() {
        if !create {
            return Ok(None);
        }
        let seed = ctx.next_seed();
        ctx.db.set(key, RObj::ZSet(ZSet::new(seed)));
    }
    match ctx.db.lookup_write(key, now) {
        Some(RObj::ZSet(z)) => Ok(Some(z)),
        Some(_) => Err(Resp::wrongtype()),
        None => Ok(None),
    }
}

fn reap_if_empty(ctx: &mut ExecCtx<'_>, key: &[u8]) {
    if let Some(RObj::ZSet(z)) = ctx.db.lookup_write(key, ctx.now_ms) {
        if z.is_empty() {
            ctx.db.delete(key);
        }
    }
}

pub(super) fn zadd(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    // Optional NX/XX/CH flags, then (score, member) pairs.
    let mut i = 2;
    let mut nx = false;
    let mut xx = false;
    let mut ch = false;
    while i < args.len() {
        match args[i].to_ascii_uppercase().as_slice() {
            b"NX" => nx = true,
            b"XX" => xx = true,
            b"CH" => ch = true,
            _ => break,
        }
        i += 1;
    }
    if nx && xx {
        return Resp::err("XX and NX options at the same time are not compatible");
    }
    let pairs = &args[i..];
    if pairs.is_empty() || !pairs.len().is_multiple_of(2) {
        return Resp::err("syntax error");
    }
    // Validate all scores before mutating (Redis behaviour).
    let mut parsed = Vec::with_capacity(pairs.len() / 2);
    for pair in pairs.chunks_exact(2) {
        match parse_f64(&pair[0]) {
            Ok(score) => parsed.push((score, &pair[1])),
            Err(e) => return e,
        }
    }
    let zset = match with_zset(ctx, &args[1], !xx) {
        Ok(Some(z)) => z,
        Ok(None) => return Resp::Int(0), // XX on missing key
        Err(e) => return e,
    };
    let mut added = 0i64;
    let mut changed = 0i64;
    for (score, member) in parsed {
        let existing = zset.score(member);
        match existing {
            Some(old) => {
                if nx {
                    continue;
                }
                if old != score {
                    zset.add(member, score);
                    changed += 1;
                }
            }
            None => {
                if xx {
                    continue;
                }
                zset.add(member, score);
                added += 1;
            }
        }
    }
    ctx.db.mark_dirty((added + changed) as u64);
    reap_if_empty(ctx, &args[1]);
    Resp::Int(if ch { added + changed } else { added })
}

pub(super) fn zscore(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    match with_zset(ctx, &args[1], false) {
        Ok(Some(z)) => match z.score(&args[2]) {
            Some(s) => Resp::Bulk(format_f64(s).into_bytes()),
            None => Resp::NullBulk,
        },
        Ok(None) => Resp::NullBulk,
        Err(e) => e,
    }
}

pub(super) fn zcard(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    match with_zset(ctx, &args[1], false) {
        Ok(Some(z)) => Resp::Int(z.len() as i64),
        Ok(None) => Resp::Int(0),
        Err(e) => e,
    }
}

pub(super) fn zrem(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let zset = match with_zset(ctx, &args[1], false) {
        Ok(Some(z)) => z,
        Ok(None) => return Resp::Int(0),
        Err(e) => return e,
    };
    let removed = args[2..].iter().filter(|m| zset.remove(m)).count();
    ctx.db.mark_dirty(removed as u64);
    reap_if_empty(ctx, &args[1]);
    Resp::Int(removed as i64)
}

pub(super) fn zrank(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    match with_zset(ctx, &args[1], false) {
        Ok(Some(z)) => match z.rank(&args[2]) {
            Some(r) => Resp::Int(r as i64),
            None => Resp::NullBulk,
        },
        Ok(None) => Resp::NullBulk,
        Err(e) => e,
    }
}

pub(super) fn zrange(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let (start, stop) = match (parse_i64(&args[2]), parse_i64(&args[3])) {
        (Ok(s), Ok(e)) => (s, e),
        (Err(e), _) | (_, Err(e)) => return e,
    };
    let withscores = match args.get(4) {
        None => false,
        Some(a) if a.eq_ignore_ascii_case(b"WITHSCORES") => true,
        Some(_) => return Resp::err("syntax error"),
    };
    let zset = match with_zset(ctx, &args[1], false) {
        Ok(Some(z)) => z,
        Ok(None) => return Resp::Array(Vec::new()),
        Err(e) => return e,
    };
    let len = zset.len() as i64;
    let mut s = if start < 0 { len + start } else { start };
    let mut e = if stop < 0 { len + stop } else { stop };
    s = s.max(0);
    e = e.min(len - 1);
    if s > e || len == 0 {
        return Resp::Array(Vec::new());
    }
    let mut out = Vec::new();
    for (member, score) in zset.range(s as usize, e as usize) {
        out.push(Resp::Bulk(member));
        if withscores {
            out.push(Resp::Bulk(format_f64(score).into_bytes()));
        }
    }
    Resp::Array(out)
}

pub(super) fn zrangebyscore(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let (min, max) = match (parse_score_bound(&args[2]), parse_score_bound(&args[3])) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => return e,
    };
    let withscores = match args.get(4) {
        None => false,
        Some(a) if a.eq_ignore_ascii_case(b"WITHSCORES") => true,
        Some(_) => return Resp::err("syntax error"),
    };
    let zset = match with_zset(ctx, &args[1], false) {
        Ok(Some(z)) => z,
        Ok(None) => return Resp::Array(Vec::new()),
        Err(e) => return e,
    };
    let mut out = Vec::new();
    for (member, score) in zset.range_by_score(min.0, max.0) {
        // Exclusive bounds filter.
        if (min.1 && score == min.0) || (max.1 && score == max.0) {
            continue;
        }
        out.push(Resp::Bulk(member));
        if withscores {
            out.push(Resp::Bulk(format_f64(score).into_bytes()));
        }
    }
    Resp::Array(out)
}

pub(super) fn zcount(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let (min, max) = match (parse_score_bound(&args[2]), parse_score_bound(&args[3])) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => return e,
    };
    let zset = match with_zset(ctx, &args[1], false) {
        Ok(Some(z)) => z,
        Ok(None) => return Resp::Int(0),
        Err(e) => return e,
    };
    let n = zset
        .range_by_score(min.0, max.0)
        .into_iter()
        .filter(|(_, score)| !((min.1 && *score == min.0) || (max.1 && *score == max.0)))
        .count();
    Resp::Int(n as i64)
}

pub(super) fn zincrby(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let delta = match parse_f64(&args[2]) {
        Ok(v) => v,
        Err(e) => return e,
    };
    let zset = match with_zset(ctx, &args[1], true) {
        Ok(Some(z)) => z,
        Ok(None) => unreachable!("create=true"),
        Err(e) => return e,
    };
    let next = zset.score(&args[3]).unwrap_or(0.0) + delta;
    if next.is_nan() {
        return Resp::err("resulting score is not a number (NaN)");
    }
    zset.add(&args[3], next);
    ctx.db.mark_dirty(1);
    Resp::Bulk(format_f64(next).into_bytes())
}

/// Parse a score bound: `5`, `(5` (exclusive), `+inf`, `-inf`.
/// Returns `(value, exclusive)`.
fn parse_score_bound(arg: &[u8]) -> Result<(f64, bool), Resp> {
    if let Some(rest) = arg.strip_prefix(b"(") {
        Ok((parse_f64(rest).map_err(|_| bound_err())?, true))
    } else {
        Ok((parse_f64(arg).map_err(|_| bound_err())?, false))
    }
}

fn bound_err() -> Resp {
    Resp::err("min or max is not a float")
}

pub(super) fn zrevrange(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let (start, stop) = match (parse_i64(&args[2]), parse_i64(&args[3])) {
        (Ok(s), Ok(e)) => (s, e),
        (Err(e), _) | (_, Err(e)) => return e,
    };
    let withscores = match args.get(4) {
        None => false,
        Some(a) if a.eq_ignore_ascii_case(b"WITHSCORES") => true,
        Some(_) => return Resp::err("syntax error"),
    };
    let zset = match with_zset(ctx, &args[1], false) {
        Ok(Some(z)) => z,
        Ok(None) => return Resp::Array(Vec::new()),
        Err(e) => return e,
    };
    // Reverse ranks: rev-rank r maps to rank len-1-r.
    let len = zset.len() as i64;
    let mut s = if start < 0 { len + start } else { start };
    let mut e = if stop < 0 { len + stop } else { stop };
    s = s.max(0);
    e = e.min(len - 1);
    if s > e || len == 0 {
        return Resp::Array(Vec::new());
    }
    let lo = (len - 1 - e) as usize;
    let hi = (len - 1 - s) as usize;
    let mut items = zset.range(lo, hi);
    items.reverse();
    let mut out = Vec::new();
    for (member, score) in items {
        out.push(Resp::Bulk(member));
        if withscores {
            out.push(Resp::Bulk(format_f64(score).into_bytes()));
        }
    }
    Resp::Array(out)
}

fn zpop_generic(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>], min: bool) -> Resp {
    let count = match args.get(2) {
        None => 1usize,
        Some(arg) => match parse_i64(arg) {
            Ok(v) if v >= 0 => v as usize,
            Ok(_) => return Resp::err("value is out of range, must be positive"),
            Err(e) => return e,
        },
    };
    let zset = match with_zset(ctx, &args[1], false) {
        Ok(Some(z)) => z,
        Ok(None) => return Resp::Array(Vec::new()),
        Err(e) => return e,
    };
    let len = zset.len();
    let take = count.min(len);
    let victims: Vec<(Vec<u8>, f64)> = if min {
        zset.range(0, take.saturating_sub(1))
    } else {
        let mut v = zset.range(len - take, len.saturating_sub(1));
        v.reverse();
        v
    };
    let mut out = Vec::with_capacity(victims.len() * 2);
    for (m, score) in &victims {
        zset.remove(m);
        out.push(Resp::Bulk(m.clone()));
        out.push(Resp::Bulk(format_f64(*score).into_bytes()));
    }
    ctx.db.mark_dirty(victims.len() as u64);
    reap_if_empty(ctx, &args[1]);
    Resp::Array(out)
}

pub(super) fn zpopmin(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    zpop_generic(ctx, args, true)
}

pub(super) fn zpopmax(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    zpop_generic(ctx, args, false)
}

pub(super) fn zremrangebyscore(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let (min, max) = match (parse_score_bound(&args[2]), parse_score_bound(&args[3])) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => return e,
    };
    let zset = match with_zset(ctx, &args[1], false) {
        Ok(Some(z)) => z,
        Ok(None) => return Resp::Int(0),
        Err(e) => return e,
    };
    let victims: Vec<Vec<u8>> = zset
        .range_by_score(min.0, max.0)
        .into_iter()
        .filter(|(_, score)| !((min.1 && *score == min.0) || (max.1 && *score == max.0)))
        .map(|(m, _)| m)
        .collect();
    for m in &victims {
        zset.remove(m);
    }
    ctx.db.mark_dirty(victims.len() as u64);
    reap_if_empty(ctx, &args[1]);
    Resp::Int(victims.len() as i64)
}

pub(super) fn zremrangebyrank(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let (start, stop) = match (parse_i64(&args[2]), parse_i64(&args[3])) {
        (Ok(s), Ok(e)) => (s, e),
        (Err(e), _) | (_, Err(e)) => return e,
    };
    let zset = match with_zset(ctx, &args[1], false) {
        Ok(Some(z)) => z,
        Ok(None) => return Resp::Int(0),
        Err(e) => return e,
    };
    let len = zset.len() as i64;
    let mut s = if start < 0 { len + start } else { start };
    let mut e = if stop < 0 { len + stop } else { stop };
    s = s.max(0);
    e = e.min(len - 1);
    if s > e || len == 0 {
        return Resp::Int(0);
    }
    let victims: Vec<Vec<u8>> = zset
        .range(s as usize, e as usize)
        .into_iter()
        .map(|(m, _)| m)
        .collect();
    for m in &victims {
        zset.remove(m);
    }
    ctx.db.mark_dirty(victims.len() as u64);
    reap_if_empty(ctx, &args[1]);
    Resp::Int(victims.len() as i64)
}
