//! String commands (`SET`, `GET`, `INCR`, …) — the workload the paper's
//! evaluation drives (`redis-benchmark` SET/GET).

use super::{parse_i64, ExecCtx};
use crate::object::RObj;
use crate::resp::Resp;
use crate::sds::Sds;

/// Fetch a string-typed object's bytes, or an error/None reply.
fn get_string(ctx: &mut ExecCtx<'_>, key: &[u8]) -> Result<Option<Vec<u8>>, Resp> {
    match ctx.db.lookup_read(key, ctx.now_ms) {
        None => Ok(None),
        Some(o) if o.is_string() => Ok(Some(o.as_string_bytes())),
        Some(_) => Err(Resp::wrongtype()),
    }
}

pub(super) fn set(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let key = &args[1];
    let val = &args[2];
    let mut expire_at: Option<u64> = None;
    let mut nx = false;
    let mut xx = false;
    let mut keepttl = false;

    let mut i = 3;
    while i < args.len() {
        let opt = args[i].to_ascii_uppercase();
        match opt.as_slice() {
            b"NX" => nx = true,
            b"XX" => xx = true,
            b"KEEPTTL" => keepttl = true,
            b"EX" | b"PX" => {
                i += 1;
                let Some(arg) = args.get(i) else {
                    return Resp::err("syntax error");
                };
                let v = match parse_i64(arg) {
                    Ok(v) if v > 0 => v as u64,
                    Ok(_) => return Resp::err("invalid expire time in 'set' command"),
                    Err(e) => return e,
                };
                let ms = if opt == b"EX" { v * 1000 } else { v };
                expire_at = Some(ctx.now_ms + ms);
            }
            _ => return Resp::err("syntax error"),
        }
        i += 1;
    }
    if nx && xx {
        return Resp::err("syntax error");
    }

    let exists = ctx.db.exists(key, ctx.now_ms);
    if (nx && exists) || (xx && !exists) {
        return Resp::NullBulk;
    }
    if keepttl {
        ctx.db.set_keep_ttl(key, RObj::string(val));
    } else {
        ctx.db.set(key, RObj::string(val));
    }
    if let Some(at) = expire_at {
        ctx.db.set_expire(key, at);
    }
    Resp::ok()
}

pub(super) fn setnx(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    if ctx.db.exists(&args[1], ctx.now_ms) {
        Resp::Int(0)
    } else {
        ctx.db.set(&args[1], RObj::string(&args[2]));
        Resp::Int(1)
    }
}

fn setex_generic(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>], unit_ms: u64) -> Resp {
    let secs = match parse_i64(&args[2]) {
        Ok(v) if v > 0 => v as u64,
        Ok(_) => return Resp::err("invalid expire time in 'setex' command"),
        Err(e) => return e,
    };
    ctx.db.set(&args[1], RObj::string(&args[3]));
    ctx.db.set_expire(&args[1], ctx.now_ms + secs * unit_ms);
    Resp::ok()
}

pub(super) fn setex(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    setex_generic(ctx, args, 1000)
}

pub(super) fn psetex(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    setex_generic(ctx, args, 1)
}

pub(super) fn get(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    match get_string(ctx, &args[1]) {
        Ok(Some(bytes)) => Resp::Bulk(bytes),
        Ok(None) => Resp::NullBulk,
        Err(e) => e,
    }
}

pub(super) fn getset(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let old = match get_string(ctx, &args[1]) {
        Ok(v) => v,
        Err(e) => return e,
    };
    ctx.db.set(&args[1], RObj::string(&args[2]));
    match old {
        Some(bytes) => Resp::Bulk(bytes),
        None => Resp::NullBulk,
    }
}

pub(super) fn getdel(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let old = match get_string(ctx, &args[1]) {
        Ok(v) => v,
        Err(e) => return e,
    };
    match old {
        Some(bytes) => {
            ctx.db.delete(&args[1]);
            Resp::Bulk(bytes)
        }
        None => Resp::NullBulk,
    }
}

pub(super) fn mset(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    if args.len() % 2 != 1 {
        return Resp::err("wrong number of arguments for MSET");
    }
    for pair in args[1..].chunks_exact(2) {
        ctx.db.set(&pair[0], RObj::string(&pair[1]));
    }
    Resp::ok()
}

pub(super) fn msetnx(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    if args.len() % 2 != 1 {
        return Resp::err("wrong number of arguments for MSETNX");
    }
    let any_exists = args[1..]
        .chunks_exact(2)
        .any(|pair| ctx.db.exists(&pair[0], ctx.now_ms));
    if any_exists {
        return Resp::Int(0);
    }
    for pair in args[1..].chunks_exact(2) {
        ctx.db.set(&pair[0], RObj::string(&pair[1]));
    }
    Resp::Int(1)
}

pub(super) fn mget(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    Resp::Array(
        args[1..]
            .iter()
            .map(|key| match get_string(ctx, key) {
                Ok(Some(bytes)) => Resp::Bulk(bytes),
                _ => Resp::NullBulk, // wrong type yields nil in MGET
            })
            .collect(),
    )
}

pub(super) fn append(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    match ctx.db.lookup_write(&args[1], ctx.now_ms) {
        Some(RObj::Str(s)) => {
            s.append(&args[2]);
            let len = s.len();
            ctx.db.mark_dirty(1);
            Resp::Int(len as i64)
        }
        Some(RObj::Int(v)) => {
            let mut s = Sds::from_vec(v.to_string().into_bytes());
            s.append(&args[2]);
            let len = s.len();
            ctx.db.set_keep_ttl(&args[1], RObj::Str(s));
            Resp::Int(len as i64)
        }
        Some(_) => Resp::wrongtype(),
        None => {
            let len = args[2].len();
            ctx.db.set(&args[1], RObj::Str(Sds::from_bytes(&args[2])));
            Resp::Int(len as i64)
        }
    }
}

pub(super) fn strlen(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    match get_string(ctx, &args[1]) {
        Ok(Some(bytes)) => Resp::Int(bytes.len() as i64),
        Ok(None) => Resp::Int(0),
        Err(e) => e,
    }
}

fn incr_generic(ctx: &mut ExecCtx<'_>, key: &[u8], delta: i64) -> Resp {
    let current = match ctx.db.lookup_write(key, ctx.now_ms) {
        None => 0,
        Some(RObj::Int(v)) => *v,
        Some(RObj::Str(s)) => match s.parse_i64() {
            Some(v) => v,
            None => return Resp::err("value is not an integer or out of range"),
        },
        Some(_) => return Resp::wrongtype(),
    };
    let Some(next) = current.checked_add(delta) else {
        return Resp::err("increment or decrement would overflow");
    };
    ctx.db.set_keep_ttl(key, RObj::Int(next));
    Resp::Int(next)
}

pub(super) fn incr(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    incr_generic(ctx, &args[1], 1)
}

pub(super) fn decr(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    incr_generic(ctx, &args[1], -1)
}

pub(super) fn incrby(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    match parse_i64(&args[2]) {
        Ok(delta) => incr_generic(ctx, &args[1], delta),
        Err(e) => e,
    }
}

pub(super) fn decrby(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    match parse_i64(&args[2]) {
        Ok(delta) => match delta.checked_neg() {
            Some(neg) => incr_generic(ctx, &args[1], neg),
            None => Resp::err("decrement would overflow"),
        },
        Err(e) => e,
    }
}

pub(super) fn getrange(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let (start, end) = match (parse_i64(&args[2]), parse_i64(&args[3])) {
        (Ok(s), Ok(e)) => (s, e),
        (Err(e), _) | (_, Err(e)) => return e,
    };
    match get_string(ctx, &args[1]) {
        Ok(Some(bytes)) => {
            let s = Sds::from_vec(bytes);
            Resp::Bulk(s.get_range(start, end).to_vec())
        }
        Ok(None) => Resp::Bulk(Vec::new()),
        Err(e) => e,
    }
}

pub(super) fn setrange(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let offset = match parse_i64(&args[2]) {
        Ok(v) if v >= 0 => v as usize,
        Ok(_) => return Resp::err("offset is out of range"),
        Err(e) => return e,
    };
    match ctx.db.lookup_write(&args[1], ctx.now_ms) {
        Some(RObj::Str(s)) => {
            s.set_range(offset, &args[3]);
            let len = s.len();
            ctx.db.mark_dirty(1);
            Resp::Int(len as i64)
        }
        Some(RObj::Int(v)) => {
            let mut s = Sds::from_vec(v.to_string().into_bytes());
            s.set_range(offset, &args[3]);
            let len = s.len();
            ctx.db.set_keep_ttl(&args[1], RObj::Str(s));
            Resp::Int(len as i64)
        }
        Some(_) => Resp::wrongtype(),
        None => {
            if args[3].is_empty() {
                return Resp::Int(0);
            }
            let mut s = Sds::new();
            s.set_range(offset, &args[3]);
            let len = s.len();
            ctx.db.set(&args[1], RObj::Str(s));
            Resp::Int(len as i64)
        }
    }
}

pub(super) fn getex(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let value = match get_string(ctx, &args[1]) {
        Ok(Some(v)) => v,
        Ok(None) => return Resp::NullBulk,
        Err(e) => return e,
    };
    // Options: EX s | PX ms | PERSIST | (none = don't touch TTL).
    match args.get(2).map(|a| a.to_ascii_uppercase()) {
        None => {}
        Some(opt) if opt == b"PERSIST" => {
            ctx.db.persist(&args[1]);
        }
        Some(opt) if opt == b"EX" || opt == b"PX" => {
            let Some(arg) = args.get(3) else {
                return Resp::err("syntax error");
            };
            let v = match parse_i64(arg) {
                Ok(v) if v > 0 => v as u64,
                Ok(_) => return Resp::err("invalid expire time in 'getex' command"),
                Err(e) => return e,
            };
            let ms = if opt == b"EX" { v * 1000 } else { v };
            ctx.db.set_expire(&args[1], ctx.now_ms + ms);
        }
        Some(_) => return Resp::err("syntax error"),
    }
    Resp::Bulk(value)
}

pub(super) fn incrbyfloat(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let delta = match super::parse_f64(&args[2]) {
        Ok(v) => v,
        Err(e) => return e,
    };
    let current = match ctx.db.lookup_write(&args[1], ctx.now_ms) {
        None => 0.0,
        Some(RObj::Int(v)) => *v as f64,
        Some(RObj::Str(s)) => match std::str::from_utf8(s.as_bytes())
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
        {
            Some(v) => v,
            None => return Resp::err("value is not a valid float"),
        },
        Some(_) => return Resp::wrongtype(),
    };
    let next = current + delta;
    if !next.is_finite() {
        return Resp::err("increment would produce NaN or Infinity");
    }
    let rendered = super::format_f64(next);
    ctx.db
        .set_keep_ttl(&args[1], RObj::Str(Sds::from(rendered.as_str())));
    Resp::Bulk(rendered.into_bytes())
}
