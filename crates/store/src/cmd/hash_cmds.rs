//! Hash commands (`HSET`, `HGETALL`, …).

use super::{parse_i64, ExecCtx};
use crate::dict::Dict;
use crate::object::RObj;
use crate::resp::Resp;
use crate::sds::Sds;

fn with_hash<'a>(
    ctx: &'a mut ExecCtx<'_>,
    key: &[u8],
    create: bool,
) -> Result<Option<&'a mut Dict<Sds>>, Resp> {
    let now = ctx.now_ms;
    if ctx.db.lookup_write(key, now).is_none() {
        if !create {
            return Ok(None);
        }
        ctx.db.set(key, RObj::Hash(Dict::new()));
    }
    match ctx.db.lookup_write(key, now) {
        Some(RObj::Hash(h)) => Ok(Some(h)),
        Some(_) => Err(Resp::wrongtype()),
        None => Ok(None),
    }
}

fn reap_if_empty(ctx: &mut ExecCtx<'_>, key: &[u8]) {
    if let Some(RObj::Hash(h)) = ctx.db.lookup_write(key, ctx.now_ms) {
        if h.is_empty() {
            ctx.db.delete(key);
        }
    }
}

pub(super) fn hset(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    if !args.len().is_multiple_of(2) {
        return Resp::err("wrong number of arguments for HSET");
    }
    let hash = match with_hash(ctx, &args[1], true) {
        Ok(Some(h)) => h,
        Ok(None) => unreachable!("create=true"),
        Err(e) => return e,
    };
    let mut added = 0;
    for pair in args[2..].chunks_exact(2) {
        if hash.insert(&pair[0], Sds::from_bytes(&pair[1])).is_none() {
            added += 1;
        }
    }
    ctx.db.mark_dirty((args.len() as u64 - 2) / 2);
    Resp::Int(added)
}

pub(super) fn hmset(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    match hset(ctx, args) {
        r if r.is_error() => r,
        _ => Resp::ok(), // HMSET replies +OK rather than a count
    }
}

pub(super) fn hsetnx(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let hash = match with_hash(ctx, &args[1], true) {
        Ok(Some(h)) => h,
        Ok(None) => unreachable!("create=true"),
        Err(e) => return e,
    };
    if hash.contains(&args[2]) {
        Resp::Int(0)
    } else {
        hash.insert(&args[2], Sds::from_bytes(&args[3]));
        ctx.db.mark_dirty(1);
        Resp::Int(1)
    }
}

pub(super) fn hget(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    match with_hash(ctx, &args[1], false) {
        Ok(Some(h)) => match h.get(&args[2]) {
            Some(v) => Resp::Bulk(v.as_bytes().to_vec()),
            None => Resp::NullBulk,
        },
        Ok(None) => Resp::NullBulk,
        Err(e) => e,
    }
}

pub(super) fn hmget(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    match with_hash(ctx, &args[1], false) {
        Ok(Some(h)) => Resp::Array(
            args[2..]
                .iter()
                .map(|f| match h.get(f) {
                    Some(v) => Resp::Bulk(v.as_bytes().to_vec()),
                    None => Resp::NullBulk,
                })
                .collect(),
        ),
        Ok(None) => Resp::Array(args[2..].iter().map(|_| Resp::NullBulk).collect()),
        Err(e) => e,
    }
}

pub(super) fn hdel(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let hash = match with_hash(ctx, &args[1], false) {
        Ok(Some(h)) => h,
        Ok(None) => return Resp::Int(0),
        Err(e) => return e,
    };
    let removed = args[2..]
        .iter()
        .filter(|f| hash.remove(f).is_some())
        .count();
    ctx.db.mark_dirty(removed as u64);
    reap_if_empty(ctx, &args[1]);
    Resp::Int(removed as i64)
}

pub(super) fn hexists(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    match with_hash(ctx, &args[1], false) {
        Ok(Some(h)) => Resp::Int(h.contains(&args[2]) as i64),
        Ok(None) => Resp::Int(0),
        Err(e) => e,
    }
}

pub(super) fn hlen(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    match with_hash(ctx, &args[1], false) {
        Ok(Some(h)) => Resp::Int(h.len() as i64),
        Ok(None) => Resp::Int(0),
        Err(e) => e,
    }
}

pub(super) fn hstrlen(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    match with_hash(ctx, &args[1], false) {
        Ok(Some(h)) => Resp::Int(h.get(&args[2]).map_or(0, Sds::len) as i64),
        Ok(None) => Resp::Int(0),
        Err(e) => e,
    }
}

/// Collect `(field, value)` pairs sorted by field for deterministic replies.
fn sorted_pairs(h: &Dict<Sds>) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut pairs: Vec<(Vec<u8>, Vec<u8>)> = h
        .iter()
        .map(|(k, v)| (k.to_vec(), v.as_bytes().to_vec()))
        .collect();
    pairs.sort_unstable();
    pairs
}

pub(super) fn hgetall(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    match with_hash(ctx, &args[1], false) {
        Ok(Some(h)) => {
            let mut out = Vec::with_capacity(h.len() * 2);
            for (f, v) in sorted_pairs(h) {
                out.push(Resp::Bulk(f));
                out.push(Resp::Bulk(v));
            }
            Resp::Array(out)
        }
        Ok(None) => Resp::Array(Vec::new()),
        Err(e) => e,
    }
}

pub(super) fn hkeys(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    match with_hash(ctx, &args[1], false) {
        Ok(Some(h)) => Resp::Array(
            sorted_pairs(h)
                .into_iter()
                .map(|(f, _)| Resp::Bulk(f))
                .collect(),
        ),
        Ok(None) => Resp::Array(Vec::new()),
        Err(e) => e,
    }
}

pub(super) fn hvals(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    match with_hash(ctx, &args[1], false) {
        Ok(Some(h)) => Resp::Array(
            sorted_pairs(h)
                .into_iter()
                .map(|(_, v)| Resp::Bulk(v))
                .collect(),
        ),
        Ok(None) => Resp::Array(Vec::new()),
        Err(e) => e,
    }
}

pub(super) fn hincrby(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let delta = match parse_i64(&args[3]) {
        Ok(v) => v,
        Err(e) => return e,
    };
    let hash = match with_hash(ctx, &args[1], true) {
        Ok(Some(h)) => h,
        Ok(None) => unreachable!("create=true"),
        Err(e) => return e,
    };
    let current = match hash.get(&args[2]) {
        None => 0,
        Some(v) => match v.parse_i64() {
            Some(n) => n,
            None => return Resp::err("hash value is not an integer"),
        },
    };
    let Some(next) = current.checked_add(delta) else {
        return Resp::err("increment or decrement would overflow");
    };
    hash.insert(&args[2], Sds::from(next.to_string().as_str()));
    ctx.db.mark_dirty(1);
    Resp::Int(next)
}
