//! Set commands (`SADD`, `SMEMBERS`, …).

use super::{parse_i64, ExecCtx};
use crate::object::{RObj, SetObj};
use crate::resp::Resp;

fn with_set<'a>(
    ctx: &'a mut ExecCtx<'_>,
    key: &[u8],
    create: bool,
) -> Result<Option<&'a mut SetObj>, Resp> {
    let now = ctx.now_ms;
    if ctx.db.lookup_write(key, now).is_none() {
        if !create {
            return Ok(None);
        }
        ctx.db.set(key, RObj::Set(SetObj::new()));
    }
    match ctx.db.lookup_write(key, now) {
        Some(RObj::Set(s)) => Ok(Some(s)),
        Some(_) => Err(Resp::wrongtype()),
        None => Ok(None),
    }
}

fn reap_if_empty(ctx: &mut ExecCtx<'_>, key: &[u8]) {
    if let Some(RObj::Set(s)) = ctx.db.lookup_write(key, ctx.now_ms) {
        if s.is_empty() {
            ctx.db.delete(key);
        }
    }
}

pub(super) fn sadd(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let set = match with_set(ctx, &args[1], true) {
        Ok(Some(s)) => s,
        Ok(None) => unreachable!("create=true"),
        Err(e) => return e,
    };
    let added = args[2..].iter().filter(|m| set.add(m)).count();
    ctx.db.mark_dirty(added as u64);
    Resp::Int(added as i64)
}

pub(super) fn srem(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let set = match with_set(ctx, &args[1], false) {
        Ok(Some(s)) => s,
        Ok(None) => return Resp::Int(0),
        Err(e) => return e,
    };
    let removed = args[2..].iter().filter(|m| set.remove(m)).count();
    ctx.db.mark_dirty(removed as u64);
    reap_if_empty(ctx, &args[1]);
    Resp::Int(removed as i64)
}

pub(super) fn scard(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    match with_set(ctx, &args[1], false) {
        Ok(Some(s)) => Resp::Int(s.len() as i64),
        Ok(None) => Resp::Int(0),
        Err(e) => e,
    }
}

pub(super) fn sismember(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    match with_set(ctx, &args[1], false) {
        Ok(Some(s)) => Resp::Int(s.contains(&args[2]) as i64),
        Ok(None) => Resp::Int(0),
        Err(e) => e,
    }
}

pub(super) fn smembers(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    match with_set(ctx, &args[1], false) {
        Ok(Some(s)) => {
            let mut members = s.members();
            members.sort_unstable(); // deterministic reply order
            Resp::Array(members.into_iter().map(Resp::Bulk).collect())
        }
        Ok(None) => Resp::Array(Vec::new()),
        Err(e) => e,
    }
}

pub(super) fn spop(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let count = match args.get(2) {
        None => None,
        Some(arg) => match parse_i64(arg) {
            Ok(v) if v >= 0 => Some(v as usize),
            Ok(_) => return Resp::err("value is out of range, must be positive"),
            Err(e) => return e,
        },
    };
    // Choose victims first (immutable pass), then remove.
    let victims: Vec<Vec<u8>> = {
        let set = match with_set(ctx, &args[1], false) {
            Ok(Some(s)) => s,
            Ok(None) => {
                return if count.is_some() {
                    Resp::Array(Vec::new())
                } else {
                    Resp::NullBulk
                }
            }
            Err(e) => return e,
        };
        let mut members = set.members();
        members.sort_unstable();
        let want = count.unwrap_or(1).min(members.len());
        let mut out = Vec::with_capacity(want);
        for _ in 0..want {
            let idx = ctx_rand(ctx.rng_state, members.len() as u64) as usize;
            out.push(members.swap_remove(idx));
        }
        out
    };
    {
        let set = match with_set(ctx, &args[1], false) {
            Ok(Some(s)) => s,
            _ => unreachable!("set existed above"),
        };
        for v in &victims {
            set.remove(v);
        }
    }
    ctx.db.mark_dirty(victims.len() as u64);
    reap_if_empty(ctx, &args[1]);
    match count {
        None => match victims.into_iter().next() {
            Some(v) => Resp::Bulk(v),
            None => Resp::NullBulk,
        },
        Some(_) => Resp::Array(victims.into_iter().map(Resp::Bulk).collect()),
    }
}

pub(super) fn srandmember(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let count = match args.get(2) {
        None => None,
        Some(arg) => match parse_i64(arg) {
            Ok(v) => Some(v),
            Err(e) => return e,
        },
    };
    let members = match with_set(ctx, &args[1], false) {
        Ok(Some(s)) => {
            let mut m = s.members();
            m.sort_unstable();
            m
        }
        Ok(None) => {
            return if count.is_some() {
                Resp::Array(Vec::new())
            } else {
                Resp::NullBulk
            }
        }
        Err(e) => return e,
    };
    match count {
        None => {
            let idx = ctx_rand(ctx.rng_state, members.len() as u64) as usize;
            Resp::Bulk(members[idx].clone())
        }
        Some(n) if n >= 0 => {
            // Distinct members, up to the set size.
            let want = (n as usize).min(members.len());
            let mut pool = members;
            let mut out = Vec::with_capacity(want);
            for _ in 0..want {
                let idx = ctx_rand(ctx.rng_state, pool.len() as u64) as usize;
                out.push(pool.swap_remove(idx));
            }
            Resp::Array(out.into_iter().map(Resp::Bulk).collect())
        }
        Some(n) => {
            // Negative count: repetitions allowed, exactly |n| results.
            let want = n.unsigned_abs() as usize;
            let out: Vec<Resp> = (0..want)
                .map(|_| {
                    let idx = ctx_rand(ctx.rng_state, members.len() as u64) as usize;
                    Resp::Bulk(members[idx].clone())
                })
                .collect();
            Resp::Array(out)
        }
    }
}

fn ctx_rand(state: &mut u64, n: u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    if n == 0 {
        0
    } else {
        (*state >> 16) % n
    }
}

/// Gather a key's members as a sorted vec (empty when missing).
fn members_of(ctx: &mut ExecCtx<'_>, key: &[u8]) -> Result<Vec<Vec<u8>>, Resp> {
    match with_set(ctx, key, false) {
        Ok(Some(s)) => {
            let mut m = s.members();
            m.sort_unstable();
            Ok(m)
        }
        Ok(None) => Ok(Vec::new()),
        Err(e) => Err(e),
    }
}

fn set_algebra(
    ctx: &mut ExecCtx<'_>,
    keys: &[Vec<u8>],
    op: u8, // 0 = inter, 1 = union, 2 = diff
) -> Result<Vec<Vec<u8>>, Resp> {
    let first = members_of(ctx, &keys[0])?;
    let mut acc: std::collections::BTreeSet<Vec<u8>> = first.into_iter().collect();
    for key in &keys[1..] {
        let other: std::collections::BTreeSet<Vec<u8>> =
            members_of(ctx, key)?.into_iter().collect();
        match op {
            0 => acc = acc.intersection(&other).cloned().collect(),
            1 => acc.extend(other),
            _ => acc = acc.difference(&other).cloned().collect(),
        }
    }
    Ok(acc.into_iter().collect())
}

fn algebra_reply(members: Vec<Vec<u8>>) -> Resp {
    Resp::Array(members.into_iter().map(Resp::Bulk).collect())
}

fn algebra_store(ctx: &mut ExecCtx<'_>, dest: &[u8], members: Vec<Vec<u8>>) -> Resp {
    ctx.db.delete(dest);
    if members.is_empty() {
        return Resp::Int(0);
    }
    let n = members.len();
    let set = match with_set(ctx, dest, true) {
        Ok(Some(s)) => s,
        _ => unreachable!("create=true on a fresh key"),
    };
    for m in &members {
        set.add(m);
    }
    ctx.db.mark_dirty(n as u64);
    Resp::Int(n as i64)
}

pub(super) fn sinter(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    match set_algebra(ctx, &args[1..], 0) {
        Ok(m) => algebra_reply(m),
        Err(e) => e,
    }
}

pub(super) fn sunion(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    match set_algebra(ctx, &args[1..], 1) {
        Ok(m) => algebra_reply(m),
        Err(e) => e,
    }
}

pub(super) fn sdiff(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    match set_algebra(ctx, &args[1..], 2) {
        Ok(m) => algebra_reply(m),
        Err(e) => e,
    }
}

pub(super) fn sinterstore(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    match set_algebra(ctx, &args[2..], 0) {
        Ok(m) => algebra_store(ctx, &args[1], m),
        Err(e) => e,
    }
}

pub(super) fn sunionstore(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    match set_algebra(ctx, &args[2..], 1) {
        Ok(m) => algebra_store(ctx, &args[1], m),
        Err(e) => e,
    }
}

pub(super) fn sdiffstore(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    match set_algebra(ctx, &args[2..], 2) {
        Ok(m) => algebra_store(ctx, &args[1], m),
        Err(e) => e,
    }
}

pub(super) fn smove(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let member = args[3].clone();
    // Check the source first.
    let removed = match with_set(ctx, &args[1], false) {
        Ok(Some(s)) => s.remove(&member),
        Ok(None) => false,
        Err(e) => return e,
    };
    if !removed {
        // Still must type-check the destination, as Redis does.
        if let Err(e) = with_set(ctx, &args[2], false) {
            return e;
        }
        return Resp::Int(0);
    }
    reap_if_empty(ctx, &args[1]);
    match with_set(ctx, &args[2], true) {
        Ok(Some(d)) => {
            d.add(&member);
            ctx.db.mark_dirty(1);
            Resp::Int(1)
        }
        Ok(None) => unreachable!("create=true"),
        Err(e) => e,
    }
}
