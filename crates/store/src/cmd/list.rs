//! List commands (`LPUSH`, `LRANGE`, …).

use std::collections::VecDeque;

use super::{parse_i64, ExecCtx};
use crate::object::RObj;
use crate::resp::Resp;
use crate::sds::Sds;

/// Resolve a key to its list, optionally creating an empty one.
/// Returns `Err(reply)` on wrong type.
fn with_list<'a>(
    ctx: &'a mut ExecCtx<'_>,
    key: &[u8],
    create: bool,
) -> Result<Option<&'a mut VecDeque<Sds>>, Resp> {
    let now = ctx.now_ms;
    if ctx.db.lookup_write(key, now).is_none() {
        if !create {
            return Ok(None);
        }
        ctx.db.set(key, RObj::List(VecDeque::new()));
    }
    match ctx.db.lookup_write(key, now) {
        Some(RObj::List(l)) => Ok(Some(l)),
        Some(_) => Err(Resp::wrongtype()),
        None => Ok(None),
    }
}

/// Delete the key if its list became empty (Redis removes empty aggregates).
fn reap_if_empty(ctx: &mut ExecCtx<'_>, key: &[u8]) {
    if let Some(RObj::List(l)) = ctx.db.lookup_write(key, ctx.now_ms) {
        if l.is_empty() {
            ctx.db.delete(key);
        }
    }
}

fn push_generic(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>], front: bool, create: bool) -> Resp {
    let list = match with_list(ctx, &args[1], create) {
        Ok(Some(l)) => l,
        Ok(None) => return Resp::Int(0), // LPUSHX/RPUSHX on missing key
        Err(e) => return e,
    };
    for v in &args[2..] {
        if front {
            list.push_front(Sds::from_bytes(v));
        } else {
            list.push_back(Sds::from_bytes(v));
        }
    }
    let len = list.len();
    ctx.db.mark_dirty((args.len() - 2) as u64);
    Resp::Int(len as i64)
}

pub(super) fn lpush(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    push_generic(ctx, args, true, true)
}

pub(super) fn rpush(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    push_generic(ctx, args, false, true)
}

pub(super) fn lpushx(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    push_generic(ctx, args, true, false)
}

pub(super) fn rpushx(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    push_generic(ctx, args, false, false)
}

fn pop_generic(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>], front: bool) -> Resp {
    let count = match args.get(2) {
        None => None,
        Some(arg) => match parse_i64(arg) {
            Ok(v) if v >= 0 => Some(v as usize),
            Ok(_) => return Resp::err("value is out of range, must be positive"),
            Err(e) => return e,
        },
    };
    let list = match with_list(ctx, &args[1], false) {
        Ok(Some(l)) => l,
        Ok(None) => {
            return if count.is_some() {
                Resp::NullArray
            } else {
                Resp::NullBulk
            }
        }
        Err(e) => return e,
    };
    let mut popped = Vec::new();
    let n = count.unwrap_or(1).min(list.len());
    for _ in 0..n {
        let item = if front {
            list.pop_front()
        } else {
            list.pop_back()
        };
        match item {
            Some(v) => popped.push(v),
            None => break,
        }
    }
    ctx.db.mark_dirty(popped.len() as u64);
    reap_if_empty(ctx, &args[1]);
    match count {
        None => match popped.into_iter().next() {
            Some(v) => Resp::Bulk(v.into_vec()),
            None => Resp::NullBulk,
        },
        Some(_) => Resp::Array(
            popped
                .into_iter()
                .map(|v| Resp::Bulk(v.into_vec()))
                .collect(),
        ),
    }
}

pub(super) fn lpop(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    pop_generic(ctx, args, true)
}

pub(super) fn rpop(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    pop_generic(ctx, args, false)
}

pub(super) fn llen(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    match with_list(ctx, &args[1], false) {
        Ok(Some(l)) => Resp::Int(l.len() as i64),
        Ok(None) => Resp::Int(0),
        Err(e) => e,
    }
}

/// Clamp Redis-style negative-capable (start, stop) onto `[0, len)`.
fn clamp_range(start: i64, stop: i64, len: usize) -> Option<(usize, usize)> {
    let len = len as i64;
    let mut s = if start < 0 { len + start } else { start };
    let mut e = if stop < 0 { len + stop } else { stop };
    s = s.max(0);
    e = e.min(len - 1);
    if s > e || len == 0 {
        None
    } else {
        Some((s as usize, e as usize))
    }
}

pub(super) fn lrange(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let (start, stop) = match (parse_i64(&args[2]), parse_i64(&args[3])) {
        (Ok(s), Ok(e)) => (s, e),
        (Err(e), _) | (_, Err(e)) => return e,
    };
    let list = match with_list(ctx, &args[1], false) {
        Ok(Some(l)) => l,
        Ok(None) => return Resp::Array(Vec::new()),
        Err(e) => return e,
    };
    match clamp_range(start, stop, list.len()) {
        Some((s, e)) => Resp::Array(
            list.iter()
                .skip(s)
                .take(e - s + 1)
                .map(|v| Resp::Bulk(v.as_bytes().to_vec()))
                .collect(),
        ),
        None => Resp::Array(Vec::new()),
    }
}

pub(super) fn lindex(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let idx = match parse_i64(&args[2]) {
        Ok(v) => v,
        Err(e) => return e,
    };
    let list = match with_list(ctx, &args[1], false) {
        Ok(Some(l)) => l,
        Ok(None) => return Resp::NullBulk,
        Err(e) => return e,
    };
    let real = if idx < 0 {
        list.len() as i64 + idx
    } else {
        idx
    };
    if real < 0 || real as usize >= list.len() {
        Resp::NullBulk
    } else {
        Resp::Bulk(list[real as usize].as_bytes().to_vec())
    }
}

pub(super) fn lset(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let idx = match parse_i64(&args[2]) {
        Ok(v) => v,
        Err(e) => return e,
    };
    let value = Sds::from_bytes(&args[3]);
    let list = match with_list(ctx, &args[1], false) {
        Ok(Some(l)) => l,
        Ok(None) => return Resp::err("no such key"),
        Err(e) => return e,
    };
    let real = if idx < 0 {
        list.len() as i64 + idx
    } else {
        idx
    };
    if real < 0 || real as usize >= list.len() {
        return Resp::err("index out of range");
    }
    list[real as usize] = value;
    ctx.db.mark_dirty(1);
    Resp::ok()
}

pub(super) fn ltrim(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let (start, stop) = match (parse_i64(&args[2]), parse_i64(&args[3])) {
        (Ok(s), Ok(e)) => (s, e),
        (Err(e), _) | (_, Err(e)) => return e,
    };
    let list = match with_list(ctx, &args[1], false) {
        Ok(Some(l)) => l,
        Ok(None) => return Resp::ok(),
        Err(e) => return e,
    };
    match clamp_range(start, stop, list.len()) {
        Some((s, e)) => {
            list.drain(e + 1..);
            list.drain(..s);
        }
        None => list.clear(),
    }
    ctx.db.mark_dirty(1);
    reap_if_empty(ctx, &args[1]);
    Resp::ok()
}

pub(super) fn lrem(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let count = match parse_i64(&args[2]) {
        Ok(v) => v,
        Err(e) => return e,
    };
    let needle = &args[3];
    let list = match with_list(ctx, &args[1], false) {
        Ok(Some(l)) => l,
        Ok(None) => return Resp::Int(0),
        Err(e) => return e,
    };
    let limit = if count == 0 {
        usize::MAX
    } else {
        count.unsigned_abs() as usize
    };
    let mut removed = 0;
    if count >= 0 {
        let mut i = 0;
        while i < list.len() && removed < limit {
            if list[i].as_bytes() == &needle[..] {
                list.remove(i);
                removed += 1;
            } else {
                i += 1;
            }
        }
    } else {
        let mut i = list.len();
        while i > 0 && removed < limit {
            i -= 1;
            if list[i].as_bytes() == &needle[..] {
                list.remove(i);
                removed += 1;
            }
        }
    }
    ctx.db.mark_dirty(removed as u64);
    reap_if_empty(ctx, &args[1]);
    Resp::Int(removed as i64)
}

pub(super) fn rpoplpush(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    // Pop from the source tail.
    let value = {
        let src = match with_list(ctx, &args[1], false) {
            Ok(Some(l)) => l,
            Ok(None) => return Resp::NullBulk,
            Err(e) => return e,
        };
        match src.pop_back() {
            Some(v) => v,
            None => return Resp::NullBulk,
        }
    };
    reap_if_empty(ctx, &args[1]);
    // Push onto the destination head (creating it; type errors push back).
    match with_list(ctx, &args[2], true) {
        Ok(Some(dst)) => {
            dst.push_front(value.clone());
            ctx.db.mark_dirty(2);
            Resp::Bulk(value.into_vec())
        }
        Ok(None) => unreachable!("create=true"),
        Err(e) => {
            // Destination has the wrong type: restore the source element.
            if let Ok(Some(src)) = with_list(ctx, &args[1], true) {
                src.push_back(value);
            }
            e
        }
    }
}

pub(super) fn lpos(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let needle = args[2].clone();
    let mut rank = 1i64;
    let mut i = 3;
    while i < args.len() {
        match args[i].to_ascii_uppercase().as_slice() {
            b"RANK" => {
                i += 1;
                rank = match args.get(i).map(|a| parse_i64(a)) {
                    Some(Ok(v)) if v != 0 => v,
                    Some(Ok(_)) => return Resp::err("RANK can't be zero"),
                    Some(Err(e)) => return e,
                    None => return Resp::err("syntax error"),
                };
            }
            _ => return Resp::err("syntax error"),
        }
        i += 1;
    }
    let list = match with_list(ctx, &args[1], false) {
        Ok(Some(l)) => l,
        Ok(None) => return Resp::NullBulk,
        Err(e) => return e,
    };
    let mut matches_seen = 0i64;
    let want = rank.unsigned_abs() as i64;
    if rank > 0 {
        for (idx, item) in list.iter().enumerate() {
            if item.as_bytes() == &needle[..] {
                matches_seen += 1;
                if matches_seen == want {
                    return Resp::Int(idx as i64);
                }
            }
        }
    } else {
        for (idx, item) in list.iter().enumerate().rev() {
            if item.as_bytes() == &needle[..] {
                matches_seen += 1;
                if matches_seen == want {
                    return Resp::Int(idx as i64);
                }
            }
        }
    }
    Resp::NullBulk
}
