//! Bit operations (`SETBIT`, `GETBIT`, `BITCOUNT`, `BITPOS`, `BITOP`).
//!
//! Bits are numbered Redis-style: bit 0 is the most significant bit of the
//! first byte.

use super::{parse_i64, ExecCtx};
use crate::object::RObj;
use crate::resp::Resp;
use crate::sds::Sds;

/// Largest addressable bit offset (Redis caps strings at 512 MB).
const MAX_BIT_OFFSET: i64 = 512 * 1024 * 1024 * 8 - 1;

/// Fetch the raw bytes of a string key (owned), or None/wrongtype.
fn string_bytes(ctx: &mut ExecCtx<'_>, key: &[u8]) -> Result<Option<Vec<u8>>, Resp> {
    match ctx.db.lookup_read(key, ctx.now_ms) {
        None => Ok(None),
        Some(o) if o.is_string() => Ok(Some(o.as_string_bytes())),
        Some(_) => Err(Resp::wrongtype()),
    }
}

pub(super) fn setbit(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let offset = match parse_i64(&args[2]) {
        Ok(v) if (0..=MAX_BIT_OFFSET).contains(&v) => v as usize,
        Ok(_) => return Resp::err("bit offset is not an integer or out of range"),
        Err(e) => return e,
    };
    let bit = match parse_i64(&args[3]) {
        Ok(0) => 0u8,
        Ok(1) => 1u8,
        _ => return Resp::err("bit is not an integer or out of range"),
    };
    let mut bytes = match string_bytes(ctx, &args[1]) {
        Ok(Some(b)) => b,
        Ok(None) => Vec::new(),
        Err(e) => return e,
    };
    let byte_idx = offset / 8;
    let bit_idx = 7 - (offset % 8);
    if byte_idx >= bytes.len() {
        bytes.resize(byte_idx + 1, 0);
    }
    let old = (bytes[byte_idx] >> bit_idx) & 1;
    if bit == 1 {
        bytes[byte_idx] |= 1 << bit_idx;
    } else {
        bytes[byte_idx] &= !(1 << bit_idx);
    }
    ctx.db
        .set_keep_ttl(&args[1], RObj::Str(Sds::from_vec(bytes)));
    Resp::Int(old as i64)
}

pub(super) fn getbit(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let offset = match parse_i64(&args[2]) {
        Ok(v) if (0..=MAX_BIT_OFFSET).contains(&v) => v as usize,
        Ok(_) => return Resp::err("bit offset is not an integer or out of range"),
        Err(e) => return e,
    };
    let bytes = match string_bytes(ctx, &args[1]) {
        Ok(Some(b)) => b,
        Ok(None) => return Resp::Int(0),
        Err(e) => return e,
    };
    let byte_idx = offset / 8;
    if byte_idx >= bytes.len() {
        return Resp::Int(0);
    }
    Resp::Int(((bytes[byte_idx] >> (7 - offset % 8)) & 1) as i64)
}

pub(super) fn bitcount(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let bytes = match string_bytes(ctx, &args[1]) {
        Ok(Some(b)) => b,
        Ok(None) => return Resp::Int(0),
        Err(e) => return e,
    };
    let slice: &[u8] = match (args.get(2), args.get(3)) {
        (None, None) => &bytes,
        (Some(s), Some(e)) => {
            let (start, end) = match (parse_i64(s), parse_i64(e)) {
                (Ok(a), Ok(b)) => (a, b),
                (Err(err), _) | (_, Err(err)) => return err,
            };
            // Reuse GETRANGE-style clamping for the byte range.
            let tmp = Sds::from_vec(bytes.clone());
            let r = tmp.get_range(start, end);
            return Resp::Int(r.iter().map(|b| b.count_ones() as i64).sum());
        }
        _ => return Resp::err("syntax error"),
    };
    Resp::Int(slice.iter().map(|b| b.count_ones() as i64).sum())
}

pub(super) fn bitpos(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let target = match parse_i64(&args[2]) {
        Ok(0) => 0u8,
        Ok(1) => 1u8,
        _ => return Resp::err("the bit argument must be 1 or 0"),
    };
    let bytes = match string_bytes(ctx, &args[1]) {
        Ok(Some(b)) => b,
        Ok(None) => {
            // Missing key is all-zeroes: first 0 is at 0; no 1 exists.
            return Resp::Int(if target == 0 { 0 } else { -1 });
        }
        Err(e) => return e,
    };
    for (i, &byte) in bytes.iter().enumerate() {
        for bit in 0..8 {
            if (byte >> (7 - bit)) & 1 == target {
                return Resp::Int((i * 8 + bit) as i64);
            }
        }
    }
    // Redis: looking for a 0 in an all-ones string reports one past the end.
    if target == 0 {
        Resp::Int((bytes.len() * 8) as i64)
    } else {
        Resp::Int(-1)
    }
}

pub(super) fn bitop(ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    let op = args[1].to_ascii_uppercase();
    let dest = &args[2];
    let sources = &args[3..];
    if sources.is_empty() {
        return Resp::err("wrong number of arguments for 'bitop' command");
    }
    if op == b"NOT" && sources.len() != 1 {
        return Resp::err("BITOP NOT must be called with a single source key");
    }
    let mut operands = Vec::with_capacity(sources.len());
    for key in sources {
        match string_bytes(ctx, key) {
            Ok(Some(b)) => operands.push(b),
            Ok(None) => operands.push(Vec::new()),
            Err(e) => return e,
        }
    }
    let max_len = operands.iter().map(Vec::len).max().unwrap_or(0);
    let mut out = vec![0u8; max_len];
    match op.as_slice() {
        b"NOT" => {
            for (i, byte) in operands[0].iter().enumerate() {
                out[i] = !byte;
            }
        }
        b"AND" | b"OR" | b"XOR" => {
            for (i, slot) in out.iter_mut().enumerate() {
                let mut acc: Option<u8> = None;
                for operand in &operands {
                    let byte = operand.get(i).copied().unwrap_or(0);
                    acc = Some(match (acc, op.as_slice()) {
                        (None, _) => byte,
                        (Some(a), b"AND") => a & byte,
                        (Some(a), b"OR") => a | byte,
                        (Some(a), _) => a ^ byte,
                    });
                }
                *slot = acc.unwrap_or(0);
            }
        }
        _ => return Resp::err("syntax error"),
    }
    if out.is_empty() {
        ctx.db.delete(dest);
        return Resp::Int(0);
    }
    let len = out.len();
    ctx.db.set(dest, RObj::Str(Sds::from_vec(out)));
    Resp::Int(len as i64)
}
