//! Server and connection commands (`PING`, `DBSIZE`, `INFO`, …).

use super::{parse_i64, ExecCtx, COMMANDS};
use crate::resp::Resp;

pub(super) fn ping(_ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    match args.len() {
        1 => Resp::Simple("PONG".into()),
        2 => Resp::Bulk(args[1].clone()),
        _ => Resp::err("wrong number of arguments for 'ping' command"),
    }
}

pub(super) fn echo(_ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    Resp::Bulk(args[1].clone())
}

pub(super) fn select(_ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    // A single logical DB is modelled (the paper's workloads use DB 0).
    match parse_i64(&args[1]) {
        Ok(0) => Resp::ok(),
        Ok(_) => Resp::err("DB index is out of range"),
        Err(e) => e,
    }
}

pub(super) fn dbsize(ctx: &mut ExecCtx<'_>, _args: &[Vec<u8>]) -> Resp {
    Resp::Int(ctx.db.len() as i64)
}

pub(super) fn flushdb(ctx: &mut ExecCtx<'_>, _args: &[Vec<u8>]) -> Resp {
    ctx.db.flush();
    Resp::ok()
}

pub(super) fn command(_ctx: &mut ExecCtx<'_>, args: &[Vec<u8>]) -> Resp {
    if args.len() >= 2 && args[1].eq_ignore_ascii_case(b"COUNT") {
        return Resp::Int(COMMANDS.len() as i64);
    }
    // Brief reply: one array entry per command (name + arity).
    Resp::Array(
        COMMANDS
            .iter()
            .map(|c| {
                Resp::Array(vec![
                    Resp::Bulk(c.name.to_ascii_lowercase().into_bytes()),
                    Resp::Int(c.arity as i64),
                ])
            })
            .collect(),
    )
}

pub(super) fn info(ctx: &mut ExecCtx<'_>, _args: &[Vec<u8>]) -> Resp {
    let (hits, misses) = ctx.db.stats_hit_miss();
    let text = format!(
        "# Server\r\nskv_version:0.1.0\r\n\
         # Keyspace\r\ndb0:keys={}\r\n\
         # Stats\r\nexpired_keys:{}\r\nkeyspace_hits:{hits}\r\nkeyspace_misses:{misses}\r\n\
         dirty:{}\r\n",
        ctx.db.len(),
        ctx.db.stat_expired(),
        ctx.db.dirty(),
    );
    Resp::Bulk(text.into_bytes())
}

pub(super) fn time(ctx: &mut ExecCtx<'_>, _args: &[Vec<u8>]) -> Resp {
    let secs = ctx.now_ms / 1000;
    let micros = (ctx.now_ms % 1000) * 1000;
    Resp::Array(vec![
        Resp::Bulk(secs.to_string().into_bytes()),
        Resp::Bulk(micros.to_string().into_bytes()),
    ])
}
