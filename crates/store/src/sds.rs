//! Simple Dynamic Strings.
//!
//! SKV inherits Redis's string representation (paper §IV: "the
//! implementation of data structures such as dynamic strings … are
//! inherited from Redis"). [`Sds`] is a growable byte string with Redis's
//! preallocation policy: grow by doubling while small, then by fixed 1 MiB
//! steps, trading memory for amortized-O(1) append — the policy that makes
//! `APPEND`-heavy workloads cheap.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;

/// Above this size, growth switches from doubling to +1 MiB steps.
const SDS_MAX_PREALLOC: usize = 1024 * 1024;

/// A binary-safe dynamic string.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Sds {
    buf: Vec<u8>,
}

impl Sds {
    /// An empty string.
    pub fn new() -> Self {
        Sds { buf: Vec::new() }
    }

    /// Create from bytes.
    pub fn from_bytes(bytes: impl AsRef<[u8]>) -> Self {
        Sds {
            buf: bytes.as_ref().to_vec(),
        }
    }

    /// Create from an owned vector without copying.
    pub fn from_vec(buf: Vec<u8>) -> Self {
        Sds { buf }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Currently allocated capacity.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// The bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consume into the underlying vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Ensure room for `additional` more bytes using Redis's policy:
    /// request doubling up to the 1 MiB preallocation cap, then fixed
    /// increments.
    pub fn make_room(&mut self, additional: usize) {
        let needed = self.buf.len() + additional;
        if needed <= self.buf.capacity() {
            return;
        }
        let target = if needed < SDS_MAX_PREALLOC {
            needed * 2
        } else {
            needed + SDS_MAX_PREALLOC
        };
        self.buf.reserve_exact(target - self.buf.len());
    }

    /// Append bytes (the `APPEND` command's core).
    pub fn append(&mut self, bytes: &[u8]) {
        self.make_room(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Overwrite bytes starting at `offset`, zero-padding any gap
    /// (the `SETRANGE` command's semantics).
    pub fn set_range(&mut self, offset: usize, bytes: &[u8]) {
        let end = offset + bytes.len();
        if end > self.buf.len() {
            self.make_room(end - self.buf.len());
            self.buf.resize(end, 0);
        }
        self.buf[offset..end].copy_from_slice(bytes);
    }

    /// Extract `GETRANGE`-style: clamped, inclusive indices that may be
    /// negative (counting from the end), mirroring Redis semantics.
    pub fn get_range(&self, start: i64, end: i64) -> &[u8] {
        let len = self.buf.len() as i64;
        if len == 0 {
            return &[];
        }
        let mut s = if start < 0 { len + start } else { start };
        let mut e = if end < 0 { len + end } else { end };
        s = s.max(0);
        e = e.min(len - 1);
        if s > e {
            return &[];
        }
        &self.buf[s as usize..=e as usize]
    }

    /// Parse as an i64 if the whole string is a valid decimal integer
    /// (Redis's shared-integer fast path).
    pub fn parse_i64(&self) -> Option<i64> {
        let s = std::str::from_utf8(&self.buf).ok()?;
        if s.is_empty() || (s.len() > 1 && s.starts_with('0')) || s == "-" {
            return None;
        }
        if s.len() > 1 && s.starts_with("-0") {
            return None;
        }
        s.parse().ok()
    }

    /// Approximate heap memory used (for `maxmemory`-style accounting).
    pub fn memory_usage(&self) -> usize {
        self.buf.capacity() + std::mem::size_of::<Self>()
    }
}

impl Deref for Sds {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl Borrow<[u8]> for Sds {
    fn borrow(&self) -> &[u8] {
        &self.buf
    }
}

impl From<&[u8]> for Sds {
    fn from(b: &[u8]) -> Self {
        Sds::from_bytes(b)
    }
}

impl From<&str> for Sds {
    fn from(s: &str) -> Self {
        Sds::from_bytes(s.as_bytes())
    }
}

impl From<Vec<u8>> for Sds {
    fn from(v: Vec<u8>) -> Self {
        Sds::from_vec(v)
    }
}

impl fmt::Debug for Sds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sds({:?})", String::from_utf8_lossy(&self.buf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_grows() {
        let mut s = Sds::from("hello");
        s.append(b" world");
        assert_eq!(s.as_bytes(), b"hello world");
        assert_eq!(s.len(), 11);
    }

    #[test]
    fn small_appends_double_capacity() {
        let mut s = Sds::from("abcd");
        let before = s.capacity();
        s.append(b"efgh");
        // Policy requests 2x the needed size.
        assert!(s.capacity() >= before.max(16));
        assert!(s.capacity() >= s.len() * 2 || s.capacity() >= SDS_MAX_PREALLOC);
    }

    #[test]
    fn set_range_pads_with_zeroes() {
        let mut s = Sds::from("ab");
        s.set_range(5, b"xy");
        assert_eq!(s.as_bytes(), b"ab\0\0\0xy");
        s.set_range(0, b"AB");
        assert_eq!(s.as_bytes(), b"AB\0\0\0xy");
    }

    #[test]
    fn get_range_negative_indices() {
        let s = Sds::from("Hello World");
        assert_eq!(s.get_range(0, 4), b"Hello");
        assert_eq!(s.get_range(-5, -1), b"World");
        assert_eq!(s.get_range(0, -1), b"Hello World");
        assert_eq!(s.get_range(6, 100), b"World");
        assert_eq!(s.get_range(9, 2), b"");
        assert_eq!(Sds::new().get_range(0, -1), b"");
    }

    #[test]
    fn parse_i64_strict() {
        assert_eq!(Sds::from("123").parse_i64(), Some(123));
        assert_eq!(Sds::from("-42").parse_i64(), Some(-42));
        assert_eq!(Sds::from("0").parse_i64(), Some(0));
        assert_eq!(Sds::from("012").parse_i64(), None); // leading zero
        assert_eq!(Sds::from("-0").parse_i64(), None);
        assert_eq!(Sds::from("1.5").parse_i64(), None);
        assert_eq!(Sds::from("").parse_i64(), None);
        assert_eq!(Sds::from("abc").parse_i64(), None);
        assert_eq!(Sds::from("9223372036854775807").parse_i64(), Some(i64::MAX));
        assert_eq!(Sds::from("9223372036854775808").parse_i64(), None);
    }

    #[test]
    fn binary_safety() {
        let data = vec![0u8, 255, 10, 13, 0];
        let s = Sds::from_bytes(&data);
        assert_eq!(s.as_bytes(), &data[..]);
        assert_eq!(s.len(), 5);
    }
}
