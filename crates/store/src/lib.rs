//! # skv-store — a Redis-like storage engine
//!
//! SKV "uses Redis as a building block" and inherits its data structures,
//! persistence format and hash algorithm (paper §IV). This crate is that
//! building block, written from scratch:
//!
//! * [`sds::Sds`] — dynamic strings with Redis's preallocation policy,
//! * [`dict::Dict`] — hash table with *incremental rehashing*,
//! * [`skiplist::SkipList`] / [`object::ZSet`] — sorted sets with ranks,
//! * [`intset::IntSet`] — compact integer sets with encoding upgrades,
//! * [`resp`] — the RESP2 wire protocol,
//! * [`cmd`] — a ~80-command dispatch table with write flags,
//! * [`engine::Engine`] — the single-node event-loop core,
//! * [`rdb`] — canonical CRC-checked snapshots (full resync transfers),
//! * [`backlog::Backlog`] — the replication backlog ring buffer,
//! * [`repl`] — replication IDs and offsets.
//!
//! Everything is deterministic: callers supply the clock and all seeds.
//!
//! ```
//! use skv_store::engine::Engine;
//! use skv_store::resp::Resp;
//!
//! let mut e = Engine::new(42);
//! assert_eq!(e.exec_str(0, &["SET", "greeting", "hello"]).reply, Resp::ok());
//! assert_eq!(
//!     e.exec_str(0, &["GET", "greeting"]).reply,
//!     Resp::Bulk(b"hello".to_vec()),
//! );
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
// RESP carries counts and ranges as i64; every cast below clamps to a
// container length first, so the "32-bit pointer width" truncation this
// lint fears cannot exceed what fits in memory. Wire-format casts (the
// ones that corrupt frames) are enforced separately by skv-analyze.
#![allow(clippy::cast_possible_truncation)]

pub mod backlog;
pub mod cmd;
pub mod db;
pub mod dict;
pub mod engine;
pub mod hash;
pub mod intset;
pub mod object;
pub mod rdb;
pub mod repl;
pub mod resp;
pub mod sds;
pub mod skiplist;
