//! The keyspace: key→object dictionary plus the expiration machinery.
//!
//! Mirrors Redis's `db.c`: a main dict, a separate expires dict holding
//! absolute millisecond deadlines, lazy expiration on access, and an active
//! expire cycle driven by the server cron (a time event in the paper's
//! Figure 4 workflow).

use crate::dict::Dict;
use crate::object::RObj;

/// A single logical database.
#[derive(Debug, Default)]
pub struct Db {
    dict: Dict<RObj>,
    /// key → absolute expiry in milliseconds.
    expires: Dict<u64>,
    /// Mutation counter (drives replication decisions upstream).
    dirty: u64,
    /// Statistics.
    stat_expired: u64,
    stat_hits: u64,
    stat_misses: u64,
}

impl Db {
    /// Create an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live keys (may include not-yet-reaped expired keys,
    /// exactly as `DBSIZE` does in Redis).
    pub fn len(&self) -> usize {
        self.dict.len()
    }

    /// True when no keys exist.
    pub fn is_empty(&self) -> bool {
        self.dict.is_empty()
    }

    /// Total mutations applied (Redis's `server.dirty`).
    pub fn dirty(&self) -> u64 {
        self.dirty
    }

    /// Bump the mutation counter.
    pub fn mark_dirty(&mut self, n: u64) {
        self.dirty += n;
    }

    /// Keys expired so far (lazy + active).
    pub fn stat_expired(&self) -> u64 {
        self.stat_expired
    }

    /// (hits, misses) for read lookups.
    pub fn stats_hit_miss(&self) -> (u64, u64) {
        (self.stat_hits, self.stat_misses)
    }

    /// Is `key` past its deadline at `now_ms`?
    fn is_expired(&self, key: &[u8], now_ms: u64) -> bool {
        self.expires.get(key).is_some_and(|&at| at <= now_ms)
    }

    /// Reap `key` if expired. Returns true if it was removed.
    fn expire_if_needed(&mut self, key: &[u8], now_ms: u64) -> bool {
        if self.is_expired(key, now_ms) {
            self.dict.remove(key);
            self.expires.remove(key);
            self.stat_expired += 1;
            self.dirty += 1;
            true
        } else {
            false
        }
    }

    /// Read-path lookup: reaps lazily, counts hit/miss.
    pub fn lookup_read(&mut self, key: &[u8], now_ms: u64) -> Option<&RObj> {
        self.expire_if_needed(key, now_ms);
        match self.dict.get(key) {
            Some(v) => {
                self.stat_hits += 1;
                Some(v)
            }
            None => {
                self.stat_misses += 1;
                None
            }
        }
    }

    /// Write-path lookup: reaps lazily, no hit/miss accounting.
    pub fn lookup_write(&mut self, key: &[u8], now_ms: u64) -> Option<&mut RObj> {
        self.expire_if_needed(key, now_ms);
        self.dict.get_mut(key)
    }

    /// Does the key exist (and is not expired)?
    pub fn exists(&mut self, key: &[u8], now_ms: u64) -> bool {
        self.expire_if_needed(key, now_ms);
        self.dict.contains(key)
    }

    /// Insert or replace a value, clearing any previous TTL (SET semantics).
    pub fn set(&mut self, key: &[u8], value: RObj) {
        self.dict.insert(key, value);
        self.expires.remove(key);
        self.dirty += 1;
    }

    /// Insert or replace, keeping an existing TTL (`SET ... KEEPTTL` /
    /// internal updates that must not clear expiry).
    pub fn set_keep_ttl(&mut self, key: &[u8], value: RObj) {
        self.dict.insert(key, value);
        self.dirty += 1;
    }

    /// Delete a key. Returns true if it existed.
    pub fn delete(&mut self, key: &[u8]) -> bool {
        let existed = self.dict.remove(key).is_some();
        self.expires.remove(key);
        if existed {
            self.dirty += 1;
        }
        existed
    }

    /// Set an absolute expiry (milliseconds). The key must exist.
    pub fn set_expire(&mut self, key: &[u8], at_ms: u64) -> bool {
        if !self.dict.contains(key) {
            return false;
        }
        self.expires.insert(key, at_ms);
        self.dirty += 1;
        true
    }

    /// Remove a TTL (`PERSIST`). Returns true if one existed.
    pub fn persist(&mut self, key: &[u8]) -> bool {
        let had = self.expires.remove(key).is_some();
        if had {
            self.dirty += 1;
        }
        had
    }

    /// Milliseconds until expiry: `None` if no key, `Some(None)` if no TTL,
    /// `Some(Some(ms))` otherwise.
    #[allow(clippy::option_option)]
    pub fn ttl_ms(&mut self, key: &[u8], now_ms: u64) -> Option<Option<u64>> {
        self.expire_if_needed(key, now_ms);
        if !self.dict.contains(key) {
            return None;
        }
        Some(self.expires.get(key).map(|&at| at.saturating_sub(now_ms)))
    }

    /// One round of the active expire cycle: sample up to `samples` keys
    /// from the expires dict and reap the dead ones. Returns reaped count.
    ///
    /// `rand` supplies randomness (`n -> value in [0, n)`).
    pub fn active_expire_cycle(
        &mut self,
        now_ms: u64,
        samples: usize,
        mut rand: impl FnMut(u64) -> u64,
    ) -> usize {
        let mut reaped = 0;
        for _ in 0..samples {
            let Some((key, &at)) = self.expires.random_entry(&mut rand) else {
                break;
            };
            if at <= now_ms {
                let key = key.to_vec();
                self.dict.remove(&key);
                self.expires.remove(&key);
                self.stat_expired += 1;
                self.dirty += 1;
                reaped += 1;
            }
        }
        reaped
    }

    /// Advance incremental rehashing on both dicts (server-cron work).
    pub fn rehash_step(&mut self, buckets: usize) {
        self.dict.rehash_step(buckets);
        self.expires.rehash_step(buckets);
    }

    /// Iterate all `(key, value)` pairs, including expired-but-unreaped.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], &RObj)> {
        self.dict.iter()
    }

    /// One cursor step of a guaranteed-coverage keyspace scan (`SCAN`).
    pub fn scan_step(&self, cursor: u64, emit: impl FnMut(&[u8], &RObj)) -> u64 {
        self.dict.scan(cursor, emit)
    }

    /// The TTL entry for a key, if any (for snapshotting).
    pub fn expiry_of(&self, key: &[u8]) -> Option<u64> {
        self.expires.get(key).copied()
    }

    /// A random live key (for `RANDOMKEY`).
    pub fn random_key(&self, rand: impl FnMut(u64) -> u64) -> Option<Vec<u8>> {
        self.dict.random_entry(rand).map(|(k, _)| k.to_vec())
    }

    /// Remove every key.
    pub fn flush(&mut self) {
        let n = self.dict.len() as u64;
        self.dict.clear();
        self.expires.clear();
        self.dirty += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(s: &str) -> RObj {
        RObj::string(s.as_bytes())
    }

    #[test]
    fn set_get_delete() {
        let mut db = Db::new();
        db.set(b"k", obj("v"));
        assert!(db.exists(b"k", 0));
        assert_eq!(db.lookup_read(b"k", 0).unwrap().as_string_bytes(), b"v");
        assert!(db.delete(b"k"));
        assert!(!db.delete(b"k"));
        assert!(db.lookup_read(b"k", 0).is_none());
        assert_eq!(db.stats_hit_miss(), (1, 1));
    }

    #[test]
    fn lazy_expiration_on_read() {
        let mut db = Db::new();
        db.set(b"k", obj("v"));
        assert!(db.set_expire(b"k", 100));
        assert!(db.lookup_read(b"k", 99).is_some());
        assert!(db.lookup_read(b"k", 100).is_none(), "expires at deadline");
        assert_eq!(db.len(), 0, "reaped lazily");
        assert_eq!(db.stat_expired(), 1);
    }

    #[test]
    fn set_clears_ttl_but_keep_ttl_does_not() {
        let mut db = Db::new();
        db.set(b"k", obj("v1"));
        db.set_expire(b"k", 500);
        db.set(b"k", obj("v2"));
        assert_eq!(db.ttl_ms(b"k", 0), Some(None), "SET clears TTL");

        db.set_expire(b"k", 500);
        db.set_keep_ttl(b"k", obj("v3"));
        assert_eq!(db.ttl_ms(b"k", 100), Some(Some(400)));
    }

    #[test]
    fn ttl_reporting() {
        let mut db = Db::new();
        assert_eq!(db.ttl_ms(b"missing", 0), None);
        db.set(b"k", obj("v"));
        assert_eq!(db.ttl_ms(b"k", 0), Some(None));
        db.set_expire(b"k", 1500);
        assert_eq!(db.ttl_ms(b"k", 1000), Some(Some(500)));
        // After expiry the key is gone entirely.
        assert_eq!(db.ttl_ms(b"k", 2000), None);
    }

    #[test]
    fn persist_removes_ttl() {
        let mut db = Db::new();
        db.set(b"k", obj("v"));
        assert!(!db.persist(b"k"), "no TTL to remove");
        db.set_expire(b"k", 100);
        assert!(db.persist(b"k"));
        assert!(db.lookup_read(b"k", 1000).is_some(), "survives deadline");
    }

    #[test]
    fn expire_on_missing_key_fails() {
        let mut db = Db::new();
        assert!(!db.set_expire(b"nope", 100));
    }

    #[test]
    fn active_cycle_reaps_dead_keys() {
        let mut db = Db::new();
        for i in 0..100 {
            let k = format!("k{i}");
            db.set(k.as_bytes(), obj("v"));
            db.set_expire(k.as_bytes(), if i < 50 { 10 } else { 10_000 });
        }
        let mut state = 99u64;
        let mut rand = move |n: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Use high bits: an LCG's low bits cycle too regularly to sample with.
            (state >> 16) % n.max(1)
        };
        let mut total = 0;
        for _ in 0..100 {
            total += db.active_expire_cycle(1000, 20, &mut rand);
        }
        assert_eq!(total, 50, "all dead keys eventually reaped");
        assert_eq!(db.len(), 50);
    }

    #[test]
    fn flush_empties() {
        let mut db = Db::new();
        for i in 0..10 {
            db.set(format!("k{i}").as_bytes(), obj("v"));
        }
        db.flush();
        assert!(db.is_empty());
    }

    #[test]
    fn dirty_counts_mutations() {
        let mut db = Db::new();
        let d0 = db.dirty();
        db.set(b"a", obj("1"));
        db.set(b"b", obj("2"));
        db.delete(b"a");
        assert_eq!(db.dirty() - d0, 3);
        db.delete(b"missing"); // no-op: not dirty
        assert_eq!(db.dirty() - d0, 3);
    }
}
