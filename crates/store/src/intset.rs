//! Sorted integer set with encoding upgrades, after Redis's `intset.c`.
//!
//! Small sets of integers are stored as a sorted array of the narrowest
//! integer width that fits all members; inserting a wider value upgrades
//! the encoding permanently (Redis never downgrades). The owning set object
//! converts to a hash-table representation once the intset grows past a
//! configured size.

/// The integer width currently in use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum IntSetEncoding {
    /// 16-bit members only.
    I16,
    /// Up to 32-bit members.
    I32,
    /// Up to 64-bit members.
    I64,
}

impl IntSetEncoding {
    fn for_value(v: i64) -> Self {
        if i16::try_from(v).is_ok() {
            IntSetEncoding::I16
        } else if i32::try_from(v).is_ok() {
            IntSetEncoding::I32
        } else {
            IntSetEncoding::I64
        }
    }

    /// Bytes per member under this encoding.
    pub fn width(self) -> usize {
        match self {
            IntSetEncoding::I16 => 2,
            IntSetEncoding::I32 => 4,
            IntSetEncoding::I64 => 8,
        }
    }
}

/// A sorted, deduplicated set of integers.
#[derive(Debug, Clone)]
pub struct IntSet {
    // Stored widened for simplicity; `encoding` tracks what the on-the-wire
    // width would be, for memory accounting and upgrade semantics.
    values: Vec<i64>,
    encoding: IntSetEncoding,
}

impl Default for IntSet {
    fn default() -> Self {
        Self::new()
    }
}

impl IntSet {
    /// Create an empty set (narrowest encoding).
    pub fn new() -> Self {
        IntSet {
            values: Vec::new(),
            encoding: IntSetEncoding::I16,
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Current encoding.
    pub fn encoding(&self) -> IntSetEncoding {
        self.encoding
    }

    /// Insert a value. Returns true if it was not already present.
    pub fn insert(&mut self, v: i64) -> bool {
        let needed = IntSetEncoding::for_value(v);
        if needed > self.encoding {
            self.encoding = needed; // upgrade is permanent
        }
        match self.values.binary_search(&v) {
            Ok(_) => false,
            Err(pos) => {
                self.values.insert(pos, v);
                true
            }
        }
    }

    /// Remove a value. Returns true if it was present.
    pub fn remove(&mut self, v: i64) -> bool {
        match self.values.binary_search(&v) {
            Ok(pos) => {
                self.values.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Membership test (binary search).
    pub fn contains(&self, v: i64) -> bool {
        self.values.binary_search(&v).is_ok()
    }

    /// Members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = i64> + '_ {
        self.values.iter().copied()
    }

    /// The member at sorted position `i`.
    pub fn get(&self, i: usize) -> Option<i64> {
        self.values.get(i).copied()
    }

    /// Approximate serialized size (members × encoding width).
    pub fn memory_usage(&self) -> usize {
        self.values.len() * self.encoding.width() + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_sorted_dedup() {
        let mut s = IntSet::new();
        assert!(s.insert(5));
        assert!(s.insert(1));
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 3, 5]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn encoding_upgrades_and_never_downgrades() {
        let mut s = IntSet::new();
        s.insert(100);
        assert_eq!(s.encoding(), IntSetEncoding::I16);
        s.insert(100_000);
        assert_eq!(s.encoding(), IntSetEncoding::I32);
        s.insert(10_000_000_000);
        assert_eq!(s.encoding(), IntSetEncoding::I64);
        s.remove(10_000_000_000);
        s.remove(100_000);
        assert_eq!(s.encoding(), IntSetEncoding::I64, "no downgrade");
    }

    #[test]
    fn boundaries_pick_correct_encoding() {
        assert_eq!(
            IntSetEncoding::for_value(i16::MAX as i64),
            IntSetEncoding::I16
        );
        assert_eq!(
            IntSetEncoding::for_value(i16::MAX as i64 + 1),
            IntSetEncoding::I32
        );
        assert_eq!(
            IntSetEncoding::for_value(i16::MIN as i64),
            IntSetEncoding::I16
        );
        assert_eq!(
            IntSetEncoding::for_value(i32::MIN as i64 - 1),
            IntSetEncoding::I64
        );
        assert_eq!(IntSetEncoding::I16.width(), 2);
        assert_eq!(IntSetEncoding::I32.width(), 4);
        assert_eq!(IntSetEncoding::I64.width(), 8);
    }

    #[test]
    fn remove_and_contains() {
        let mut s = IntSet::new();
        for v in [10, -10, 0] {
            s.insert(v);
        }
        assert!(s.contains(-10));
        assert!(s.remove(-10));
        assert!(!s.contains(-10));
        assert!(!s.remove(-10));
        assert_eq!(s.get(0), Some(0));
        assert_eq!(s.get(1), Some(10));
        assert_eq!(s.get(2), None);
    }

    #[test]
    fn memory_usage_reflects_width() {
        let mut narrow = IntSet::new();
        let mut wide = IntSet::new();
        for i in 0..100 {
            narrow.insert(i);
            wide.insert(i + 10_000_000_000);
        }
        assert!(wide.memory_usage() > narrow.memory_usage());
    }
}
