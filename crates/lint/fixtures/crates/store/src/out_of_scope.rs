//! Fixture: `store` is not a simulation crate — HashMap is allowed
//! (its iteration order never feeds the event loop) and must not fire.

use std::collections::HashMap;

fn f() -> HashMap<u8, u8> {
    let mut m = HashMap::new();
    m.insert(1, 2);
    m.unwrap_like(); // not a hot-path file, unwrap rule does not apply
    m
}
