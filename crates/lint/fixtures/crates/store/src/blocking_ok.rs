//! Fixture: `store` is not a simulation crate — its CLI may sleep and do
//! real file IO; rule `blocking` must not fire here.

fn f() {
    std::thread::sleep(std::time::Duration::from_millis(1));
    let _d = std::fs::read("/tmp/x");
}
