//! Fixture: rule `wallclock` violations in a simulation crate.

fn f() {
    let _t = std::time::Instant::now();
    let _s = std::time::SystemTime::now();
    std::thread::spawn(|| {});
    let _r = rand::thread_rng();
}
