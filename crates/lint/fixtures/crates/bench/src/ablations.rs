//! Fixture: the reference corpus — identifiers here count as "exercised
//! by an experiment or ablation arm" for rule `config-drift`.

fn sweep(cfg: &mut ClusterConfig) {
    cfg.used_knob = 7;
}
