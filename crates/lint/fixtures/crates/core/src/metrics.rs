//! Fixture: the counter catalog of the miniature workspace.

pub mod catalog {
    pub const STATS: &[&str] = &["stat_listed"];
    pub const STALE: &[&str] = &["stat_gone"];
}
