//! Fixture: rule `blocking` violations in a simulation crate.

fn f() {
    std::thread::sleep(std::time::Duration::from_millis(1));
    let _l = std::net::TcpListener::bind("127.0.0.1:0");
    let _d = std::fs::read("/tmp/x");
}
