//! Fixture: rule `allow-unused` — a directive whose violation is gone.

fn f() -> u8 {
    // skv-lint: allow(unwrap) -- fixture: the unwrap this excused was refactored away
    7
}
