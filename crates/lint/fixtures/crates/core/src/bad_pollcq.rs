//! Fixture: rule `pollcq` — a raw CQ drain outside `cqdrain`.

fn f(net: &Net, cq: CqId) {
    let wcs = net.poll_cq(cq, 64);
    let _ = wcs;
}
