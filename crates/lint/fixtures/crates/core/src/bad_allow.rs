//! Fixture: malformed escape hatches are themselves violations.

use std::collections::HashMap; // skv-lint: allow(hashmap)

fn f() -> usize {
    let m: HashMap<u8, u8> = HashMap::new(); // skv-lint: allow(nosuchrule) -- typo'd rule name
    m.len()
}
