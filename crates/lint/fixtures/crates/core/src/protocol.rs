//! Fixture: rule `cast-truncate` — narrowing casts in a frame codec.

fn f(len: usize, tag: u64) -> (u32, u16, u8) {
    let a = len as u32;
    let b = (tag >> 8) as u16;
    let c = tag as u8;
    let widened = 7u32 as u64;
    let sized = b as usize;
    let _ = (widened, sized);
    (a, b, c)
}
