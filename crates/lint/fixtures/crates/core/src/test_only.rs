//! Fixture: violations confined to `#[cfg(test)]` — must scan clean.

fn prod(x: Option<u8>) -> u8 {
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn t() {
        let mut m = HashMap::new();
        m.insert(1u8, 2u8);
        assert_eq!(m.get(&1).copied().unwrap(), 2);
        assert_eq!(super::prod(Some(3)), 3);
    }
}
