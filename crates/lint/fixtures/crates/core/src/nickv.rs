//! Fixture: rule `counter-drift` — a counter the catalog does not list.

pub struct NicStats {
    pub stat_listed: u64,
    pub stat_orphan: u64,
}
