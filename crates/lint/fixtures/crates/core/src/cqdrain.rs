//! Fixture: the budgeted-drain helper is the one legitimate raw
//! `poll_cq` call site — rule `pollcq` must exempt this file.

fn drain(net: &Net, cq: CqId) {
    let _wcs = net.poll_cq(cq, 8);
}
