//! Fixture: properly justified escape hatches — must scan clean.

use std::collections::HashMap; // skv-lint: allow(hashmap) -- fixture: never iterated, keyed lookups only

fn f(q: &mut Vec<u8>) -> u8 {
    let m: HashMap<u8, u8> = HashMap::new(); // skv-lint: allow(hashmap) -- fixture: local, drained sorted
    // skv-lint: allow(unwrap) -- fixture: caller guarantees non-empty
    let v = q.pop().unwrap();
    v + m.len() as u8
}
