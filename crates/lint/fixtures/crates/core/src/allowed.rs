//! Fixture: properly justified escape hatches — must scan clean.

use std::collections::HashMap; // skv-lint: allow(hashmap) -- fixture: never iterated, keyed lookups only

fn f(q: &mut Vec<u8>) -> u8 {
    let m: HashMap<u8, u8> = HashMap::new(); // skv-lint: allow(hashmap) -- fixture: local, drained sorted
    // skv-lint: allow(wallclock) -- fixture: wall-time only decorates a log line
    let _t = std::time::Instant::now();
    q.pop().unwrap_or(0) + m.len() as u8
}
