//! Fixture: rule `config-drift` — knobs vs the experiment corpus.

pub struct ClusterConfig {
    /// Swept by the fixture ablation below: clean.
    pub used_knob: usize,
    /// Nothing references it: config-drift.
    pub orphan_knob: usize,
    // skv-lint: allow(config-drift) -- fixture: guardrail constant, deliberately not swept
    pub excused_knob: usize,
}
