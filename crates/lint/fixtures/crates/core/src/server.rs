//! Fixture: rule `unwrap` violations on a protocol hot-path file.

fn f(q: &mut Vec<u8>) -> u8 {
    let first = q.pop().unwrap();
    let second = q.pop().expect("queue drained");
    // These must NOT match: combinators are fine on hot paths.
    let third = q.pop().unwrap_or(0);
    let fourth = q.pop().unwrap_or_default();
    first + second + third + fourth
}
