//! Fixture: rule `index-unchecked` — range indexing in a frame codec.

fn f(buf: &[u8], pos: usize, len: usize, qps: &[u8]) -> u8 {
    let header = &buf[pos..pos + 8];
    let body = buf[pos + 8..pos + 8 + len].to_vec();
    let ok = buf.get(pos..pos + 8);
    let single = qps[len];
    let _ = (header, body, ok);
    single
}
