//! Fixture: an `"rdma.*"` fabric counter missing from the catalog.

fn f(c: &mut Counters) {
    c.inc("rdma.ghost");
}
