//! Fixture: rule `hashmap` violations in a simulation crate.
use std::collections::HashMap;
use std::collections::HashSet;

fn f() {
    let m: HashMap<u32, u32> = HashMap::new();
    let s: HashSet<u32> = HashSet::new();
    let _ = (m, s);
}
