//! # skv-analyze — token-level static analysis for the SKV reproduction
//!
//! The SKV reproduction's value rests on invariants no compiler checks:
//! every figure is regenerated from seeds, so a single `HashMap`
//! iteration, wall-clock read, unbudgeted CQ drain or panicking frame
//! parse can silently break determinism or take down a simulated
//! cluster. This crate is a purpose-built static analyzer — zero
//! dependencies, a small real lexer (see [`lexer`]) instead of the old
//! line-stripper — that enforces the repo-specific rules `clippy`
//! cannot express.
//!
//! ## Rule families
//!
//! * **Determinism** — `hashmap` (no std `HashMap`/`HashSet` in sim
//!   crates), `wallclock` (no `Instant::now`/`SystemTime`/
//!   `thread::spawn`/`thread_rng` in sim code).
//! * **Event-loop discipline** — `pollcq` (no raw `poll_cq` outside
//!   `cqdrain::drain_budgeted`; DESIGN.md §12), `blocking` (no
//!   `thread::sleep`, real sockets, or file IO in sim crates).
//! * **Wire-format hygiene** — `cast-truncate` (no narrowing `as
//!   u8/u16/u32` casts in the frame codecs; use `try_from`),
//!   `index-unchecked` (no unchecked range indexing in the codecs; use
//!   `get(..)`), `unwrap` (no `.unwrap()`/`.expect(` on hot paths).
//! * **Drift detection** — `counter-drift` (every `stat_*` field and
//!   `"rdma.*"` counter literal must be listed in `metrics::catalog`,
//!   and no catalog entry may outlive its counter), `config-drift`
//!   (every `ClusterConfig`/`NetParams` knob must be referenced by an
//!   experiment or ablation arm, or carry a reasoned allow).
//! * **Allow audit** — `allow-syntax` (malformed or unknown-rule
//!   directives), `allow-unused` (a directive that no longer suppresses
//!   anything — the code it excused is gone).
//!
//! ## Escape hatch
//!
//! A justified exception is written on the offending line or the line
//! directly above it:
//!
//! ```text
//! // skv-lint: allow(hashmap) -- iteration order irrelevant: drained into a sorted Vec
//! ```
//!
//! The reason after `--` is mandatory; an allow without one is itself a
//! violation (`allow-syntax`), and an allow that suppresses nothing is
//! flagged (`allow-unused`), keeping every exception self-documenting
//! and alive. The `skv-lint:` marker is kept from the tool's previous
//! name so existing directives and docs stay valid.
//!
//! Test code is exempt everywhere: `#[cfg(test)]` items are skipped by
//! token-level brace tracking and `tests/` / `benches/` directories are
//! never scanned. Comments and string literal bodies are blanked by the
//! lexer before token matching, so prose about `HashMap` is fine.
//!
//! The binary (`cargo run -p skv-analyze`) walks `crates/` and
//! `examples/` under the workspace root, prints
//! `file:line: rule(<name>): <message>` (or `--format json`), and exits
//! non-zero when any error-severity violation is found. The mechanically
//! expressible subset of these rules is mirrored into `clippy.toml`
//! (`disallowed-types` / `disallowed-methods`); skv-analyze adds the
//! path scoping, the cross-file drift rules and the reasoned escape
//! hatch.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]
// A lexer's whole job is slicing source text; every offset below comes
// from the lexer's own char-boundary walk, so the slices cannot split a
// UTF-8 character.
#![allow(clippy::string_slice)]

pub mod lexer;

pub use lexer::{lex, LexedLine};

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

// ===========================================================================
// Rule registry
// ===========================================================================

/// How severe a rule's findings are. Errors fail the run (exit 1);
/// warnings are reported and only fail under `--deny-warnings`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Breaks an invariant the repo depends on.
    Error,
    /// Hygiene finding; fix soon but does not gate by default.
    Warning,
}

impl Severity {
    /// Lowercase name used in text and JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One entry in the rule registry.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Rule name, as used in diagnostics and `allow(...)`.
    pub name: &'static str,
    /// Finding severity.
    pub severity: Severity,
    /// One-line description for `--help` and the JSON report.
    pub summary: &'static str,
    /// Human-readable scope description.
    pub scope: &'static str,
}

/// The full rule registry.
pub const RULES: [RuleInfo; 11] = [
    RuleInfo {
        name: "hashmap",
        severity: Severity::Error,
        summary: "std HashMap/HashSet iterate in nondeterministic order",
        scope: "sim crates (netsim, simcore, core)",
    },
    RuleInfo {
        name: "wallclock",
        severity: Severity::Error,
        summary: "wall-clock time, OS threads or OS-seeded randomness",
        scope: "sim crates (netsim, simcore, core)",
    },
    RuleInfo {
        name: "unwrap",
        severity: Severity::Error,
        summary: "unwrap()/expect() on a protocol hot path",
        scope: "protocol hot-path files",
    },
    RuleInfo {
        name: "blocking",
        severity: Severity::Error,
        summary: "blocking call (sleep, real sockets, file IO) in sim code",
        scope: "sim crates (netsim, simcore, core)",
    },
    RuleInfo {
        name: "pollcq",
        severity: Severity::Error,
        summary: "raw poll_cq outside cqdrain::drain_budgeted",
        scope: "core and bench event loops (cqdrain.rs exempt)",
    },
    RuleInfo {
        name: "cast-truncate",
        severity: Severity::Error,
        summary: "narrowing `as` cast in a frame codec; use try_from",
        scope: "wire-format files (protocol.rs, channel.rs, netsim rdma.rs)",
    },
    RuleInfo {
        name: "index-unchecked",
        severity: Severity::Error,
        summary: "unchecked range indexing in a frame codec; use get(..)",
        scope: "wire-format files (protocol.rs, channel.rs, netsim rdma.rs)",
    },
    RuleInfo {
        name: "counter-drift",
        severity: Severity::Error,
        summary: "counter not listed in metrics::catalog, or stale catalog entry",
        scope: "workspace-wide (catalog in core metrics.rs)",
    },
    RuleInfo {
        name: "config-drift",
        severity: Severity::Error,
        summary: "config knob not exercised by any experiment/ablation arm",
        scope: "ClusterConfig and NetParams fields",
    },
    RuleInfo {
        name: "allow-syntax",
        severity: Severity::Error,
        summary: "malformed allow directive (unknown rule or missing reason)",
        scope: "everywhere",
    },
    RuleInfo {
        name: "allow-unused",
        severity: Severity::Warning,
        summary: "allow directive that no longer suppresses anything",
        scope: "everywhere",
    },
];

/// Look up a rule's severity (`allow-syntax` for unknown names, which
/// cannot happen for violations the analyzer itself emits).
pub fn severity_of(rule: &str) -> Severity {
    RULES
        .iter()
        .find(|r| r.name == rule)
        .map_or(Severity::Error, |r| r.severity)
}

fn known_rule(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
}

// ===========================================================================
// Scopes
// ===========================================================================

/// Crates whose `src/` trees are simulation code (rules `hashmap`,
/// `wallclock` and `blocking` apply).
const SIM_CRATE_PREFIXES: [&str; 3] = [
    "crates/netsim/src/",
    "crates/simcore/src/",
    "crates/core/src/",
];

/// Protocol hot-path files (rule `unwrap` applies).
const HOT_PATH_FILES: [&str; 12] = [
    "crates/core/src/server.rs",
    "crates/core/src/client.rs",
    "crates/core/src/channel.rs",
    "crates/core/src/cqdrain.rs",
    "crates/core/src/hotcache.rs",
    "crates/core/src/nickv.rs",
    "crates/core/src/shard.rs",
    "crates/core/src/replmode.rs",
    "crates/core/src/histcheck.rs",
    "crates/netsim/src/rdma.rs",
    "crates/netsim/src/tcp.rs",
    "crates/simcore/src/pool.rs",
];

/// Frame-codec files (rules `cast-truncate` and `index-unchecked`).
/// `hotcache.rs` qualifies through its reply-frame store: admission
/// slices incoming cookie-framed replies, so a malformed frame must
/// degrade to a miss, never a panic.
const WIRE_FILES: [&str; 4] = [
    "crates/core/src/protocol.rs",
    "crates/core/src/channel.rs",
    "crates/core/src/hotcache.rs",
    "crates/netsim/src/rdma.rs",
];

/// Trees whose event loops must drain completions through
/// `cqdrain::drain_budgeted` (rule `pollcq`).
const EVENT_LOOP_PREFIXES: [&str; 3] = ["crates/core/src/", "crates/bench/src/", "examples/"];

/// The one file allowed to call `poll_cq` directly.
const CQDRAIN_FILE: &str = "crates/core/src/cqdrain.rs";

/// Where the counter catalog lives (rule `counter-drift`).
const METRICS_FILE: &str = "crates/core/src/metrics.rs";

/// Config structs whose public fields are drift-checked knobs.
const CONFIG_STRUCTS: [(&str, &str); 2] = [
    ("crates/core/src/config.rs", "ClusterConfig"),
    ("crates/netsim/src/params.rs", "NetParams"),
];

/// Trees that count as "an experiment or ablation arm references it"
/// for rule `config-drift`.
const REF_CORPUS_PREFIXES: [&str; 2] = ["crates/bench/src/", "examples/"];

/// Directory names never descended into.
const SKIP_DIRS: [&str; 5] = ["target", "fixtures", "tests", "benches", ".git"];

/// Which rule families apply to a workspace-relative path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scope {
    sim: bool,
    hot: bool,
    wire: bool,
    event_loop: bool,
}

fn scope_of(rel: &str) -> Scope {
    Scope {
        sim: SIM_CRATE_PREFIXES.iter().any(|p| rel.starts_with(p)),
        hot: HOT_PATH_FILES.contains(&rel),
        wire: WIRE_FILES.contains(&rel),
        event_loop: rel != CQDRAIN_FILE && EVENT_LOOP_PREFIXES.iter().any(|p| rel.starts_with(p)),
    }
}

fn rule_applies(rule: &str, scope: Scope) -> bool {
    match rule {
        "hashmap" | "wallclock" | "blocking" => scope.sim,
        "unwrap" => scope.hot,
        "pollcq" => scope.event_loop,
        _ => false,
    }
}

// ===========================================================================
// Diagnostics
// ===========================================================================

/// One diagnostic: a rule violated at a specific file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule name (see [`RULES`]).
    pub rule: &'static str,
    /// Human-readable explanation with the offending token.
    pub message: String,
}

impl Violation {
    /// The violated rule's severity.
    pub fn severity(&self) -> Severity {
        severity_of(self.rule)
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: rule({}): {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

// ===========================================================================
// Token patterns
// ===========================================================================

/// A token pattern belonging to a rule.
struct Pattern {
    needle: &'static str,
    /// Require identifier boundaries around the match (so `DetHashMap`
    /// or `unwrap_or` never match).
    ident: bool,
    rule: &'static str,
    message: &'static str,
}

const PATTERNS: [Pattern; 12] = [
    Pattern {
        needle: "HashMap",
        ident: true,
        rule: "hashmap",
        message: "std HashMap iterates in nondeterministic order in sim code; \
                  use BTreeMap or skv_netsim::DetMap",
    },
    Pattern {
        needle: "HashSet",
        ident: true,
        rule: "hashmap",
        message: "std HashSet iterates in nondeterministic order in sim code; \
                  use BTreeSet or skv_netsim::DetSet",
    },
    Pattern {
        needle: "Instant::now",
        ident: true,
        rule: "wallclock",
        message: "wall-clock read in sim code; take time from Context::now()",
    },
    Pattern {
        needle: "SystemTime",
        ident: true,
        rule: "wallclock",
        message: "wall-clock read in sim code; take time from Context::now()",
    },
    Pattern {
        needle: "thread::spawn",
        ident: true,
        rule: "wallclock",
        message: "OS threads break deterministic replay; model concurrency as actors",
    },
    Pattern {
        needle: "thread_rng",
        ident: true,
        rule: "wallclock",
        message: "OS-seeded randomness in sim code; split a DetRng instead",
    },
    Pattern {
        needle: ".unwrap()",
        ident: false,
        rule: "unwrap",
        message: "unwrap() on a protocol hot path; convert to a typed error \
                  or completion-with-error",
    },
    Pattern {
        needle: ".expect(",
        ident: false,
        rule: "unwrap",
        message: "expect() on a protocol hot path; convert to a typed error \
                  or completion-with-error",
    },
    Pattern {
        needle: "thread::sleep",
        ident: true,
        rule: "blocking",
        message: "blocking sleep in sim code; schedule a Context::timer instead",
    },
    Pattern {
        needle: "std::net::",
        ident: true,
        rule: "blocking",
        message: "real-socket IO in sim code; all transport goes through skv_netsim::Net",
    },
    Pattern {
        needle: "std::fs::",
        ident: true,
        rule: "blocking",
        message: "blocking file IO in sim code; simulation state must stay in memory",
    },
    Pattern {
        needle: ".poll_cq(",
        ident: false,
        rule: "pollcq",
        message: "raw CQ poll outside cqdrain::drain_budgeted; completion drains \
                  must be budgeted so one burst cannot monopolise the event loop \
                  (DESIGN.md §12)",
    },
];

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Find `needle` in `haystack` respecting identifier boundaries when
/// `ident` is set. Returns the byte offset of the first match.
fn find_token(haystack: &str, needle: &str, ident: bool) -> Option<usize> {
    // A boundary is only demanded on a side where the needle itself ends in
    // an identifier char: `std::net::` must match `std::net::TcpStream`, but
    // `thread_rng` must not match `thread_rng_like`.
    let needs_before = ident && needle.chars().next().is_some_and(is_ident_char);
    let needs_after = ident && needle.chars().next_back().is_some_and(is_ident_char);
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(needle) {
        let pos = from + pos;
        if !ident {
            return Some(pos);
        }
        let before_ok = !needs_before
            || haystack[..pos]
                .chars()
                .next_back()
                .is_none_or(|c| !is_ident_char(c));
        let after_ok = !needs_after
            || haystack[pos + needle.len()..]
                .chars()
                .next()
                .is_none_or(|c| !is_ident_char(c));
        if before_ok && after_ok {
            return Some(pos);
        }
        from = pos + needle.len();
    }
    None
}

/// Iterate the identifiers of a blanked code line as `(offset, ident)`.
/// Runs that start with a digit (numeric literals like `0u32`) are
/// consumed without being reported.
fn idents(code: &str) -> Vec<(usize, &str)> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_alphabetic() || b == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            out.push((start, &code[start..i]));
        } else if b.is_ascii_digit() {
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    out
}

/// Byte offsets of narrowing `as u8`/`as u16`/`as u32` casts. Widening
/// casts (`as u64`, `as usize`) are not flagged: the codecs' real risk
/// is silent truncation of lengths and offsets.
fn truncating_casts(code: &str) -> Vec<(usize, &'static str)> {
    let ids = idents(code);
    let mut out = Vec::new();
    for pair in ids.windows(2) {
        let (a_off, a) = pair[0];
        let (b_off, b) = pair[1];
        if a != "as" {
            continue;
        }
        if !code[a_off + 2..b_off].trim().is_empty() {
            continue;
        }
        let target = match b {
            "u8" => "u8",
            "u16" => "u16",
            "u32" => "u32",
            _ => continue,
        };
        out.push((b_off, target));
    }
    out
}

/// Byte offsets of range-indexing expressions (`buf[a..b]`, `&x[p..]`)
/// applied to a value (identifier, call or index result). Per-line best
/// effort: an index bracket that spans lines is not matched.
fn unchecked_range_indexing(code: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' {
            continue;
        }
        let Some(prev) = code[..i].trim_end().chars().next_back() else {
            continue;
        };
        if !(is_ident_char(prev) || prev == ')' || prev == ']') {
            continue;
        }
        let mut depth = 1usize;
        let mut j = i + 1;
        while j < bytes.len() && depth > 0 {
            match bytes[j] {
                b'[' => depth += 1,
                b']' => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        if depth != 0 {
            continue;
        }
        if code[i + 1..j - 1].contains("..") {
            out.push(i);
        }
    }
    out
}

// ===========================================================================
// Allow directives
// ===========================================================================

/// A well-formed `// skv-lint: allow(rule, ...) -- reason` directive.
#[derive(Debug, Clone)]
struct Allow {
    /// Line the directive is written on.
    line: usize,
    /// Line whose findings it suppresses (itself, or the next line for a
    /// standalone directive).
    covers: usize,
    rules: Vec<String>,
    /// Findings suppressed so far; zero at the end means `allow-unused`.
    hits: usize,
}

const ALLOW_MARKER: &str = "skv-lint: allow(";

/// Parse a directive from a line comment (`comment` starts at `//`).
/// Doc comments (`///`, `//!`) are prose and never carry directives, so
/// the analyzer's own documentation can discuss the syntax freely.
/// Returns `None` when there is no directive, `Some(Err(_))` when it is
/// malformed.
fn parse_allow(comment: &str) -> Option<Result<Vec<String>, &'static str>> {
    if comment.starts_with("///") || comment.starts_with("//!") {
        return None;
    }
    let marker = comment.find(ALLOW_MARKER)?;
    let rest = &comment[marker + ALLOW_MARKER.len()..];
    let Some(close) = rest.find(')') else {
        return Some(Err("unterminated allow(...) directive"));
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() || rules.iter().any(|r| !known_rule(r)) {
        return Some(Err(
            "allow(...) must name known rules (run with --help for the list)",
        ));
    }
    let after = rest[close + 1..].trim_start();
    let reason_ok = after
        .strip_prefix("--")
        .is_some_and(|r| !r.trim().is_empty());
    if !reason_ok {
        return Some(Err("allow(...) requires a justification: `-- <reason>`"));
    }
    Some(Ok(rules))
}

/// Record a suppression: returns true (and counts the hit) when an
/// allow directive covers `line` for `rule`.
fn suppress(allows: &mut [Allow], line: usize, rule: &str) -> bool {
    for a in allows.iter_mut() {
        if a.covers == line && a.rules.iter().any(|r| r == rule) {
            a.hits += 1;
            return true;
        }
    }
    false
}

// ===========================================================================
// Per-file analysis (pass 1)
// ===========================================================================

/// Cross-file facts gathered while scanning one file.
#[derive(Debug, Default)]
struct Facts {
    /// `stat_*` identifiers seen in code: (line, name, is-definition).
    counter_mentions: Vec<(usize, String, bool)>,
    /// `"rdma.*"` / `"shard.*"` counter literals seen in strings: (line, name).
    rdma_mentions: Vec<(usize, String)>,
    /// Catalog entries (metrics.rs only): (line, name).
    catalog: Vec<(usize, String)>,
    /// Public config-struct fields (config.rs / params.rs): (line, name).
    knob_defs: Vec<(usize, String)>,
    /// All identifiers in the experiment/ablation reference corpus.
    ref_idents: BTreeSet<String>,
}

/// Result of scanning one file.
struct FileAnalysis {
    violations: Vec<Violation>,
    facts: Facts,
    allows: Vec<Allow>,
}

/// Collect the public fields of `struct_name` from blanked code lines.
fn collect_pub_fields(lines: &[LexedLine], struct_name: &str) -> Vec<(usize, String)> {
    let needle = format!("pub struct {struct_name}");
    let mut out = Vec::new();
    let mut inside = false;
    let mut depth = 0usize;
    for (idx, l) in lines.iter().enumerate() {
        let code = l.code.as_str();
        if !inside {
            let Some(p) = code.find(&needle) else {
                continue;
            };
            let boundary_ok = code[p + needle.len()..]
                .chars()
                .next()
                .is_none_or(|c| !is_ident_char(c));
            if !boundary_ok {
                continue;
            }
            depth = code[p..].matches('{').count();
            depth = depth.saturating_sub(code[p..].matches('}').count());
            inside = depth > 0 || !code[p..].contains('{');
            continue;
        }
        if depth == 1 {
            let trimmed = code.trim_start();
            if let Some(rest) = trimmed.strip_prefix("pub ") {
                let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
                if !name.is_empty() && rest[name.len()..].trim_start().starts_with(':') {
                    out.push((idx + 1, name));
                }
            }
        }
        depth += code.matches('{').count();
        depth = depth.saturating_sub(code.matches('}').count());
        if depth == 0 {
            inside = false;
        }
    }
    out
}

fn counter_literal_rdma(s: &str) -> bool {
    s.strip_prefix("rdma.").is_some_and(|rest| {
        !rest.is_empty() && rest.chars().all(|c| c.is_ascii_lowercase() || c == '_')
    })
}

fn counter_literal_stat(s: &str) -> bool {
    s.strip_prefix("stat_").is_some_and(|rest| {
        !rest.is_empty()
            && rest
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    })
}

fn counter_literal_shard(s: &str) -> bool {
    s.strip_prefix("shard.").is_some_and(|rest| {
        !rest.is_empty() && rest.chars().all(|c| c.is_ascii_lowercase() || c == '_')
    })
}

fn counter_literal_cache(s: &str) -> bool {
    s.strip_prefix("cache.").is_some_and(|rest| {
        !rest.is_empty() && rest.chars().all(|c| c.is_ascii_lowercase() || c == '_')
    })
}

fn counter_literal_hist(s: &str) -> bool {
    s.strip_prefix("hist.").is_some_and(|rest| {
        !rest.is_empty() && rest.chars().all(|c| c.is_ascii_lowercase() || c == '_')
    })
}

fn analyze_file(rel: &str, contents: &str) -> FileAnalysis {
    let lines = lex(contents);
    let scope = scope_of(rel);
    let mut violations = Vec::new();
    let mut allows: Vec<Allow> = Vec::new();
    let mut facts = Facts::default();

    // --- allow directives (test lines exempt, like everything else) ---
    for (idx, l) in lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        let Some((at, text)) = &l.comment else {
            continue;
        };
        match parse_allow(text) {
            None => {}
            Some(Err(err)) => violations.push(Violation {
                file: rel.to_string(),
                line: idx + 1,
                rule: "allow-syntax",
                message: err.to_string(),
            }),
            Some(Ok(rules)) => {
                let standalone = l.code[..*at].trim().is_empty();
                allows.push(Allow {
                    line: idx + 1,
                    covers: if standalone { idx + 2 } else { idx + 1 },
                    rules,
                    hits: 0,
                });
            }
        }
    }

    // --- token rules --------------------------------------------------
    for (idx, l) in lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        let lineno = idx + 1;
        let code = l.code.as_str();
        for p in &PATTERNS {
            if !rule_applies(p.rule, scope) {
                continue;
            }
            if find_token(code, p.needle, p.ident).is_none() {
                continue;
            }
            if !suppress(&mut allows, lineno, p.rule) {
                violations.push(Violation {
                    file: rel.to_string(),
                    line: lineno,
                    rule: p.rule,
                    message: format!("`{}`: {}", p.needle.trim_start_matches('.'), p.message),
                });
            }
        }
        if scope.wire {
            for (_, target) in truncating_casts(code) {
                if !suppress(&mut allows, lineno, "cast-truncate") {
                    violations.push(Violation {
                        file: rel.to_string(),
                        line: lineno,
                        rule: "cast-truncate",
                        message: format!(
                            "narrowing `as {target}` cast in a frame codec silently \
                             truncates lengths/offsets; use {target}::try_from with a \
                             typed error"
                        ),
                    });
                }
            }
            if !unchecked_range_indexing(code).is_empty()
                && !suppress(&mut allows, lineno, "index-unchecked")
            {
                violations.push(Violation {
                    file: rel.to_string(),
                    line: lineno,
                    rule: "index-unchecked",
                    message: "unchecked range indexing in a frame codec panics on a \
                              malformed frame; use .get(range) and handle None"
                        .to_string(),
                });
            }
        }
    }

    // --- cross-file facts ---------------------------------------------
    // The analyzer's own sources talk *about* counters; exempt them so
    // the drift rules reason only over the simulator and its harnesses.
    let in_drift_corpus = !rel.starts_with("crates/lint/");
    let is_metrics = rel == METRICS_FILE;
    for (idx, l) in lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        if is_metrics {
            for s in &l.strings {
                if counter_literal_rdma(s)
                    || counter_literal_stat(s)
                    || counter_literal_shard(s)
                    || counter_literal_cache(s)
                    || counter_literal_hist(s)
                {
                    facts.catalog.push((idx + 1, s.clone()));
                }
            }
        } else if in_drift_corpus {
            for (off, id) in idents(&l.code) {
                if id.starts_with("stat_") && id.len() > 5 {
                    let is_def = l.code[..off].trim_end().ends_with("pub");
                    facts
                        .counter_mentions
                        .push((idx + 1, id.to_string(), is_def));
                }
            }
            for s in &l.strings {
                if counter_literal_rdma(s)
                    || counter_literal_shard(s)
                    || counter_literal_cache(s)
                    || counter_literal_hist(s)
                {
                    facts.rdma_mentions.push((idx + 1, s.clone()));
                }
            }
        }
    }
    if REF_CORPUS_PREFIXES.iter().any(|p| rel.starts_with(p)) {
        // Include `#[cfg(test)]` lines here: a knob a bench test sweeps
        // is still exercised.
        for l in &lines {
            for (_, id) in idents(&l.code) {
                facts.ref_idents.insert(id.to_string());
            }
        }
    }
    for (file, struct_name) in CONFIG_STRUCTS {
        if rel == file {
            facts.knob_defs = collect_pub_fields(&lines, struct_name);
        }
    }

    FileAnalysis {
        violations,
        facts,
        allows,
    }
}

/// Scan one file's contents with the file-scoped rules; `rel` is the
/// workspace-relative path used for scoping and diagnostics. Cross-file
/// rules (`counter-drift`, `config-drift`, `allow-unused`) need the
/// whole workspace and only fire from [`analyze_workspace`].
pub fn check_source(rel: &str, contents: &str) -> Vec<Violation> {
    analyze_file(rel, contents).violations
}

// ===========================================================================
// Workspace analysis (pass 2)
// ===========================================================================

/// Result of a whole-workspace run.
#[derive(Debug)]
pub struct Analysis {
    /// All findings, sorted by (file, line, rule).
    pub violations: Vec<Violation>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Analysis {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| v.severity() == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.violations.len() - self.errors()
    }
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort(); // deterministic diagnostic order
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            walk(&path, files)?;
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Analyze every non-test `.rs` file under `<root>/crates/` and
/// `<root>/examples/`, then run the cross-file drift and allow-audit
/// rules.
pub fn analyze_workspace(root: &Path) -> io::Result<Analysis> {
    let crates = root.join("crates");
    if !crates.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{} is not a workspace root (no crates/)", root.display()),
        ));
    }
    let mut files = Vec::new();
    walk(&crates, &mut files)?;
    let examples = root.join("examples");
    if examples.is_dir() {
        walk(&examples, &mut files)?;
    }

    let mut per_file: Vec<(String, FileAnalysis)> = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let contents = fs::read_to_string(path)?;
        per_file.push((rel.clone(), analyze_file(&rel, &contents)));
    }

    let mut violations: Vec<Violation> = Vec::new();

    // --- counter-drift -------------------------------------------------
    let catalog: BTreeMap<String, (String, usize)> = per_file
        .iter()
        .flat_map(|(rel, fa)| {
            fa.facts
                .catalog
                .iter()
                .map(move |(line, name)| (name.clone(), (rel.clone(), *line)))
        })
        .collect();
    // Definition (or first-mention) site per counter name.
    let mut counter_sites: BTreeMap<String, (String, usize, bool)> = BTreeMap::new();
    for (rel, fa) in &per_file {
        for (line, name, is_def) in &fa.facts.counter_mentions {
            let entry = counter_sites
                .entry(name.clone())
                .or_insert_with(|| (rel.clone(), *line, *is_def));
            if *is_def && !entry.2 {
                *entry = (rel.clone(), *line, true);
            }
        }
        for (line, name) in &fa.facts.rdma_mentions {
            let preferred = rel.starts_with("crates/netsim/");
            let entry = counter_sites
                .entry(name.clone())
                .or_insert_with(|| (rel.clone(), *line, preferred));
            if preferred && !entry.2 {
                *entry = (rel.clone(), *line, true);
            }
        }
    }
    fn allows_of<'a>(
        per_file: &'a mut [(String, FileAnalysis)],
        file: &str,
    ) -> Option<&'a mut Vec<Allow>> {
        per_file
            .iter_mut()
            .find(|(rel, _)| rel == file)
            .map(|(_, fa)| &mut fa.allows)
    }
    for (name, (file, line, _)) in &counter_sites {
        if catalog.contains_key(name) {
            continue;
        }
        let suppressed = allows_of(&mut per_file, file)
            .is_some_and(|allows| suppress(allows, *line, "counter-drift"));
        if !suppressed {
            violations.push(Violation {
                file: file.clone(),
                line: *line,
                rule: "counter-drift",
                message: format!(
                    "counter `{name}` is not listed in metrics::catalog; export it \
                     (or the drift check cannot see regressions in it)"
                ),
            });
        }
    }
    for (name, (file, line)) in &catalog {
        if counter_sites.contains_key(name) {
            continue;
        }
        let suppressed = allows_of(&mut per_file, file)
            .is_some_and(|allows| suppress(allows, *line, "counter-drift"));
        if !suppressed {
            violations.push(Violation {
                file: file.clone(),
                line: *line,
                rule: "counter-drift",
                message: format!(
                    "catalog entry `{name}` matches no counter in the workspace; \
                     remove the stale entry"
                ),
            });
        }
    }

    // --- config-drift --------------------------------------------------
    let ref_idents: BTreeSet<String> = per_file
        .iter()
        .flat_map(|(_, fa)| fa.facts.ref_idents.iter().cloned())
        .collect();
    let knob_files: Vec<String> = per_file
        .iter()
        .filter(|(_, fa)| !fa.facts.knob_defs.is_empty())
        .map(|(rel, _)| rel.clone())
        .collect();
    for file in knob_files {
        let knobs = per_file
            .iter()
            .find(|(rel, _)| *rel == file)
            .map(|(_, fa)| fa.facts.knob_defs.clone())
            .unwrap_or_default();
        for (line, knob) in knobs {
            if ref_idents.contains(&knob) {
                continue;
            }
            let suppressed = allows_of(&mut per_file, &file)
                .is_some_and(|allows| suppress(allows, line, "config-drift"));
            if !suppressed {
                violations.push(Violation {
                    file: file.clone(),
                    line,
                    rule: "config-drift",
                    message: format!(
                        "config knob `{knob}` is not referenced by any experiment or \
                         ablation arm (crates/bench, examples); wire it into an arm \
                         or add `// skv-lint: allow(config-drift) -- <reason>`"
                    ),
                });
            }
        }
    }

    // --- file-scoped findings and allow audit -------------------------
    for (_, fa) in &per_file {
        violations.extend(fa.violations.iter().cloned());
    }
    for (rel, fa) in &per_file {
        for a in &fa.allows {
            if a.hits == 0 {
                violations.push(Violation {
                    file: rel.clone(),
                    line: a.line,
                    rule: "allow-unused",
                    message: format!(
                        "allow({}) suppresses nothing; the code it excused is gone \
                         — remove the stale directive",
                        a.rules.join(", ")
                    ),
                });
            }
        }
    }

    violations
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(Analysis {
        violations,
        files_scanned: files.len(),
    })
}

/// Back-compatible entry point: analyze the workspace and return the
/// findings only.
pub fn check_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    analyze_workspace(root).map(|a| a.violations)
}

// ===========================================================================
// JSON output
// ===========================================================================

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render an [`Analysis`] as the machine-readable report consumed by CI
/// (`--format json`). Hand-rolled: the analyzer is zero-dependency by
/// design. Schema documented in DESIGN.md §14.
pub fn to_json(analysis: &Analysis) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"tool\": \"skv-analyze\",\n  \"rules\": [\n");
    for (i, r) in RULES.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"severity\": \"{}\", \"summary\": \"{}\", \"scope\": \"{}\"}}{}\n",
            r.name,
            r.severity.as_str(),
            json_escape(r.summary),
            json_escape(r.scope),
            if i + 1 < RULES.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"files_scanned\": {},\n  \"errors\": {},\n  \"warnings\": {},\n",
        analysis.files_scanned,
        analysis.errors(),
        analysis.warnings()
    ));
    out.push_str("  \"violations\": [\n");
    for (i, v) in analysis.violations.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"severity\": \"{}\", \"message\": \"{}\"}}{}\n",
            json_escape(&v.file),
            v.line,
            v.rule,
            v.severity().as_str(),
            json_escape(&v.message),
            if i + 1 < analysis.violations.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ===========================================================================
// Tests
// ===========================================================================

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_boundaries() {
        assert!(find_token("use std::collections::HashMap;", "HashMap", true).is_some());
        assert!(find_token("DetHashMap", "HashMap", true).is_none());
        assert!(find_token("HashMapLike", "HashMap", true).is_none());
        assert!(find_token("x.unwrap()", ".unwrap()", false).is_some());
        assert!(find_token("x.unwrap_or(0)", ".unwrap()", false).is_none());
    }

    #[test]
    fn strings_and_comments_are_ignored() {
        let v = check_source(
            "crates/core/src/server.rs",
            "fn f() { let s = \"call .unwrap() here\"; } // .unwrap()\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn raw_strings_are_ignored() {
        let v = check_source(
            "crates/core/src/server.rs",
            "fn f() { let s = r#\"x.unwrap() and HashMap\"#; }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn scope_excludes_other_crates() {
        let v = check_source(
            "crates/store/src/dict.rs",
            "use std::collections::HashMap;\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn allow_requires_reason() {
        let src = "use std::collections::HashMap; // skv-lint: allow(hashmap)\n";
        let v = check_source("crates/core/src/server.rs", src);
        assert_eq!(v.len(), 2, "{v:?}"); // malformed allow + the violation
        assert!(v.iter().any(|x| x.rule == "allow-syntax"));
        assert!(v.iter().any(|x| x.rule == "hashmap"));
    }

    #[test]
    fn allow_with_reason_suppresses_same_line_and_next_line() {
        let same = "use std::collections::HashMap; // skv-lint: allow(hashmap) -- doc example\n";
        assert!(check_source("crates/core/src/server.rs", same).is_empty());
        let next = "// skv-lint: allow(unwrap) -- invariant: queue non-empty\nq.pop().unwrap();\n";
        assert!(check_source("crates/core/src/server.rs", next).is_empty());
        // ...but only the next line, not the one after.
        let stale = "// skv-lint: allow(unwrap) -- reason\nlet x = 1;\nq.pop().unwrap();\n";
        assert_eq!(check_source("crates/core/src/server.rs", stale).len(), 1);
    }

    #[test]
    fn cfg_test_blocks_are_skipped() {
        let src = "\
fn prod() {}
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() { let m: HashMap<u8, u8> = HashMap::new(); assert!(m.is_empty()); }
}
";
        assert!(check_source("crates/netsim/src/fabric.rs", src).is_empty());
    }

    #[test]
    fn pollcq_scope() {
        let src = "fn f(net: &Net, cq: CqId) { let wcs = net.poll_cq(cq, 8); }\n";
        let v = check_source("crates/core/src/nickv.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "pollcq");
        // cqdrain.rs is the sanctioned home of the raw poll.
        assert!(check_source("crates/core/src/cqdrain.rs", src).is_empty());
        // Out-of-scope crates are not event loops.
        assert!(check_source("crates/store/src/db.rs", src).is_empty());
    }

    #[test]
    fn blocking_scope() {
        let src = "fn f() { std::thread::sleep(d); }\n";
        let v = check_source("crates/simcore/src/engine.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "blocking");
        assert!(check_source("crates/bench/src/experiments.rs", src).is_empty());
    }

    #[test]
    fn cast_truncate_flags_narrowing_only() {
        let narrowing = "fn f(len: usize) -> u32 { len as u32 }\n";
        let v = check_source("crates/core/src/channel.rs", narrowing);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "cast-truncate");
        let widening = "fn f(len: u32) -> usize { len as usize }\n";
        assert!(check_source("crates/core/src/channel.rs", widening).is_empty());
        // Out of the wire scope the cast is fine.
        assert!(check_source("crates/core/src/cluster.rs", narrowing).is_empty());
    }

    #[test]
    fn index_unchecked_flags_ranges_not_lookups() {
        let range = "let h = &bytes[pos..pos + 4];\n";
        let v = check_source("crates/core/src/channel.rs", range);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "index-unchecked");
        // Plain single-element table lookups are not frame parsing.
        let lookup = "let qp = &qps[id.0 as usize];\n";
        let v = check_source("crates/netsim/src/rdma.rs", lookup);
        assert!(v.iter().all(|x| x.rule != "index-unchecked"), "{v:?}");
        // Checked access is the fix.
        let checked = "let h = bytes.get(pos..pos + 4)?;\n";
        assert!(check_source("crates/core/src/channel.rs", checked).is_empty());
        // Array type syntax is not indexing.
        let ty = "fn f(x: [u8; 4]) {}\n";
        assert!(check_source("crates/core/src/channel.rs", ty).is_empty());
    }

    #[test]
    fn wallclock_tokens() {
        let v = check_source(
            "crates/simcore/src/engine.rs",
            "let t = std::time::Instant::now();\nstd::thread::spawn(|| {});\n",
        );
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.rule == "wallclock"));
    }

    #[test]
    fn pub_field_collection() {
        let lines = lex("pub struct NetParams {\n    /// doc\n    pub bandwidth_bps: u64,\n    pub nested: Inner,\n}\npub struct Other { pub x: u8 }\n");
        let fields = collect_pub_fields(&lines, "NetParams");
        let names: Vec<_> = fields.iter().map(|(_, n)| n.as_str()).collect();
        assert_eq!(names, vec!["bandwidth_bps", "nested"]);
    }

    #[test]
    fn counter_literals() {
        assert!(counter_literal_rdma("rdma.doorbells"));
        assert!(!counter_literal_rdma("rdma."));
        assert!(!counter_literal_rdma("rdma.Doorbells"));
        assert!(!counter_literal_rdma("faults.tcp_retrans"));
        assert!(counter_literal_stat("stat_commands"));
        assert!(!counter_literal_stat("stat_"));
        assert!(counter_literal_shard("shard.cross_msgs"));
        assert!(!counter_literal_shard("shard."));
        assert!(!counter_literal_shard("shard.Ops"));
        assert!(counter_literal_cache("cache.hits"));
        assert!(!counter_literal_cache("cache."));
        assert!(!counter_literal_cache("cache.Hits"));
        assert!(counter_literal_hist("hist.aborts"));
        assert!(!counter_literal_hist("hist."));
        assert!(!counter_literal_hist("hist.Ops"));
    }

    #[test]
    fn severity_lookup() {
        assert_eq!(severity_of("hashmap"), Severity::Error);
        assert_eq!(severity_of("allow-unused"), Severity::Warning);
    }

    #[test]
    fn json_output_escapes() {
        let a = Analysis {
            violations: vec![Violation {
                file: "crates/x.rs".into(),
                line: 3,
                rule: "hashmap",
                message: "say \"hi\"".into(),
            }],
            files_scanned: 1,
        };
        let j = to_json(&a);
        assert!(j.contains("\"say \\\"hi\\\"\""), "{j}");
        assert!(j.contains("\"errors\": 1"), "{j}");
        assert!(j.contains("\"files_scanned\": 1"), "{j}");
    }
}
