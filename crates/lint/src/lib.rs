//! # skv-lint — workspace determinism & protocol-invariant checker
//!
//! The SKV reproduction's value rests on bit-for-bit determinism: every
//! figure is regenerated from seeds, and a single `HashMap` iteration or
//! wall-clock read can silently break that. This crate is a purpose-built
//! static checker — zero dependencies, plain file-walking plus line/token
//! scanning — that enforces the repo-specific rules `clippy` cannot express:
//!
//! * **`hashmap`** — no `std::collections::HashMap`/`HashSet` in the
//!   simulation crates (`netsim`, `simcore`, `core`). Their iteration
//!   order is seeded from the OS (`RandomState`), so any iteration leaks
//!   nondeterminism into event order. Use `BTreeMap`/`BTreeSet` or the
//!   [`skv_netsim::DetMap`]/`DetSet` wrappers.
//! * **`wallclock`** — no `Instant::now`, `SystemTime`, `thread::spawn`
//!   or `thread_rng` in simulation code. Time comes from the event loop
//!   (`Context::now`) and randomness from `DetRng` splits.
//! * **`unwrap`** — no `.unwrap()` / `.expect(...)` on the protocol hot
//!   paths (`core::server`, `core::client`, `core::channel`,
//!   `netsim::rdma`, `netsim::tcp`, `simcore::pool`). A malformed frame
//!   or stale completion must become a typed error, not a panic that
//!   takes down the whole simulated cluster.
//!
//! Escape hatch: a justified exception is written as
//!
//! ```text
//! // skv-lint: allow(hashmap) -- iteration order irrelevant: drained into a sorted Vec
//! ```
//!
//! on the offending line or the line directly above it. The reason after
//! `--` is mandatory; an allow without one is itself a violation
//! (`allow-syntax`), keeping every exception self-documenting.
//!
//! Test code is exempt everywhere: `#[cfg(test)]` modules are skipped by
//! brace tracking, and `tests/` / `benches/` directories are never
//! scanned. Line comments, block comments and string literals are
//! stripped before token matching, so prose about `HashMap` is fine.
//!
//! The binary (`cargo run -p skv-lint`) walks `crates/` under the
//! workspace root, prints `file:line: rule(<name>): <message>` for every
//! violation, and exits non-zero when any are found. The mechanically
//! expressible subset of these rules is mirrored into `clippy.toml`
//! (`disallowed-types` / `disallowed-methods`) so plain `cargo clippy`
//! catches the common cases workspace-wide; skv-lint adds the
//! path-scoping, the unwrap rule and the reasoned escape hatch.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose `src/` trees are simulation code (rules `hashmap` and
/// `wallclock` apply).
const SIM_CRATE_PREFIXES: [&str; 3] = [
    "crates/netsim/src/",
    "crates/simcore/src/",
    "crates/core/src/",
];

/// Protocol hot-path files (rule `unwrap` applies).
const HOT_PATH_FILES: [&str; 10] = [
    "crates/core/src/server.rs",
    "crates/core/src/client.rs",
    "crates/core/src/channel.rs",
    "crates/core/src/cqdrain.rs",
    "crates/core/src/nickv.rs",
    "crates/core/src/replmode.rs",
    "crates/core/src/histcheck.rs",
    "crates/netsim/src/rdma.rs",
    "crates/netsim/src/tcp.rs",
    "crates/simcore/src/pool.rs",
];

/// Directory names never descended into.
const SKIP_DIRS: [&str; 5] = ["target", "fixtures", "tests", "benches", ".git"];

/// All rule names, for `allow(...)` validation and `--help`.
pub const RULES: [&str; 3] = ["hashmap", "wallclock", "unwrap"];

/// One diagnostic: a rule violated at a specific file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule name (`hashmap`, `wallclock`, `unwrap`, or `allow-syntax`).
    pub rule: &'static str,
    /// Human-readable explanation with the offending token.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: rule({}): {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A token pattern belonging to a rule.
struct Pattern {
    needle: &'static str,
    /// Require identifier boundaries around the match (so `DetHashMap`
    /// or `unwrap_or` never match).
    ident: bool,
    rule: &'static str,
    message: &'static str,
}

const PATTERNS: [Pattern; 8] = [
    Pattern {
        needle: "HashMap",
        ident: true,
        rule: "hashmap",
        message: "std HashMap iterates in nondeterministic order in sim code; \
                  use BTreeMap or skv_netsim::DetMap",
    },
    Pattern {
        needle: "HashSet",
        ident: true,
        rule: "hashmap",
        message: "std HashSet iterates in nondeterministic order in sim code; \
                  use BTreeSet or skv_netsim::DetSet",
    },
    Pattern {
        needle: "Instant::now",
        ident: true,
        rule: "wallclock",
        message: "wall-clock read in sim code; take time from Context::now()",
    },
    Pattern {
        needle: "SystemTime",
        ident: true,
        rule: "wallclock",
        message: "wall-clock read in sim code; take time from Context::now()",
    },
    Pattern {
        needle: "thread::spawn",
        ident: true,
        rule: "wallclock",
        message: "OS threads break deterministic replay; model concurrency as actors",
    },
    Pattern {
        needle: "thread_rng",
        ident: true,
        rule: "wallclock",
        message: "OS-seeded randomness in sim code; split a DetRng instead",
    },
    Pattern {
        needle: ".unwrap()",
        ident: false,
        rule: "unwrap",
        message: "unwrap() on a protocol hot path; convert to a typed error \
                  or completion-with-error",
    },
    Pattern {
        needle: ".expect(",
        ident: false,
        rule: "unwrap",
        message: "expect() on a protocol hot path; convert to a typed error \
                  or completion-with-error",
    },
];

/// Which rule families apply to a workspace-relative path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scope {
    sim: bool,
    hot: bool,
}

fn scope_of(rel: &str) -> Scope {
    Scope {
        sim: SIM_CRATE_PREFIXES.iter().any(|p| rel.starts_with(p)),
        hot: HOT_PATH_FILES.contains(&rel),
    }
}

fn rule_applies(rule: &str, scope: Scope) -> bool {
    match rule {
        "hashmap" | "wallclock" => scope.sim,
        "unwrap" => scope.hot,
        _ => false,
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Find `needle` in `haystack` respecting identifier boundaries when
/// `ident` is set. Returns the byte offset of the first match.
fn find_token(haystack: &str, needle: &str, ident: bool) -> Option<usize> {
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(needle) {
        let pos = from + pos;
        if !ident {
            return Some(pos);
        }
        let before_ok = haystack[..pos]
            .chars()
            .next_back()
            .is_none_or(|c| !is_ident_char(c));
        let after_ok = haystack[pos + needle.len()..]
            .chars()
            .next()
            .is_none_or(|c| !is_ident_char(c));
        if before_ok && after_ok {
            return Some(pos);
        }
        from = pos + needle.len();
    }
    None
}

/// An `// skv-lint: allow(rule, ...) -- reason` directive parsed from a
/// raw source line.
#[derive(Debug, Default, Clone)]
struct AllowDirective {
    rules: Vec<String>,
    /// `Some(msg)` when the directive is malformed.
    error: Option<&'static str>,
    /// True when the directive is the only thing on its line, so it
    /// applies to the *next* line instead of its own.
    standalone: bool,
}

const ALLOW_MARKER: &str = "skv-lint: allow(";

/// Parse a directive from a line comment (`comment` starts at `//`).
/// Doc comments (`///`, `//!`) are prose and never carry directives, so
/// the checker's own documentation can discuss the syntax freely.
fn parse_allow(comment: &str, standalone: bool) -> Option<AllowDirective> {
    if comment.starts_with("///") || comment.starts_with("//!") {
        return None;
    }
    let marker = comment.find(ALLOW_MARKER)?;
    let rest = &comment[marker + ALLOW_MARKER.len()..];
    let Some(close) = rest.find(')') else {
        return Some(AllowDirective {
            error: Some("unterminated allow(...) directive"),
            standalone,
            ..Default::default()
        });
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() || rules.iter().any(|r| !RULES.contains(&r.as_str())) {
        return Some(AllowDirective {
            error: Some("allow(...) must name known rules: hashmap, wallclock, unwrap"),
            standalone,
            ..Default::default()
        });
    }
    let after = rest[close + 1..].trim_start();
    let reason_ok = after
        .strip_prefix("--")
        .is_some_and(|r| !r.trim().is_empty());
    if !reason_ok {
        return Some(AllowDirective {
            error: Some("allow(...) requires a justification: `-- <reason>`"),
            standalone,
            ..Default::default()
        });
    }
    Some(AllowDirective {
        rules,
        error: None,
        standalone,
    })
}

/// Per-file scanner state that survives across lines.
#[derive(Default)]
struct ScanState {
    /// Nesting depth of `/* ... */` block comments.
    block_comment_depth: usize,
    /// `Some(depth)` while inside a `#[cfg(test)]` item's braces.
    test_skip_depth: Option<usize>,
    /// A `#[cfg(test)]` attribute was seen; waiting for `{` or `;`.
    awaiting_test_open: bool,
}

/// Strip comments and string/char-literal contents from one line,
/// replacing them with spaces so byte offsets are preserved. Tracks
/// block-comment state across lines and returns the byte offset of a
/// genuine `//` line comment (outside strings and block comments), so
/// directive parsing never fires on string literals. Raw strings are not
/// handled (none in this workspace); the self-test fixtures pin current
/// behaviour.
fn sanitize(line: &str, state: &mut ScanState) -> (String, Option<usize>) {
    // Char literals that would confuse the quote/brace tracking below.
    let line = line
        .replace("'\"'", "' '")
        .replace("'{'", "' '")
        .replace("'}'", "' '")
        .replace("'\\''", "'  '");
    let bytes = line.as_bytes();
    let mut out = vec![b' '; bytes.len()];
    let mut comment_at = None;
    let mut i = 0;
    let mut in_string = false;
    while i < bytes.len() {
        if state.block_comment_depth > 0 {
            if bytes[i..].starts_with(b"*/") {
                state.block_comment_depth -= 1;
                i += 2;
            } else if bytes[i..].starts_with(b"/*") {
                state.block_comment_depth += 1;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        if in_string {
            if bytes[i] == b'\\' {
                i += 2; // skip the escaped char
                continue;
            }
            if bytes[i] == b'"' {
                in_string = false;
            }
            i += 1;
            continue;
        }
        match bytes[i] {
            b'"' => {
                in_string = true;
                i += 1;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                comment_at = Some(i);
                break; // line comment: rest of the line is prose
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                state.block_comment_depth += 1;
                i += 2;
            }
            b => {
                out[i] = b;
                i += 1;
            }
        }
    }
    (String::from_utf8_lossy(&out).into_owned(), comment_at)
}

/// Scan one file's contents; `rel` is the workspace-relative path used
/// both for scoping and for diagnostics.
pub fn check_source(rel: &str, contents: &str) -> Vec<Violation> {
    let scope = scope_of(rel);
    let mut out = Vec::new();
    let mut state = ScanState::default();
    // Rules allowed on the *next* line by a standalone directive.
    let mut pending_allow: Vec<String> = Vec::new();

    for (idx, raw) in contents.lines().enumerate() {
        let lineno = idx + 1;
        let (code, comment_at) = sanitize(raw, &mut state);
        let allow = comment_at.and_then(|at| {
            parse_allow(&raw[at..], raw[..at].trim().is_empty())
        });
        let trimmed = code.trim();

        // --- #[cfg(test)] skipping -----------------------------------
        if let Some(depth) = &mut state.test_skip_depth {
            *depth += code.matches('{').count();
            let closes = code.matches('}').count();
            *depth = depth.saturating_sub(closes);
            if *depth == 0 {
                state.test_skip_depth = None;
            }
            pending_allow.clear();
            continue;
        }
        if state.awaiting_test_open {
            let opens = code.matches('{').count();
            if opens > 0 {
                let depth = opens.saturating_sub(code.matches('}').count());
                state.awaiting_test_open = false;
                if depth > 0 {
                    state.test_skip_depth = Some(depth);
                }
            } else if code.contains(';') {
                // Single-item attribute (`#[cfg(test)] use ...;`).
                state.awaiting_test_open = false;
            }
            pending_allow.clear();
            continue;
        }
        if trimmed.starts_with("#[cfg(test)]") {
            state.awaiting_test_open = true;
            pending_allow.clear();
            continue;
        }

        // --- allow directives ----------------------------------------
        let mut line_allows: Vec<String> = std::mem::take(&mut pending_allow);
        if let Some(d) = allow {
            if let Some(err) = d.error {
                // Only meaningful where some rule could be suppressed.
                if scope.sim || scope.hot {
                    out.push(Violation {
                        file: rel.to_string(),
                        line: lineno,
                        rule: "allow-syntax",
                        message: err.to_string(),
                    });
                }
            } else if d.standalone {
                pending_allow = d.rules;
                continue;
            } else {
                line_allows.extend(d.rules);
            }
        }

        // --- token matching ------------------------------------------
        for p in &PATTERNS {
            if !rule_applies(p.rule, scope) {
                continue;
            }
            if line_allows.iter().any(|r| r == p.rule) {
                continue;
            }
            if find_token(&code, p.needle, p.ident).is_some() {
                out.push(Violation {
                    file: rel.to_string(),
                    line: lineno,
                    rule: p.rule,
                    message: format!("`{}`: {}", p.needle.trim_start_matches('.'), p.message),
                });
            }
        }
    }
    out
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort(); // deterministic diagnostic order
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            walk(&path, files)?;
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Check every non-test `.rs` file under `<root>/crates/`.
pub fn check_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let crates = root.join("crates");
    if !crates.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{} is not a workspace root (no crates/)", root.display()),
        ));
    }
    let mut files = Vec::new();
    walk(&crates, &mut files)?;
    let mut out = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let contents = fs::read_to_string(&path)?;
        out.extend(check_source(&rel, &contents));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_boundaries() {
        assert!(find_token("use std::collections::HashMap;", "HashMap", true).is_some());
        assert!(find_token("DetHashMap", "HashMap", true).is_none());
        assert!(find_token("HashMapLike", "HashMap", true).is_none());
        assert!(find_token("x.unwrap()", ".unwrap()", false).is_some());
        assert!(find_token("x.unwrap_or(0)", ".unwrap()", false).is_none());
    }

    #[test]
    fn strings_and_comments_are_ignored() {
        let v = check_source(
            "crates/core/src/server.rs",
            "fn f() { let s = \"call .unwrap() here\"; } // .unwrap()\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn scope_excludes_other_crates() {
        let v = check_source(
            "crates/store/src/dict.rs",
            "use std::collections::HashMap;\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn allow_requires_reason() {
        let src = "use std::collections::HashMap; // skv-lint: allow(hashmap)\n";
        let v = check_source("crates/core/src/server.rs", src);
        assert_eq!(v.len(), 2, "{v:?}"); // malformed allow + the violation
        assert!(v.iter().any(|x| x.rule == "allow-syntax"));
        assert!(v.iter().any(|x| x.rule == "hashmap"));
    }

    #[test]
    fn allow_with_reason_suppresses_same_line_and_next_line() {
        let same = "use std::collections::HashMap; // skv-lint: allow(hashmap) -- doc example\n";
        assert!(check_source("crates/core/src/server.rs", same).is_empty());
        let next = "// skv-lint: allow(unwrap) -- invariant: queue non-empty\nq.pop().unwrap();\n";
        assert!(check_source("crates/core/src/server.rs", next).is_empty());
        // ...but only the next line, not the one after.
        let stale =
            "// skv-lint: allow(unwrap) -- reason\nlet x = 1;\nq.pop().unwrap();\n";
        assert_eq!(check_source("crates/core/src/server.rs", stale).len(), 1);
    }

    #[test]
    fn cfg_test_blocks_are_skipped() {
        let src = "\
fn prod() {}
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() { let m: HashMap<u8, u8> = HashMap::new(); assert!(m.is_empty()); }
}
";
        assert!(check_source("crates/netsim/src/fabric.rs", src).is_empty());
    }

    #[test]
    fn code_after_cfg_test_block_is_scanned() {
        let src = "\
#[cfg(test)]
mod tests { fn t() {} }
use std::collections::HashMap;
";
        let v = check_source("crates/netsim/src/fabric.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn block_comments_span_lines() {
        let src = "/*\n .unwrap() HashMap\n*/\nfn f() {}\n";
        assert!(check_source("crates/core/src/server.rs", src).is_empty());
    }

    #[test]
    fn wallclock_tokens() {
        let v = check_source(
            "crates/simcore/src/engine.rs",
            "let t = std::time::Instant::now();\nstd::thread::spawn(|| {});\n",
        );
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.rule == "wallclock"));
    }
}
