//! A small zero-dependency Rust lexer.
//!
//! The old `skv-lint` stripped comments and strings with a per-line
//! heuristic that could not see raw strings, nested block comments that
//! open and close on the same line as code, or byte/char literals. This
//! module replaces it with a character-level state machine that walks the
//! whole file once and produces, per source line:
//!
//! * the code with every comment and literal *body* blanked to spaces
//!   (byte offsets preserved, so diagnostics still point at the token);
//! * the text and offset of a genuine `//` line comment, for directive
//!   parsing (`// skv-lint: allow(...)`);
//! * the contents of string literals that start on the line, for the
//!   drift rules that reason about counter-name literals;
//! * whether the line sits inside a `#[cfg(test)]` item, determined by
//!   token-level brace tracking on the blanked code (braces inside
//!   strings or comments can no longer desynchronise the tracker).
//!
//! Handled literal forms: `"..."` with escapes, `b"..."`, raw strings
//! `r"..."` / `r#"..."#` (any number of hashes, also `br#"..."#`),
//! char and byte-char literals (`'x'`, `b'\n'`), and lifetimes (`'a`),
//! which are *not* literals. Block comments nest, as in Rust.

/// One lexed source line.
#[derive(Debug, Clone, Default)]
pub struct LexedLine {
    /// The line's code with comments and literal bodies blanked to
    /// spaces. Same byte length as the raw line.
    pub code: String,
    /// Byte offset and raw text (including the `//`) of a line comment
    /// appearing on this line outside any string or block comment.
    pub comment: Option<(usize, String)>,
    /// Contents of string literals (escapes left verbatim) that *start*
    /// on this line.
    pub strings: Vec<String>,
    /// True when the line belongs to a `#[cfg(test)]` item (including
    /// the attribute line itself).
    pub in_test: bool,
}

/// Lexer state that survives across lines.
enum State {
    /// Ordinary code.
    Code,
    /// Inside `/* ... */`, at the given nesting depth (>= 1).
    Block(usize),
    /// Inside a `"..."` or `b"..."` string (escapes active).
    Str,
    /// Inside a raw string closed by `"` followed by `hashes` hashes.
    RawStr { hashes: usize },
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Does a raw string literal start at `bytes[i]` (which is `r`)? The `r`
/// must not continue an identifier — except an immediately preceding `b`
/// that itself starts one (`br#"..."#`).
fn raw_string_at(bytes: &[u8], i: usize) -> Option<usize> {
    let prev = i.checked_sub(1).map(|p| bytes[p]);
    let prev_ok = match prev {
        None => true,
        Some(b'b') => i < 2 || !is_ident_byte(bytes[i - 2]),
        Some(p) => !is_ident_byte(p),
    };
    if !prev_ok {
        return None;
    }
    let mut j = i + 1;
    let mut hashes = 0;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    (bytes.get(j) == Some(&b'"')).then_some(hashes)
}

/// Lex `source` into per-line records. Never fails: unterminated
/// literals simply blank the remainder of the file, which is the safe
/// direction for a checker (it can only miss findings in code that does
/// not compile anyway).
pub fn lex(source: &str) -> Vec<LexedLine> {
    let mut lines = Vec::new();
    let mut state = State::Code;
    for raw in source.lines() {
        let bytes = raw.as_bytes();
        let mut out = vec![b' '; bytes.len()];
        let mut comment = None;
        let mut strings = Vec::new();
        // The string literal currently being captured (may span lines;
        // continuation lines append to the *starting* line's capture
        // only if it closes there — cross-line bodies are rare and the
        // drift rules only need single-line counter names).
        let mut capture = String::new();
        let mut i = 0;
        while i < bytes.len() {
            match state {
                State::Block(depth) => {
                    if bytes[i..].starts_with(b"*/") {
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::Block(depth - 1)
                        };
                        i += 2;
                    } else if bytes[i..].starts_with(b"/*") {
                        state = State::Block(depth + 1);
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                State::Str => match bytes[i] {
                    b'\\' if i + 1 < bytes.len() => {
                        capture.push('\\');
                        let esc_len = raw[i + 1..].chars().next().map_or(1, char::len_utf8);
                        capture.push_str(&raw[i + 1..i + 1 + esc_len]);
                        i += 1 + esc_len;
                    }
                    b'\\' => i += 1, // escaped newline: continues next line
                    b'"' => {
                        strings.push(std::mem::take(&mut capture));
                        state = State::Code;
                        i += 1;
                    }
                    _ => {
                        let ch_len = raw[i..].chars().next().map_or(1, char::len_utf8);
                        capture.push_str(&raw[i..i + ch_len]);
                        i += ch_len;
                    }
                },
                State::RawStr { hashes } => {
                    if bytes[i] == b'"'
                        && bytes[i + 1..].iter().take_while(|&&b| b == b'#').count() >= hashes
                    {
                        strings.push(std::mem::take(&mut capture));
                        state = State::Code;
                        i += 1 + hashes;
                    } else {
                        let ch_len = raw[i..].chars().next().map_or(1, char::len_utf8);
                        capture.push_str(&raw[i..i + ch_len]);
                        i += ch_len;
                    }
                }
                State::Code => match bytes[i] {
                    b'/' if bytes.get(i + 1) == Some(&b'/') => {
                        comment = Some((i, raw[i..].to_string()));
                        i = bytes.len();
                    }
                    b'/' if bytes.get(i + 1) == Some(&b'*') => {
                        state = State::Block(1);
                        i += 2;
                    }
                    b'"' => {
                        state = State::Str;
                        capture.clear();
                        i += 1;
                    }
                    b'r' if raw_string_at(bytes, i).is_some() => {
                        let hashes = raw_string_at(bytes, i).unwrap_or(0);
                        state = State::RawStr { hashes };
                        capture.clear();
                        i += 2 + hashes; // r, hashes, opening quote
                    }
                    b'\'' => {
                        // Lifetime (`'a`, `'static`) vs char literal
                        // (`'x'`, `'\n'`, `'√'`). A lifetime is `'`
                        // followed by an identifier NOT closed by `'`.
                        let next = bytes.get(i + 1).copied();
                        let is_lifetime = next.is_some_and(|n| {
                            (n.is_ascii_alphabetic() || n == b'_')
                                && bytes.get(i + 2) != Some(&b'\'')
                        });
                        if is_lifetime {
                            out[i] = b'\'';
                            i += 1;
                        } else if next == Some(b'\\') {
                            // Escaped char literal: skip to the closing
                            // quote after the escape.
                            let mut j = i + 3; // past ' \ x
                            while j < bytes.len() && bytes[j] != b'\'' {
                                j += 1;
                            }
                            i = (j + 1).min(bytes.len());
                        } else {
                            // Unescaped char literal: the close quote is
                            // within the next few bytes (one UTF-8 char).
                            let close = bytes[i + 1..].iter().take(5).position(|&b| b == b'\'');
                            match close {
                                Some(off) => i += off + 2,
                                None => {
                                    // Stray quote; keep it visible.
                                    out[i] = b'\'';
                                    i += 1;
                                }
                            }
                        }
                    }
                    b => {
                        out[i] = b;
                        i += 1;
                    }
                },
            }
        }
        lines.push(LexedLine {
            code: String::from_utf8_lossy(&out).into_owned(),
            comment,
            strings,
            in_test: false,
        });
    }
    mark_test_lines(&mut lines);
    lines
}

/// Mark every line belonging to a `#[cfg(test)]` item by brace tracking
/// over the blanked code. Runs after lexing, so braces inside strings,
/// chars or comments can no longer desynchronise the depth count.
fn mark_test_lines(lines: &mut [LexedLine]) {
    let mut skip_depth: Option<usize> = None;
    let mut awaiting_open = false;
    for line in lines.iter_mut() {
        let code = line.code.as_str();
        if let Some(depth) = &mut skip_depth {
            line.in_test = true;
            *depth += code.matches('{').count();
            *depth = depth.saturating_sub(code.matches('}').count());
            if *depth == 0 {
                skip_depth = None;
            }
            continue;
        }
        if awaiting_open {
            line.in_test = true;
            let opens = code.matches('{').count();
            if opens > 0 {
                awaiting_open = false;
                let depth = opens.saturating_sub(code.matches('}').count());
                if depth > 0 {
                    skip_depth = Some(depth);
                }
            } else if code.contains(';') {
                // Single-item attribute (`#[cfg(test)] use ...;`).
                awaiting_open = false;
            }
            continue;
        }
        if code.trim_start().starts_with("#[cfg(test)]") {
            line.in_test = true;
            // The item may open its brace on the attribute's own line
            // (`#[cfg(test)] mod t { ... }`).
            let rest_at = code.find("#[cfg(test)]").map_or(0, |p| p + 12);
            let rest = &code[rest_at..];
            let opens = rest.matches('{').count();
            if opens > 0 {
                let depth = opens.saturating_sub(rest.matches('}').count());
                if depth > 0 {
                    skip_depth = Some(depth);
                }
            } else if !rest.contains(';') {
                awaiting_open = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comments_are_blanked_and_captured() {
        let l = lex("let x = 1; // trailing note\n");
        assert_eq!(l[0].code, "let x = 1;                 ");
        let (at, text) = l[0].comment.clone().expect("comment");
        assert_eq!(at, 11);
        assert_eq!(text, "// trailing note");
    }

    #[test]
    fn nested_block_comments_close_properly() {
        let c = codes("a /* outer /* inner */ still */ b\n/* open\nmore */ c\n");
        assert_eq!(c[0].trim(), "a                               b".trim());
        assert!(c[0].contains('b'));
        assert!(!c[1].contains("open"));
        assert_eq!(c[2].trim(), "c");
    }

    #[test]
    fn strings_are_blanked_and_contents_captured() {
        let l = lex("let s = \"HashMap { } \\\" quote\";\n");
        assert!(!l[0].code.contains("HashMap"));
        assert!(!l[0].code.contains('{'));
        assert_eq!(l[0].strings, vec!["HashMap { } \\\" quote".to_string()]);
    }

    #[test]
    fn raw_strings_are_opaque() {
        let l = lex("let s = r#\"no \\ escape \"inner\" } \"#; let t = 1;\n");
        assert!(!l[0].code.contains("inner"));
        assert!(l[0].code.contains("let t = 1;"));
        assert_eq!(l[0].strings, vec!["no \\ escape \"inner\" } ".to_string()]);
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let l = lex("let a = b\"bytes{\"; let b = br#\"raw\"bytes\"#;\n");
        assert!(!l[0].code.contains("bytes{"));
        assert_eq!(l[0].strings.len(), 2);
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let l = lex("fn f<'a>(x: &'a str) { let c = '{'; let q = '\\''; let u = '√'; }\n");
        // Braces inside char literals are blanked; the fn's braces stay.
        assert_eq!(l[0].code.matches('{').count(), 1);
        assert_eq!(l[0].code.matches('}').count(), 1);
        assert!(l[0].code.contains("fn f<'a>"));
    }

    #[test]
    fn multi_line_strings_keep_state() {
        let c = codes("let s = \"first\nsecond { } */ line\";\nlet x = 1;\n");
        assert!(!c[1].contains("second"));
        assert!(!c[1].contains('{'));
        assert!(c[2].contains("let x = 1;"));
    }

    #[test]
    fn cfg_test_marking_by_braces() {
        let src = "\
fn prod() {}
#[cfg(test)]
mod tests {
    use std::collections::HashMap; // inside
    fn t() { let s = \"}\"; }
}
fn after() {}
";
        let l = lex(src);
        assert!(!l[0].in_test);
        assert!(l[1].in_test && l[2].in_test && l[3].in_test && l[4].in_test && l[5].in_test);
        assert!(
            !l[6].in_test,
            "brace in string must not end the region early"
        );
    }

    #[test]
    fn cfg_test_single_item_and_same_line() {
        let l = lex("#[cfg(test)]\nuse foo::bar;\nlet x = 1;\n");
        assert!(l[0].in_test && l[1].in_test);
        assert!(!l[2].in_test);
        let l = lex("#[cfg(test)] mod t { fn f() {} }\nlet y = 2;\n");
        assert!(l[0].in_test);
        assert!(!l[1].in_test);
    }

    #[test]
    fn comment_inside_string_is_not_a_comment() {
        let l = lex("let u = \"http://example.com\"; let v = 1;\n");
        assert!(l[0].comment.is_none());
        assert!(l[0].code.contains("let v = 1;"));
    }

    #[test]
    fn division_is_not_a_comment() {
        let l = lex("let x = a / b / c;\n");
        assert!(l[0].comment.is_none());
        assert_eq!(l[0].code, "let x = a / b / c;");
    }
}
