//! Command-line entry point for `skv-lint`.
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use std::path::PathBuf;
use std::process::ExitCode;

const HELP: &str = "\
skv-lint: workspace determinism & protocol-invariant checker

USAGE:
    cargo run -p skv-lint [-- --root <dir>]

Checks every non-test .rs file under <root>/crates/ for:
    hashmap    std HashMap/HashSet in simulation crates (netsim, simcore, core)
    wallclock  Instant::now / SystemTime / thread::spawn / thread_rng in sim code
    unwrap     .unwrap() / .expect( on protocol hot paths

Suppress a finding with a justified directive on (or directly above) the line:
    // skv-lint: allow(<rule>) -- <reason>

Without --root, the workspace root is located by walking up from the
current directory to the first Cargo.toml containing [workspace].
";

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("skv-lint: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                print!("{HELP}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("skv-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let Some(root) = root.or_else(find_workspace_root) else {
        eprintln!("skv-lint: could not locate a workspace root (pass --root <dir>)");
        return ExitCode::from(2);
    };

    match skv_lint::check_workspace(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("skv-lint: clean ({} rules enforced)", skv_lint::RULES.len());
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!(
                "skv-lint: {} violation{} found",
                violations.len(),
                if violations.len() == 1 { "" } else { "s" },
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("skv-lint: {e}");
            ExitCode::from(2)
        }
    }
}
