//! Command-line entry point for `skv-analyze`.
//!
//! Exit codes: `0` clean (or warnings only), `1` error-severity
//! violations found (or any violation under `--deny-warnings`),
//! `2` usage or I/O error.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use std::path::PathBuf;
use std::process::ExitCode;

use skv_analyze::{analyze_workspace, to_json, RULES};

const HELP_HEADER: &str = "\
skv-analyze: token-level static analysis for the SKV reproduction

USAGE:
    cargo run -p skv-analyze [-- --root <dir>] [--format text|json] [--deny-warnings]

Walks every non-test .rs file under <root>/crates/ and <root>/examples/
with a small Rust lexer (comments, strings, raw strings, nested block
comments, cfg(test) brace tracking) and enforces:
";

const HELP_FOOTER: &str = "
Suppress a finding with a justified directive on (or directly above) the line:
    // skv-lint: allow(<rule>) -- <reason>

Without --root, the workspace root is located by walking up from the
current directory to the first Cargo.toml containing [workspace].
--format json prints the machine-readable report (schema: DESIGN.md §14).
";

fn print_help() {
    print!("{HELP_HEADER}");
    for r in RULES {
        println!(
            "    {:<16} [{}] {} — {}",
            r.name,
            r.severity.as_str(),
            r.summary,
            r.scope
        );
    }
    print!("{HELP_FOOTER}");
}

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format_json = false;
    let mut deny_warnings = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("skv-analyze: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("json") => format_json = true,
                Some("text") => format_json = false,
                _ => {
                    eprintln!("skv-analyze: --format requires `text` or `json`");
                    return ExitCode::from(2);
                }
            },
            "--deny-warnings" => deny_warnings = true,
            "-h" | "--help" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("skv-analyze: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let Some(root) = root.or_else(find_workspace_root) else {
        eprintln!("skv-analyze: could not locate a workspace root (pass --root <dir>)");
        return ExitCode::from(2);
    };

    let analysis = match analyze_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("skv-analyze: {e}");
            return ExitCode::from(2);
        }
    };

    if format_json {
        print!("{}", to_json(&analysis));
    } else if analysis.violations.is_empty() {
        println!(
            "skv-analyze: clean ({} files, {} rules enforced)",
            analysis.files_scanned,
            RULES.len()
        );
    } else {
        for v in &analysis.violations {
            println!("{} [{}]", v, v.severity().as_str());
        }
        println!(
            "skv-analyze: {} error{}, {} warning{}",
            analysis.errors(),
            if analysis.errors() == 1 { "" } else { "s" },
            analysis.warnings(),
            if analysis.warnings() == 1 { "" } else { "s" },
        );
    }

    let fail = analysis.errors() > 0 || (deny_warnings && !analysis.violations.is_empty());
    if fail {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
