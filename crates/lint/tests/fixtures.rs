//! Fixture-driven self-tests: run the checker over a miniature workspace
//! containing deliberate violations and assert the exact diagnostics, then
//! assert the real workspace scans clean (the acceptance gate itself).

use std::path::Path;

use skv_lint::{check_workspace, Violation};

fn fixture_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures"))
}

fn by_file<'a>(violations: &'a [Violation], file: &str) -> Vec<&'a Violation> {
    violations.iter().filter(|v| v.file == file).collect()
}

#[test]
fn fixtures_produce_expected_diagnostics() {
    let violations = check_workspace(fixture_root()).expect("fixture walk");

    let hashmap = by_file(&violations, "crates/netsim/src/bad_hashmap.rs");
    assert_eq!(
        hashmap.iter().map(|v| v.line).collect::<Vec<_>>(),
        vec![2, 3, 6, 7],
        "{hashmap:?}"
    );
    assert!(hashmap.iter().all(|v| v.rule == "hashmap"));

    let wallclock = by_file(&violations, "crates/simcore/src/bad_wallclock.rs");
    assert_eq!(
        wallclock.iter().map(|v| v.line).collect::<Vec<_>>(),
        vec![4, 5, 6, 7],
        "{wallclock:?}"
    );
    assert!(wallclock.iter().all(|v| v.rule == "wallclock"));

    let unwrap = by_file(&violations, "crates/core/src/server.rs");
    assert_eq!(
        unwrap.iter().map(|v| v.line).collect::<Vec<_>>(),
        vec![4, 5],
        "{unwrap:?}"
    );
    assert!(unwrap.iter().all(|v| v.rule == "unwrap"));

    // A reason-less (or typo'd) allow is flagged AND does not suppress
    // the underlying finding.
    let bad_allow = by_file(&violations, "crates/core/src/bad_allow.rs");
    let rules: Vec<_> = bad_allow.iter().map(|v| (v.line, v.rule)).collect();
    assert_eq!(
        rules,
        vec![
            (3, "allow-syntax"),
            (3, "hashmap"),
            (6, "allow-syntax"),
            (6, "hashmap"),
        ],
        "{bad_allow:?}"
    );

    // Justified allows, cfg(test) code and out-of-scope crates are clean.
    for clean in [
        "crates/core/src/allowed.rs",
        "crates/core/src/test_only.rs",
        "crates/store/src/out_of_scope.rs",
    ] {
        assert!(
            by_file(&violations, clean).is_empty(),
            "{clean} should be clean: {:?}",
            by_file(&violations, clean)
        );
    }

    assert_eq!(violations.len(), 14, "{violations:?}");
}

#[test]
fn diagnostics_render_as_file_line_rule() {
    let violations = check_workspace(fixture_root()).expect("fixture walk");
    let first = violations
        .iter()
        .find(|v| v.file == "crates/netsim/src/bad_hashmap.rs")
        .expect("hashmap fixture diagnostic");
    let rendered = first.to_string();
    assert!(
        rendered.starts_with("crates/netsim/src/bad_hashmap.rs:2: rule(hashmap): "),
        "{rendered}"
    );
}

#[test]
fn real_workspace_is_clean() {
    let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let violations = check_workspace(root).expect("workspace walk");
    assert!(
        violations.is_empty(),
        "skv-lint found violations in the real workspace:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
