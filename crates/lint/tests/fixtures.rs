//! Fixture-driven self-tests: run the analyzer over a miniature workspace
//! containing one deliberate violation (and one near-miss) per rule and
//! assert the exact diagnostics, then assert the real workspace scans
//! clean (the acceptance gate itself).

use std::path::Path;

use skv_analyze::{analyze_workspace, check_workspace, to_json, Severity, Violation};

fn fixture_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures"))
}

fn by_file<'a>(violations: &'a [Violation], file: &str) -> Vec<&'a Violation> {
    violations.iter().filter(|v| v.file == file).collect()
}

fn lines_of(violations: &[Violation], file: &str, rule: &str) -> Vec<usize> {
    violations
        .iter()
        .filter(|v| v.file == file && v.rule == rule)
        .map(|v| v.line)
        .collect()
}

#[test]
fn fixtures_produce_expected_diagnostics() {
    let violations = check_workspace(fixture_root()).expect("fixture walk");

    // --- per-line pattern rules ---------------------------------------
    let hashmap = by_file(&violations, "crates/netsim/src/bad_hashmap.rs");
    assert_eq!(
        hashmap.iter().map(|v| v.line).collect::<Vec<_>>(),
        vec![2, 3, 6, 7],
        "{hashmap:?}"
    );
    assert!(hashmap.iter().all(|v| v.rule == "hashmap"));

    let wallclock = by_file(&violations, "crates/simcore/src/bad_wallclock.rs");
    assert_eq!(
        wallclock.iter().map(|v| v.line).collect::<Vec<_>>(),
        vec![4, 5, 6, 7],
        "{wallclock:?}"
    );
    assert!(wallclock.iter().all(|v| v.rule == "wallclock"));

    let unwrap = by_file(&violations, "crates/core/src/server.rs");
    assert_eq!(
        unwrap.iter().map(|v| v.line).collect::<Vec<_>>(),
        vec![4, 5],
        "{unwrap:?}"
    );
    assert!(unwrap.iter().all(|v| v.rule == "unwrap"));

    // Blocking calls fire in sim crates only; the `thread::sleep` and
    // `std::fs::` twins in crates/store stay clean (checked below).
    assert_eq!(
        lines_of(&violations, "crates/core/src/bad_blocking.rs", "blocking"),
        vec![4, 5, 6]
    );

    // Raw CQ polls are flagged everywhere on the event loop except the
    // budgeted-drain helper itself.
    assert_eq!(
        lines_of(&violations, "crates/core/src/bad_pollcq.rs", "pollcq"),
        vec![4]
    );

    // --- wire-format hygiene ------------------------------------------
    // Narrowing casts only; the `as u64` / `as usize` widenings are clean.
    assert_eq!(
        lines_of(&violations, "crates/core/src/protocol.rs", "cast-truncate"),
        vec![4, 5, 6]
    );
    // Range indexing only; `.get(range)` and single-element lookups are
    // clean.
    assert_eq!(
        lines_of(&violations, "crates/core/src/channel.rs", "index-unchecked"),
        vec![4, 5]
    );

    // --- drift rules ---------------------------------------------------
    // `stat_orphan` is incremented but not exported, `rdma.ghost` is a
    // fabric counter the catalog never heard of, and `stat_gone` is a
    // stale catalog entry nothing increments any more.
    assert_eq!(
        lines_of(&violations, "crates/core/src/nickv.rs", "counter-drift"),
        vec![5]
    );
    assert_eq!(
        lines_of(
            &violations,
            "crates/netsim/src/counters.rs",
            "counter-drift"
        ),
        vec![4]
    );
    assert_eq!(
        lines_of(&violations, "crates/core/src/metrics.rs", "counter-drift"),
        vec![5]
    );

    // `orphan_knob` is swept by nothing; `used_knob` is referenced from
    // the fixture bench crate and `excused_knob` carries a reasoned allow.
    assert_eq!(
        lines_of(&violations, "crates/core/src/config.rs", "config-drift"),
        vec![7]
    );

    // --- allow auditing ------------------------------------------------
    // A reason-less (or typo'd) allow is flagged AND does not suppress
    // the underlying finding.
    let bad_allow = by_file(&violations, "crates/core/src/bad_allow.rs");
    let rules: Vec<_> = bad_allow.iter().map(|v| (v.line, v.rule)).collect();
    assert_eq!(
        rules,
        vec![
            (3, "allow-syntax"),
            (3, "hashmap"),
            (6, "allow-syntax"),
            (6, "hashmap"),
        ],
        "{bad_allow:?}"
    );
    // A well-formed allow that excuses nothing is reported as stale.
    assert_eq!(
        lines_of(
            &violations,
            "crates/core/src/unused_allow.rs",
            "allow-unused"
        ),
        vec![4]
    );

    // Justified allows, cfg(test) code, the cqdrain exemption, and
    // out-of-scope crates are all clean.
    for clean in [
        "crates/core/src/allowed.rs",
        "crates/core/src/test_only.rs",
        "crates/core/src/cqdrain.rs",
        "crates/bench/src/ablations.rs",
        "crates/store/src/blocking_ok.rs",
        "crates/store/src/out_of_scope.rs",
    ] {
        assert!(
            by_file(&violations, clean).is_empty(),
            "{clean} should be clean: {:?}",
            by_file(&violations, clean)
        );
    }

    assert_eq!(violations.len(), 28, "{violations:?}");
}

#[test]
fn severities_split_errors_from_warnings() {
    let analysis = analyze_workspace(fixture_root()).expect("fixture walk");
    // Exactly one warning: the stale allow. Everything else is an error.
    assert_eq!(analysis.warnings(), 1);
    assert_eq!(analysis.errors(), 27);
    assert!(analysis
        .violations
        .iter()
        .filter(|v| v.severity() == Severity::Warning)
        .all(|v| v.rule == "allow-unused"));
}

#[test]
fn json_report_round_trips_fixture_diagnostics() {
    let analysis = analyze_workspace(fixture_root()).expect("fixture walk");
    let json = to_json(&analysis);
    // Cheap structural checks without a JSON parser: every rule name that
    // fired appears, and the violation count matches.
    for rule in [
        "hashmap",
        "wallclock",
        "unwrap",
        "blocking",
        "pollcq",
        "cast-truncate",
        "index-unchecked",
        "counter-drift",
        "config-drift",
        "allow-syntax",
        "allow-unused",
    ] {
        assert!(
            json.contains(&format!("\"rule\": \"{rule}\"")),
            "missing rule {rule} in JSON:\n{json}"
        );
    }
    assert_eq!(json.matches("\"rule\":").count(), 28, "{json}");
}

#[test]
fn diagnostics_render_as_file_line_rule() {
    let violations = check_workspace(fixture_root()).expect("fixture walk");
    let first = violations
        .iter()
        .find(|v| v.file == "crates/netsim/src/bad_hashmap.rs")
        .expect("hashmap fixture diagnostic");
    let rendered = first.to_string();
    assert!(
        rendered.starts_with("crates/netsim/src/bad_hashmap.rs:2: rule(hashmap): "),
        "{rendered}"
    );
}

#[test]
fn real_workspace_is_clean() {
    let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let violations = check_workspace(root).expect("workspace walk");
    assert!(
        violations.is_empty(),
        "skv-analyze found violations in the real workspace:\n{}",
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
