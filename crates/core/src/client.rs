//! Closed-loop benchmark clients, modelled on `redis-benchmark` (§V-B:
//! "each client issues queries as quickly as possible").
//!
//! A client opens one connection, then repeats: build a command, send it,
//! wait for the reply, record the latency, send the next. Throughput at a
//! given concurrency level therefore emerges from server service times and
//! round-trip latency exactly as it does for the paper's load generator.

use skv_netsim::{CqId, Net, NetEvent, NodeId, SocketAddr};
use skv_simcore::{Actor, ActorId, Context, DetRng, Payload, SimDuration, SimTime};
use skv_store::resp::{Decoded, Resp};

use crate::channel::{Channel, ChannelMsg};
use crate::config::{ClusterConfig, Mode};
use crate::cqdrain;
use crate::histcheck::{OpKind, OpRecord, SharedHistory};
use crate::metrics::SharedMetrics;
use crate::protocol::tag;

/// Workload shape for one client.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Commands kept in flight per connection (`redis-benchmark -P`);
    /// 1 reproduces the paper's strictly closed loop.
    pub pipeline: usize,
    /// Fraction of operations that are SET (the rest are GET).
    pub set_ratio: f64,
    /// Keys per write batch: 0 or 1 issues plain SETs; `n >= 2` issues
    /// `MSET` over `n` uniform random keys instead (cross-shard stressor
    /// on sharded clusters). The default workload (0) draws the exact
    /// historical RNG sequence.
    pub mset_keys: usize,
    /// Number of distinct keys (uniform access).
    pub key_space: u64,
    /// Value payload size in bytes for SET.
    pub value_size: usize,
    /// Zipf skew exponent θ for key draws. 0 (the default) keeps the
    /// historical uniform draws bit-identical — the Zipf machinery and
    /// its dedicated RNG stream only exist when θ > 0. Typical YCSB
    /// skew is θ = 0.99; values are clamped below 1.
    pub zipf_theta: f64,
    /// Shift the Zipf hot set every this many key draws (0 = static hot
    /// set). The shift is a deterministic rank rotation — no RNG draws —
    /// so enabling it cannot reshuffle any stream.
    pub zipf_shift_every: u64,
    /// When to open the connection and start issuing.
    pub start_at: SimTime,
    /// Stop issuing new operations after this instant.
    pub stop_at: SimTime,
}

/// Zipf(θ) rank sampler over `n` ranks — YCSB's zipfian generator
/// (Gray et al.'s rejection-free inversion): one uniform draw in, one
/// rank out, O(1) per sample after an O(n) zeta precomputation.
/// Rank 0 is the hottest item.
pub struct ZipfSampler {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl ZipfSampler {
    /// Build a sampler over `n` ranks with exponent `theta` (clamped to
    /// `[0.01, 0.9999]` — the closed form needs θ < 1).
    pub fn new(n: u64, theta: f64) -> Self {
        let n = n.max(1);
        let theta = theta.clamp(0.01, 0.9999);
        let nf = n as f64;
        let mut zetan = 0.0f64;
        let mut zeta2 = 0.0f64;
        for i in 1..=n {
            let term = 1.0 / (i as f64).powf(theta);
            zetan += term;
            if i <= 2 {
                zeta2 += term;
            }
        }
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / nf).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        ZipfSampler {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    /// Map one uniform draw `u ∈ [0, 1)` to a Zipf-distributed rank in
    /// `[0, n)`.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)] // in [0, n), clamped below
    pub fn rank(&self, u: f64) -> u64 {
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if self.n >= 2 && uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let r = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        r.min(self.n - 1)
    }
}

/// Deterministic command generator for one client connection.
///
/// Draw order is part of the workload contract (the same-seed trace
/// digest test pins it):
///
/// * **θ = 0 (legacy)** — a single RNG stream, exactly the historical
///   sequence: key index ← `below(key_space)`, then write? ←
///   `chance(set_ratio)`, then (MSET only) each extra key index ←
///   `below(key_space)`.
/// * **θ > 0** — one stream per knob: every key index comes from the
///   dedicated Zipf stream (`unit()` into [`ZipfSampler::rank`],
///   including MSET extras), the read/write mix stays on the main
///   stream (`chance(set_ratio)`). A future knob gets its own split,
///   never draws from these two.
pub struct WorkloadGen {
    w: Workload,
    /// Main stream: read/write mix, and key draws in legacy mode.
    rng: DetRng,
    /// Dedicated Zipf key stream (untouched placeholder when θ = 0).
    key_rng: DetRng,
    zipf: Option<ZipfSampler>,
    /// Key draws so far (drives the deterministic hot-set rotation).
    key_draws: u64,
}

impl WorkloadGen {
    /// Build a generator. With θ = 0 the passed `rng` is used exactly
    /// as the historical single stream (never split); with θ > 0 the
    /// Zipf stream is split off it once, up front.
    pub fn new(w: &Workload, mut rng: DetRng) -> Self {
        let (zipf, key_rng) = if w.zipf_theta > 0.0 {
            (
                Some(ZipfSampler::new(w.key_space.max(1), w.zipf_theta)),
                rng.split(),
            )
        } else {
            (None, DetRng::new(0))
        };
        WorkloadGen {
            w: w.clone(),
            rng,
            key_rng,
            zipf,
            key_draws: 0,
        }
    }

    /// Draw the next key index per the documented order.
    fn key_index(&mut self) -> u64 {
        let n = self.w.key_space.max(1);
        match &self.zipf {
            None => self.rng.below(n),
            Some(z) => {
                let rank = z.rank(self.key_rng.unit());
                // Rotate the hot set by a fixed stride per window —
                // deterministic, draw-free (no window when the knob is 0).
                let shift = self
                    .key_draws
                    .checked_div(self.w.zipf_shift_every)
                    .unwrap_or(0)
                    * (n / 5 + 1);
                self.key_draws += 1;
                (rank + shift) % n
            }
        }
    }

    /// Produce the next command and whether it is a write.
    pub fn next_command(&mut self) -> (Resp, bool) {
        let (cmd, is_write, _) = self.next_command_stamped(None);
        (cmd, is_write)
    }

    /// Like [`WorkloadGen::next_command`], but also returns the keys the
    /// command touches and — when `stamp` is given and the op is a write
    /// — replaces the `xxxx…` filler value with [`stamp_value`] so a
    /// recorded history can match reads back to writes. Stamping draws
    /// no RNG and reorders nothing: with `stamp = None` the byte stream
    /// is identical to the historical one (the pinned trace digests
    /// prove it).
    pub fn next_command_stamped(&mut self, stamp: Option<u64>) -> (Resp, bool, Vec<String>) {
        let key = format!("key:{:012}", self.key_index());
        let is_write = self.rng.chance(self.w.set_ratio);
        let make_value = |size: usize| match stamp {
            Some(s) => stamp_value(s, size),
            None => vec![b'x'; size],
        };
        if is_write && self.w.mset_keys >= 2 {
            // Batched write: MSET over `mset_keys` keys (the first is
            // the one already drawn, keeping the draw order stable).
            let value = make_value(self.w.value_size);
            let mut keys = Vec::with_capacity(self.w.mset_keys);
            let mut parts: Vec<Vec<u8>> = Vec::with_capacity(1 + 2 * self.w.mset_keys);
            parts.push(b"MSET".to_vec());
            parts.push(key.clone().into_bytes());
            parts.push(value.clone());
            keys.push(key);
            for _ in 1..self.w.mset_keys {
                let k = format!("key:{:012}", self.key_index());
                parts.push(k.clone().into_bytes());
                parts.push(value.clone());
                keys.push(k);
            }
            (Resp::command(parts), true, keys)
        } else if is_write {
            let cmd = Resp::command([
                b"SET".as_slice(),
                key.as_bytes(),
                &make_value(self.w.value_size),
            ]);
            (cmd, true, vec![key])
        } else {
            let cmd = Resp::command([b"GET".as_slice(), key.as_bytes()]);
            (cmd, false, vec![key])
        }
    }
}

/// History stamp for a recorded write: globally unique per (client, op)
/// — the client id lives in the high bits, a per-client counter in the
/// low 40. Stamp 0 never occurs (`0` means "key absent" to the checker).
pub fn history_stamp(client_id: usize, counter: u64) -> u64 {
    ((client_id as u64 + 1) << 40) | (counter & ((1 << 40) - 1))
}

/// Render a stamp as a SET value: its decimal digits, padded with `x` up
/// to `value_size` so recorded runs keep the configured payload sizes.
pub fn stamp_value(stamp: u64, value_size: usize) -> Vec<u8> {
    let mut v = stamp.to_string().into_bytes();
    if v.len() < value_size {
        v.resize(value_size, b'x');
    }
    v
}

/// Parse a stamped value back: the leading decimal digits. Unstamped
/// (`xxxx…`) values parse to `None`.
pub fn parse_stamp(bytes: &[u8]) -> Option<u64> {
    let end = bytes
        .iter()
        .position(|b| !b.is_ascii_digit())
        .unwrap_or(bytes.len());
    if end == 0 {
        return None;
    }
    std::str::from_utf8(bytes.get(..end)?).ok()?.parse().ok()
}

/// Parse a GET reply into the observed stamp: `NullBulk` (key absent)
/// observes 0, a stamped bulk observes its stamp, anything else (errors,
/// unstamped values) observes nothing and is dropped from the history.
fn parse_reply_stamp(payload: &[u8]) -> Option<u64> {
    match Resp::decode(payload) {
        Decoded::Frame(Resp::NullBulk, _) => Some(0),
        Decoded::Frame(Resp::Bulk(b), _) => parse_stamp(&b),
        _ => None,
    }
}

enum ClientMsg {
    /// Time to connect and start.
    Start,
    /// Issue the next operation (after per-op client overhead).
    IssueNext,
    /// Periodic liveness check: reconnect when the oldest in-flight
    /// command has waited longer than `client_retry_timeout`.
    Watchdog,
}

/// A benchmark client actor.
pub struct BenchClient {
    net: Net,
    cfg: ClusterConfig,
    node: NodeId,
    server: SocketAddr,
    workload: Workload,
    metrics: SharedMetrics,
    cq: Option<CqId>,
    channel: Option<Channel>,
    /// Command generator; rebuilt in `on_start` around a split of the
    /// simulation RNG (placeholder seed until then), so no unwrap on
    /// the issue path.
    gen: WorkloadGen,
    /// FIFO of (send instant, is_write) for commands awaiting replies.
    in_flight: std::collections::VecDeque<(SimTime, bool)>,
    /// Stable id for history stamps (set by [`BenchClient::record_into`]).
    client_id: usize,
    /// When recording, the shared history sink every op lands in.
    history: Option<SharedHistory>,
    /// Monotone per-client stamp counter (recording only).
    stamp_counter: u64,
    /// History op indices per in-flight command, parallel to
    /// `in_flight` (one index per key an MSET touches; empty vec and
    /// untouched unless recording).
    rec_in_flight: std::collections::VecDeque<Vec<usize>>,
    /// Consecutive failed dials since the last established connection;
    /// drives the capped exponential redial backoff
    /// (`ClusterConfig::client_dial_delay`).
    dial_attempts: u32,
    /// Operations issued.
    pub stat_issued: u64,
    /// Replies received.
    pub stat_replies: u64,
    /// Connections abandoned and re-established after reply timeouts.
    pub stat_reconnects: u64,
    /// Total failed dial attempts (each one schedules a backed-off
    /// redial); the backoff regression test bounds this under a long
    /// partition.
    pub stat_dial_failures: u64,
}

impl BenchClient {
    /// Create a client on `node` targeting `server`.
    pub fn new(
        net: Net,
        cfg: ClusterConfig,
        node: NodeId,
        server: SocketAddr,
        workload: Workload,
        metrics: SharedMetrics,
    ) -> Self {
        let gen = WorkloadGen::new(&workload, DetRng::new(0));
        BenchClient {
            net,
            cfg,
            node,
            server,
            workload,
            metrics,
            cq: None,
            channel: None,
            gen,
            in_flight: Default::default(),
            client_id: 0,
            history: None,
            stamp_counter: 0,
            rec_in_flight: Default::default(),
            dial_attempts: 0,
            stat_issued: 0,
            stat_replies: 0,
            stat_reconnects: 0,
            stat_dial_failures: 0,
        }
    }

    /// Route this client's operations into a shared history for the
    /// linearizability checker (see `ClusterConfig::record_history`).
    /// `client_id` keys the write stamps; it must be unique per client.
    pub fn record_into(&mut self, client_id: usize, history: SharedHistory) {
        self.client_id = client_id;
        self.history = Some(history);
    }

    /// Abandon the current connection (commands in flight are lost, like a
    /// real client timing out) and dial again.
    fn reconnect(&mut self, ctx: &mut Context<'_>) {
        if let Some(ch) = self.channel.take() {
            if let Some(qp) = ch.qp() {
                self.net.destroy_qp(qp);
            }
            if let Some(conn) = ch.tcp_conn() {
                self.net.tcp_close(ctx, conn);
            }
        }
        if let Some(h) = &self.history {
            // In-flight reads were provably never observed — record
            // explicit aborts so the checker drops them. Writes stay
            // open: they may have applied before the channel died.
            let mut h = h.borrow_mut();
            for idxs in self.rec_in_flight.drain(..) {
                for idx in idxs {
                    if let Some(op) = h.ops.get_mut(idx) {
                        if op.kind == OpKind::Read {
                            op.aborted = true;
                        }
                    }
                }
            }
        }
        self.in_flight.clear();
        self.stat_reconnects += 1;
        self.metrics.borrow_mut().chaos.inc("client.reconnects");
        ctx.timer(SimDuration::from_millis(1), ClientMsg::Start);
    }

    fn issue(&mut self, ctx: &mut Context<'_>) {
        if ctx.now() >= self.workload.stop_at {
            return;
        }
        let Some(channel) = self.channel.as_mut() else {
            return;
        };
        let (cmd, is_write) = if let Some(history) = &self.history {
            self.stamp_counter += 1;
            let stamp = history_stamp(self.client_id, self.stamp_counter);
            let (cmd, is_write, keys) = self.gen.next_command_stamped(Some(stamp));
            let now = ctx.now();
            let mut idxs = Vec::with_capacity(keys.len());
            {
                let mut h = history.borrow_mut();
                for key in keys {
                    h.ops.push(OpRecord {
                        key,
                        kind: if is_write { OpKind::Write } else { OpKind::Read },
                        seq: if is_write { stamp } else { 0 },
                        invoked: now,
                        completed: None,
                        ok: false,
                        aborted: false,
                        read_set: Vec::new(),
                    });
                    idxs.push(h.ops.len() - 1);
                }
            }
            self.rec_in_flight.push_back(idxs);
            (cmd, is_write)
        } else {
            self.gen.next_command()
        };
        self.in_flight.push_back((ctx.now(), is_write));
        self.stat_issued += 1;
        let net = self.net.clone();
        channel.send(&net, ctx, tag::CMD, cmd.encode());
    }

    /// Fill the pipeline up to its configured depth.
    fn fill_pipeline(&mut self, ctx: &mut Context<'_>) {
        while self.in_flight.len() < self.workload.pipeline.max(1) {
            let before = self.in_flight.len();
            self.issue(ctx);
            if self.in_flight.len() == before {
                break; // stopped issuing (deadline passed / not connected)
            }
        }
    }

    fn on_reply(&mut self, ctx: &mut Context<'_>, payload: &[u8]) {
        self.stat_replies += 1;
        let Some((sent_at, is_write)) = self.in_flight.pop_front() else {
            return;
        };
        let latency = ctx.now().saturating_since(sent_at);
        let is_error = payload.first() == Some(&b'-');
        if let Some(h) = &self.history {
            if let Some(idxs) = self.rec_in_flight.pop_front() {
                // One reply closes every record the command opened
                // (MSET: one per key, sharing the stamp). Replies served
                // by the NIC cache or relayed off FWD_CMD cookies arrive
                // on this same channel and are recorded identically.
                let observed = if is_write {
                    None
                } else {
                    parse_reply_stamp(payload)
                };
                let mut h = h.borrow_mut();
                for idx in idxs {
                    if let Some(op) = h.ops.get_mut(idx) {
                        op.completed = Some(ctx.now());
                        match op.kind {
                            OpKind::Write => op.ok = !is_error,
                            OpKind::Read => {
                                if let Some(v) = observed {
                                    op.ok = true;
                                    op.seq = v;
                                    op.read_set = vec![self.server];
                                }
                                // Unparseable replies observe nothing:
                                // the record completes with ok = false
                                // and is dropped from checking.
                            }
                        }
                    }
                }
            }
        }
        self.metrics
            .borrow_mut()
            .record(ctx.now(), latency, is_write, is_error);
        // Closed loop: think for the client-side overhead, then refill.
        ctx.timer(self.cfg.costs.client_op, ClientMsg::IssueNext);
    }
}

impl Actor for BenchClient {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.gen = WorkloadGen::new(&self.workload, ctx.rng().split());
        let start = self.workload.start_at;
        ctx.timer_at(start, ClientMsg::Start);
        ctx.timer_at(start + self.cfg.client_retry_timeout, ClientMsg::Watchdog);
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, _from: ActorId, msg: Payload) {
        let msg = match msg.downcast::<ClientMsg>() {
            Ok(m) => {
                match *m {
                    ClientMsg::Start => {
                        if self.channel.is_some() {
                            return;
                        }
                        let me = ctx.id();
                        if self.cfg.mode.uses_rdma() {
                            // Reuse the CQ across reconnects.
                            let cq = match self.cq {
                                Some(cq) => cq,
                                None => {
                                    let cq = self.net.create_cq(me);
                                    self.cq = Some(cq);
                                    self.net.req_notify_cq(ctx, cq);
                                    cq
                                }
                            };
                            self.net.rdma_connect(ctx, self.node, me, cq, self.server);
                        } else {
                            self.net.tcp_connect(ctx, self.node, me, self.server);
                        }
                    }
                    ClientMsg::IssueNext => self.fill_pipeline(ctx),
                    ClientMsg::Watchdog => {
                        let now = ctx.now();
                        if now >= self.workload.stop_at && self.in_flight.is_empty() {
                            return; // run over, timer chain ends
                        }
                        let timeout = self.cfg.client_retry_timeout;
                        let stuck = self
                            .in_flight
                            .front()
                            .is_some_and(|&(sent, _)| now.saturating_since(sent) > timeout);
                        let broken = self.channel.as_ref().is_some_and(Channel::broken);
                        if stuck || broken {
                            self.reconnect(ctx);
                        }
                        ctx.timer(timeout, ClientMsg::Watchdog);
                    }
                }
                return;
            }
            Err(other) => other,
        };
        let Ok(ev) = msg.downcast::<NetEvent>() else {
            return;
        };
        match *ev {
            NetEvent::CmEstablished { qp, .. } => {
                if self.channel.is_some() {
                    return;
                }
                self.dial_attempts = 0;
                let net = self.net.clone();
                let ch = Channel::rdma(&net, ctx, self.node, qp, self.cfg.ring_size);
                self.channel = Some(ch);
                // First burst; the channel queues until the MR handshake
                // completes.
                self.fill_pipeline(ctx);
            }
            NetEvent::TcpConnected { conn, .. } => {
                self.dial_attempts = 0;
                self.channel = Some(Channel::tcp(conn));
                self.fill_pipeline(ctx);
            }
            NetEvent::CqNotify { cq } => {
                // Budgeted drain like the servers', except the client
                // models no CPU pool: the drain cost is discarded and an
                // over-budget burst continues in a fresh event at the
                // same instant — other messages still interleave, which
                // is all the budget is for here.
                let net = self.net.clone();
                let budget = self.cfg.cq_poll_budget;
                let mut broken = false;
                let out = cqdrain::drain_budgeted(&net, ctx, cq, budget, |ctx, wc| {
                    if broken {
                        return;
                    }
                    let Some(ch) = self.channel.as_mut() else {
                        return;
                    };
                    if let Some(ChannelMsg { tag: t, payload }) = ch.on_wc(&net, ctx, &wc) {
                        if t == tag::REPLY {
                            self.on_reply(ctx, &payload);
                        }
                    } else if self.channel.as_ref().is_some_and(Channel::broken) {
                        broken = true;
                    }
                });
                if out.more {
                    ctx.timer_at(ctx.now(), NetEvent::CqNotify { cq });
                }
                if broken {
                    self.reconnect(ctx);
                }
            }
            NetEvent::TcpDelivered { bytes, .. } => {
                let msgs = self
                    .channel
                    .as_mut()
                    .map(|ch| ch.on_tcp_bytes(bytes))
                    .unwrap_or_default();
                for m in msgs {
                    if m.tag == tag::REPLY {
                        self.on_reply(ctx, &m.payload);
                    }
                }
            }
            NetEvent::TcpClosed { .. } if ctx.now() < self.workload.stop_at => {
                self.reconnect(ctx);
            }
            NetEvent::CmConnectFailed { .. } | NetEvent::TcpConnectFailed { .. } => {
                // Redial with capped exponential backoff: base delay for
                // the startup race, doubling toward the configured cap
                // under a long partition — but never beyond
                // `client_retry_timeout`, so a recovered server is found
                // within one watchdog period.
                self.dial_attempts = self.dial_attempts.saturating_add(1);
                self.stat_dial_failures += 1;
                let delay = self.cfg.client_dial_delay(self.dial_attempts);
                ctx.timer(delay, ClientMsg::Start);
            }
            _ => {}
        }
    }

    fn name(&self) -> &str {
        "bench-client"
    }
}

/// Check whether `mode` clients keep their transport invariant: clients in
/// TCP mode never create CQs.
pub fn client_uses_cq(mode: Mode) -> bool {
    mode.uses_rdma()
}

#[cfg(test)]
mod tests {
    use super::*;
    use skv_simcore::SimTime;

    fn workload(theta: f64, shift_every: u64) -> Workload {
        Workload {
            pipeline: 1,
            set_ratio: 0.1,
            mset_keys: 0,
            key_space: 1_000,
            value_size: 16,
            zipf_theta: theta,
            zipf_shift_every: shift_every,
            start_at: SimTime::ZERO,
            stop_at: SimTime::ZERO,
        }
    }

    /// FNV-1a over the first `ops` encoded commands: the trace digest.
    fn trace_digest(w: &Workload, seed: u64, ops: usize) -> u64 {
        let mut gen = WorkloadGen::new(w, DetRng::new(seed));
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for _ in 0..ops {
            let (cmd, _) = gen.next_command();
            for &b in &cmd.encode() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    /// The draw-order contract, pinned: the θ = 0 stream is the exact
    /// historical sequence (this constant predates the Zipf knob), and
    /// the θ > 0 stream is stable across releases. If either digest
    /// moves, a seeded workload is no longer reproducible — treat that
    /// as a breaking change, not a test to update casually.
    #[test]
    fn same_seed_trace_digests_are_pinned() {
        assert_eq!(trace_digest(&workload(0.0, 0), 42, 4_096), 0xae5a_e245_5695_96eb);
        assert_eq!(trace_digest(&workload(0.99, 0), 42, 4_096), 0xa8d8_733a_71c0_43fc);
        assert_eq!(
            trace_digest(&workload(0.99, 500), 42, 4_096),
            0x811a_7567_801e_70f7
        );
    }

    /// Same seed → same trace; different seed → different trace. Holds
    /// for every stream arrangement (legacy, Zipf, shifting hot set).
    #[test]
    fn trace_digest_tracks_seed() {
        for w in [workload(0.0, 0), workload(0.99, 0), workload(0.99, 500)] {
            assert_eq!(trace_digest(&w, 7, 512), trace_digest(&w, 7, 512));
            assert_ne!(trace_digest(&w, 7, 512), trace_digest(&w, 8, 512));
        }
    }

    /// The skew knob and the mix stream are independent: two θ > 0
    /// workloads that differ only in θ split the same Zipf stream off
    /// the same parent, so their read/write decisions are draw-for-draw
    /// identical — only which keys get drawn changes.
    #[test]
    fn zipf_theta_leaves_mix_stream_untouched() {
        let mut low = WorkloadGen::new(&workload(0.6, 0), DetRng::new(9));
        let mut high = WorkloadGen::new(&workload(0.99, 0), DetRng::new(9));
        let mut low_writes = Vec::new();
        let mut high_writes = Vec::new();
        for _ in 0..2_048 {
            low_writes.push(low.next_command().1);
            high_writes.push(high.next_command().1);
        }
        assert_eq!(low_writes, high_writes);
    }

    /// θ = 0.99 concentrates draws on the head of the keyspace; uniform
    /// draws do not. (Rank 0 maps to a single key; under Zipf it should
    /// absorb a double-digit share of all draws.)
    #[test]
    fn zipf_theta_skews_key_draws() {
        let count_hot = |theta: f64| {
            let mut gen = WorkloadGen::new(&workload(theta, 0), DetRng::new(3));
            let mut hot = 0usize;
            for _ in 0..10_000 {
                let (cmd, _) = gen.next_command();
                if cmd.encode().windows(16).any(|w| w == b"key:000000000000") {
                    hot += 1;
                }
            }
            hot
        };
        let zipf_hot = count_hot(0.99);
        let uniform_hot = count_hot(0.0);
        assert!(
            zipf_hot > 1_000,
            "Zipf 0.99 should hammer the hottest key, saw {zipf_hot}/10000"
        );
        assert!(
            uniform_hot < 100,
            "uniform draws should spread out, saw {uniform_hot}/10000"
        );
    }

    /// Stamps roundtrip through the value encoding at any size, are
    /// unique across clients, and never collide with "key absent" (0).
    #[test]
    fn history_stamps_roundtrip() {
        for (client, counter) in [(0usize, 1u64), (7, 42), (255, (1 << 40) - 1)] {
            let s = history_stamp(client, counter);
            assert_ne!(s, 0);
            assert_eq!(parse_stamp(&stamp_value(s, 16)), Some(s));
            assert_eq!(parse_stamp(&stamp_value(s, 0)), Some(s));
            assert_eq!(parse_stamp(&stamp_value(s, 64)), Some(s));
        }
        assert_ne!(history_stamp(0, 5), history_stamp(1, 5));
        assert_eq!(parse_stamp(b"xxxx"), None);
        assert_eq!(parse_stamp(b""), None);
        assert_eq!(parse_reply_stamp(&Resp::NullBulk.encode()), Some(0));
        assert_eq!(
            parse_reply_stamp(&Resp::Bulk(stamp_value(99, 8)).encode()),
            Some(99)
        );
        assert_eq!(parse_reply_stamp(b"-ERR nope\r\n"), None);
    }

    /// Stamping changes only the written value bytes: same seed, same
    /// keys, same read/write sequence — so the recorded path exercises
    /// the exact schedule the unstamped path would.
    #[test]
    fn stamping_preserves_draw_order() {
        for w in [workload(0.0, 0), workload(0.99, 0)] {
            let mut plain = WorkloadGen::new(&w, DetRng::new(11));
            let mut stamped = WorkloadGen::new(&w, DetRng::new(11));
            for i in 0..512u64 {
                let (p_cmd, p_write) = plain.next_command();
                let (s_cmd, s_write, keys) = stamped.next_command_stamped(Some(i + 1));
                assert_eq!(p_write, s_write);
                assert_eq!(keys.len(), 1);
                let enc = s_cmd.encode();
                assert!(
                    enc.windows(keys[0].len())
                        .any(|win| win == keys[0].as_bytes()),
                    "returned key must appear in the command"
                );
                if !p_write {
                    assert_eq!(p_cmd.encode(), enc, "reads are byte-identical");
                }
            }
        }
    }

    /// The hot-set rotation moves the head of the distribution without
    /// touching any RNG stream: key draws differ across the shift
    /// boundary, but the underlying rank sequence (and so the trace
    /// length and mix) is unchanged.
    #[test]
    fn hot_set_shift_rotates_ranks_deterministically() {
        let mut fixed = WorkloadGen::new(&workload(0.99, 0), DetRng::new(5));
        let mut shifting = WorkloadGen::new(&workload(0.99, 100), DetRng::new(5));
        let mut diverged = false;
        for i in 0..400 {
            let a = fixed.next_command().0.encode();
            let b = shifting.next_command().0.encode();
            if i < 100 {
                assert_eq!(a, b, "before the first shift the streams agree");
            } else if a != b {
                diverged = true;
            }
        }
        assert!(diverged, "after a shift the hot set must have moved");
    }
}

