//! Closed-loop benchmark clients, modelled on `redis-benchmark` (§V-B:
//! "each client issues queries as quickly as possible").
//!
//! A client opens one connection, then repeats: build a command, send it,
//! wait for the reply, record the latency, send the next. Throughput at a
//! given concurrency level therefore emerges from server service times and
//! round-trip latency exactly as it does for the paper's load generator.

use skv_netsim::{CqId, Net, NetEvent, NodeId, SocketAddr};
use skv_simcore::{Actor, ActorId, Context, DetRng, Payload, SimDuration, SimTime};
use skv_store::resp::Resp;

use crate::channel::{Channel, ChannelMsg};
use crate::config::{ClusterConfig, Mode};
use crate::cqdrain;
use crate::metrics::SharedMetrics;
use crate::protocol::tag;

/// Workload shape for one client.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Commands kept in flight per connection (`redis-benchmark -P`);
    /// 1 reproduces the paper's strictly closed loop.
    pub pipeline: usize,
    /// Fraction of operations that are SET (the rest are GET).
    pub set_ratio: f64,
    /// Keys per write batch: 0 or 1 issues plain SETs; `n >= 2` issues
    /// `MSET` over `n` uniform random keys instead (cross-shard stressor
    /// on sharded clusters). The default workload (0) draws the exact
    /// historical RNG sequence.
    pub mset_keys: usize,
    /// Number of distinct keys (uniform access).
    pub key_space: u64,
    /// Value payload size in bytes for SET.
    pub value_size: usize,
    /// When to open the connection and start issuing.
    pub start_at: SimTime,
    /// Stop issuing new operations after this instant.
    pub stop_at: SimTime,
}

enum ClientMsg {
    /// Time to connect and start.
    Start,
    /// Issue the next operation (after per-op client overhead).
    IssueNext,
    /// Periodic liveness check: reconnect when the oldest in-flight
    /// command has waited longer than `client_retry_timeout`.
    Watchdog,
}

/// A benchmark client actor.
pub struct BenchClient {
    net: Net,
    cfg: ClusterConfig,
    node: NodeId,
    server: SocketAddr,
    workload: Workload,
    metrics: SharedMetrics,
    cq: Option<CqId>,
    channel: Option<Channel>,
    /// Placeholder seed until `on_start` replaces it with a split of the
    /// simulation RNG; never absent, so no unwrap on the issue path.
    rng: DetRng,
    /// FIFO of (send instant, is_write) for commands awaiting replies.
    in_flight: std::collections::VecDeque<(SimTime, bool)>,
    /// Consecutive failed dials since the last established connection;
    /// drives the capped exponential redial backoff
    /// (`ClusterConfig::client_dial_delay`).
    dial_attempts: u32,
    /// Operations issued.
    pub stat_issued: u64,
    /// Replies received.
    pub stat_replies: u64,
    /// Connections abandoned and re-established after reply timeouts.
    pub stat_reconnects: u64,
    /// Total failed dial attempts (each one schedules a backed-off
    /// redial); the backoff regression test bounds this under a long
    /// partition.
    pub stat_dial_failures: u64,
}

impl BenchClient {
    /// Create a client on `node` targeting `server`.
    pub fn new(
        net: Net,
        cfg: ClusterConfig,
        node: NodeId,
        server: SocketAddr,
        workload: Workload,
        metrics: SharedMetrics,
    ) -> Self {
        BenchClient {
            net,
            cfg,
            node,
            server,
            workload,
            metrics,
            cq: None,
            channel: None,
            rng: DetRng::new(0),
            in_flight: Default::default(),
            dial_attempts: 0,
            stat_issued: 0,
            stat_replies: 0,
            stat_reconnects: 0,
            stat_dial_failures: 0,
        }
    }

    /// Abandon the current connection (commands in flight are lost, like a
    /// real client timing out) and dial again.
    fn reconnect(&mut self, ctx: &mut Context<'_>) {
        if let Some(ch) = self.channel.take() {
            if let Some(qp) = ch.qp() {
                self.net.destroy_qp(qp);
            }
            if let Some(conn) = ch.tcp_conn() {
                self.net.tcp_close(ctx, conn);
            }
        }
        self.in_flight.clear();
        self.stat_reconnects += 1;
        self.metrics.borrow_mut().chaos.inc("client.reconnects");
        ctx.timer(SimDuration::from_millis(1), ClientMsg::Start);
    }

    fn issue(&mut self, ctx: &mut Context<'_>) {
        if ctx.now() >= self.workload.stop_at {
            return;
        }
        let Some(channel) = self.channel.as_mut() else {
            return;
        };
        let rng = &mut self.rng;
        let key = format!("key:{:012}", rng.below(self.workload.key_space.max(1)));
        let is_write = rng.chance(self.workload.set_ratio);
        let cmd = if is_write && self.workload.mset_keys >= 2 {
            // Batched write: MSET over `mset_keys` uniform keys (the first
            // is the one already drawn, keeping the draw order stable).
            let value = vec![b'x'; self.workload.value_size];
            let mut parts: Vec<Vec<u8>> = Vec::with_capacity(1 + 2 * self.workload.mset_keys);
            parts.push(b"MSET".to_vec());
            parts.push(key.into_bytes());
            parts.push(value.clone());
            for _ in 1..self.workload.mset_keys {
                let k = format!("key:{:012}", rng.below(self.workload.key_space.max(1)));
                parts.push(k.into_bytes());
                parts.push(value.clone());
            }
            Resp::command(parts)
        } else if is_write {
            Resp::command([
                b"SET".as_slice(),
                key.as_bytes(),
                &vec![b'x'; self.workload.value_size],
            ])
        } else {
            Resp::command([b"GET".as_slice(), key.as_bytes()])
        };
        self.in_flight.push_back((ctx.now(), is_write));
        self.stat_issued += 1;
        let net = self.net.clone();
        channel.send(&net, ctx, tag::CMD, cmd.encode());
    }

    /// Fill the pipeline up to its configured depth.
    fn fill_pipeline(&mut self, ctx: &mut Context<'_>) {
        while self.in_flight.len() < self.workload.pipeline.max(1) {
            let before = self.in_flight.len();
            self.issue(ctx);
            if self.in_flight.len() == before {
                break; // stopped issuing (deadline passed / not connected)
            }
        }
    }

    fn on_reply(&mut self, ctx: &mut Context<'_>, payload: &[u8]) {
        self.stat_replies += 1;
        let Some((sent_at, is_write)) = self.in_flight.pop_front() else {
            return;
        };
        let latency = ctx.now().saturating_since(sent_at);
        let is_error = payload.first() == Some(&b'-');
        self.metrics
            .borrow_mut()
            .record(ctx.now(), latency, is_write, is_error);
        // Closed loop: think for the client-side overhead, then refill.
        ctx.timer(self.cfg.costs.client_op, ClientMsg::IssueNext);
    }
}

impl Actor for BenchClient {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.rng = ctx.rng().split();
        let start = self.workload.start_at;
        ctx.timer_at(start, ClientMsg::Start);
        ctx.timer_at(start + self.cfg.client_retry_timeout, ClientMsg::Watchdog);
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, _from: ActorId, msg: Payload) {
        let msg = match msg.downcast::<ClientMsg>() {
            Ok(m) => {
                match *m {
                    ClientMsg::Start => {
                        if self.channel.is_some() {
                            return;
                        }
                        let me = ctx.id();
                        if self.cfg.mode.uses_rdma() {
                            // Reuse the CQ across reconnects.
                            let cq = match self.cq {
                                Some(cq) => cq,
                                None => {
                                    let cq = self.net.create_cq(me);
                                    self.cq = Some(cq);
                                    self.net.req_notify_cq(ctx, cq);
                                    cq
                                }
                            };
                            self.net.rdma_connect(ctx, self.node, me, cq, self.server);
                        } else {
                            self.net.tcp_connect(ctx, self.node, me, self.server);
                        }
                    }
                    ClientMsg::IssueNext => self.fill_pipeline(ctx),
                    ClientMsg::Watchdog => {
                        let now = ctx.now();
                        if now >= self.workload.stop_at && self.in_flight.is_empty() {
                            return; // run over, timer chain ends
                        }
                        let timeout = self.cfg.client_retry_timeout;
                        let stuck = self
                            .in_flight
                            .front()
                            .is_some_and(|&(sent, _)| now.saturating_since(sent) > timeout);
                        let broken = self.channel.as_ref().is_some_and(Channel::broken);
                        if stuck || broken {
                            self.reconnect(ctx);
                        }
                        ctx.timer(timeout, ClientMsg::Watchdog);
                    }
                }
                return;
            }
            Err(other) => other,
        };
        let Ok(ev) = msg.downcast::<NetEvent>() else {
            return;
        };
        match *ev {
            NetEvent::CmEstablished { qp, .. } => {
                if self.channel.is_some() {
                    return;
                }
                self.dial_attempts = 0;
                let net = self.net.clone();
                let ch = Channel::rdma(&net, ctx, self.node, qp, self.cfg.ring_size);
                self.channel = Some(ch);
                // First burst; the channel queues until the MR handshake
                // completes.
                self.fill_pipeline(ctx);
            }
            NetEvent::TcpConnected { conn, .. } => {
                self.dial_attempts = 0;
                self.channel = Some(Channel::tcp(conn));
                self.fill_pipeline(ctx);
            }
            NetEvent::CqNotify { cq } => {
                // Budgeted drain like the servers', except the client
                // models no CPU pool: the drain cost is discarded and an
                // over-budget burst continues in a fresh event at the
                // same instant — other messages still interleave, which
                // is all the budget is for here.
                let net = self.net.clone();
                let budget = self.cfg.cq_poll_budget;
                let mut broken = false;
                let out = cqdrain::drain_budgeted(&net, ctx, cq, budget, |ctx, wc| {
                    if broken {
                        return;
                    }
                    let Some(ch) = self.channel.as_mut() else {
                        return;
                    };
                    if let Some(ChannelMsg { tag: t, payload }) = ch.on_wc(&net, ctx, &wc) {
                        if t == tag::REPLY {
                            self.on_reply(ctx, &payload);
                        }
                    } else if self.channel.as_ref().is_some_and(Channel::broken) {
                        broken = true;
                    }
                });
                if out.more {
                    ctx.timer_at(ctx.now(), NetEvent::CqNotify { cq });
                }
                if broken {
                    self.reconnect(ctx);
                }
            }
            NetEvent::TcpDelivered { bytes, .. } => {
                let msgs = self
                    .channel
                    .as_mut()
                    .map(|ch| ch.on_tcp_bytes(bytes))
                    .unwrap_or_default();
                for m in msgs {
                    if m.tag == tag::REPLY {
                        self.on_reply(ctx, &m.payload);
                    }
                }
            }
            NetEvent::TcpClosed { .. } if ctx.now() < self.workload.stop_at => {
                self.reconnect(ctx);
            }
            NetEvent::CmConnectFailed { .. } | NetEvent::TcpConnectFailed { .. } => {
                // Redial with capped exponential backoff: base delay for
                // the startup race, doubling toward the configured cap
                // under a long partition — but never beyond
                // `client_retry_timeout`, so a recovered server is found
                // within one watchdog period.
                self.dial_attempts = self.dial_attempts.saturating_add(1);
                self.stat_dial_failures += 1;
                let delay = self.cfg.client_dial_delay(self.dial_attempts);
                ctx.timer(delay, ClientMsg::Start);
            }
            _ => {}
        }
    }

    fn name(&self) -> &str {
        "bench-client"
    }
}

/// Check whether `mode` clients keep their transport invariant: clients in
/// TCP mode never create CQs.
pub fn client_uses_cq(mode: Mode) -> bool {
    mode.uses_rdma()
}
