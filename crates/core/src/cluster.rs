//! Cluster builder and experiment harness.
//!
//! Assembles the paper's testbed in the simulator: a master host (with a
//! SmartNIC SoC in SKV mode), N slave hosts, a client host, and the 100 Gb
//! fabric between them; wires up the replication topology; runs a measured
//! workload; and produces a [`RunReport`].

use skv_netsim::{FaultPlan, Net, NodeId, Partition, SocketAddr, TimeWindow, Topology};
use skv_simcore::stats::Counters;
use skv_simcore::{ActorId, SimDuration, SimTime, Simulation};

use crate::client::{BenchClient, Workload};
use crate::config::{ClusterConfig, Mode};
use crate::histcheck::{self, HistReader, HistSpec, HistWriter, ReadAnchor, SharedHistory};
use crate::metrics::{MetricsHub, RunReport, SharedMetrics};
use crate::nickv::{NicControl, NicKv};
use crate::replmode::{quorum_slave_acks, ReplModeKind};
use crate::server::{Control, KvServer};

/// Well-known ports.
pub const KV_PORT: u16 = 6379;
/// Nic-KV's RDMA listen port on the SmartNIC SoC.
pub const NIC_PORT: u16 = 7000;

/// Workload + measurement parameters for one run.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Cluster shape and calibration.
    pub cfg: ClusterConfig,
    /// Number of concurrent closed-loop client connections.
    pub num_clients: usize,
    /// Commands in flight per connection (1 = the paper's setting).
    pub pipeline: usize,
    /// Fraction of SET operations (1.0 = pure SET, 0.0 = pure GET).
    pub set_ratio: f64,
    /// Keys per write batch: 0 or 1 issues plain SETs (the default);
    /// `n >= 2` turns every write into an `MSET` of `n` uniform random
    /// keys, which spans shards with high probability on a sharded
    /// cluster — the cross-shard stressor.
    pub mset_keys: usize,
    /// SET value size in bytes.
    pub value_size: usize,
    /// Number of distinct keys.
    pub key_space: u64,
    /// Zipf skew exponent θ for client key draws; 0 (the default) keeps
    /// the historical uniform workload bit-identical. See
    /// [`crate::client::Workload::zipf_theta`].
    pub zipf_theta: f64,
    /// Rotate the Zipf hot set every this many key draws (0 = static).
    pub zipf_shift_every: u64,
    /// Warm-up time before measurement starts (after sync grace).
    pub warmup: SimDuration,
    /// Measurement window length.
    pub measure: SimDuration,
    /// Root seed.
    pub seed: u64,
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            cfg: ClusterConfig::default(),
            num_clients: 8,
            pipeline: 1,
            set_ratio: 1.0,
            mset_keys: 0,
            value_size: 64,
            key_space: 10_000,
            zipf_theta: 0.0,
            zipf_shift_every: 0,
            warmup: SimDuration::from_millis(500),
            measure: SimDuration::from_secs(4),
            seed: 42,
        }
    }
}

/// A fault schedule for one run — plain data, composable with any
/// [`RunSpec`]. Installed via [`Cluster::apply_chaos`].
#[derive(Debug, Clone)]
pub struct ChaosSpec {
    /// Probability that any RDMA message is lost (→ retry-exhaustion
    /// completion error) or any TCP segment costs a retransmission timeout.
    pub loss_prob: f64,
    /// Probability of a latency spike on any message.
    pub delay_prob: f64,
    /// Size of one latency spike.
    pub delay: SimDuration,
    /// Link flaps: `(slave_idx, from, until)` — the slave's node is fully
    /// partitioned from everyone inside the window.
    pub flaps: Vec<(usize, SimTime, SimTime)>,
    /// One bidirectional partition: `(slave_idxs, from, until)` — the
    /// listed slaves vs. the rest of the cluster.
    pub partition: Option<(Vec<usize>, SimTime, SimTime)>,
    /// SmartNIC SoC crash window `(crash_at, recover_at)` — independent of
    /// the host (the degradation scenario). Ignored outside SKV mode.
    pub nic_crash: Option<(SimTime, SimTime)>,
    /// Seed for the fault-side RNG (independent of the workload seed).
    pub seed: u64,
}

impl Default for ChaosSpec {
    fn default() -> Self {
        ChaosSpec {
            loss_prob: 0.0,
            delay_prob: 0.0,
            delay: SimDuration::from_micros(500),
            flaps: Vec::new(),
            partition: None,
            nic_crash: None,
            seed: 7,
        }
    }
}

/// A built cluster ready to run.
pub struct Cluster {
    /// The simulation (exposed for tests that drive time manually).
    pub sim: Simulation,
    /// The fabric handle.
    pub net: Net,
    /// Master Host-KV actor.
    pub master: ActorId,
    /// Nic-KV actor (SKV mode only).
    pub nic: Option<ActorId>,
    /// Slave Host-KV actors.
    pub slaves: Vec<ActorId>,
    /// Nodes the slaves run on (for failure injection).
    pub slave_nodes: Vec<NodeId>,
    /// Node the master runs on.
    pub master_node: NodeId,
    /// Node the clients run on.
    pub client_node: NodeId,
    /// Node the SmartNIC SoC runs on (SKV mode only).
    pub nic_node: Option<NodeId>,
    /// Client actors.
    pub clients: Vec<ActorId>,
    /// Op history recorded by the bench clients themselves, when
    /// `ClusterConfig::record_history` is set — the linearizability
    /// checker's input. `None` otherwise (recording off is the default
    /// and leaves the client schedule bit-identical).
    pub bench_history: Option<SharedHistory>,
    /// Shared metrics sink.
    pub metrics: SharedMetrics,
    /// The spec this cluster was built from.
    pub spec: RunSpec,
    /// When clients start issuing.
    pub clients_start: SimTime,
    /// Start of the measurement window.
    pub measure_from: SimTime,
    /// End of the measurement window (clients stop issuing).
    pub measure_until: SimTime,
}

impl Cluster {
    /// Build the full testbed for `spec`.
    pub fn build(spec: RunSpec) -> Cluster {
        let mut sim = Simulation::new(spec.seed);
        let cfg = &spec.cfg;
        if let Err(e) = cfg.validate() {
            panic!("invalid ClusterConfig: {e}");
        }

        // --- topology: master + slaves + one client machine + SmartNIC ---
        let mut topo = Topology::new();
        let master_node = topo.add_host();
        let slave_nodes: Vec<NodeId> = (0..cfg.num_slaves).map(|_| topo.add_host()).collect();
        let client_node = topo.add_host();
        let nic_node = if cfg.mode == Mode::Skv {
            Some(topo.add_smartnic(master_node))
        } else {
            None
        };
        let net = Net::install(&mut sim, topo, cfg.net.clone());

        // --- timeline ---
        let sync_grace = SimDuration::from_millis(100);
        let clients_start = SimTime::ZERO + sync_grace;
        let measure_from = clients_start + spec.warmup;
        let measure_until = measure_from + spec.measure;
        let metrics = MetricsHub::new(measure_from, measure_until);

        // --- servers ---
        let master_addr = SocketAddr::new(master_node, KV_PORT);
        let master = sim.add_actor(Box::new(KvServer::new(
            net.clone(),
            cfg.clone(),
            master_node,
            master_addr,
            spec.seed ^ 0x11,
        )));

        let nic_addr = nic_node.map(|n| SocketAddr::new(n, NIC_PORT));
        let nic = nic_node.map(|n| {
            sim.add_actor(Box::new(NicKv::new(
                net.clone(),
                cfg.clone(),
                n,
                SocketAddr::new(n, NIC_PORT),
            )))
        });

        let mut slaves = Vec::with_capacity(cfg.num_slaves);
        for (i, &node) in slave_nodes.iter().enumerate() {
            let addr = SocketAddr::new(node, KV_PORT);
            let id = sim.add_actor(Box::new(KvServer::new(
                net.clone(),
                cfg.clone(),
                node,
                addr,
                spec.seed ^ (0x100 + i as u64),
            )));
            slaves.push(id);
        }

        // --- wiring: master → NIC, then slaves → SLAVEOF ---
        if let (Some(nic_addr), Some(_)) = (nic_addr, nic) {
            sim.schedule(
                SimTime::from_millis(1),
                master,
                Control::ConnectNic { nic: nic_addr },
            );
        }
        for (i, &slave) in slaves.iter().enumerate() {
            sim.schedule(
                SimTime::from_millis(5 + 2 * i as u64),
                slave,
                Control::Slaveof {
                    master: master_addr,
                    nic: nic_addr,
                },
            );
        }

        // --- clients ---
        let workload = Workload {
            pipeline: spec.pipeline,
            set_ratio: spec.set_ratio,
            mset_keys: spec.mset_keys,
            key_space: spec.key_space,
            value_size: spec.value_size,
            zipf_theta: spec.zipf_theta,
            zipf_shift_every: spec.zipf_shift_every,
            start_at: clients_start,
            stop_at: measure_until,
        };
        // With the SoC hot-key cache on, clients dial the Nic-KV front
        // end instead of the host master: hot GETs are answered from SoC
        // memory, everything else is proxied through (see
        // `crate::hotcache`). Cache off keeps the historical direct path.
        let client_target = match nic_addr {
            Some(nic) if cfg.hot_cache_enabled() => nic,
            _ => master_addr,
        };
        let bench_history = cfg.record_history.then(histcheck::new_history);
        let clients: Vec<ActorId> = (0..spec.num_clients)
            .map(|i| {
                let mut client = BenchClient::new(
                    net.clone(),
                    cfg.clone(),
                    client_node,
                    client_target,
                    workload.clone(),
                    metrics.clone(),
                );
                if let Some(history) = &bench_history {
                    client.record_into(i, history.clone());
                }
                sim.add_actor(Box::new(client))
            })
            .collect();

        Cluster {
            sim,
            net,
            master,
            nic,
            slaves,
            slave_nodes,
            master_node,
            client_node,
            nic_node,
            clients,
            bench_history,
            metrics,
            spec,
            clients_start,
            measure_from,
            measure_until,
        }
    }

    /// Every node in the testbed (master, slaves, client machine, SoC).
    fn all_nodes(&self) -> Vec<NodeId> {
        let mut nodes = vec![self.master_node, self.client_node];
        nodes.extend(&self.slave_nodes);
        nodes.extend(self.nic_node);
        nodes
    }

    /// Install a fault schedule: builds the fabric's [`FaultPlan`] and
    /// schedules any SoC crash/recovery events.
    pub fn apply_chaos(&mut self, chaos: &ChaosSpec) {
        let mut plan = FaultPlan::new(chaos.seed);
        plan.default_loss = chaos.loss_prob;
        plan.default_delay_prob = chaos.delay_prob;
        plan.default_delay = chaos.delay;
        for &(idx, from, until) in &chaos.flaps {
            let node = self.slave_nodes[idx];
            let others: Vec<NodeId> = self
                .all_nodes()
                .into_iter()
                .filter(|&n| n != node)
                .collect();
            plan.partitions.push(Partition {
                a: vec![node],
                b: others,
                window: TimeWindow::new(from, until),
            });
        }
        if let Some((idxs, from, until)) = &chaos.partition {
            let a: Vec<NodeId> = idxs.iter().map(|&i| self.slave_nodes[i]).collect();
            let b: Vec<NodeId> = self
                .all_nodes()
                .into_iter()
                .filter(|n| !a.contains(n))
                .collect();
            plan.partitions.push(Partition {
                a,
                b,
                window: TimeWindow::new(*from, *until),
            });
        }
        self.net.set_fault_plan(plan);
        if let Some((crash_at, recover_at)) = chaos.nic_crash {
            self.schedule_nic_crash(crash_at);
            self.schedule_nic_recover(recover_at);
        }
    }

    /// Deploy history probe actors (see [`crate::histcheck`]) on the
    /// client machine: `spec.writers` single-writer actors against the
    /// master and `spec.readers` readers against the anchor. Call after
    /// [`Cluster::build`], before running. The returned handle holds the
    /// recorded history for [`histcheck::check_single_writer`].
    pub fn add_history(&mut self, spec: &HistSpec) -> SharedHistory {
        let history = histcheck::new_history();
        let cfg = self.spec.cfg.clone();
        let master_addr = SocketAddr::new(self.master_node, KV_PORT);
        // With the hot-key cache on, the history probes exercise the NIC
        // front end exactly like the bench clients: writers and
        // master-anchored readers dial the Nic-KV, so stale cache hits
        // surface as single-writer monotonicity violations.
        let front_addr = match self.nic_node {
            Some(n) if cfg.hot_cache_enabled() => SocketAddr::new(n, NIC_PORT),
            _ => master_addr,
        };
        let slave_addrs: Vec<SocketAddr> = self
            .slave_nodes
            .iter()
            .map(|&n| SocketAddr::new(n, KV_PORT))
            .collect();
        let (targets, read_quorum) = match spec.anchor {
            ReadAnchor::Master => (vec![front_addr], 1),
            ReadAnchor::Slave(i) => (vec![slave_addrs[i]], 1),
            ReadAnchor::MasterQuorum => {
                let mut t = vec![front_addr];
                t.extend(slave_addrs.iter().copied());
                (t, quorum_slave_acks(cfg.num_slaves) + 1)
            }
        };
        let start = self.clients_start;
        let stop = self.measure_until;
        for w in 0..spec.writers {
            self.sim.add_actor(Box::new(HistWriter::new(
                self.net.clone(),
                cfg.clone(),
                self.client_node,
                front_addr,
                history.clone(),
                w,
                spec.keys_per_writer,
                spec.op_gap,
                start,
                stop,
            )));
        }
        for _ in 0..spec.readers {
            self.sim.add_actor(Box::new(HistReader::new(
                self.net.clone(),
                cfg.clone(),
                self.client_node,
                targets.clone(),
                read_quorum,
                history.clone(),
                spec.writers,
                spec.keys_per_writer,
                spec.op_gap,
                start,
                stop,
            )));
        }
        history
    }

    /// Schedule a SmartNIC SoC crash at `at` (SKV mode; no-op otherwise).
    pub fn schedule_nic_crash(&mut self, at: SimTime) {
        if let Some(nic) = self.nic {
            self.sim.schedule(at, nic, NicControl::Crash);
        }
    }

    /// Schedule the SoC's recovery.
    pub fn schedule_nic_recover(&mut self, at: SimTime) {
        if let Some(nic) = self.nic {
            self.sim.schedule(at, nic, NicControl::Recover);
        }
    }

    /// Schedule a slave crash at `at` (relative to simulation start).
    pub fn schedule_slave_crash(&mut self, slave_idx: usize, at: SimTime) {
        self.sim
            .schedule(at, self.slaves[slave_idx], Control::Crash);
    }

    /// Schedule a slave recovery at `at`.
    pub fn schedule_slave_recover(&mut self, slave_idx: usize, at: SimTime) {
        self.sim
            .schedule(at, self.slaves[slave_idx], Control::Recover);
    }

    /// Schedule a master crash / recovery (for failover experiments).
    pub fn schedule_master_crash(&mut self, at: SimTime) {
        self.sim.schedule(at, self.master, Control::Crash);
    }

    /// Schedule the master's recovery.
    pub fn schedule_master_recover(&mut self, at: SimTime) {
        self.sim.schedule(at, self.master, Control::Recover);
    }

    /// Run to just past the measurement window and summarize.
    pub fn run(&mut self) -> RunReport {
        let deadline = self.measure_until + SimDuration::from_millis(200);
        self.sim.run_until(deadline);
        self.report()
    }

    /// Run until `deadline` (for experiments with their own schedules).
    pub fn run_until(&mut self, deadline: SimTime) -> RunReport {
        self.sim.run_until(deadline);
        self.report()
    }

    /// Summarize the run so far, folding the fabric's fault counters and
    /// the servers' robustness stats into the report's `chaos` set.
    pub fn report(&self) -> RunReport {
        let mut report = RunReport::from_hub(self.spec.cfg.mode.label(), &self.metrics.borrow());
        for (k, v) in self.net.counters().iter() {
            if k.starts_with("faults.") || k == "rdma.qp_errors" {
                report.chaos.add(k, v);
            }
        }
        let mut servers = vec![self.master_server()];
        for i in 0..self.slaves.len() {
            servers.push(self.slave_server(i));
        }
        for s in servers {
            report.chaos.add("server.reconnects", s.stat_reconnects);
            report.chaos.add("server.conn_errors", s.stat_conn_errors);
            report.chaos.add("server.degradations", s.stat_degradations);
            report
                .chaos
                .add("server.partial_syncs", s.stat_partial_syncs);
        }
        // Tracked-mode counters are gated on the mode so the async arm's
        // report — and therefore its determinism digest — stays
        // bit-identical to the pre-trait code path.
        if self.spec.cfg.repl_mode != ReplModeKind::Async {
            if let Some(nic) = self.nic_kv() {
                report.chaos.add("nic.commits", nic.stat_commits);
                report.chaos.add("nic.retransmits", nic.stat_retransmits);
                report
                    .chaos
                    .add("nic.chain_repairs", nic.stat_chain_repairs);
                report
                    .chaos
                    .add("nic.chain_rejoins", nic.stat_chain_rejoins);
            }
            let m = self.master_server();
            report
                .chaos
                .add("server.deferred_replies", m.stat_deferred_replies);
            report
                .chaos
                .add("server.released_replies", m.stat_released_replies);
        }
        // Shard counters are gated the same way on the shard count, so a
        // single-shard run's report — and its determinism digest — stays
        // bit-identical to the pre-sharding engine.
        if self.spec.cfg.num_shards > 1 {
            let mut servers = vec![self.master_server()];
            for i in 0..self.slaves.len() {
                servers.push(self.slave_server(i));
            }
            for s in servers {
                report
                    .chaos
                    .add("shard.ops", s.shard_ops().iter().sum::<u64>());
                report.chaos.add("shard.cross_msgs", s.shard_cross_msgs());
                report.chaos.add("shard.queue_depth", s.apply_queue_depth());
            }
            if let Some(nic) = self.nic_kv() {
                report
                    .chaos
                    .add("shard.nic_ingress", nic.shard_ingress().iter().sum::<u64>());
            }
        }
        // Cache counters are gated on the cache being enabled, so every
        // cache-off run's report — and its determinism digest — stays
        // bit-identical to the pre-cache baseline.
        if self.spec.cfg.hot_cache_enabled() {
            if let Some((stats, bytes)) = self.nic_kv().and_then(crate::nickv::NicKv::cache_stats)
            {
                report.chaos.add("cache.hits", stats.hits);
                report.chaos.add("cache.misses", stats.misses);
                report.chaos.add("cache.admits", stats.admits);
                report.chaos.add("cache.evicts", stats.evicts);
                report.chaos.add("cache.invalidations", stats.invalidations);
                report.chaos.add("cache.bytes", bytes as u64);
            }
            if let Some(nic) = self.nic_kv() {
                report
                    .chaos
                    .add("nic.fwd_stale_drops", nic.stat_fwd_stale_drops);
            }
        }
        // Mode-failover counters exist only when the knob is on, keeping
        // every fixed-mode report (and digest) untouched.
        if self.spec.cfg.mode_failover {
            if let Some(nic) = self.nic_kv() {
                report.chaos.add("nic.mode_changes", nic.stat_mode_changes);
            }
            report
                .chaos
                .add("server.mode_changes", self.master_server().stat_mode_changes);
        }
        // History-recording counters: sizes of the recorded event log,
        // present only when the recorder ran.
        if let Some(history) = &self.bench_history {
            let h = history.borrow();
            let reads = h
                .ops
                .iter()
                .filter(|o| o.kind == histcheck::OpKind::Read)
                .count() as u64;
            let aborts = h.ops.iter().filter(|o| o.aborted).count() as u64;
            report.chaos.add("hist.ops", h.ops.len() as u64);
            report.chaos.add("hist.reads", reads);
            report.chaos.add("hist.writes", h.ops.len() as u64 - reads);
            report.chaos.add("hist.aborts", aborts);
        }
        report
    }

    /// Dump every counter in the testbed, keyed by subsystem: `server.*`
    /// (master + slaves summed), `nic.*`, `client.*` (all clients summed),
    /// `store.*` (all engines summed), plus the fabric's `rdma.*` and
    /// `faults.*` counters verbatim. Every name in
    /// [`crate::metrics::catalog`] is present (zero when never hit), so
    /// ablation tables get a stable schema.
    ///
    /// This is deliberately separate from [`Cluster::report`]: the report's
    /// chaos set is mode-gated so determinism digests stay bit-identical
    /// across refactors, while this snapshot is the unconditional export.
    pub fn counters_snapshot(&self) -> Counters {
        let mut out = Counters::new();
        let mut servers = vec![self.master_server()];
        for i in 0..self.slaves.len() {
            servers.push(self.slave_server(i));
        }
        for s in &servers {
            out.add("server.stat_commands", s.stat_commands);
            out.add("server.stat_rejected", s.stat_rejected);
            out.add("server.stat_applied_bytes", s.stat_applied_bytes);
            out.add("server.stat_full_syncs", s.stat_full_syncs);
            out.add("server.stat_partial_syncs", s.stat_partial_syncs);
            out.add("server.stat_reconnects", s.stat_reconnects);
            out.add("server.stat_conn_errors", s.stat_conn_errors);
            out.add("server.stat_degradations", s.stat_degradations);
            out.add("server.stat_doorbells", s.stat_doorbells);
            out.add("server.stat_wrs_posted", s.stat_wrs_posted);
            out.add("server.stat_deferred_replies", s.stat_deferred_replies);
            out.add("server.stat_released_replies", s.stat_released_replies);
            out.add("server.stat_mode_changes", s.stat_mode_changes);
            out.add("shard.ops", s.shard_ops().iter().sum::<u64>());
            out.add("shard.cross_msgs", s.shard_cross_msgs());
            out.add("shard.queue_depth", s.apply_queue_depth());
            for engine in s.engines() {
                let db = engine.db();
                let (hits, misses) = db.stats_hit_miss();
                out.add("store.stat_hits", hits);
                out.add("store.stat_misses", misses);
                out.add("store.stat_expired", db.stat_expired());
            }
        }
        out.add("shard.nic_ingress", 0);
        out.add("nic.stat_fanout_msgs", 0);
        out.add("nic.stat_fanout_sends", 0);
        out.add("nic.stat_doorbells", 0);
        out.add("nic.stat_wrs_posted", 0);
        out.add("nic.stat_probes", 0);
        out.add("nic.stat_failovers", 0);
        out.add("nic.stat_commits", 0);
        out.add("nic.stat_retransmits", 0);
        out.add("nic.stat_chain_repairs", 0);
        out.add("nic.stat_chain_rejoins", 0);
        out.add("nic.stat_mode_changes", 0);
        out.add("nic.stat_fwd_stale_drops", 0);
        if let Some(nic) = self.nic_kv() {
            out.add("shard.nic_ingress", nic.shard_ingress().iter().sum::<u64>());
            out.add("nic.stat_fanout_msgs", nic.stat_fanout_msgs);
            out.add("nic.stat_fanout_sends", nic.stat_fanout_sends);
            out.add("nic.stat_doorbells", nic.stat_doorbells);
            out.add("nic.stat_wrs_posted", nic.stat_wrs_posted);
            out.add("nic.stat_probes", nic.stat_probes);
            out.add("nic.stat_failovers", nic.stat_failovers);
            out.add("nic.stat_commits", nic.stat_commits);
            out.add("nic.stat_retransmits", nic.stat_retransmits);
            out.add("nic.stat_chain_repairs", nic.stat_chain_repairs);
            out.add("nic.stat_chain_rejoins", nic.stat_chain_rejoins);
            out.add("nic.stat_mode_changes", nic.stat_mode_changes);
            out.add("nic.stat_fwd_stale_drops", nic.stat_fwd_stale_drops);
        }
        for &name in crate::metrics::catalog::CACHE_COUNTERS {
            out.add(name, 0);
        }
        if let Some((stats, bytes)) = self.nic_kv().and_then(crate::nickv::NicKv::cache_stats) {
            out.add("cache.hits", stats.hits);
            out.add("cache.misses", stats.misses);
            out.add("cache.admits", stats.admits);
            out.add("cache.evicts", stats.evicts);
            out.add("cache.invalidations", stats.invalidations);
            out.add("cache.bytes", bytes as u64);
        }
        out.add("client.stat_issued", 0);
        out.add("client.stat_replies", 0);
        out.add("client.stat_reconnects", 0);
        out.add("client.stat_dial_failures", 0);
        for &id in &self.clients {
            if let Some(c) = self.sim.actor_ref::<BenchClient>(id) {
                out.add("client.stat_issued", c.stat_issued);
                out.add("client.stat_replies", c.stat_replies);
                out.add("client.stat_reconnects", c.stat_reconnects);
                out.add("client.stat_dial_failures", c.stat_dial_failures);
            }
        }
        for &name in crate::metrics::catalog::HIST_COUNTERS {
            out.add(name, 0);
        }
        if let Some(history) = &self.bench_history {
            let h = history.borrow();
            let reads = h
                .ops
                .iter()
                .filter(|o| o.kind == histcheck::OpKind::Read)
                .count() as u64;
            let aborts = h.ops.iter().filter(|o| o.aborted).count() as u64;
            out.add("hist.ops", h.ops.len() as u64);
            out.add("hist.reads", reads);
            out.add("hist.writes", h.ops.len() as u64 - reads);
            out.add("hist.aborts", aborts);
        }
        for &name in crate::metrics::catalog::RDMA_COUNTERS {
            out.add(name, 0);
        }
        for (k, v) in self.net.counters().iter() {
            out.add(k, v);
        }
        out
    }

    /// Execute commands directly on the master's engine — for preloading a
    /// dataset before slaves attach (it bypasses the replication stream and
    /// reaches slaves only via the initial full sync).
    pub fn preload_master(&mut self, commands: &[&[&str]]) {
        let server = self
            .sim
            .actor_mut::<KvServer>(self.master)
            .expect("master is a KvServer");
        for parts in commands {
            let r = server.preload(parts);
            assert!(!r.reply.is_error(), "preload failed: {parts:?}");
        }
    }

    /// Borrow the master server for inspection.
    pub fn master_server(&self) -> &KvServer {
        self.sim
            .actor_ref::<KvServer>(self.master)
            .expect("master is a KvServer")
    }

    /// Borrow a slave server for inspection.
    pub fn slave_server(&self, idx: usize) -> &KvServer {
        self.sim
            .actor_ref::<KvServer>(self.slaves[idx])
            .expect("slave is a KvServer")
    }

    /// Borrow the Nic-KV for inspection (SKV mode).
    pub fn nic_kv(&self) -> Option<&NicKv> {
        self.nic.and_then(|id| self.sim.actor_ref::<NicKv>(id))
    }

    /// All keyspace digests (master first), for convergence checks.
    pub fn keyspace_digests(&self) -> Vec<u64> {
        let mut out = vec![self.master_server().keyspace_digest()];
        for i in 0..self.slaves.len() {
            out.push(self.slave_server(i).keyspace_digest());
        }
        out
    }
}

/// Convenience: build and run one spec, returning the report.
pub fn run_spec(spec: RunSpec) -> RunReport {
    Cluster::build(spec).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(mode: Mode) -> RunSpec {
        let mut cfg = ClusterConfig::for_mode(mode);
        cfg.num_slaves = if mode == Mode::TcpRedis { 0 } else { 2 };
        RunSpec {
            cfg,
            num_clients: 2,
            warmup: SimDuration::from_millis(100),
            measure: SimDuration::from_millis(400),
            ..Default::default()
        }
    }

    #[test]
    fn skv_cluster_smoke() {
        let mut cluster = Cluster::build(small_spec(Mode::Skv));
        let report = cluster.run();
        assert!(report.ops > 100, "ops {}", report.ops);
        assert_eq!(report.errors, 0);
        assert!(report.throughput_kops > 1.0);
        // All slaves synced.
        for i in 0..cluster.slaves.len() {
            assert!(cluster.slave_server(i).is_synced_slave(), "slave {i}");
        }
        // NIC actually fanned out.
        let nic = cluster.nic_kv().expect("SKV has a NIC");
        assert!(nic.stat_fanout_msgs > 0);
        assert_eq!(nic.available_slaves(), 2);
    }

    #[test]
    fn rdma_redis_cluster_smoke() {
        let mut cluster = Cluster::build(small_spec(Mode::RdmaRedis));
        let report = cluster.run();
        assert!(report.ops > 100);
        assert!(cluster.nic_kv().is_none());
    }

    #[test]
    fn tcp_redis_cluster_smoke() {
        let mut cluster = Cluster::build(small_spec(Mode::TcpRedis));
        let report = cluster.run();
        assert!(report.ops > 50, "ops {}", report.ops);
    }

    #[test]
    fn counters_snapshot_covers_catalog() {
        use crate::metrics::catalog;
        let mut cluster = Cluster::build(small_spec(Mode::Skv));
        cluster.run();
        let snap = cluster.counters_snapshot();
        let keys: Vec<&str> = snap.iter().map(|(k, _)| k).collect();
        let expect_prefixed = [
            ("server.", catalog::SERVER_STATS),
            ("nic.", catalog::NIC_STATS),
            ("client.", catalog::CLIENT_STATS),
            ("store.", catalog::STORE_STATS),
        ];
        for (prefix, names) in expect_prefixed {
            for &name in names {
                let key = format!("{prefix}{name}");
                assert!(keys.contains(&key.as_str()), "snapshot missing {key}");
            }
        }
        for &name in catalog::RDMA_COUNTERS {
            assert!(keys.contains(&name), "snapshot missing {name}");
        }
        for &name in catalog::SHARD_COUNTERS {
            assert!(keys.contains(&name), "snapshot missing {name}");
        }
        for &name in catalog::CACHE_COUNTERS {
            assert!(keys.contains(&name), "snapshot missing {name}");
        }
        for &name in catalog::HIST_COUNTERS {
            assert!(keys.contains(&name), "snapshot missing {name}");
        }
        // And the busy ones really counted.
        assert!(snap.get("server.stat_commands") > 0);
        assert!(snap.get("client.stat_replies") > 0);
        assert!(snap.get("nic.stat_fanout_msgs") > 0);
        assert!(snap.get("rdma.wrs_posted") > 0);
    }

    #[test]
    fn deterministic_runs() {
        let r1 = run_spec(small_spec(Mode::Skv));
        let r2 = run_spec(small_spec(Mode::Skv));
        assert_eq!(r1.ops, r2.ops);
        assert_eq!(r1.p99_latency_us, r2.p99_latency_us);
    }
}
