//! # skv-core — SKV: a SmartNIC-offloaded distributed key-value store
//!
//! Reproduction of *"SKV: A SmartNIC-Offloaded Distributed Key-Value
//! Store"* (CLUSTER 2022) over the `skv-netsim` fabric and `skv-store`
//! engine:
//!
//! * [`server::KvServer`] — Host-KV: single-threaded command execution,
//!   replication backlog, initial synchronization (Figure 8), and
//!   per-mode write propagation,
//! * [`nickv::NicKv`] — the SmartNIC-resident component: node list,
//!   steady-state replication fan-out (Figure 9), `thread-num`
//!   multi-threading, and probe-based failure detection with failover,
//! * [`client::BenchClient`] — closed-loop load generation à la
//!   `redis-benchmark`,
//! * [`cluster`] — the harness that assembles testbeds and produces
//!   [`metrics::RunReport`]s,
//! * three run modes ([`config::Mode`]): original **Redis** over TCP,
//!   **RDMA-Redis**, and **SKV** — the paper's baselines and contribution.
//!
//! ```
//! use skv_core::cluster::{Cluster, RunSpec};
//! use skv_core::config::{ClusterConfig, Mode};
//! use skv_simcore::SimDuration;
//!
//! let mut cfg = ClusterConfig::for_mode(Mode::Skv);
//! cfg.num_slaves = 2;
//! let mut cluster = Cluster::build(RunSpec {
//!     cfg,
//!     num_clients: 2,
//!     measure: SimDuration::from_millis(300),
//!     warmup: SimDuration::from_millis(100),
//!     ..Default::default()
//! });
//! let report = cluster.run();
//! assert!(report.ops > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod channel;
pub mod client;
pub mod cluster;
pub mod config;
pub mod cqdrain;
pub mod histcheck;
pub mod hotcache;
pub mod metrics;
pub mod nickv;
pub mod protocol;
pub mod replmode;
pub mod server;
pub mod shard;
