//! # Replication modes — async stream, majority quorum, chain (§III-C +)
//!
//! SKV's paper protocol is Redis-style *asynchronous* primary-backup: the
//! master acks the client as soon as the command applies locally and the
//! NIC fans the stream out to slaves on its own time. That is the fastest
//! arm but offers no guarantee while faults are in flight — a crashed
//! slave silently lags until resync. "Reliable Replication Protocols on
//! SmartNICs" shows that stronger protocols fit on the same NIC-core +
//! one-sided-WR substrate, so this module abstracts the choice behind a
//! [`ReplicationMode`] trait with three implementations:
//!
//! * [`AsyncStream`] — the existing offloaded stream, bit-identical to the
//!   pre-trait code path. Replies release immediately; slaves converge
//!   eventually.
//! * [`QuorumWrites`] — ABD-style majority writes. The NIC fans each
//!   stream segment to every slave, tracks acks keyed on WR completions
//!   (and cumulative `ProgressReport`/`WriteAck` offsets as the resync
//!   backstop), and the master releases the client reply only once
//!   master + ⌈(N+1)/2⌉−1 slave copies exist. Any majority of the N+1
//!   replicas then intersects every write quorum.
//! * [`ChainReplication`] — head→mid→tail forwarding on the NIC cores.
//!   A segment is posted to hop 0 only; each hop's *applied* ack (a
//!   `WriteAck` node message, not just the WR completion) advances the
//!   chain, and the tail ack commits the write. Node failure triggers
//!   chain repair: the dead hop is spliced out of every in-flight chain.
//!
//! The mode is selected by `ClusterConfig::repl_mode`. Quorum sizes are
//! computed against the *configured* slave count, not the currently-live
//! set: shrinking the ack universe to the live nodes would silently break
//! the quorum-intersection invariant that the proptest in
//! `tests/tests/replmode.rs` pins down.

use std::fmt;

/// Which replication protocol the cluster runs. Carried by
/// `ClusterConfig` and consulted by the master (`server.rs` reply
/// deferral) and the Nic-KV actor (`nickv.rs` WR patterns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum ReplModeKind {
    /// Asynchronous stream fan-out (the paper's protocol; default).
    #[default]
    Async,
    /// ABD-style majority-quorum writes.
    Quorum,
    /// Chain replication: head→mid→tail with tail-ack commit.
    Chain,
}

impl ReplModeKind {
    /// Stable label used in reports, bench rows and CLI arms.
    pub fn label(self) -> &'static str {
        match self {
            ReplModeKind::Async => "async",
            ReplModeKind::Quorum => "quorum",
            ReplModeKind::Chain => "chain",
        }
    }

    /// All modes, in ablation-sweep order.
    pub const ALL: [ReplModeKind; 3] = [
        ReplModeKind::Async,
        ReplModeKind::Quorum,
        ReplModeKind::Chain,
    ];

    /// Parse a CLI label; `None` for unknown strings.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "async" => Some(ReplModeKind::Async),
            "quorum" => Some(ReplModeKind::Quorum),
            "chain" => Some(ReplModeKind::Chain),
            _ => None,
        }
    }

    /// Stable wire code for `NodeMsg::ModeChange` frames. Part of the
    /// node protocol: never renumber.
    pub fn code(self) -> u8 {
        match self {
            ReplModeKind::Async => 0,
            ReplModeKind::Quorum => 1,
            ReplModeKind::Chain => 2,
        }
    }

    /// Decode a wire code; `None` for unknown bytes.
    pub fn from_code(c: u8) -> Option<Self> {
        match c {
            0 => Some(ReplModeKind::Async),
            1 => Some(ReplModeKind::Quorum),
            2 => Some(ReplModeKind::Chain),
            _ => None,
        }
    }
}

impl fmt::Display for ReplModeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The WR pattern a mode builds per replicated segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WrPattern {
    /// One WR per live slave, posted under a single doorbell
    /// (`post_send_batch`), exactly like the async fast path.
    FanoutAll,
    /// One WR to the current head; subsequent hops are posted as the
    /// previous hop acks application.
    ChainHops,
}

/// Slave acks needed so that master + acks form a majority of the
/// `configured_slaves + 1` replicas: ⌈(N+1)/2⌉ total copies, minus the
/// master's implicit one.
///
/// `N = 1 → 1`, `N = 2 → 1`, `N = 3 → 2`, `N = 4 → 2`, `N = 5 → 3`.
pub fn quorum_slave_acks(configured_slaves: usize) -> usize {
    configured_slaves.div_ceil(2)
}

/// The contract each replication protocol implements. Deliberately
/// small: the protocols differ in *when a write becomes client-visible*
/// and *what WR pattern carries it*, not in framing or transport — the
/// stream format, backlog, resync and dedupe machinery are shared.
pub trait ReplicationMode {
    /// Which variant this is.
    fn kind(&self) -> ReplModeKind;

    /// Label for reports and bench rows.
    fn label(&self) -> &'static str {
        self.kind().label()
    }

    /// True when the master must hold client replies until the NIC
    /// reports the covering offset committed (quorum and chain); false
    /// for the async stream, which acks as soon as the master applies.
    fn defers_replies(&self) -> bool;

    /// How many *slave* acks commit a write, given the configured slave
    /// count. `0` means "ack count is not the commit condition" (async
    /// commits immediately; chain commits when the hop list empties).
    fn slave_acks_required(&self, configured_slaves: usize) -> usize;

    /// The WR pattern the NIC builds per replicated segment.
    fn wr_pattern(&self) -> WrPattern;
}

/// The paper's asynchronous stream (default arm).
pub struct AsyncStream;

impl ReplicationMode for AsyncStream {
    fn kind(&self) -> ReplModeKind {
        ReplModeKind::Async
    }
    fn defers_replies(&self) -> bool {
        false
    }
    fn slave_acks_required(&self, _configured_slaves: usize) -> usize {
        0
    }
    fn wr_pattern(&self) -> WrPattern {
        WrPattern::FanoutAll
    }
}

/// ABD-style majority-quorum writes.
pub struct QuorumWrites;

impl ReplicationMode for QuorumWrites {
    fn kind(&self) -> ReplModeKind {
        ReplModeKind::Quorum
    }
    fn defers_replies(&self) -> bool {
        true
    }
    fn slave_acks_required(&self, configured_slaves: usize) -> usize {
        quorum_slave_acks(configured_slaves)
    }
    fn wr_pattern(&self) -> WrPattern {
        WrPattern::FanoutAll
    }
}

/// Chain replication with tail-ack commit.
pub struct ChainReplication;

impl ReplicationMode for ChainReplication {
    fn kind(&self) -> ReplModeKind {
        ReplModeKind::Chain
    }
    fn defers_replies(&self) -> bool {
        true
    }
    fn slave_acks_required(&self, _configured_slaves: usize) -> usize {
        0
    }
    fn wr_pattern(&self) -> WrPattern {
        WrPattern::ChainHops
    }
}

static ASYNC_STREAM: AsyncStream = AsyncStream;
static QUORUM_WRITES: QuorumWrites = QuorumWrites;
static CHAIN_REPLICATION: ChainReplication = ChainReplication;

/// Look up the (stateless) mode implementation for a config value.
pub fn replication_mode(kind: ReplModeKind) -> &'static dyn ReplicationMode {
    match kind {
        ReplModeKind::Async => &ASYNC_STREAM,
        ReplModeKind::Quorum => &QUORUM_WRITES,
        ReplModeKind::Chain => &CHAIN_REPLICATION,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_math_is_majority_of_replica_set() {
        // master + acks must exceed half of (slaves + 1) replicas
        for n in 0..=16usize {
            let acks = quorum_slave_acks(n);
            assert!(acks <= n.max(1), "cannot need more acks than slaves");
            let copies = 1 + acks; // master + acked slaves
            assert!(
                2 * copies > n + 1,
                "{copies} copies is not a majority of {} replicas",
                n + 1
            );
            // ...and it is the *minimum* such count.
            if acks > 0 {
                assert!(2 * acks <= n + 1, "quorum over-sized for N={n}");
            }
        }
        assert_eq!(quorum_slave_acks(1), 1);
        assert_eq!(quorum_slave_acks(2), 1);
        assert_eq!(quorum_slave_acks(3), 2);
        assert_eq!(quorum_slave_acks(4), 2);
        assert_eq!(quorum_slave_acks(5), 3);
    }

    #[test]
    fn two_quorums_always_intersect() {
        // Any two (master + quorum_slave_acks) subsets of {master} ∪ slaves
        // overlap: both contain > half of the replica set.
        for n in 1..=9usize {
            let q = 1 + quorum_slave_acks(n);
            assert!(
                2 * q > n + 1,
                "quorums of size {q} may miss each other at N={n}"
            );
        }
    }

    #[test]
    fn labels_roundtrip() {
        for kind in ReplModeKind::ALL {
            assert_eq!(ReplModeKind::parse(kind.label()), Some(kind));
            assert_eq!(replication_mode(kind).kind(), kind);
            assert_eq!(format!("{kind}"), kind.label());
        }
        assert_eq!(ReplModeKind::parse("paxos"), None);
    }

    #[test]
    fn wire_codes_roundtrip_and_are_pinned() {
        for kind in ReplModeKind::ALL {
            assert_eq!(ReplModeKind::from_code(kind.code()), Some(kind));
        }
        // Protocol constants — renumbering breaks mixed-version decode.
        assert_eq!(ReplModeKind::Async.code(), 0);
        assert_eq!(ReplModeKind::Quorum.code(), 1);
        assert_eq!(ReplModeKind::Chain.code(), 2);
        assert_eq!(ReplModeKind::from_code(3), None);
    }

    #[test]
    fn mode_contracts() {
        assert!(!replication_mode(ReplModeKind::Async).defers_replies());
        assert!(replication_mode(ReplModeKind::Quorum).defers_replies());
        assert!(replication_mode(ReplModeKind::Chain).defers_replies());
        assert_eq!(
            replication_mode(ReplModeKind::Quorum).slave_acks_required(3),
            2
        );
        assert_eq!(
            replication_mode(ReplModeKind::Chain).wr_pattern(),
            WrPattern::ChainHops
        );
        assert_eq!(
            replication_mode(ReplModeKind::Async).wr_pattern(),
            WrPattern::FanoutAll
        );
    }
}
